//! Command-line front end for parallel attack campaigns.
//!
//! ```text
//! cargo run --release -p bea-bench --bin campaign_cli -- \
//!     --arch both --models 2 --images 2 --pop 24 --gens 20 \
//!     --jobs 4 --telemetry --out target/experiments/campaign
//! ```
//!
//! Runs the (architecture × model seed × image) grid through
//! [`bea_core::campaign::Campaign`], sharding cells across `--jobs`
//! workers. Champion CSVs, the manifest and (with `--telemetry`) the
//! per-generation JSONL stream land under `--out`; `--resume` keeps
//! finished cells from a previous run instead of recomputing them. The
//! grid outcome is identical for every `--jobs` value.

use bea_bench::args::{self, ArgParser};
use bea_bench::{fmt, Scale};
use bea_core::attack::{AttackConfig, AttackStrategy};
use bea_core::campaign::{Campaign, CampaignConfig, CampaignStore, CellSpec};
use bea_core::report::{print_table, rows_succeeded, SuccessCriteria};
use bea_detect::{Architecture, KernelPolicy, ModelZoo};
use bea_nsga2::Nsga2Config;
use bea_scene::SyntheticKitti;
use std::path::PathBuf;
use std::process::ExitCode;

struct Options {
    arches: Vec<Architecture>,
    models: usize,
    images: usize,
    population: usize,
    generations: usize,
    base_seed: u64,
    jobs: usize,
    threads: usize,
    cache: bool,
    resume: bool,
    telemetry: bool,
    kernels: KernelPolicy,
    strategy: AttackStrategy,
    out: PathBuf,
}

fn parse_args() -> Result<Options, String> {
    // --quick/--medium/--full preset the grid and GA size; explicit flags
    // override the preset.
    let scale = Scale::from_args();
    let mut options = Options {
        arches: vec![Architecture::Yolo, Architecture::Detr],
        models: scale.model_count(),
        images: scale.image_count(),
        population: scale.nsga2().population_size,
        generations: scale.nsga2().generations,
        base_seed: 1,
        jobs: 0,
        threads: 1,
        cache: false,
        resume: false,
        telemetry: false,
        kernels: KernelPolicy::default(),
        strategy: AttackStrategy::default(),
        out: PathBuf::from("target/experiments/campaign"),
    };
    let mut args = ArgParser::from_env();
    while let Some(flag) = args.next_flag() {
        match flag.as_str() {
            "--arch" => options.arches = args::parse_arches(&args.value(&flag)?)?,
            "--models" => options.models = args.parse(&flag)?,
            "--images" => options.images = args.parse(&flag)?,
            "--pop" => options.population = args.parse(&flag)?,
            "--gens" => options.generations = args.parse(&flag)?,
            "--seed" => options.base_seed = args.parse(&flag)?,
            "--jobs" => options.jobs = args.parse(&flag)?,
            "--threads" => options.threads = args.parse(&flag)?,
            "--cache" => options.cache = true,
            "--resume" => options.resume = true,
            "--telemetry" => options.telemetry = true,
            "--kernels" => options.kernels = args.parse(&flag)?,
            "--strategy" => options.strategy = args.parse(&flag)?,
            "--out" => options.out = PathBuf::from(args.value(&flag)?),
            "--quick" | "--medium" | "--full" => {} // consumed by Scale
            "--help" | "-h" => {
                return Err("usage: campaign_cli [--arch yolo|detr|both] [--models N] \
                            [--images N] [--pop N] [--gens N] [--seed N] [--jobs N] \
                            [--threads N] \
                            [--cache] [--resume] [--telemetry] \
                            [--kernels reference|blocked] \
                            [--strategy nsga2|fgsm|pgd|adam] [--out DIR] \
                            [--quick|--medium|--full]\n\
                            --jobs 0 uses every core; any value yields identical results\n\
                            --threads sets kernel worker threads per cell (default 1: \
                            --jobs already saturates the host; 0 = all cores); results \
                            are identical at any thread count\n\
                            --resume keeps finished cells from a previous run in --out\n\
                            --telemetry writes one JSONL record per generation per cell\n\
                            --kernels selects the compute kernels (blocked is the fast \
                            default; results are identical under both)\n\
                            --strategy runs every cell with a gradient-based white-box \
                            baseline instead of the black-box NSGA-II search"
                    .into())
            }
            other => return Err(args::unknown_flag(other)),
        }
    }
    if options.models == 0 || options.images == 0 {
        return Err("--models and --images must be positive".into());
    }
    Ok(options)
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let dataset = SyntheticKitti::evaluation_set();
    if options.images > dataset.len() {
        eprintln!("--images must be <= {}", dataset.len());
        return ExitCode::FAILURE;
    }
    let zoo = ModelZoo::with_defaults().with_kernel_policy(options.kernels);

    let model_seeds: Vec<u64> = (1..=options.models as u64).collect();
    let image_indices: Vec<usize> = (0..options.images).collect();
    let mut specs = Vec::new();
    for arch in &options.arches {
        specs.extend(CellSpec::grid(arch.name(), &model_seeds, &image_indices));
    }

    // A fresh (non-resume) campaign must not silently adopt stale cells.
    if !options.resume {
        let _ = std::fs::remove_dir_all(&options.out);
    }
    let store = match CampaignStore::open(&options.out) {
        Ok(store) => store,
        Err(e) => {
            eprintln!("cannot open {}: {e}", options.out.display());
            return ExitCode::FAILURE;
        }
    };

    let campaign = Campaign::new(CampaignConfig {
        attack: AttackConfig {
            nsga2: Nsga2Config {
                population_size: options.population,
                generations: options.generations,
                ..Nsga2Config::default()
            },
            use_cache: options.cache,
            kernel_policy: options.kernels,
            strategy: options.strategy,
            threads: options.threads,
            ..AttackConfig::default()
        },
        base_seed: options.base_seed,
        jobs: options.jobs,
        telemetry: options.telemetry,
    });

    println!(
        "campaign: {} cells ({} arch x {} models x {} images), {}, pop {}, {} generations, \
         jobs {}{}{}",
        specs.len(),
        options.arches.len(),
        options.models,
        options.images,
        options.strategy,
        options.population,
        options.generations,
        if options.jobs == 0 { "auto".to_string() } else { options.jobs.to_string() },
        if options.cache { ", cached" } else { "" },
        if options.resume { ", resume" } else { "" },
    );

    let started = std::time::Instant::now();
    let result = match campaign.run_with_store(
        &specs,
        |spec: &CellSpec| {
            let arch = if spec.group == Architecture::Yolo.name() {
                Architecture::Yolo
            } else {
                Architecture::Detr
            };
            if options.cache {
                zoo.cached_model(arch, spec.model_seed)
            } else {
                zoo.model(arch, spec.model_seed)
            }
        },
        |spec: &CellSpec| dataset.image(spec.image_index),
        &store,
    ) {
        Ok(result) => result,
        Err(e) => {
            eprintln!("campaign failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let elapsed = started.elapsed().as_secs_f64();

    println!(
        "{} cells ({} computed, {} resumed) in {:.2}s with {} workers",
        result.cells.len(),
        result.computed_cells(),
        result.cells.len() - result.computed_cells(),
        elapsed,
        result.jobs,
    );

    // Per-group aggregate over the persisted rows (works for resumed
    // cells too, which carry no live outcome).
    let criteria = SuccessCriteria::default();
    let mut rows = Vec::new();
    for arch in &options.arches {
        let cells: Vec<_> = result.cells.iter().filter(|c| c.spec.group == arch.name()).collect();
        let champs: Vec<f64> = cells
            .iter()
            .flat_map(|c| c.rows.iter())
            .filter(|r| r.role == "best-degrad")
            .map(|r| r.point.degrad)
            .collect();
        let hits = cells.iter().filter(|c| rows_succeeded(&c.rows, criteria)).count();
        rows.push(vec![
            arch.name().to_string(),
            cells.len().to_string(),
            fmt(champs.iter().sum::<f64>() / champs.len().max(1) as f64, 3),
            format!("{:.0}%", 100.0 * hits as f64 / cells.len().max(1) as f64),
        ]);
    }
    print_table(&["arch", "cells", "mean best degrad", "success rate"], &rows);

    println!("wrote {}", store.champions_path().display());
    println!("wrote {}", store.manifest_path().display());
    if options.telemetry {
        println!("wrote {}", store.telemetry_path().display());
    }
    ExitCode::SUCCESS
}
