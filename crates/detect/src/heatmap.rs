//! Feature-heatmap introspection (the paper's grey-box extension).
//!
//! Section II: "due to our encoding into the multi-objective optimization
//! problem, we also can include feature-level distance as an additional
//! optimization objective, thereby extending the approach to be a grey-box
//! method". [`heatmap_distance`] is exactly that feature-level distance:
//! the L2 gap between a detector's heatmaps on the clean and perturbed
//! image.

use crate::detector::Detector;
use bea_image::Image;
use bea_tensor::FeatureMap;

/// L2 distance between two heatmaps of identical shape; heatmaps of
/// different shapes (or empty ones) yield `0.0`, meaning "no grey-box
/// information available".
pub fn feature_distance(a: &FeatureMap, b: &FeatureMap) -> f64 {
    if a.shape() != b.shape() || a.as_slice().is_empty() {
        return 0.0;
    }
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(&x, &y)| {
            let d = (x - y) as f64;
            d * d
        })
        .sum::<f64>()
        .sqrt()
}

/// Feature-level distance between a detector's responses on two images.
pub fn heatmap_distance<D: Detector + ?Sized>(detector: &D, a: &Image, b: &Image) -> f64 {
    feature_distance(&detector.heatmap(a), &detector.heatmap(b))
}

/// Collapses a per-class heatmap to a single salience plane
/// (max over classes per position) — the visualisation the paper overlays
/// on its qualitative figures.
pub fn salience_plane(map: &FeatureMap) -> FeatureMap {
    if map.channels() == 0 {
        return FeatureMap::default();
    }
    let mut out = FeatureMap::filled(1, map.height(), map.width(), f32::NEG_INFINITY);
    for c in 0..map.channels() {
        for y in 0..map.height() {
            for x in 0..map.width() {
                let v = map.at(c, y, x).max(out.at(0, y, x));
                out.set(0, y, x, v);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::yolo::{YoloConfig, YoloDetector};
    use bea_scene::SyntheticKitti;

    #[test]
    fn identical_maps_have_zero_distance() {
        let a = FeatureMap::filled(2, 3, 4, 1.5);
        assert_eq!(feature_distance(&a, &a.clone()), 0.0);
    }

    #[test]
    fn mismatched_shapes_yield_zero() {
        let a = FeatureMap::zeros(1, 2, 2);
        let b = FeatureMap::zeros(2, 2, 2);
        assert_eq!(feature_distance(&a, &b), 0.0);
        assert_eq!(feature_distance(&FeatureMap::default(), &FeatureMap::default()), 0.0);
    }

    #[test]
    fn distance_matches_manual_l2() {
        let a = FeatureMap::zeros(1, 1, 2);
        let mut b = FeatureMap::zeros(1, 1, 2);
        b.set(0, 0, 0, 3.0);
        b.set(0, 0, 1, 4.0);
        assert!((feature_distance(&a, &b) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn detector_heatmap_distance_reacts_to_perturbation() {
        let yolo = YoloDetector::new(YoloConfig::with_seed(1));
        let img = SyntheticKitti::smoke_set().image(0);
        let mut noisy = img.clone();
        for x in 0..noisy.width() {
            let p = noisy.pixel(x, 20);
            noisy.put_pixel(x, 20, [p[0] + 60.0, p[1], p[2]]);
        }
        assert_eq!(heatmap_distance(&yolo, &img, &img), 0.0);
        assert!(heatmap_distance(&yolo, &img, &noisy) > 0.0);
    }

    #[test]
    fn salience_takes_class_max() {
        let mut map = FeatureMap::zeros(2, 1, 2);
        map.set(0, 0, 0, 0.2);
        map.set(1, 0, 0, 0.7);
        map.set(0, 0, 1, -0.5);
        map.set(1, 0, 1, -0.9);
        let s = salience_plane(&map);
        assert_eq!(s.at(0, 0, 0), 0.7);
        assert_eq!(s.at(0, 0, 1), -0.5);
    }

    #[test]
    fn salience_of_empty_map_is_empty() {
        assert_eq!(salience_plane(&FeatureMap::default()).shape(), (0, 0, 0));
    }
}
