//! Dense C×H×W 3-D tensors (feature maps and images).

use crate::error::{Result, TensorError};
use crate::matrix::Matrix;
use crate::scratch::PoolVec;

/// A dense 3-D tensor in channel-major (C×H×W) layout.
///
/// `FeatureMap` is used both for RGB images entering a detector (`C = 3`)
/// and for the intermediate activation maps of convolutional layers.
///
/// # Examples
///
/// ```
/// use bea_tensor::FeatureMap;
///
/// let mut map = FeatureMap::zeros(2, 3, 4);
/// map.set(1, 2, 3, 7.5);
/// assert_eq!(map.at(1, 2, 3), 7.5);
/// assert_eq!(map.shape(), (2, 3, 4));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureMap {
    channels: usize,
    height: usize,
    width: usize,
    // Pooled storage (see crate::scratch): images and activation maps are
    // the biggest per-forward buffers, so they recycle through the
    // thread-local arena instead of hitting the allocator each pass.
    data: PoolVec<f32>,
}

impl FeatureMap {
    /// Creates a zero-filled feature map.
    pub fn zeros(channels: usize, height: usize, width: usize) -> Self {
        Self { channels, height, width, data: PoolVec::filled(channels * height * width, 0.0) }
    }

    /// Creates a feature map filled with `value`.
    pub fn filled(channels: usize, height: usize, width: usize, value: f32) -> Self {
        Self { channels, height, width, data: PoolVec::filled(channels * height * width, value) }
    }

    /// Builds a feature map from a flat channel-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if the buffer length does not
    /// equal `channels * height * width`.
    pub fn from_vec(channels: usize, height: usize, width: usize, data: Vec<f32>) -> Result<Self> {
        let volume = channels * height * width;
        if data.len() != volume {
            return Err(TensorError::LengthMismatch { expected: volume, actual: data.len() });
        }
        Ok(Self { channels, height, width, data: PoolVec::from_vec(data) })
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Spatial height (rows).
    pub fn height(&self) -> usize {
        self.height
    }

    /// Spatial width (columns).
    pub fn width(&self) -> usize {
        self.width
    }

    /// `(channels, height, width)` triple.
    pub fn shape(&self) -> (usize, usize, usize) {
        (self.channels, self.height, self.width)
    }

    /// Immutable view of the underlying buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the map and returns its buffer, releasing the storage
    /// from the scratch-pool cycle.
    pub fn into_vec(self) -> Vec<f32> {
        self.data.into_vec()
    }

    #[inline]
    fn offset(&self, c: usize, y: usize, x: usize) -> usize {
        (c * self.height + y) * self.width + x
    }

    /// Returns the element at `(channel, row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is out of bounds.
    #[inline]
    pub fn at(&self, c: usize, y: usize, x: usize) -> f32 {
        debug_assert!(c < self.channels && y < self.height && x < self.width);
        self.data[self.offset(c, y, x)]
    }

    /// Sets the element at `(channel, row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is out of bounds.
    #[inline]
    pub fn set(&mut self, c: usize, y: usize, x: usize, value: f32) {
        debug_assert!(c < self.channels && y < self.height && x < self.width);
        let idx = self.offset(c, y, x);
        self.data[idx] = value;
    }

    /// Checked element access.
    pub fn get(&self, c: usize, y: usize, x: usize) -> Option<f32> {
        if c < self.channels && y < self.height && x < self.width {
            Some(self.data[self.offset(c, y, x)])
        } else {
            None
        }
    }

    /// Immutable view of one channel plane as a contiguous slice.
    ///
    /// # Panics
    ///
    /// Panics if `c >= channels`.
    pub fn channel(&self, c: usize) -> &[f32] {
        assert!(c < self.channels, "channel {c} out of bounds for {}", self.channels);
        let plane = self.height * self.width;
        &self.data[c * plane..(c + 1) * plane]
    }

    /// Mutable view of one channel plane.
    ///
    /// # Panics
    ///
    /// Panics if `c >= channels`.
    pub fn channel_mut(&mut self, c: usize) -> &mut [f32] {
        assert!(c < self.channels, "channel {c} out of bounds for {}", self.channels);
        let plane = self.height * self.width;
        &mut self.data[c * plane..(c + 1) * plane]
    }

    /// Copies one channel into a [`Matrix`] of shape height × width.
    ///
    /// # Panics
    ///
    /// Panics if `c >= channels`.
    pub fn channel_matrix(&self, c: usize) -> Matrix {
        // Copy into a pooled matrix rather than via `to_vec`, which would
        // allocate a fresh buffer on every hot-path call.
        let mut out = Matrix::zeros(self.height, self.width);
        out.as_mut_slice().copy_from_slice(self.channel(c));
        out
    }

    /// Applies `f` to every element, returning a new map.
    pub fn map<F: Fn(f32) -> f32>(&self, f: F) -> FeatureMap {
        let mut data = PoolVec::with_pooled_capacity(self.data.len());
        data.extend(self.data.iter().map(|&v| f(v)));
        FeatureMap { channels: self.channels, height: self.height, width: self.width, data }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace<F: Fn(f32) -> f32>(&mut self, f: F) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Patches this map over `window` with `f(src)` applied elementwise —
    /// the incremental variant of [`Self::map`] for activation layers:
    /// elementwise ops are local, so the dirty region passes through
    /// unchanged and the recomputed cells equal a full `src.map(f)`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when `src` differs in shape.
    pub fn patch_map_from<F: Fn(f32) -> f32>(
        &mut self,
        src: &FeatureMap,
        window: &crate::dirty::DirtyRect,
        f: F,
    ) -> Result<()> {
        if self.shape() != src.shape() {
            return Err(TensorError::ShapeMismatch {
                op: "patch_map_from",
                lhs: vec![self.channels, self.height, self.width],
                rhs: vec![src.channels, src.height, src.width],
            });
        }
        let window = window.clamp(self.width, self.height);
        for c in 0..self.channels {
            for y in window.y0..window.y1 {
                for x in window.x0..window.x1 {
                    self.set(c, y, x, f(src.at(c, y, x)));
                }
            }
        }
        Ok(())
    }

    /// Element-wise sum.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn add(&self, other: &FeatureMap) -> Result<FeatureMap> {
        if self.shape() != other.shape() {
            return Err(TensorError::ShapeMismatch {
                op: "add",
                lhs: vec![self.channels, self.height, self.width],
                rhs: vec![other.channels, other.height, other.width],
            });
        }
        let mut out = self.clone();
        for (d, s) in out.data.iter_mut().zip(&other.data) {
            *d += s;
        }
        Ok(out)
    }

    /// Mean of all elements. Returns `0.0` for an empty map.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.data.iter().sum::<f32>() / self.data.len() as f32
    }

    /// Population standard deviation of all elements.
    pub fn std_dev(&self) -> f32 {
        if self.data.is_empty() {
            return 0.0;
        }
        let mean = self.mean();
        let var =
            self.data.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / self.data.len() as f32;
        var.sqrt()
    }

    /// Global maximum. Returns `f32::NEG_INFINITY` for an empty map.
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Position `(channel, row, col)` of the global maximum, or `None` for an
    /// empty map.
    pub fn argmax(&self) -> Option<(usize, usize, usize)> {
        let (mut best, mut best_idx) = (f32::NEG_INFINITY, None);
        for (i, &v) in self.data.iter().enumerate() {
            if v > best {
                best = v;
                best_idx = Some(i);
            }
        }
        best_idx.map(|i| {
            let plane = self.height * self.width;
            (i / plane, (i % plane) / self.width, i % self.width)
        })
    }

    /// Flattens spatial positions into rows: the result has
    /// `height * width` rows and `channels` columns (token layout used by
    /// the attention encoder).
    pub fn to_token_matrix(&self) -> Matrix {
        let tokens = self.height * self.width;
        let mut out = Matrix::zeros(tokens, self.channels);
        for y in 0..self.height {
            for x in 0..self.width {
                let t = y * self.width + x;
                for c in 0..self.channels {
                    out.set(t, c, self.at(c, y, x));
                }
            }
        }
        out
    }

    /// Inverse of [`FeatureMap::to_token_matrix`]: reshapes a token matrix of
    /// shape `(height * width) × channels` back into a feature map.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the matrix does not have
    /// `height * width` rows.
    pub fn from_token_matrix(tokens: &Matrix, height: usize, width: usize) -> Result<FeatureMap> {
        if tokens.rows() != height * width {
            return Err(TensorError::ShapeMismatch {
                op: "from_token_matrix",
                lhs: vec![tokens.rows(), tokens.cols()],
                rhs: vec![height, width],
            });
        }
        let channels = tokens.cols();
        let mut out = FeatureMap::zeros(channels, height, width);
        for y in 0..height {
            for x in 0..width {
                let t = y * width + x;
                for c in 0..channels {
                    out.set(c, y, x, tokens.at(t, c));
                }
            }
        }
        Ok(out)
    }
}

impl Default for FeatureMap {
    fn default() -> Self {
        FeatureMap::zeros(0, 0, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_roundtrip() {
        let mut m = FeatureMap::zeros(2, 3, 4);
        m.set(1, 2, 3, 42.0);
        m.set(0, 0, 0, -1.0);
        assert_eq!(m.at(1, 2, 3), 42.0);
        assert_eq!(m.at(0, 0, 0), -1.0);
        assert_eq!(m.at(1, 0, 0), 0.0);
    }

    #[test]
    fn channel_planes_are_disjoint() {
        let mut m = FeatureMap::zeros(2, 2, 2);
        m.channel_mut(0).fill(1.0);
        assert!(m.channel(1).iter().all(|&v| v == 0.0));
        assert!(m.channel(0).iter().all(|&v| v == 1.0));
    }

    #[test]
    fn from_vec_validates_volume() {
        assert!(FeatureMap::from_vec(1, 2, 2, vec![0.0; 3]).is_err());
        assert!(FeatureMap::from_vec(1, 2, 2, vec![0.0; 4]).is_ok());
    }

    #[test]
    fn mean_and_std() {
        let m = FeatureMap::from_vec(1, 1, 4, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert!((m.mean() - 2.5).abs() < 1e-6);
        assert!((m.std_dev() - (1.25f32).sqrt()).abs() < 1e-6);
    }

    #[test]
    fn argmax_finds_position() {
        let mut m = FeatureMap::zeros(3, 4, 5);
        m.set(2, 1, 3, 9.0);
        assert_eq!(m.argmax(), Some((2, 1, 3)));
        assert_eq!(m.max(), 9.0);
    }

    #[test]
    fn token_matrix_roundtrip() {
        let mut m = FeatureMap::zeros(3, 2, 2);
        for c in 0..3 {
            for y in 0..2 {
                for x in 0..2 {
                    m.set(c, y, x, (c * 100 + y * 10 + x) as f32);
                }
            }
        }
        let tokens = m.to_token_matrix();
        assert_eq!(tokens.shape(), (4, 3));
        let back = FeatureMap::from_token_matrix(&tokens, 2, 2).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn add_matching_shapes() {
        let a = FeatureMap::filled(1, 2, 2, 1.0);
        let b = FeatureMap::filled(1, 2, 2, 2.0);
        assert_eq!(a.add(&b).unwrap(), FeatureMap::filled(1, 2, 2, 3.0));
        let c = FeatureMap::zeros(2, 2, 2);
        assert!(a.add(&c).is_err());
    }

    #[test]
    fn empty_map_statistics() {
        let m = FeatureMap::default();
        assert_eq!(m.mean(), 0.0);
        assert_eq!(m.std_dev(), 0.0);
        assert_eq!(m.argmax(), None);
    }
}
