//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this workspace-local
//! shim implements the subset of the proptest API the test suites use:
//!
//! * the [`proptest!`] macro (with optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header),
//! * [`prop_assert!`] / [`prop_assert_eq!`],
//! * [`Strategy`] with `prop_map`, implemented for numeric ranges
//!   (`Range` and `RangeInclusive`) and tuples up to arity 8,
//! * [`collection::vec`] with an exact or ranged element count,
//! * [`strategy::Just`].
//!
//! Differences from upstream, by design: cases are generated from a
//! deterministic per-test seed (derived from the test name, overridable via
//! the `PROPTEST_SEED` environment variable), there is **no shrinking** —
//! a failing case reports its case index and seed instead — and
//! `.proptest-regressions` files are ignored.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod test_runner {
    //! Test configuration and the deterministic case generator.

    /// Mirror of proptest's run configuration (only `cases` is honoured).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    /// The deterministic SplitMix64 generator behind every strategy.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator seeded from an explicit value.
        pub fn from_seed(seed: u64) -> Self {
            Self { state: seed }
        }

        /// The per-test generator: seeded from the test name (FNV-1a), or
        /// from the `PROPTEST_SEED` environment variable when set.
        pub fn for_test(test_name: &str) -> Self {
            if let Ok(seed) = std::env::var("PROPTEST_SEED") {
                if let Ok(seed) = seed.trim().parse::<u64>() {
                    return Self::from_seed(seed);
                }
            }
            let mut hash = 0xcbf2_9ce4_8422_2325u64;
            for byte in test_name.bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self::from_seed(hash)
        }

        /// Next raw 64-bit output.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, n)`; `n` must be positive.
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0, "cannot draw below 0");
            ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
        }

        /// Uniform draw from `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] abstraction: a recipe for generating random values.

    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated value type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty integer range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty inclusive range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u128;
                    // `span` can be 2^64 for full-width ranges; draw in u128.
                    let draw = (u128::from(rng.next_u64()) * span) >> 64;
                    (lo as i128 + draw as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty float range strategy");
                    let v = (self.start as f64
                        + rng.unit_f64() * (self.end as f64 - self.start as f64)) as $t;
                    // Rounding can land exactly on `end`; fold it back in.
                    if (self.start..self.end).contains(&v) { v } else { self.start }
                }
            }
        )*};
    }

    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+};
    }

    tuple_strategy!(
        (A.0, B.1),
        (A.0, B.1, C.2),
        (A.0, B.1, C.2, D.3),
        (A.0, B.1, C.2, D.3, E.4),
        (A.0, B.1, C.2, D.3, E.4, F.5),
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6),
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7),
    );
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// An inclusive element-count range for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            Self { min: exact, max: exact }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(range: Range<usize>) -> Self {
            assert!(range.start < range.end, "empty vec size range");
            Self { min: range.start, max: range.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(range: RangeInclusive<usize>) -> Self {
            assert!(range.start() <= range.end(), "empty vec size range");
            Self { min: *range.start(), max: *range.end() }
        }
    }

    /// The strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64;
            let len = self.size.min + if span == 0 { 0 } else { rng.below(span + 1) as usize };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy for `Vec`s whose elements come from `element` and whose
    /// length is drawn from `size` (an exact count or a range).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

pub mod prelude {
    //! Everything a property-test module needs in scope.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Accepts an optional `#![proptest_config(...)]` header followed by any
/// number of `fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    ($config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:pat_param in $strategy:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            #[allow(unused_imports)]
            use $crate::strategy::Strategy as _;
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::for_test(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for case in 0..config.cases {
                $(let $arg = ($strategy).generate(&mut rng);)*
                let outcome: ::std::result::Result<(), ::std::string::String> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(message) = outcome {
                    panic!(
                        "property `{}` failed at case {case}/{}: {message}\n\
                         (deterministic seed; re-run the same test binary to reproduce, \
                         or set PROPTEST_SEED to explore)",
                        stringify!($name),
                        config.cases,
                    );
                }
            }
        }
    )*};
}

/// Fails the enclosing property case when the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}", stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Fails the enclosing property case when the operands differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} == {}`\n  left: {left:?}\n right: {right:?}",
                stringify!($left), stringify!($right)
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err(::std::format!(
                "{}\n  left: {left:?}\n right: {right:?}", ::std::format!($($fmt)+)
            ));
        }
    }};
}

/// Fails the enclosing property case when the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if left == right {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} != {}`\n  both: {left:?}",
                stringify!($left),
                stringify!($right)
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in -5i16..=5, f in 0.5f32..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..=5).contains(&y));
            prop_assert!((0.5..2.0).contains(&f), "float out of range: {f}");
        }

        #[test]
        fn tuples_and_maps_compose(pair in (0u64..10, 0u64..10).prop_map(|(a, b)| a + b)) {
            prop_assert!(pair <= 18);
        }

        #[test]
        fn vecs_honour_size_ranges(v in crate::collection::vec(0u8..=255, 2..6)) {
            prop_assert!((2..=5).contains(&v.len()), "len {}", v.len());
        }

        #[test]
        fn just_yields_the_value(v in Just(7usize)) {
            prop_assert_eq!(v, 7);
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let strat = crate::collection::vec(0u32..1000, 5usize);
        let a = strat.generate(&mut TestRng::from_seed(11));
        let b = strat.generate(&mut TestRng::from_seed(11));
        assert_eq!(a, b);
    }

    #[test]
    fn failing_property_reports_via_result() {
        let body = || -> Result<(), String> {
            prop_assert!(1 + 1 == 3, "math broke: {}", 2);
            Ok(())
        };
        assert_eq!(body().unwrap_err(), "math broke: 2");
    }
}
