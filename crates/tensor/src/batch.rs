//! Row-stacked batches: one forward pass over a whole population.
//!
//! The attack evaluates an NSGA-II population of perturbed images per
//! generation. The token pipeline of the DETR-like detector is row-wise
//! independent everywhere except attention (and per-image statistics), so
//! `B` images' `T × dim` token matrices can be stacked into one
//! `(B·T) × dim` matrix and pushed through the linear/FFN/readout GEMMs in
//! a single call — the pre-packed weight panels stream through the cache
//! once per *generation* instead of once per genome. [`MatrixBatch`] is
//! the bookkeeping for that layout: it pins the per-item row count so
//! batched layers can recover each item's row block exactly.
//!
//! **Exactness.** The GEMM kernels compute every output row independently
//! (each output element accumulates its own ascending-k sum), so row
//! `b·T + r` of a stacked product equals row `r` of the per-item product,
//! bit for bit, regardless of which other items share the batch. Stages
//! that mix rows (attention's softmax(q·kᵀ)·v, per-class medians) are
//! applied per item block by the batched layers, keeping the equality
//! end-to-end. Batched evaluation is therefore a pure speed knob, like
//! [`crate::KernelPolicy`] and [`crate::threads`].

use crate::error::{Result, TensorError};
use crate::matrix::Matrix;

/// `items` equally-shaped matrices stored row-stacked in one [`Matrix`].
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixBatch {
    items: usize,
    item_rows: usize,
    data: Matrix,
}

impl MatrixBatch {
    /// Stacks equally-shaped matrices row-wise into one batch.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::EmptyShape`] for an empty list and
    /// [`TensorError::ShapeMismatch`] when shapes disagree.
    pub fn stack(items: &[&Matrix]) -> Result<Self> {
        let first = items.first().ok_or(TensorError::EmptyShape { op: "batch stack" })?;
        for item in items {
            if item.shape() != first.shape() {
                return Err(TensorError::ShapeMismatch {
                    op: "batch stack",
                    lhs: vec![first.rows(), first.cols()],
                    rhs: vec![item.rows(), item.cols()],
                });
            }
        }
        Ok(Self { items: items.len(), item_rows: first.rows(), data: Matrix::vstack(items)? })
    }

    /// Wraps an already-stacked matrix whose row count is `items` equal
    /// blocks.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] unless `data.rows()` is
    /// exactly `items` equal blocks.
    pub fn from_stacked(items: usize, data: Matrix) -> Result<Self> {
        if items == 0 || !data.rows().is_multiple_of(items) {
            return Err(TensorError::ShapeMismatch {
                op: "batch from_stacked",
                lhs: vec![data.rows(), data.cols()],
                rhs: vec![items],
            });
        }
        Ok(Self { items, item_rows: data.rows() / items, data })
    }

    /// Number of items in the batch.
    pub fn items(&self) -> usize {
        self.items
    }

    /// Rows per item.
    pub fn item_rows(&self) -> usize {
        self.item_rows
    }

    /// Columns (shared by every item).
    pub fn cols(&self) -> usize {
        self.data.cols()
    }

    /// The row-stacked `(items · item_rows) × cols` matrix.
    pub fn stacked(&self) -> &Matrix {
        &self.data
    }

    /// Mutable access to the stacked matrix.
    pub fn stacked_mut(&mut self) -> &mut Matrix {
        &mut self.data
    }

    /// Copies item `i`'s row block out as a standalone matrix.
    ///
    /// # Panics
    ///
    /// Panics if `i >= items()`.
    pub fn item(&self, i: usize) -> Matrix {
        assert!(i < self.items, "batch item {i} out of bounds for {} items", self.items);
        self.data.row_block(i * self.item_rows, self.item_rows)
    }

    /// Replaces the stacked matrix with a transformed one of the same row
    /// count (e.g. the output of a row-independent layer).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the row count changed.
    pub fn with_stacked(&self, data: Matrix) -> Result<Self> {
        if data.rows() != self.items * self.item_rows {
            return Err(TensorError::ShapeMismatch {
                op: "batch with_stacked",
                lhs: vec![self.items * self.item_rows, self.data.cols()],
                rhs: vec![data.rows(), data.cols()],
            });
        }
        Ok(Self { items: self.items, item_rows: self.item_rows, data })
    }

    /// Splits the batch back into per-item matrices.
    pub fn split(&self) -> Vec<Matrix> {
        (0..self.items).map(|i| self.item(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy(rows: usize, cols: usize, phase: f32) -> Matrix {
        let data = (0..rows * cols).map(|i| ((i as f32) * 0.31 + phase).sin()).collect();
        Matrix::from_vec(rows, cols, data).unwrap()
    }

    #[test]
    fn stack_and_split_round_trip() {
        let items: Vec<Matrix> = (0..3).map(|i| noisy(4, 5, i as f32)).collect();
        let refs: Vec<&Matrix> = items.iter().collect();
        let batch = MatrixBatch::stack(&refs).unwrap();
        assert_eq!((batch.items(), batch.item_rows(), batch.cols()), (3, 4, 5));
        assert_eq!(batch.split(), items);
        for (i, item) in items.iter().enumerate() {
            assert_eq!(&batch.item(i), item);
        }
    }

    #[test]
    fn stack_rejects_mismatched_shapes_and_empty_input() {
        let a = noisy(2, 3, 0.0);
        let b = noisy(3, 3, 1.0);
        assert!(MatrixBatch::stack(&[&a, &b]).is_err());
        assert!(MatrixBatch::stack(&[]).is_err());
    }

    #[test]
    fn from_stacked_validates_divisibility() {
        assert!(MatrixBatch::from_stacked(2, noisy(5, 2, 0.0)).is_err());
        assert!(MatrixBatch::from_stacked(0, noisy(4, 2, 0.0)).is_err());
        let batch = MatrixBatch::from_stacked(2, noisy(6, 2, 0.0)).unwrap();
        assert_eq!(batch.item_rows(), 3);
    }

    #[test]
    fn stacked_gemm_rows_match_per_item_rows_bitwise() {
        // The load-bearing property: a row-independent layer applied to
        // the stack equals the per-item application, element for element.
        let items: Vec<Matrix> = (0..4).map(|i| noisy(6, 8, 0.3 * i as f32)).collect();
        let refs: Vec<&Matrix> = items.iter().collect();
        let weight = noisy(7, 8, 2.0);
        let batch = MatrixBatch::stack(&refs).unwrap();
        let stacked_out = batch.with_stacked(batch.stacked().matmul_nt(&weight).unwrap()).unwrap();
        for (i, item) in items.iter().enumerate() {
            assert_eq!(stacked_out.item(i), item.matmul_nt(&weight).unwrap(), "item {i}");
        }
    }

    #[test]
    fn with_stacked_rejects_row_count_changes() {
        let a = noisy(2, 3, 0.0);
        let batch = MatrixBatch::stack(&[&a, &a]).unwrap();
        assert!(batch.with_stacked(noisy(3, 3, 0.0)).is_err());
        assert!(batch.with_stacked(noisy(4, 6, 0.0)).is_ok());
    }
}
