//! Hand-rolled HTTP/1.1 request parsing and response writing.
//!
//! The build environment has no registry access, so the serving layer
//! speaks the small, strict subset of HTTP/1.1 its endpoints need:
//! explicit `Content-Length` bodies and hard limits on line length,
//! header count and body size so a hostile peer cannot make the server
//! buffer without bound. Anything outside the subset is a parse error
//! the server maps to `400`.
//!
//! Parsing is *incremental*: [`RequestParser`] is fed whatever bytes the
//! transport produced — a whole pipelined burst or one byte at a time —
//! and yields complete requests as they materialise. The blocking path
//! ([`Request::read_from`]) and the non-blocking reactor path both run
//! on this one state machine, so the caps behave identically no matter
//! how reads are sliced. [`ResponseParser`] is the mirror image for
//! clients reading responses off non-blocking sockets.

use std::io::{self, BufRead, Write};

/// Upper bound on the request line and on each header line, in bytes.
pub const MAX_LINE_BYTES: usize = 8 * 1024;
/// Upper bound on the number of request headers.
pub const MAX_HEADERS: usize = 64;

/// One parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// The method verb, uppercased by the client (`GET`, `POST`, ...).
    pub method: String,
    /// The request target path, query string included.
    pub path: String,
    /// `true` for `HTTP/1.1` requests, `false` for `HTTP/1.0` — the two
    /// versions default to opposite connection persistence.
    pub http11: bool,
    /// Header `(name, value)` pairs in arrival order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The request body (empty without a `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// Whether the client asked to keep the connection open after this
    /// request: HTTP/1.1 persists unless `Connection: close`, HTTP/1.0
    /// closes unless `Connection: keep-alive`.
    pub fn wants_keep_alive(&self) -> bool {
        let connection = self.header("connection").map(str::to_ascii_lowercase);
        if self.http11 {
            connection.as_deref() != Some("close")
        } else {
            connection.as_deref() == Some("keep-alive")
        }
    }
    /// The first value of a header (name matched case-insensitively).
    pub fn header(&self, name: &str) -> Option<&str> {
        let want = name.to_ascii_lowercase();
        self.headers.iter().find(|(n, _)| *n == want).map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 text.
    ///
    /// # Errors
    ///
    /// Reports non-UTF-8 bodies.
    pub fn body_text(&self) -> Result<&str, String> {
        std::str::from_utf8(&self.body).map_err(|e| format!("body is not UTF-8: {e}"))
    }

    /// Reads and parses one request from a buffered stream. `max_body`
    /// bounds the accepted `Content-Length`; bigger announcements fail
    /// without reading the body.
    ///
    /// This is the blocking frontend of [`RequestParser`]: bytes stream
    /// from the reader into the same incremental state machine the
    /// reactor path feeds, so caps and error messages are identical no
    /// matter which transport carried the request.
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::InvalidData`] on malformed requests and exceeded
    /// limits, plus any transport error.
    pub fn read_from<R: BufRead>(reader: &mut R, max_body: usize) -> io::Result<Request> {
        let mut parser = RequestParser::new(max_body);
        loop {
            if let Some(request) = parser.next_request()? {
                return Ok(request);
            }
            let chunk = reader.fill_buf()?;
            if chunk.is_empty() {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-request",
                ));
            }
            let taken = chunk.len();
            parser.feed(chunk);
            reader.consume(taken);
        }
    }
}

/// Head-parsing progress of a [`RequestParser`].
#[derive(Debug, Clone, PartialEq, Eq)]
enum ParseState {
    /// Waiting for (more of) the request or status line.
    StartLine,
    /// Start line parsed; collecting header lines.
    Headers,
    /// Head complete; the body is `need` bytes long.
    Body { need: usize },
    /// A grammar or caps violation was reported. Terminal: once a
    /// message is rejected the connection's framing is lost.
    Failed,
}

/// The incremental HTTP/1.1 message parser shared by the blocking and
/// reactor paths. See the [module docs](self).
///
/// Feed transport bytes with [`RequestParser::feed`] and drain complete
/// messages with [`RequestParser::next_request`]. Bytes beyond a
/// complete message are retained, so pipelined requests parse one at a
/// time in arrival order.
#[derive(Debug, Clone)]
pub struct RequestParser {
    buf: Vec<u8>,
    /// Bytes of `buf` already consumed by completed parsing steps.
    consumed: usize,
    state: ParseState,
    max_body: usize,
    /// The message under construction (start line parsed, rest pending).
    method: String,
    path: String,
    http11: bool,
    headers: Vec<(String, String)>,
}

impl RequestParser {
    /// A parser accepting bodies up to `max_body` bytes.
    pub fn new(max_body: usize) -> Self {
        Self {
            buf: Vec::new(),
            consumed: 0,
            state: ParseState::StartLine,
            max_body,
            method: String::new(),
            path: String::new(),
            http11: true,
            headers: Vec::new(),
        }
    }

    /// Appends transport bytes. Feeding never fails — violations are
    /// reported by the next [`RequestParser::next_request`] call, which
    /// is where handlers look for them.
    pub fn feed(&mut self, bytes: &[u8]) {
        // Compact lazily: once consumed bytes dominate the buffer, shift
        // the live tail down so long-lived pipelined connections do not
        // grow it without bound.
        if self.consumed > 0 && self.consumed >= self.buf.len() / 2 {
            self.buf.drain(..self.consumed);
            self.consumed = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed by a parsed message.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.consumed
    }

    /// Takes the next complete line out of the buffer; `Ok(None)` means
    /// more bytes are needed (and the partial line is within caps).
    fn take_line(&mut self) -> io::Result<Option<String>> {
        let pending = &self.buf[self.consumed..];
        let Some(nl) = pending.iter().position(|&b| b == b'\n') else {
            if pending.len() > MAX_LINE_BYTES {
                return Err(invalid(format!("line exceeds {MAX_LINE_BYTES} bytes")));
            }
            return Ok(None);
        };
        let mut line = &pending[..nl];
        if line.last() == Some(&b'\r') {
            line = &line[..line.len() - 1];
        }
        if line.len() > MAX_LINE_BYTES {
            return Err(invalid(format!("line exceeds {MAX_LINE_BYTES} bytes")));
        }
        let text = std::str::from_utf8(line)
            .map_err(|e| invalid(format!("non-UTF-8 line: {e}")))?
            .to_string();
        self.consumed += nl + 1;
        Ok(Some(text))
    }

    /// Advances the state machine as far as the buffered bytes allow and
    /// returns the next complete request, if one materialised.
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::InvalidData`] on malformed requests and exceeded
    /// limits. Errors are terminal: the peer's framing can no longer be
    /// trusted, so callers drop the connection.
    pub fn next_request(&mut self) -> io::Result<Option<Request>> {
        match self.advance() {
            Err(e) => {
                self.state = ParseState::Failed;
                Err(e)
            }
            ok => ok,
        }
    }

    fn advance(&mut self) -> io::Result<Option<Request>> {
        loop {
            match self.state {
                ParseState::Failed => {
                    return Err(invalid("parser already failed on this connection".to_string()));
                }
                ParseState::StartLine => {
                    let Some(line) = self.take_line()? else { return Ok(None) };
                    let mut parts = line.split(' ');
                    let (method, path, version) =
                        match (parts.next(), parts.next(), parts.next(), parts.next()) {
                            (Some(m), Some(p), Some(v), None)
                                if !m.is_empty() && p.starts_with('/') =>
                            {
                                (m, p, v)
                            }
                            _ => return Err(invalid(format!("malformed request line {line:?}"))),
                        };
                    if version != "HTTP/1.1" && version != "HTTP/1.0" {
                        return Err(invalid(format!("unsupported protocol {version:?}")));
                    }
                    self.http11 = version == "HTTP/1.1";
                    self.method = method.to_string();
                    self.path = path.to_string();
                    self.headers.clear();
                    self.state = ParseState::Headers;
                }
                ParseState::Headers => {
                    let Some(line) = self.take_line()? else { return Ok(None) };
                    if !line.is_empty() {
                        if self.headers.len() >= MAX_HEADERS {
                            return Err(invalid(format!("more than {MAX_HEADERS} headers")));
                        }
                        let (name, value) = line
                            .split_once(':')
                            .ok_or_else(|| invalid(format!("malformed header {line:?}")))?;
                        self.headers
                            .push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
                        continue;
                    }
                    let need = content_length(&self.headers, self.max_body)?;
                    self.state = ParseState::Body { need };
                }
                ParseState::Body { need } => {
                    if self.buffered() < need {
                        return Ok(None);
                    }
                    let body = self.buf[self.consumed..self.consumed + need].to_vec();
                    self.consumed += need;
                    self.state = ParseState::StartLine;
                    return Ok(Some(Request {
                        method: std::mem::take(&mut self.method),
                        path: std::mem::take(&mut self.path),
                        http11: self.http11,
                        headers: std::mem::take(&mut self.headers),
                        body,
                    }));
                }
            }
        }
    }
}

fn invalid(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Validates a parsed header block's `Content-Length` against the body
/// cap and returns the announced body size.
fn content_length(headers: &[(String, String)], max_body: usize) -> io::Result<usize> {
    let text = headers.iter().find(|(n, _)| n == "content-length").map(|(_, v)| v.as_str());
    let length = match text {
        None => 0,
        Some(text) => text
            .parse::<usize>()
            .map_err(|e| invalid(format!("bad Content-Length {text:?}: {e}")))?,
    };
    if length > max_body {
        return Err(invalid(format!("Content-Length {length} exceeds the {max_body}-byte limit")));
    }
    Ok(length)
}

/// One response parsed off the wire by [`ResponseParser`].
#[derive(Debug, Clone)]
pub struct ParsedResponse {
    /// The status code.
    pub status: u16,
    /// Header `(name, value)` pairs in arrival order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The response body.
    pub body: Vec<u8>,
}

impl ParsedResponse {
    /// The first value of a header (name matched case-insensitively).
    pub fn header(&self, name: &str) -> Option<&str> {
        let want = name.to_ascii_lowercase();
        self.headers.iter().find(|(n, _)| *n == want).map(|(_, v)| v.as_str())
    }
}

/// Incremental HTTP/1.1 *response* parser for clients reading off
/// non-blocking sockets (the open-loop load generator). Shares the caps
/// and buffering behaviour of [`RequestParser`]; only the start-line
/// grammar differs.
#[derive(Debug, Clone)]
pub struct ResponseParser {
    status: Option<u16>,
    inner: RequestParser,
}

impl ResponseParser {
    /// A parser accepting bodies up to `max_body` bytes.
    pub fn new(max_body: usize) -> Self {
        Self { status: None, inner: RequestParser::new(max_body) }
    }

    /// Appends transport bytes (never fails; see
    /// [`RequestParser::feed`]).
    pub fn feed(&mut self, bytes: &[u8]) {
        self.inner.feed(bytes);
    }

    /// Returns the next complete response, if one materialised.
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::InvalidData`] on malformed responses and
    /// exceeded limits; errors are terminal like the request parser's.
    pub fn next_response(&mut self) -> io::Result<Option<ParsedResponse>> {
        if self.inner.state == ParseState::Failed {
            return Err(invalid("parser already failed on this connection".to_string()));
        }
        if self.status.is_none() {
            let line = match self.inner.take_line() {
                Ok(Some(line)) => line,
                Ok(None) => return Ok(None),
                Err(e) => {
                    self.inner.state = ParseState::Failed;
                    return Err(e);
                }
            };
            let mut parts = line.splitn(3, ' ');
            let code = match (parts.next(), parts.next()) {
                (Some(v), Some(c)) if v.starts_with("HTTP/") => c,
                _ => {
                    self.inner.state = ParseState::Failed;
                    return Err(invalid(format!("malformed status line {line:?}")));
                }
            };
            let status = match code.parse::<u16>() {
                Ok(status) => status,
                Err(e) => {
                    self.inner.state = ParseState::Failed;
                    return Err(invalid(format!("bad status code {code:?}: {e}")));
                }
            };
            self.status = Some(status);
            // The remainder (headers + body) follows request grammar.
            self.inner.state = ParseState::Headers;
        }
        match self.inner.next_request()? {
            None => Ok(None),
            Some(message) => {
                let status = self.status.take().expect("status parsed before head completes");
                Ok(Some(ParsedResponse { status, headers: message.headers, body: message.body }))
            }
        }
    }
}

/// The reason phrase of the status codes this server emits.
pub fn status_reason(code: u16) -> &'static str {
    match code {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        429 => "Too Many Requests",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// One HTTP response under construction.
#[derive(Debug, Clone)]
pub struct Response {
    /// The status code.
    pub status: u16,
    headers: Vec<(String, String)>,
    body: Vec<u8>,
}

impl Response {
    /// An empty response with a status code.
    pub fn new(status: u16) -> Self {
        Self { status, headers: Vec::new(), body: Vec::new() }
    }

    /// A JSON response.
    pub fn json(status: u16, body: &str) -> Self {
        Self::new(status).with_body("application/json", body.as_bytes().to_vec())
    }

    /// Adds a header.
    pub fn with_header(mut self, name: &str, value: &str) -> Self {
        self.headers.push((name.to_string(), value.to_string()));
        self
    }

    /// Sets the body and its content type.
    pub fn with_body(mut self, content_type: &str, body: Vec<u8>) -> Self {
        self.headers.retain(|(n, _)| !n.eq_ignore_ascii_case("content-type"));
        self.headers.push(("Content-Type".to_string(), content_type.to_string()));
        self.body = body;
        self
    }

    /// The body bytes.
    pub fn body(&self) -> &[u8] {
        &self.body
    }

    /// Serialises the response (status line, headers, `Content-Length`,
    /// `Connection: close`, body) onto the wire.
    ///
    /// # Errors
    ///
    /// Propagates transport failures.
    pub fn write_to<W: Write>(&self, writer: &mut W) -> io::Result<()> {
        self.write_to_with(writer, false)
    }

    /// [`Response::write_to`] with an explicit connection decision:
    /// `keep_alive` advertises `Connection: keep-alive` so the peer may
    /// send another request on this socket, `false` advertises
    /// `Connection: close`. Framing is `Content-Length` either way.
    ///
    /// # Errors
    ///
    /// Propagates transport failures.
    pub fn write_to_with<W: Write>(&self, writer: &mut W, keep_alive: bool) -> io::Result<()> {
        write!(writer, "HTTP/1.1 {} {}\r\n", self.status, status_reason(self.status))?;
        for (name, value) in &self.headers {
            write!(writer, "{name}: {value}\r\n")?;
        }
        write!(
            writer,
            "Content-Length: {}\r\nConnection: {}\r\n\r\n",
            self.body.len(),
            if keep_alive { "keep-alive" } else { "close" }
        )?;
        writer.write_all(&self.body)?;
        writer.flush()
    }
}

/// The head of a chunked streaming response (progress streams). No
/// `Content-Length` — the body is `Transfer-Encoding: chunked` and the
/// connection always closes once the stream ends, so a streaming
/// response is terminal on its connection.
pub fn chunked_head(status: u16, content_type: &str) -> Vec<u8> {
    format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\n\
         Transfer-Encoding: chunked\r\nConnection: close\r\n\r\n",
        status_reason(status)
    )
    .into_bytes()
}

/// One chunk of a chunked body: hex length, CRLF, payload, CRLF. Empty
/// payloads are skipped entirely (a zero-length chunk would terminate
/// the stream).
pub fn encode_chunk(payload: &[u8]) -> Vec<u8> {
    if payload.is_empty() {
        return Vec::new();
    }
    let mut wire = format!("{:x}\r\n", payload.len()).into_bytes();
    wire.extend_from_slice(payload);
    wire.extend_from_slice(b"\r\n");
    wire
}

/// The terminating zero-length chunk of a chunked body.
pub fn final_chunk() -> &'static [u8] {
    b"0\r\n\r\n"
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &[u8]) -> io::Result<Request> {
        Request::read_from(&mut BufReader::new(raw), 1024)
    }

    #[test]
    fn requests_parse_with_headers_and_body() {
        let raw = b"POST /v1/attacks HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nbody";
        let request = parse(raw).unwrap();
        assert_eq!(request.method, "POST");
        assert_eq!(request.path, "/v1/attacks");
        assert_eq!(request.header("HOST"), Some("x"));
        assert_eq!(request.header("content-length"), Some("4"));
        assert_eq!(request.body_text().unwrap(), "body");
        // Bare-LF requests and bodiless GETs also parse.
        let request = parse(b"GET /healthz HTTP/1.0\n\n").unwrap();
        assert_eq!(request.method, "GET");
        assert!(request.body.is_empty());
    }

    #[test]
    fn malformed_requests_are_invalid_data() {
        for raw in [
            &b"GARBAGE\r\n\r\n"[..],
            b"GET noslash HTTP/1.1\r\n\r\n",
            b"GET / SPDY/3\r\n\r\n",
            b"GET / HTTP/1.1 extra\r\n\r\n",
            b"GET / HTTP/1.1\r\nno-colon-header\r\n\r\n",
            b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
        ] {
            let err = parse(raw).expect_err(&format!("{raw:?}"));
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{raw:?}");
        }
    }

    #[test]
    fn limits_bound_bodies_lines_and_headers() {
        let announced = b"POST / HTTP/1.1\r\nContent-Length: 2048\r\n\r\n";
        let err = parse(announced).expect_err("over max_body");
        assert!(err.to_string().contains("exceeds"), "{err}");

        let long_line = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_LINE_BYTES + 1));
        assert!(parse(long_line.as_bytes()).is_err());

        let mut many_headers = String::from("GET / HTTP/1.1\r\n");
        for k in 0..=MAX_HEADERS {
            many_headers.push_str(&format!("h{k}: v\r\n"));
        }
        many_headers.push_str("\r\n");
        assert!(parse(many_headers.as_bytes()).is_err());
    }

    #[test]
    fn responses_serialise_with_length_and_close() {
        let mut wire = Vec::new();
        Response::json(202, "{\"id\":\"job-1\"}")
            .with_header("Retry-After", "1")
            .write_to(&mut wire)
            .unwrap();
        let text = String::from_utf8(wire).unwrap();
        assert!(text.starts_with("HTTP/1.1 202 Accepted\r\n"), "{text}");
        assert!(text.contains("Content-Type: application/json\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.contains("Content-Length: 14\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"id\":\"job-1\"}"));
        assert_eq!(status_reason(429), "Too Many Requests");
        assert_eq!(status_reason(599), "Internal Server Error");
    }

    #[test]
    fn keep_alive_follows_version_defaults_and_connection_header() {
        let wants = |raw: &[u8]| parse(raw).unwrap().wants_keep_alive();
        assert!(wants(b"GET / HTTP/1.1\r\n\r\n"), "1.1 persists by default");
        assert!(!wants(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n"));
        assert!(!wants(b"GET / HTTP/1.1\r\nConnection: Close\r\n\r\n"), "case-insensitive");
        assert!(!wants(b"GET / HTTP/1.0\r\n\r\n"), "1.0 closes by default");
        assert!(wants(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n"));
        let request = parse(b"GET / HTTP/1.0\r\n\r\n").unwrap();
        assert!(!request.http11);
    }

    #[test]
    fn keep_alive_responses_advertise_persistence() {
        let mut wire = Vec::new();
        Response::json(200, "{}").write_to_with(&mut wire, true).unwrap();
        let text = String::from_utf8(wire).unwrap();
        assert!(text.contains("Connection: keep-alive\r\n"), "{text}");
        assert!(text.contains("Content-Length: 2\r\n"), "{text}");
    }

    #[test]
    fn chunked_helpers_frame_a_stream() {
        let head = String::from_utf8(chunked_head(200, "application/jsonl")).unwrap();
        assert!(head.starts_with("HTTP/1.1 200 OK\r\n"), "{head}");
        assert!(head.contains("Transfer-Encoding: chunked\r\n"), "{head}");
        assert!(head.contains("Connection: close\r\n"), "{head}");
        assert!(!head.contains("Content-Length"), "{head}");
        assert_eq!(encode_chunk(b"hello\n"), b"6\r\nhello\n\r\n");
        assert!(encode_chunk(b"").is_empty(), "empty payloads must not terminate the stream");
        assert_eq!(final_chunk(), b"0\r\n\r\n");
    }
}
