//! Determinism suite for the cross-architecture transfer matrix: worker
//! count, kernel thread count and resume must never change a persisted
//! byte, diagonal cells must reproduce the source campaign's champion
//! fitness exactly, and a store must refuse to resume against a
//! different source campaign.

use butterfly_effect_attack::attack::campaign::{
    Campaign, CampaignConfig, CampaignStore, CellSpec,
};
use butterfly_effect_attack::attack::transfer::{
    ensemble_member_seeds, load_champions, round6, SourceChampion, TargetPath, TargetSpec,
    TransferCellSpec, TransferConfig, TransferGrid, TransferStore,
};
use butterfly_effect_attack::{
    Architecture, AttackConfig, Detector, Ensemble, Image, ModelZoo, SyntheticKitti,
};
use std::path::PathBuf;

/// GA budget per source cell (kept tiny: every cell drives a real
/// detector, and this suite runs several campaigns).
const POP: usize = 8;
const GENS: usize = 2;

/// A fresh scratch directory under the system temp dir.
fn scratch(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("bea_transfer_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    root
}

/// Three source cells spanning both source families and two YOLO seeds.
fn sources() -> Vec<CellSpec> {
    vec![CellSpec::new("YOLO", 1, 0), CellSpec::new("YOLO", 2, 0), CellSpec::new("DETR", 1, 0)]
}

fn campaign_config(jobs: usize) -> CampaignConfig {
    CampaignConfig {
        attack: AttackConfig::scaled(POP, GENS),
        base_seed: 11,
        jobs,
        telemetry: false,
    }
}

fn arch_named(group: &str) -> Architecture {
    Architecture::EXTENDED
        .into_iter()
        .find(|a| a.name() == group)
        .expect("groups are architecture names")
}

/// Real zoo detectors plus the smoke dataset, shared by source and
/// target closures.
struct Fixture {
    zoo: ModelZoo,
    dataset: SyntheticKitti,
}

impl Fixture {
    fn new() -> Self {
        Self { zoo: ModelZoo::with_defaults(), dataset: SyntheticKitti::smoke_set() }
    }

    fn source_detector(&self, spec: &CellSpec) -> Box<dyn Detector> {
        self.zoo.model(arch_named(&spec.group), spec.model_seed)
    }

    fn target_detector(&self, target: &TargetSpec) -> Box<dyn Detector> {
        match target.path {
            TargetPath::Ensemble => {
                // Three members keep the suite fast; member count cannot
                // affect any determinism property under test.
                let members = ensemble_member_seeds(target.seed, 3, 25)
                    .into_iter()
                    .map(|s| self.zoo.model(arch_named(&target.group), s))
                    .collect();
                Box::new(Ensemble::new(members))
            }
            _ => self.zoo.model(arch_named(&target.group), target.seed),
        }
    }

    fn image(&self, spec: &CellSpec) -> Image {
        self.dataset.image(spec.image_index)
    }

    /// Runs the source campaign into `dir` and loads its champions.
    fn campaign_champions(&self, dir: &PathBuf) -> (CampaignStore, Vec<SourceChampion>) {
        let store = CampaignStore::open(dir).expect("campaign store opens");
        Campaign::new(campaign_config(2))
            .run_with_store(
                &sources(),
                |spec: &CellSpec| self.source_detector(spec),
                |spec: &CellSpec| self.image(spec),
                &store,
            )
            .expect("source campaign runs");
        let champions = load_champions(
            &store,
            &campaign_config(2),
            &sources(),
            |spec| self.source_detector(spec),
            |spec| self.image(spec),
        )
        .expect("champions load");
        (store, champions)
    }
}

fn transfer_specs() -> Vec<TransferCellSpec> {
    TransferCellSpec::grid(&sources(), &TargetSpec::paper_grid(&[1, 2]))
}

fn config(jobs: usize, fingerprint: Option<u64>) -> TransferConfig {
    TransferConfig { jobs, telemetry: true, source_fingerprint: fingerprint }
}

/// Runs the matrix into a fresh store and returns the persisted
/// (matrix.csv, telemetry.jsonl) bytes.
fn run_to_bytes(
    fixture: &Fixture,
    champions: &[SourceChampion],
    fingerprint: Option<u64>,
    jobs: usize,
    tag: &str,
) -> (Vec<u8>, Vec<u8>) {
    let store = TransferStore::open(scratch(tag)).expect("transfer store opens");
    TransferGrid::new(config(jobs, fingerprint))
        .run_with_store(
            &transfer_specs(),
            champions,
            |target: &TargetSpec| fixture.target_detector(target),
            |spec: &CellSpec| fixture.image(spec),
            &store,
        )
        .expect("transfer grid runs");
    (
        std::fs::read(store.matrix_path()).expect("matrix.csv exists"),
        std::fs::read(store.telemetry_path()).expect("telemetry.jsonl exists"),
    )
}

#[test]
fn jobs_and_threads_never_change_matrix_artifacts_and_diagonal_is_exact() {
    let fixture = Fixture::new();
    let (store, champions) = fixture.campaign_champions(&scratch("jt_campaign"));
    let fingerprint = store.manifest_fingerprint().expect("manifest reads");
    assert!(fingerprint.is_some(), "campaign manifests carry a fingerprint");

    let (matrix, telemetry) = run_to_bytes(&fixture, &champions, fingerprint, 1, "jt_j1");
    for (jobs, threads) in [(4, 1), (1, 4), (4, 4)] {
        butterfly_effect_attack::tensor::threads::set_threads(threads);
        let (m, t) =
            run_to_bytes(&fixture, &champions, fingerprint, jobs, &format!("jt_j{jobs}t{threads}"));
        assert_eq!(matrix, m, "matrix.csv differs at jobs {jobs} threads {threads}");
        assert_eq!(telemetry, t, "telemetry.jsonl differs at jobs {jobs} threads {threads}");
    }
    butterfly_effect_attack::tensor::threads::set_threads(1);

    // Diagonal cells are self-transfers: re-evaluating the champion on
    // exactly the detector it was optimised against must reproduce the
    // campaign-recorded fitness bit for bit (delta exactly 0).
    let grid = TransferGrid::new(config(1, fingerprint));
    let result = grid.run(
        &transfer_specs(),
        &champions,
        |target: &TargetSpec| fixture.target_detector(target),
        |spec: &CellSpec| fixture.image(spec),
    );
    let diagonals: Vec<_> = result.rows().into_iter().filter(|r| r.spec.is_diagonal()).collect();
    assert_eq!(diagonals.len(), sources().len(), "one diagonal per source");
    for row in diagonals {
        let champion = champions
            .iter()
            .find(|c| c.spec == row.spec.source)
            .expect("diagonal rows come from known sources");
        assert_eq!(row.metrics.source_fitness, round6(champion.fitness));
        assert_eq!(
            row.metrics.target_fitness, row.metrics.source_fitness,
            "diagonal re-evaluation must reproduce the stored champion fitness exactly"
        );
        assert_eq!(row.metrics.delta, 0.0, "diagonal delta is exactly zero");
    }
}

#[test]
fn resume_reproduces_identical_artifacts() {
    let fixture = Fixture::new();
    let (campaign_store, champions) = fixture.campaign_champions(&scratch("resume_campaign"));
    let fingerprint = campaign_store.manifest_fingerprint().expect("manifest reads");

    let store = TransferStore::open(scratch("resume_store")).expect("transfer store opens");
    let run = |jobs: usize| {
        TransferGrid::new(config(jobs, fingerprint)).run_with_store(
            &transfer_specs(),
            &champions,
            |target: &TargetSpec| fixture.target_detector(target),
            |spec: &CellSpec| fixture.image(spec),
            &store,
        )
    };
    run(2).expect("fresh run");
    let matrix = std::fs::read(store.matrix_path()).expect("matrix.csv");
    let telemetry = std::fs::read(store.telemetry_path()).expect("telemetry.jsonl");

    // Full resume recomputes nothing and rewrites identical bytes.
    let resumed = run(1).expect("full resume");
    assert_eq!(resumed.computed_cells(), 0, "every cell resumes from the store");
    assert_eq!(matrix, std::fs::read(store.matrix_path()).expect("matrix.csv"));
    assert_eq!(telemetry, std::fs::read(store.telemetry_path()).expect("telemetry.jsonl"));

    // Deleting one persisted cell forces exactly one recomputation,
    // which lands on the same bytes.
    let cells_dir = store.root().join("cells");
    let mut cell_files: Vec<_> =
        std::fs::read_dir(&cells_dir).expect("cells dir").flatten().map(|e| e.path()).collect();
    cell_files.sort();
    std::fs::remove_file(&cell_files[0]).expect("delete one cell");
    let repaired = run(4).expect("partial resume");
    assert_eq!(repaired.computed_cells(), 1, "only the deleted cell recomputes");
    assert_eq!(matrix, std::fs::read(store.matrix_path()).expect("matrix.csv"));
    assert_eq!(telemetry, std::fs::read(store.telemetry_path()).expect("telemetry.jsonl"));
}

#[test]
fn resume_refuses_a_mismatched_source_campaign() {
    let fixture = Fixture::new();
    let (campaign_store, champions) = fixture.campaign_champions(&scratch("refuse_campaign"));
    let fingerprint = campaign_store.manifest_fingerprint().expect("manifest reads");

    let store = TransferStore::open(scratch("refuse_store")).expect("transfer store opens");
    TransferGrid::new(config(1, fingerprint))
        .run_with_store(
            &transfer_specs(),
            &champions,
            |target: &TargetSpec| fixture.target_detector(target),
            |spec: &CellSpec| fixture.image(spec),
            &store,
        )
        .expect("fresh run");

    // A different source campaign fingerprint (as read from a manifest
    // whose campaign was re-run with other settings) must be refused
    // loudly instead of silently mixing matrices.
    let other = fingerprint.map(|f| f ^ 0xdead_beef);
    let err = TransferGrid::new(config(1, other))
        .run_with_store(
            &transfer_specs(),
            &champions,
            |target: &TargetSpec| fixture.target_detector(target),
            |spec: &CellSpec| fixture.image(spec),
            &store,
        )
        .expect_err("mismatched source campaign must refuse to resume");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    assert!(err.to_string().contains("fingerprint"), "refusal names the fingerprints: {err}");
}

#[test]
fn deleted_champion_masks_regenerate_identically() {
    let fixture = Fixture::new();
    let (store, champions) = fixture.campaign_champions(&scratch("masks_campaign"));

    // Wipe the persisted masks: load_champions falls back to inline
    // re-attacks, which determinism makes bit-identical.
    std::fs::remove_dir_all(store.root().join("masks")).expect("masks dir exists");
    let regenerated = load_champions(
        &store,
        &campaign_config(2),
        &sources(),
        |spec| fixture.source_detector(spec),
        |spec| fixture.image(spec),
    )
    .expect("champions regenerate");
    assert_eq!(champions.len(), regenerated.len());
    for (a, b) in champions.iter().zip(&regenerated) {
        assert_eq!(a.spec, b.spec);
        assert_eq!(a.seed, b.seed);
        assert_eq!(a.fitness, b.fitness);
        assert_eq!(a.mask, b.mask, "re-attacked mask must equal the persisted one");
    }
}
