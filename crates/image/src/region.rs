//! Spatial regions and perturbation-region constraints.
//!
//! The paper's evaluation "adds a restriction where the perturbations are
//! only applied to the right-hand side of the images ... by forcing filters
//! to have zeros in the left half" (Section V-A). [`RegionConstraint`]
//! implements that restriction (and its mirror and rectangular
//! generalisations) as a projection applied to a [`FilterMask`] after every
//! variation operator.

use crate::mask::FilterMask;

/// An axis-aligned pixel rectangle `[x0, x1) × [y0, y1)`.
///
/// # Examples
///
/// ```
/// use bea_image::Region;
///
/// let r = Region::new(2, 0, 6, 4);
/// assert!(r.contains(2, 0));
/// assert!(!r.contains(6, 0));
/// assert_eq!(r.area(), 16);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Region {
    /// Inclusive left edge.
    pub x0: usize,
    /// Inclusive top edge.
    pub y0: usize,
    /// Exclusive right edge.
    pub x1: usize,
    /// Exclusive bottom edge.
    pub y1: usize,
}

impl Region {
    /// Creates a region, normalising inverted bounds to an empty region.
    pub fn new(x0: usize, y0: usize, x1: usize, y1: usize) -> Self {
        Self { x0, y0, x1: x1.max(x0), y1: y1.max(y0) }
    }

    /// `true` when the pixel `(x, y)` lies inside the region.
    pub fn contains(&self, x: usize, y: usize) -> bool {
        x >= self.x0 && x < self.x1 && y >= self.y0 && y < self.y1
    }

    /// Pixel area of the region.
    pub fn area(&self) -> usize {
        (self.x1 - self.x0) * (self.y1 - self.y0)
    }

    /// `true` when the region contains no pixels.
    pub fn is_empty(&self) -> bool {
        self.area() == 0
    }

    /// The right half `[w/2, w) × [0, h)` of a `w × h` image.
    pub fn right_half(width: usize, height: usize) -> Self {
        Self::new(width / 2, 0, width, height)
    }

    /// The left half `[0, w/2) × [0, h)` of a `w × h` image.
    pub fn left_half(width: usize, height: usize) -> Self {
        Self::new(0, 0, width / 2, height)
    }
}

/// Where a perturbation is allowed to be non-zero.
///
/// Applied to a mask, the constraint zeroes every gene outside the allowed
/// area. [`RegionConstraint::RightHalf`] is the paper's evaluation setting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RegionConstraint {
    /// No restriction: the whole image may be perturbed.
    #[default]
    Full,
    /// Only the left half may be perturbed.
    LeftHalf,
    /// Only the right half may be perturbed (the paper's setting).
    RightHalf,
    /// Only the given rectangle may be perturbed.
    Rect(Region),
}

impl RegionConstraint {
    /// The allowed region for a `width × height` mask.
    pub fn allowed_region(&self, width: usize, height: usize) -> Region {
        match self {
            RegionConstraint::Full => Region::new(0, 0, width, height),
            RegionConstraint::LeftHalf => Region::left_half(width, height),
            RegionConstraint::RightHalf => Region::right_half(width, height),
            RegionConstraint::Rect(r) => {
                Region::new(r.x0.min(width), r.y0.min(height), r.x1.min(width), r.y1.min(height))
            }
        }
    }

    /// `true` when pixel `(x, y)` of a `width × height` mask may be
    /// perturbed.
    pub fn allows(&self, x: usize, y: usize, width: usize, height: usize) -> bool {
        self.allowed_region(width, height).contains(x, y)
    }

    /// Projects a mask onto the constraint by zeroing all genes outside the
    /// allowed region ("forcing filters to have zeros in the left half").
    pub fn apply(&self, mask: &mut FilterMask) {
        if matches!(self, RegionConstraint::Full) {
            return;
        }
        let (w, h) = (mask.width(), mask.height());
        let allowed = self.allowed_region(w, h);
        for c in 0..3 {
            for y in 0..h {
                for x in 0..w {
                    if !allowed.contains(x, y) {
                        mask.set(c, y, x, 0);
                    }
                }
            }
        }
    }

    /// `true` when `mask` already satisfies the constraint.
    pub fn is_satisfied(&self, mask: &FilterMask) -> bool {
        let allowed = self.allowed_region(mask.width(), mask.height());
        mask.iter_nonzero().all(|(_, y, x, _)| allowed.contains(x, y))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn halves_partition_even_width() {
        let left = Region::left_half(10, 4);
        let right = Region::right_half(10, 4);
        assert_eq!(left.area() + right.area(), 40);
        for x in 0..10 {
            assert_ne!(left.contains(x, 0), right.contains(x, 0));
        }
    }

    #[test]
    fn right_half_constraint_zeroes_left() {
        let mut mask = FilterMask::zeros(8, 2);
        mask.set(0, 0, 1, 50); // left half
        mask.set(0, 0, 6, 70); // right half
        RegionConstraint::RightHalf.apply(&mut mask);
        assert_eq!(mask.at(0, 0, 1), 0);
        assert_eq!(mask.at(0, 0, 6), 70);
        assert!(RegionConstraint::RightHalf.is_satisfied(&mask));
    }

    #[test]
    fn full_constraint_is_noop() {
        let mut mask = FilterMask::zeros(4, 4);
        mask.set(2, 3, 0, -20);
        let before = mask.clone();
        RegionConstraint::Full.apply(&mut mask);
        assert_eq!(mask, before);
    }

    #[test]
    fn rect_constraint_clips_to_mask_bounds() {
        let constraint = RegionConstraint::Rect(Region::new(1, 1, 100, 100));
        let region = constraint.allowed_region(4, 3);
        assert_eq!(region, Region::new(1, 1, 4, 3));
    }

    #[test]
    fn inverted_bounds_are_empty() {
        let r = Region::new(5, 5, 2, 2);
        assert!(r.is_empty());
        assert!(!r.contains(3, 3));
    }

    #[test]
    fn is_satisfied_detects_violations() {
        let mut mask = FilterMask::zeros(8, 2);
        mask.set(0, 0, 1, 5);
        assert!(!RegionConstraint::RightHalf.is_satisfied(&mask));
        assert!(RegionConstraint::LeftHalf.is_satisfied(&mask));
        assert!(RegionConstraint::Full.is_satisfied(&mask));
    }

    #[test]
    fn odd_width_halves() {
        // width 7: left gets [0,3), right gets [3,7).
        let left = Region::left_half(7, 1);
        let right = Region::right_half(7, 1);
        assert_eq!(left.x1, 3);
        assert_eq!(right.x0, 3);
        assert_eq!(left.area() + right.area(), 7);
    }
}
