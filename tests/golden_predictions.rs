//! Full-zoo golden suite: predictions are kernel-policy-invariant.
//!
//! The blocked GEMM/im2col kernels preserve each output element's
//! summation order, so they are an optimisation, not an approximation —
//! mirroring `cache_equivalence.rs`, every assertion here is strict
//! equality, not tolerance. For every zoo architecture and every scene of
//! the fixed evaluation set, the clean prediction under
//! [`KernelPolicy::Reference`] must equal the one under
//! [`KernelPolicy::Blocked`], both structurally and in serialized form.

use bea_detect::{Architecture, KernelPolicy, ModelZoo};
use bea_image::FilterMask;
use bea_scene::SyntheticKitti;

/// The acceptance gate: clean predictions for every zoo architecture on
/// the full evaluation set are identical under both kernel policies.
#[test]
fn full_zoo_clean_predictions_match_across_policies() {
    let data = SyntheticKitti::evaluation_set();
    let reference = ModelZoo::with_defaults().with_kernel_policy(KernelPolicy::Reference);
    let blocked = ModelZoo::with_defaults().with_kernel_policy(KernelPolicy::Blocked);
    for arch in Architecture::EXTENDED {
        let slow = reference.model(arch, 1);
        let fast = blocked.model(arch, 1);
        for index in 0..data.len() {
            let img = data.image(index);
            let expected = slow.detect(&img);
            let got = fast.detect(&img);
            assert_eq!(
                expected, got,
                "{arch} clean prediction diverges across kernel policies on image {index}"
            );
            // The golden snapshot check: the *rendered* predictions match
            // too, so any report built from them is byte-identical.
            assert_eq!(
                format!("{expected:?}"),
                format!("{got:?}"),
                "{arch} serialized prediction diverges on image {index}"
            );
        }
    }
}

/// DETR is the only architecture whose forward pass actually dispatches
/// on the policy, so its invariance is checked across several model
/// seeds, not just one.
#[test]
fn detr_family_is_policy_invariant_across_seeds() {
    let data = SyntheticKitti::evaluation_set();
    let reference = ModelZoo::with_defaults().with_kernel_policy(KernelPolicy::Reference);
    let blocked = ModelZoo::with_defaults().with_kernel_policy(KernelPolicy::Blocked);
    let img = data.image(0);
    for seed in 1..=4 {
        assert_eq!(
            reference.model(Architecture::Detr, seed).detect(&img),
            blocked.model(Architecture::Detr, seed).detect(&img),
            "DETR seed {seed} prediction depends on the kernel policy"
        );
    }
}

/// Masked (attacked) predictions are policy-invariant too — the path the
/// attack actually exercises.
#[test]
fn masked_predictions_match_across_policies() {
    let img = SyntheticKitti::evaluation_set().image(5);
    let mut mask = FilterMask::zeros(img.width(), img.height());
    for y in 6..14 {
        for x in (img.width() / 2 + 2)..(img.width() / 2 + 14) {
            mask.set(0, y, x, 90);
            mask.set(2, y, x, -60);
        }
    }
    let reference = ModelZoo::with_defaults().with_kernel_policy(KernelPolicy::Reference);
    let blocked = ModelZoo::with_defaults().with_kernel_policy(KernelPolicy::Blocked);
    for arch in Architecture::EXTENDED {
        assert_eq!(
            reference.model(arch, 2).detect_masked(&img, &mask),
            blocked.model(arch, 2).detect_masked(&img, &mask),
            "{arch} masked prediction depends on the kernel policy"
        );
    }
}
