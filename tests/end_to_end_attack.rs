//! End-to-end integration: the full pipeline from synthetic scene through
//! detector to NSGA-II attack, exercised across crate boundaries.

use butterfly_effect_attack::{
    Architecture, AttackConfig, ButterflyAttack, Detector, ModelZoo, RegionConstraint,
    SyntheticKitti,
};

/// A deliberately tiny budget: integration tests run unoptimised.
fn tiny_config() -> AttackConfig {
    AttackConfig::scaled(10, 4)
}

#[test]
fn attack_runs_end_to_end_on_detr() {
    let dataset = SyntheticKitti::smoke_set();
    let img = dataset.image(0);
    let zoo = ModelZoo::with_defaults();
    let detr = zoo.model(Architecture::Detr, 1);
    let clean = detr.detect(&img);
    assert!(!clean.is_empty(), "the smoke scene must be detectable");

    let outcome = ButterflyAttack::new(tiny_config()).attack(detr.as_ref(), &img);
    // Structural invariants of the outcome.
    assert!(!outcome.pareto_points().is_empty());
    assert_eq!(outcome.evaluations(), 10 * 5);
    let champion = outcome.best_degradation().expect("front never empty");
    assert!(champion.objectives()[1] <= 1.0);
    // Every surviving mask obeys the paper's right-half restriction.
    for member in outcome.result().population() {
        assert!(RegionConstraint::RightHalf.is_satisfied(member.genome()));
    }
    // The zero mask seeds the population, so the front always contains an
    // intensity-0 member scoring (0, 1, 0).
    let best_intensity = outcome.best_intensity().expect("front never empty");
    assert_eq!(best_intensity.objectives()[0], 0.0);
    // Self-IoU carries f32 rounding (x1() - x0() need not equal len bit
    // for bit), so "unchanged" means 1.0 up to that noise.
    assert!(best_intensity.objectives()[1] > 0.9999);
}

#[test]
fn attack_is_deterministic_across_runs() {
    let dataset = SyntheticKitti::smoke_set();
    let img = dataset.image(1);
    let zoo = ModelZoo::with_defaults();
    let yolo = zoo.model(Architecture::Yolo, 2);
    let a = ButterflyAttack::new(tiny_config()).attack(yolo.as_ref(), &img);
    let b = ButterflyAttack::new(tiny_config()).attack(yolo.as_ref(), &img);
    assert_eq!(a.pareto_points(), b.pareto_points());
    assert_eq!(a.history().len(), b.history().len());
}

#[test]
fn left_half_predictions_feel_only_global_coupling_under_yolo() {
    // With the YOLO context gain disabled, the attack cannot change
    // left-half detections at all — the structural robustness the paper
    // attributes to single-stage CNNs, here in its pure form.
    use butterfly_effect_attack::detect::yolo::{YoloConfig, YoloDetector};
    let dataset = SyntheticKitti::smoke_set();
    let img = dataset.image(0);
    let yolo = YoloDetector::new(YoloConfig { context_gain: 0.0, ..YoloConfig::with_seed(1) });
    let clean = yolo.detect(&img);
    let outcome = ButterflyAttack::new(tiny_config()).attack(&yolo, &img);
    let half = img.width() as f32 / 2.0;
    // Any front mask: left-half detections are bit-identical.
    for member in outcome.result().pareto_front() {
        let perturbed = yolo.detect(&member.genome().apply(&img));
        let left = |p: &butterfly_effect_attack::Prediction| {
            let mut v: Vec<_> = p.iter().filter(|d| d.bbox.x1() < half - 26.0).copied().collect();
            v.sort_by(|a, b| a.bbox.cx.partial_cmp(&b.bbox.cx).unwrap());
            v
        };
        assert_eq!(left(&clean), left(&perturbed));
    }
}
