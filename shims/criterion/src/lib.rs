//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so this workspace-local
//! shim provides the subset the bench harnesses use: [`Criterion`] with
//! `bench_function` / `sample_size`, [`Bencher::iter`], [`black_box`], and
//! the [`criterion_group!`] / [`criterion_main!`] macros (both the plain
//! and the `name = …; config = …; targets = …` forms).
//!
//! Measurement is deliberately simple: per sample the routine runs in a
//! timed batch, and the harness reports the minimum, median, and maximum
//! per-iteration wall time over the samples. No statistical regression
//! machinery, no HTML reports — enough to compare cached vs uncached hot
//! paths within one run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export so `use std::hint::black_box` and `criterion::black_box`
/// behave identically.
pub use std::hint::black_box;

/// Target wall time per benchmark sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(60);

/// The bench harness entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark and prints a one-line summary.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        // Calibration pass: how many iterations fit in the sample budget?
        let mut bencher = Bencher { iters: 1, elapsed: Duration::ZERO };
        f(&mut bencher);
        let per_iter = bencher.elapsed.max(Duration::from_nanos(1));
        let batch =
            (SAMPLE_TARGET.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64;

        let mut per_iter_nanos: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut bencher = Bencher { iters: batch, elapsed: Duration::ZERO };
            f(&mut bencher);
            per_iter_nanos.push(bencher.elapsed.as_nanos() as f64 / batch as f64);
        }
        per_iter_nanos.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let median = per_iter_nanos[per_iter_nanos.len() / 2];
        println!(
            "{id:<40} time: [{} {} {}]  ({} iters/sample, {} samples)",
            format_nanos(per_iter_nanos[0]),
            format_nanos(median),
            format_nanos(*per_iter_nanos.last().expect("non-empty samples")),
            batch,
            self.sample_size,
        );
        self
    }
}

/// Times the routine passed to [`Bencher::iter`].
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs the routine for the harness-chosen number of iterations.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn format_nanos(nanos: f64) -> String {
    if nanos >= 1e9 {
        format!("{:.3} s", nanos / 1e9)
    } else if nanos >= 1e6 {
        format!("{:.3} ms", nanos / 1e6)
    } else if nanos >= 1e3 {
        format!("{:.3} µs", nanos / 1e3)
    } else {
        format!("{nanos:.1} ns")
    }
}

/// Groups bench functions into one callable, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut calls = 0u64;
        Criterion::default().sample_size(2).bench_function("smoke/add", |b| {
            b.iter(|| {
                calls += 1;
                black_box(1 + 1)
            })
        });
        assert!(calls > 0);
    }

    criterion_group!(plain_group, noop_bench);
    criterion_group! {
        name = named_group;
        config = Criterion::default().sample_size(2);
        targets = noop_bench
    }

    fn noop_bench(c: &mut Criterion) {
        c.bench_function("smoke/noop", |b| b.iter(|| black_box(0)));
    }

    #[test]
    fn group_macros_compile_and_run() {
        plain_group();
        named_group();
    }

    #[test]
    fn nanos_format_picks_unit() {
        assert_eq!(format_nanos(12.0), "12.0 ns");
        assert_eq!(format_nanos(1500.0), "1.500 µs");
        assert_eq!(format_nanos(2.5e6), "2.500 ms");
        assert_eq!(format_nanos(3.2e9), "3.200 s");
    }
}
