//! The transformer (DETR-like) detector.
//!
//! Pipeline: the shared NCC backbone is pooled into patch tokens, embedded
//! together with sinusoidal positional encodings, passed through a
//! multi-head self-attention encoder (the *global mixing* stage: every
//! token's representation is updated from **all** tokens), then decoded by
//! anchored object queries that cross-attend to the encoded memory.
//!
//! Because classification *and* box geometry are read from the
//! post-encoder token scores, a perturbation anywhere in the image
//! influences every detection — the paper's conjectured reason why DETR is
//! more susceptible to butterfly effect attacks ("attention mechanisms
//! connecting two arbitrary regions in an image").

use crate::cache::{IncrementalDetect, IncrementalPrediction};
use crate::detector::Detector;
use crate::grad::{field_gradient_to_image, field_to_leaf, GradientObjective, InputGradient};
use crate::nms;
use crate::peaks::{measure_span, Peak};
use crate::response::ResponseField;
use crate::templates::{TemplateBank, BACKBONE_SCALE};
use crate::transformer::{grid_positional_encoding, positional_encoding_into, EncoderBlock};
use crate::types::{Detection, Prediction};
use bea_image::Image;
use bea_scene::{BBox, ObjectClass};
use bea_tensor::activation::softmax_inplace;
use bea_tensor::{
    insertion_sort_by, DirtyRect, FeatureMap, KernelPolicy, Linear, Matrix, ScratchGuard, Tape,
    WeightInit,
};

/// Configuration of a [`DetrDetector`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetrConfig {
    /// Model seed; the paper trains seeds 1..25.
    pub seed: u64,
    /// Token embedding width.
    pub model_dim: usize,
    /// Attention heads per encoder layer.
    pub heads: usize,
    /// Number of encoder layers.
    pub encoder_layers: usize,
    /// Patch size in backbone cells (one token covers
    /// `patch × BACKBONE_SCALE` full-resolution pixels).
    pub patch: usize,
    /// Residual mixing strength of the encoder blocks.
    pub mix: f32,
    /// Gain applied to content features before embedding (keeps content
    /// above the positional signal).
    pub content_gain: f32,
    /// Weight of positional alignment in query cross-attention logits.
    pub pos_beta: f32,
    /// Weight of content salience in query cross-attention logits.
    pub cont_beta: f32,
    /// Anchor stride of the object-query grid, in tokens.
    pub query_stride: usize,
    /// Relative template weight jitter between seeds.
    pub template_jitter: f32,
    /// Base detection threshold on decoded class scores.
    pub threshold: f32,
    /// Per-seed threshold jitter half-range.
    pub threshold_jitter: f32,
    /// IoU threshold for the class-agnostic query NMS.
    pub nms_iou: f32,
    /// Matmul kernel dispatch for the embedding, encoder and read-out
    /// (`Blocked` by default; outputs are `==`-identical across policies,
    /// so this is a pure speed knob).
    pub kernel_policy: KernelPolicy,
}

impl Default for DetrConfig {
    fn default() -> Self {
        Self {
            seed: 1,
            model_dim: 24,
            heads: 4,
            encoder_layers: 2,
            patch: 4,
            mix: 0.5,
            content_gain: 2.0,
            pos_beta: 2.0,
            cont_beta: 1.5,
            query_stride: 2,
            template_jitter: 0.04,
            threshold: 0.5,
            threshold_jitter: 0.03,
            nms_iou: 0.45,
            kernel_policy: KernelPolicy::default(),
        }
    }
}

impl DetrConfig {
    /// The default configuration with a different seed.
    pub fn with_seed(seed: u64) -> Self {
        Self { seed, ..Self::default() }
    }
}

/// A DETR-like detection transformer.
///
/// # Examples
///
/// ```
/// use bea_detect::{Detector, DetrConfig, DetrDetector};
/// use bea_scene::SyntheticKitti;
///
/// let detr = DetrDetector::new(DetrConfig::with_seed(1)).unwrap();
/// let pred = detr.detect(&SyntheticKitti::evaluation_set().image(0));
/// assert!(!pred.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct DetrDetector {
    name: String,
    config: DetrConfig,
    bank: TemplateBank,
    embed: Linear,
    /// Squared norms of the embedding columns, used by the analytic read-out
    /// head `S = X · W_e / ‖w_c‖²`.
    head_norms: Vec<f32>,
    encoder: Vec<EncoderBlock>,
    threshold: f32,
}

impl DetrDetector {
    /// Builds a detector from a configuration (deterministic per seed).
    ///
    /// # Errors
    ///
    /// Returns a tensor configuration error if `model_dim` is not divisible
    /// by `heads`.
    pub fn new(config: DetrConfig) -> bea_tensor::Result<Self> {
        let mut rng = WeightInit::from_seed(config.seed.wrapping_mul(0xD1B5_4A32_D192_ED03));
        let bank = TemplateBank::new(config.template_jitter, &mut rng);
        let mut embed = Linear::seeded(config.model_dim, ObjectClass::COUNT, &mut rng);
        embed.set_kernel_policy(config.kernel_policy);
        let head_norms = (0..ObjectClass::COUNT)
            .map(|c| {
                let w = embed.weight();
                (0..config.model_dim).map(|d| w.at(d, c) * w.at(d, c)).sum::<f32>().max(1e-6)
            })
            .collect();
        let mut encoder = (0..config.encoder_layers)
            .map(|_| EncoderBlock::seeded(config.model_dim, config.heads, config.mix, &mut rng))
            .collect::<bea_tensor::Result<Vec<_>>>()?;
        for block in &mut encoder {
            block.set_kernel_policy(config.kernel_policy);
        }
        let threshold = config.threshold
            + rng.uniform(-config.threshold_jitter.max(1e-6), config.threshold_jitter.max(1e-6));
        Ok(Self {
            name: format!("detr-s{}", config.seed),
            config,
            bank,
            embed,
            head_norms,
            encoder,
            threshold,
        })
    }

    /// The configuration this detector was built from.
    pub fn config(&self) -> &DetrConfig {
        &self.config
    }

    /// The effective (jittered) detection threshold.
    pub fn threshold(&self) -> f32 {
        self.threshold
    }

    /// Replaces the detection threshold (used by calibration).
    pub fn set_threshold(&mut self, threshold: f32) {
        self.threshold = threshold;
    }

    /// Calibrates the detection threshold on a validation set: forward
    /// passes are computed once per scene, then a threshold sweep picks the
    /// best F1 at IoU 0.5 — the stand-in for the validation-based tuning a
    /// trained model would receive. Returns the chosen threshold.
    pub fn calibrate<I: IntoIterator<Item = bea_scene::Scene>>(&mut self, scenes: I) -> f32 {
        let cached: Vec<_> = scenes
            .into_iter()
            .map(|scene| {
                let img = scene.render();
                let field = ResponseField::compute(&img, &self.bank);
                let (gw, gh) = self.grid_dims(&field);
                let scores = self.token_scores_from(&field);
                (scene, field, scores, gw, gh)
            })
            .collect();
        let mut best = (self.threshold, f64::MIN);
        let mut t = 0.40f32;
        while t <= 0.80 {
            let mut total = crate::metrics::DetectionScore::default();
            for (scene, field, scores, gw, gh) in &cached {
                let pred = self.decode_at(field, scores, *gw, *gh, t);
                total.merge(&crate::metrics::match_prediction(&pred, &scene.ground_truths(), 0.5));
            }
            let f1 = total.f1();
            if f1 > best.1 {
                best = (t, f1);
            }
            t += 0.02;
        }
        self.threshold = best.0;
        best.0
    }

    /// Token grid size `(gw, gh)` for an image.
    fn grid_size(&self, img: &Image) -> (usize, usize) {
        let bw = img.width() / BACKBONE_SCALE;
        let bh = img.height() / BACKBONE_SCALE;
        ((bw / self.config.patch).max(1), (bh / self.config.patch).max(1))
    }

    /// Token grid size from a backbone field (the field is already at
    /// `1/BACKBONE_SCALE` resolution, so this agrees with
    /// [`DetrDetector::grid_size`] on the source image).
    fn grid_dims(&self, field: &ResponseField) -> (usize, usize) {
        ((field.width() / self.config.patch).max(1), (field.height() / self.config.patch).max(1))
    }

    /// Runs backbone → tokens → encoder → analytic head, returning the
    /// median-suppressed per-token class scores (`N × C`).
    fn token_scores(&self, img: &Image) -> Matrix {
        self.token_scores_from(&ResponseField::compute(img, &self.bank))
    }

    /// Fills rows `[base, base + gw·gh)` of `content` with the per-class
    /// max response inside each patch (shared by the single and batched
    /// token pipelines so their pooled values are bitwise identical).
    fn fill_patch_content(
        &self,
        field: &ResponseField,
        gw: usize,
        gh: usize,
        base: usize,
        content: &mut Matrix,
    ) {
        let patch = self.config.patch;
        for class in ObjectClass::ALL {
            let plane = field.class_plane(class);
            let (bw, bh) = (field.width(), field.height());
            for gy in 0..gh {
                for gx in 0..gw {
                    let mut best = f32::NEG_INFINITY;
                    for py in 0..patch {
                        for px in 0..patch {
                            let y = gy * patch + py;
                            let x = gx * patch + px;
                            if y < bh && x < bw {
                                best = best.max(plane[y * bw + x]);
                            }
                        }
                    }
                    content.set(base + gy * gw + gx, class.index(), best.max(-1.0));
                }
            }
        }
    }

    /// Divides the read-out scores by the calibrated per-class norms and
    /// subtracts each class's median over rows `[base, base + tokens)` —
    /// the per-image statistics of the analytic head, applied to one row
    /// block of a (possibly stacked) score matrix.
    fn calibrate_scores(&self, scores: &mut Matrix, base: usize, tokens: usize) {
        let classes = ObjectClass::COUNT;
        for c in 0..classes {
            let norm = self.config.content_gain * self.head_norms[c];
            for t in 0..tokens {
                let v = scores.at(base + t, c) / norm;
                scores.set(base + t, c, v);
            }
        }
        // Background suppression: subtract the per-class median (the
        // untrained stand-in for DETR's learned no-object bias).
        for c in 0..classes {
            // Pooled column buffer + allocation-free stable sort (std's
            // sort_by allocates a merge buffer above ~20 elements).
            let mut column: ScratchGuard<f32> = ScratchGuard::with_pooled_capacity(tokens);
            column.extend((0..tokens).map(|t| scores.at(base + t, c)));
            insertion_sort_by(&mut column, |a, b| {
                a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal)
            });
            let median = column[column.len() / 2];
            for t in 0..tokens {
                let v = scores.at(base + t, c) - median;
                scores.set(base + t, c, v);
            }
        }
    }

    /// [`DetrDetector::token_scores`] with a precomputed response field.
    fn token_scores_from(&self, field: &ResponseField) -> Matrix {
        let (gw, gh) = self.grid_dims(field);
        let classes = ObjectClass::COUNT;
        // Patch content: per-class max response inside each patch.
        let mut content = Matrix::zeros(gw * gh, classes);
        self.fill_patch_content(field, gw, gh, 0, &mut content);
        // Embed and run the encoder; the positional encoding steers the
        // attention (queries/keys) without entering the residual stream.
        let mut tokens = self
            .embed
            .forward(&content)
            .expect("content width equals embed input width")
            .scale(self.config.content_gain);
        let pos = grid_positional_encoding(gw, gh, self.config.model_dim);
        for block in &self.encoder {
            tokens = block.forward(&tokens, Some(&pos)).expect("encoder preserves token shape");
        }
        // Analytic read-out head.
        let mut scores = tokens
            .matmul_policy(self.embed.weight(), self.config.kernel_policy)
            .expect("token width equals embed output width");
        self.calibrate_scores(&mut scores, 0, gw * gh);
        scores
    }

    /// [`DetrDetector::token_scores_from`] over a whole population of
    /// response fields: the token matrices are row-stacked and pushed
    /// through the embedding, every encoder block and the read-out in one
    /// batched pass each, so the weights stream through the cache once per
    /// *batch* instead of once per field. Attention and the per-image
    /// median statistics are applied per row block, keeping every returned
    /// matrix bit-identical to the per-field pipeline.
    ///
    /// Fields whose token grids disagree (mixed image sizes) fall back to
    /// the per-field path.
    fn token_scores_batch(&self, fields: &[&ResponseField]) -> Vec<Matrix> {
        let Some(first) = fields.first() else {
            return Vec::new();
        };
        let (gw, gh) = self.grid_dims(first);
        if fields.len() == 1 || fields.iter().any(|f| self.grid_dims(f) != (gw, gh)) {
            return fields.iter().map(|f| self.token_scores_from(f)).collect();
        }
        let token_count = gw * gh;
        let items = fields.len();
        let mut content = Matrix::zeros(items * token_count, ObjectClass::COUNT);
        for (item, field) in fields.iter().enumerate() {
            self.fill_patch_content(field, gw, gh, item * token_count, &mut content);
        }
        let mut tokens = self
            .embed
            .forward(&content)
            .expect("content width equals embed input width")
            .scale(self.config.content_gain);
        let pos = grid_positional_encoding(gw, gh, self.config.model_dim);
        let pos_refs: Vec<&Matrix> = (0..items).map(|_| &pos).collect();
        let pos_tiled = Matrix::vstack(&pos_refs).expect("tiling repeats one shape");
        for block in &self.encoder {
            tokens = block
                .forward_batched(&tokens, Some(&pos_tiled), token_count)
                .expect("encoder preserves token shape");
        }
        let mut scores = tokens
            .matmul_policy(self.embed.weight(), self.config.kernel_policy)
            .expect("token width equals embed output width");
        for item in 0..items {
            self.calibrate_scores(&mut scores, item * token_count, token_count);
        }
        (0..items).map(|item| scores.row_block(item * token_count, token_count)).collect()
    }

    /// Decodes detections from token scores with anchored object queries.
    fn decode(&self, field: &ResponseField, scores: &Matrix, gw: usize, gh: usize) -> Prediction {
        self.decode_at(field, scores, gw, gh, self.threshold)
    }

    /// [`DetrDetector::decode`] with an explicit threshold (used by
    /// calibration sweeps over cached forward passes).
    fn decode_at(
        &self,
        field: &ResponseField,
        scores: &Matrix,
        gw: usize,
        gh: usize,
        threshold: f32,
    ) -> Prediction {
        let classes = ObjectClass::COUNT;
        // Salience per token drives the content term of the attention
        // (pooled: rebuilt once per decode on the attack hot path).
        let mut salience: ScratchGuard<f32> = ScratchGuard::with_pooled_capacity(scores.rows());
        salience.extend(
            (0..scores.rows())
                .map(|t| (0..classes).map(|c| scores.at(t, c)).fold(f32::NEG_INFINITY, f32::max)),
        );
        let dim = self.config.model_dim;
        let pos = grid_positional_encoding(gw, gh, dim);
        let mut raw = Prediction::new();
        let stride = self.config.query_stride.max(1);
        let mut ay = stride / 2;
        while ay < gh {
            let mut ax = stride / 2;
            while ax < gw {
                if let Some(det) =
                    self.decode_query(field, scores, &salience, &pos, gw, gh, ax, ay, threshold)
                {
                    raw.push(det);
                }
                ax += stride;
            }
            ay += stride;
        }
        nms::suppress_class_agnostic(raw, self.config.nms_iou)
    }

    #[allow(clippy::too_many_arguments)]
    fn decode_query(
        &self,
        field: &ResponseField,
        scores: &Matrix,
        salience: &[f32],
        pos: &Matrix,
        gw: usize,
        gh: usize,
        ax: usize,
        ay: usize,
        threshold: f32,
    ) -> Option<Detection> {
        let dim = self.config.model_dim;
        let mut anchor: ScratchGuard<f32> = ScratchGuard::with_pooled_capacity(dim);
        anchor.resize(dim, 0.0);
        positional_encoding_into(ax as f32, ay as f32, &mut anchor);
        // Cross-attention logits: positional alignment + content salience.
        let mut logits: ScratchGuard<f32> = ScratchGuard::with_pooled_capacity(scores.rows());
        logits.extend((0..scores.rows()).map(|t| {
            let align: f32 = anchor.iter().zip(pos.row(t)).map(|(a, p)| a * p).sum();
            self.config.pos_beta * align + self.config.cont_beta * salience[t].max(0.0) * 4.0
        }));
        softmax_inplace(&mut logits);
        // Attended position = expectation of token coordinates.
        let (mut px, mut py) = (0.0f32, 0.0f32);
        for (t, &weight) in logits.iter().enumerate() {
            px += weight * (t % gw) as f32;
            py += weight * (t / gw) as f32;
        }
        let tx = (px.round() as usize).min(gw - 1);
        let ty = (py.round() as usize).min(gh - 1);
        let t_star = ty * gw + tx;
        // Classify the attended token.
        let (mut best_class, mut best_score) = (ObjectClass::Car, f32::NEG_INFINITY);
        for class in ObjectClass::ALL {
            let s = scores.at(t_star, class.index());
            if s > best_score {
                best_score = s;
                best_class = class;
            }
        }
        if best_score < threshold {
            return None;
        }
        // Geometry: the backbone response plane gated by the post-encoder
        // token scores (DETR's box head reads the encoded memory, so box
        // extents must depend on post-attention values). Cells whose
        // bilinearly interpolated token score falls below a fraction of the
        // attended token's score are gated off; the half-peak span is then
        // measured on the gated plane.
        let template = self.bank.template(best_class);
        let patch = self.config.patch as f32;
        let plane = field.class_plane(best_class);
        let (bw, bh) = (field.width(), field.height());
        // Smooth gate: cells whose interpolated token score falls below
        // ~35 % of the reference score are attenuated (fully off below
        // ~25 %). The reference is the attended score, floored at
        // 1.25x the detection threshold: confident clean detections are
        // unaffected, but as an attack pushes the attended score towards
        // the threshold the gate bites relatively harder into the box's
        // edge cells, shrinking the measured span *before* the detection
        // disappears — the paper's Figure 4 box-shrink mode.
        let reference = best_score.max(1.25 * threshold);
        let gate_lo = 0.30 * reference;
        let gate_hi = 0.50 * reference;
        let gate = |b: f32| ((b - gate_lo) / (gate_hi - gate_lo).max(1e-6)).clamp(0.0, 1.0);
        let token_score = |gx: f32, gy: f32| -> f32 {
            // Bilinear interpolation between token centres.
            let fx = (gx / patch - 0.5).clamp(0.0, gw as f32 - 1.0);
            let fy = (gy / patch - 0.5).clamp(0.0, gh as f32 - 1.0);
            let x0 = fx.floor() as usize;
            let y0 = fy.floor() as usize;
            let x1 = (x0 + 1).min(gw - 1);
            let y1 = (y0 + 1).min(gh - 1);
            let (ux, uy) = (fx - x0 as f32, fy - y0 as f32);
            let s = |x: usize, y: usize| scores.at(y * gw + x, best_class.index());
            s(x0, y0) * (1.0 - ux) * (1.0 - uy)
                + s(x1, y0) * ux * (1.0 - uy)
                + s(x0, y1) * (1.0 - ux) * uy
                + s(x1, y1) * ux * uy
        };
        // Gated window around the attended token, in backbone cells.
        let win = self.config.patch * 4;
        let cx0 = (tx * self.config.patch).saturating_sub(win);
        let cy0 = (ty * self.config.patch).saturating_sub(win);
        let cx1 = ((tx + 1) * self.config.patch + win).min(bw);
        let cy1 = ((ty + 1) * self.config.patch + win).min(bh);
        if cx1 <= cx0 || cy1 <= cy0 {
            return None;
        }
        let (ww, wh) = (cx1 - cx0, cy1 - cy0);
        let mut window: ScratchGuard<f32> = ScratchGuard::with_pooled_capacity(ww * wh);
        window.resize(ww * wh, 0.0);
        let mut best_cell: Option<Peak> = None;
        for y in 0..wh {
            for x in 0..ww {
                let (by, bx) = (cy0 + y, cx0 + x);
                let g = gate(token_score(bx as f32 + 0.5, by as f32 + 0.5));
                let gated = plane[by * bw + bx].max(0.0) * g;
                window[y * ww + x] = gated;
                let better = best_cell.is_none_or(|b| gated > b.value);
                // Prefer cells inside the attended token on ties.
                let inside = bx / self.config.patch == tx && by / self.config.patch == ty;
                if gated > 0.0 && (better || (inside && gated >= best_cell.unwrap().value)) {
                    best_cell = Some(Peak { x, y, value: gated });
                }
            }
        }
        let peak = best_cell?;
        let reach = template.width().max(template.height()) * 2;
        // Score-dependent span cutoff: a confident detection (best_score =
        // reference) measures at the calibrated half-peak fraction; as an
        // attack drags the attended score towards the threshold the cutoff
        // rises and the measured box contracts *continuously* — weak
        // detections literally shrink before they vanish (Figure 4).
        let ratio = reference / best_score.max(1e-6);
        let frac = (0.5 * ratio * ratio).clamp(0.5, 0.75);
        let span = measure_span(&window, ww, wh, peak, frac, reach);
        let (nominal_len, nominal_wid) = template.nominal_box();
        let (expected_x, expected_y) = template.expected_span();
        let len =
            (nominal_len * span.width / expected_x).clamp(0.6 * nominal_len, 1.5 * nominal_len);
        let wid =
            (nominal_wid * span.height / expected_y).clamp(0.6 * nominal_wid, 1.5 * nominal_wid);
        let cx = ResponseField::to_full_res(cx0 as f32 + span.center_x);
        let cy = ResponseField::to_full_res(cy0 as f32 + span.center_y);
        let score = ((best_score - threshold) / (1.0 - threshold)).clamp(0.0, 1.0) * 0.5 + 0.5;
        Some(Detection::new(best_class, BBox::new(cx, cy, len, wid), score))
    }
}

impl IncrementalDetect for DetrDetector {
    type Clean = ResponseField;

    fn clean_forward(&self, img: &Image) -> (ResponseField, Prediction) {
        let field = ResponseField::compute(img, &self.bank);
        let scores = self.token_scores_from(&field);
        let (gw, gh) = self.grid_dims(&field);
        let prediction = self.decode(&field, &scores, gw, gh);
        (field, prediction)
    }

    fn detect_incremental(
        &self,
        clean: &ResponseField,
        perturbed: &Image,
        dirty: &DirtyRect,
    ) -> IncrementalPrediction {
        let mut field = clean.clone();
        let window = field.recompute_window(perturbed, &self.bank, dirty);
        // The incremental propagation stops here: the encoder's
        // self-attention lets every token attend to every other, so one
        // dirty token dirties the entire grid. The transformer and the
        // query decoder re-run in full on the patched backbone field —
        // only the CNN stem benefits from the cache.
        let scores = self.token_scores_from(&field);
        let (gw, gh) = self.grid_dims(&field);
        IncrementalPrediction {
            prediction: self.decode(&field, &scores, gw, gh),
            cells_recomputed: window.area() as u64,
            global_stage_full: true,
        }
    }

    /// The batched hot path: the CNN stem is still patched per job (each
    /// mask dirties a different window), but the transformer — which
    /// re-runs in full per job and dominates the incremental cost — runs
    /// once over the whole population via
    /// [`DetrDetector::token_scores_batch`].
    fn detect_incremental_batch(
        &self,
        clean: &ResponseField,
        jobs: &[(&Image, &DirtyRect)],
    ) -> Vec<IncrementalPrediction> {
        let mut fields = Vec::with_capacity(jobs.len());
        let mut cells = Vec::with_capacity(jobs.len());
        for (perturbed, dirty) in jobs {
            let mut field = clean.clone();
            let window = field.recompute_window(perturbed, &self.bank, dirty);
            cells.push(window.area() as u64);
            fields.push(field);
        }
        let refs: Vec<&ResponseField> = fields.iter().collect();
        let scores = self.token_scores_batch(&refs);
        fields
            .iter()
            .zip(scores)
            .zip(cells)
            .map(|((field, scores), cells_recomputed)| {
                let (gw, gh) = self.grid_dims(field);
                IncrementalPrediction {
                    prediction: self.decode(field, &scores, gw, gh),
                    cells_recomputed,
                    global_stage_full: true,
                }
            })
            .collect()
    }
}

impl Detector for DetrDetector {
    fn detect(&self, img: &Image) -> Prediction {
        let field = ResponseField::compute(img, &self.bank);
        let scores = self.token_scores_from(&field);
        let (gw, gh) = self.grid_dims(&field);
        self.decode(&field, &scores, gw, gh)
    }

    /// Batched detection: one stacked transformer pass for the whole
    /// population (see [`DetrDetector::token_scores_batch`]).
    fn detect_batch_into(&self, imgs: &[&Image], out: &mut Vec<Prediction>) {
        out.clear();
        let fields: Vec<ResponseField> =
            imgs.iter().map(|img| ResponseField::compute(img, &self.bank)).collect();
        let refs: Vec<&ResponseField> = fields.iter().collect();
        let scores = self.token_scores_batch(&refs);
        for (field, scores) in fields.iter().zip(&scores) {
            let (gw, gh) = self.grid_dims(field);
            out.push(self.decode(field, scores, gw, gh));
        }
    }

    fn name(&self) -> &str {
        &self.name
    }

    /// Differentiates the above-threshold token-score mass through the
    /// whole transformer — patch pooling, embedding, every encoder block's
    /// attention and FFN, the analytic read-out and the median
    /// suppression — and then through the NCC backbone.
    ///
    /// This is the white-box counterpart of the paper's conjecture: the
    /// gradient of *any* detection is dense over the whole image because
    /// self-attention couples every token pair.
    fn input_gradient(&self, img: &Image, objective: GradientObjective) -> Option<InputGradient> {
        let field = ResponseField::compute(img, &self.bank);
        let (gw, gh) = self.grid_dims(&field);
        let (bw, bh) = (field.width(), field.height());
        let patch = self.config.patch;
        let classes = ObjectClass::COUNT;
        let token_count = gw * gh;

        let mut tape = Tape::new();
        let leaf = tape.leaf(field_to_leaf(&field));
        // Patch pooling: output (t, c) takes the max response of class c
        // inside patch t, floored at −1 exactly like `token_scores_from`.
        let mut groups: Vec<Vec<(usize, usize)>> = Vec::with_capacity(token_count * classes);
        for gy in 0..gh {
            for gx in 0..gw {
                for c in 0..classes {
                    let mut group = Vec::with_capacity(patch * patch);
                    for py in 0..patch {
                        for px in 0..patch {
                            let (y, x) = (gy * patch + py, gx * patch + px);
                            if y < bh && x < bw {
                                group.push((c, y * bw + x));
                            }
                        }
                    }
                    groups.push(group);
                }
            }
        }
        let content = tape.max_over_groups(leaf, &groups, -1.0, token_count, classes).ok()?;
        let embedded = tape.linear(&self.embed, content).ok()?;
        let mut x = tape.scale(embedded, self.config.content_gain).ok()?;
        let pos = grid_positional_encoding(gw, gh, self.config.model_dim);
        for block in &self.encoder {
            let qk = tape.add_const(x, &pos).ok()?;
            let attended = tape.multi_head_attention(block.attention(), qk, qk, x).ok()?;
            x = tape.add_scaled(x, attended, block.mix()).ok()?;
            let pre = tape.linear(block.ffn_in(), x).ok()?;
            let hidden = tape.gelu(pre).ok()?;
            let ffn = tape.linear(block.ffn_out(), hidden).ok()?;
            x = tape.add_scaled(x, ffn, block.mix()).ok()?;
        }
        let raw = tape.matmul_const(x, self.embed.weight(), self.config.kernel_policy).ok()?;
        let factors: Vec<f32> =
            self.head_norms.iter().map(|&n| 1.0 / (self.config.content_gain * n)).collect();
        let calibrated = tape.scale_columns(raw, &factors).ok()?;
        let suppressed = tape.sub_col_median(calibrated).ok()?;

        // Objective: the detector's own (non-tape) score matrix selects
        // the above-threshold entries, so the attacked quantity is exactly
        // what `detect` thresholds. `area_weight` additionally pulls in the
        // grid-neighbour tokens, whose scores feed the box gate.
        let scores = self.token_scores_from(&field);
        let mut coeffs = Matrix::zeros(token_count, classes);
        for t in 0..token_count {
            for c in 0..classes {
                if scores.at(t, c) <= self.threshold {
                    continue;
                }
                coeffs.set(t, c, coeffs.at(t, c) + 1.0);
                if objective.area_weight > 0.0 {
                    let (tx, ty) = (t % gw, t / gw);
                    for (nx, ny) in [
                        (tx.wrapping_sub(1), ty),
                        (tx + 1, ty),
                        (tx, ty.wrapping_sub(1)),
                        (tx, ty + 1),
                    ] {
                        if nx < gw && ny < gh {
                            let n = ny * gw + nx;
                            coeffs.set(n, c, coeffs.at(n, c) + objective.area_weight);
                        }
                    }
                }
            }
        }
        let objective_var = tape.weighted_sum(suppressed, &coeffs).ok()?;
        let objective_value = f64::from(tape.value(objective_var).at(0, 0));

        let grads = tape.backward(objective_var).ok()?;
        let dleaf = grads.get(leaf)?;
        let dfield = FeatureMap::from_vec(classes, bh, bw, dleaf.as_slice().to_vec()).ok()?;
        let gradient = field_gradient_to_image(img, &self.bank, &dfield);
        Some(InputGradient { objective: objective_value, gradient })
    }

    /// Post-encoder token scores as a per-class heatmap on the token grid.
    fn heatmap(&self, img: &Image) -> FeatureMap {
        let (gw, gh) = self.grid_size(img);
        let scores = self.token_scores(img);
        let mut map = FeatureMap::zeros(ObjectClass::COUNT, gh, gw);
        for class in ObjectClass::ALL {
            for t in 0..scores.rows() {
                map.set(class.index(), t / gw, t % gw, scores.at(t, class.index()));
            }
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bea_scene::SyntheticKitti;

    fn detector() -> DetrDetector {
        DetrDetector::new(DetrConfig::with_seed(1)).unwrap()
    }

    #[test]
    fn detects_objects_on_clean_scenes() {
        let data = SyntheticKitti::evaluation_set();
        let mut detr = detector();
        // Calibrated thresholds are the intended deployment path (the
        // paper assumes f(img) is correct; see ModelZoo::calibrated_model).
        detr.calibrate((0..4).map(|i| data.scene(i)));
        let mut matched = 0usize;
        let mut total = 0usize;
        for index in 0..4 {
            let scene = data.scene(index);
            let pred = detr.detect(&scene.render());
            for (class, bbox) in scene.ground_truths() {
                total += 1;
                if pred.best_iou(class, &bbox) > 0.4 {
                    matched += 1;
                }
            }
        }
        // The calibrated DETR operating point trades some recall for
        // precision (zoo-wide F1 ~= 0.65, see table1_setup); demand a
        // majority of ground truths, not YOLO-level recall.
        assert!(
            matched * 2 > total,
            "clean recall too low: {matched}/{total} ground truths matched"
        );
    }

    #[test]
    fn construction_is_deterministic_per_seed() {
        let a = DetrDetector::new(DetrConfig::with_seed(4)).unwrap();
        let b = DetrDetector::new(DetrConfig::with_seed(4)).unwrap();
        let img = SyntheticKitti::smoke_set().image(1);
        assert_eq!(a.detect(&img), b.detect(&img));
    }

    #[test]
    fn seeds_produce_different_models() {
        let a = DetrDetector::new(DetrConfig::with_seed(1)).unwrap();
        let b = DetrDetector::new(DetrConfig::with_seed(2)).unwrap();
        assert_ne!(a.threshold(), b.threshold());
        let img = SyntheticKitti::smoke_set().image(0);
        // Different weights usually give different score fields.
        assert_ne!(a.token_scores(&img), b.token_scores(&img));
    }

    #[test]
    fn remote_perturbation_reaches_left_tokens() {
        // The defining property: a right-half perturbation changes
        // *left-half* token scores (contrast with response::response_is_local).
        let detr = detector();
        let data = SyntheticKitti::evaluation_set();
        let base = data.image(0);
        let mut noisy = base.clone();
        let mut rng = WeightInit::from_seed(6);
        for y in 0..noisy.height() {
            for x in (noisy.width() * 3 / 4)..noisy.width() {
                let p = noisy.pixel(x, y);
                noisy.put_pixel(x, y, [p[0] + rng.uniform(-60.0, 60.0), p[1], p[2]]);
            }
        }
        let (gw, _gh) = detr.grid_size(&base);
        let sa = detr.token_scores(&base);
        let sb = detr.token_scores(&noisy);
        let mut moved = 0.0f32;
        for t in 0..sa.rows() {
            if t % gw < gw / 2 {
                for c in 0..ObjectClass::COUNT {
                    moved += (sa.at(t, c) - sb.at(t, c)).abs();
                }
            }
        }
        assert!(moved > 0.01, "left-half token scores did not move ({moved})");
    }

    #[test]
    fn empty_scene_detects_little() {
        let detr = detector();
        let img = bea_scene::Scene::empty(128, 48).render();
        assert!(detr.detect(&img).len() <= 1);
    }

    #[test]
    fn heatmap_is_token_grid_sized() {
        let detr = detector();
        let img = SyntheticKitti::smoke_set().image(0);
        let (gw, gh) = detr.grid_size(&img);
        let map = detr.heatmap(&img);
        assert_eq!(map.shape(), (ObjectClass::COUNT, gh, gw));
    }

    #[test]
    fn batched_token_scores_match_per_field_scores_bitwise() {
        let detr = detector();
        let data = SyntheticKitti::evaluation_set();
        let imgs = [data.image(0), data.image(1), data.image(2)];
        let fields: Vec<ResponseField> =
            imgs.iter().map(|img| ResponseField::compute(img, &detr.bank)).collect();
        let refs: Vec<&ResponseField> = fields.iter().collect();
        let batched = detr.token_scores_batch(&refs);
        assert_eq!(batched.len(), fields.len());
        for (i, field) in fields.iter().enumerate() {
            assert_eq!(batched[i], detr.token_scores_from(field), "field {i}");
        }
    }

    #[test]
    fn batched_detect_matches_per_image_detect() {
        let detr = detector();
        let data = SyntheticKitti::evaluation_set();
        let imgs = [data.image(0), data.image(1)];
        let refs: Vec<&Image> = imgs.iter().collect();
        let batched = detr.detect_batch(&refs);
        for (img, pred) in refs.iter().zip(&batched) {
            assert_eq!(pred, &detr.detect(img));
        }
    }

    #[test]
    fn batched_incremental_matches_scalar_incremental() {
        let detr = detector();
        let img = SyntheticKitti::evaluation_set().image(0);
        let (clean, _) = detr.clean_forward(&img);
        let mut masks = Vec::new();
        for (i, x0) in [10usize, 60, 110].iter().enumerate() {
            let mut mask = bea_image::FilterMask::zeros(img.width(), img.height());
            for y in 8..(14 + i) {
                for x in *x0..(*x0 + 12) {
                    mask.set(0, y, x, 60);
                }
            }
            masks.push(mask);
        }
        let perturbed: Vec<Image> = masks.iter().map(|m| m.apply(&img)).collect();
        let rects: Vec<DirtyRect> = masks.iter().map(crate::cache::mask_dirty_rect).collect();
        let jobs: Vec<(&Image, &DirtyRect)> = perturbed.iter().zip(rects.iter()).collect();
        let batched = detr.detect_incremental_batch(&clean, &jobs);
        for (i, (perturbed, dirty)) in jobs.iter().enumerate() {
            let scalar = detr.detect_incremental(&clean, perturbed, dirty);
            assert_eq!(batched[i].prediction, scalar.prediction, "job {i}");
            assert_eq!(batched[i].cells_recomputed, scalar.cells_recomputed);
            assert!(batched[i].global_stage_full);
            // Both must equal the uncached full pass.
            assert_eq!(batched[i].prediction, detr.detect(perturbed), "job {i} vs full pass");
        }
    }

    #[test]
    fn kernel_policy_does_not_change_predictions() {
        let img = SyntheticKitti::evaluation_set().image(0);
        let reference = DetrDetector::new(DetrConfig {
            kernel_policy: KernelPolicy::Reference,
            ..DetrConfig::with_seed(3)
        })
        .unwrap();
        let blocked = DetrDetector::new(DetrConfig {
            kernel_policy: KernelPolicy::Blocked,
            ..DetrConfig::with_seed(3)
        })
        .unwrap();
        assert_eq!(reference.token_scores(&img), blocked.token_scores(&img));
        assert_eq!(reference.detect(&img), blocked.detect(&img));
    }

    #[test]
    fn invalid_head_count_is_rejected() {
        let config = DetrConfig { model_dim: 24, heads: 5, ..DetrConfig::default() };
        assert!(DetrDetector::new(config).is_err());
    }
}
