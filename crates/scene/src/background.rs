//! Road-scene backgrounds (sky, road, lane markings, roadside posts).

use bea_image::Image;
use bea_tensor::WeightInit;

/// Seeded parameters for a scene background.
///
/// The background mimics the stable statistics of a KITTI frame: bright sky
/// over the top, asphalt over the bottom, a horizon line, dashed lane
/// markings and a few roadside posts. Gentle per-seed variation keeps scenes
/// from being pixel-identical (matched filters must tolerate background
/// variety, like a real detector).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Background {
    /// Fraction of the image height taken by the sky in `[0.3, 0.6]`.
    pub horizon: f32,
    /// Sky brightness offset in intensity levels.
    pub sky_tint: f32,
    /// Road brightness offset in intensity levels.
    pub road_tint: f32,
    /// Horizontal phase of the dashed lane markings in pixels.
    pub lane_phase: usize,
    /// Number of roadside posts.
    pub post_count: usize,
    /// Seed used for post placement.
    pub detail_seed: u64,
}

impl Background {
    /// Samples background parameters from a seeded RNG.
    pub fn sample(rng: &mut WeightInit) -> Self {
        Self {
            horizon: rng.uniform(0.35, 0.55),
            sky_tint: rng.uniform(-15.0, 15.0),
            road_tint: rng.uniform(-10.0, 10.0),
            lane_phase: rng.index(16),
            post_count: rng.index(4),
            detail_seed: rng.index(1 << 16) as u64,
        }
    }

    /// Paints the background onto a fresh image of the given size.
    pub fn render(&self, width: usize, height: usize) -> Image {
        let mut img = Image::black(width, height);
        let horizon_row = ((height as f32) * self.horizon) as usize;
        for y in 0..height {
            if y < horizon_row {
                // Sky: vertical gradient, lighter at the top.
                let t = y as f32 / horizon_row.max(1) as f32;
                let base = 205.0 - 35.0 * t + self.sky_tint;
                for x in 0..width {
                    img.put_pixel(x, y, [base - 10.0, base, base + 12.0]);
                }
            } else {
                // Road: darker asphalt with slight depth shading.
                let t = (y - horizon_row) as f32 / (height - horizon_row).max(1) as f32;
                let base = 70.0 + 25.0 * t + self.road_tint;
                for x in 0..width {
                    img.put_pixel(x, y, [base, base, base + 4.0]);
                }
            }
        }
        self.draw_lane_markings(&mut img, horizon_row);
        self.draw_posts(&mut img, horizon_row);
        img
    }

    fn draw_lane_markings(&self, img: &mut Image, horizon_row: usize) {
        let lane_y = horizon_row + (img.height() - horizon_row) * 2 / 3;
        if lane_y >= img.height() {
            return;
        }
        let mut x = self.lane_phase;
        while x + 6 <= img.width() {
            for dx in 0..6 {
                img.put_pixel(x + dx, lane_y, [210.0, 210.0, 190.0]);
                if lane_y + 1 < img.height() {
                    img.put_pixel(x + dx, lane_y + 1, [210.0, 210.0, 190.0]);
                }
            }
            x += 16;
        }
    }

    fn draw_posts(&self, img: &mut Image, horizon_row: usize) {
        let mut rng = WeightInit::from_seed(self.detail_seed);
        for _ in 0..self.post_count {
            let x = rng.index(img.width().max(1));
            let top = horizon_row.saturating_sub(6);
            for y in top..(horizon_row + 4).min(img.height()) {
                img.put_pixel(x, y, [50.0, 45.0, 40.0]);
            }
        }
    }
}

impl Default for Background {
    fn default() -> Self {
        Self {
            horizon: 0.45,
            sky_tint: 0.0,
            road_tint: 0.0,
            lane_phase: 0,
            post_count: 0,
            detail_seed: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sky_is_brighter_than_road() {
        let bg = Background::default().render(64, 32);
        let sky = bg.pixel(32, 2);
        let road = bg.pixel(32, 30);
        assert!(sky[1] > road[1] + 50.0, "sky {sky:?} should be brighter than road {road:?}");
    }

    #[test]
    fn render_is_deterministic() {
        let bg = Background { detail_seed: 5, post_count: 3, ..Background::default() };
        assert_eq!(bg.render(48, 24), bg.render(48, 24));
    }

    #[test]
    fn sampled_backgrounds_vary_with_seed() {
        let a = Background::sample(&mut WeightInit::from_seed(1));
        let b = Background::sample(&mut WeightInit::from_seed(2));
        assert_ne!(a, b);
    }

    #[test]
    fn sampled_horizon_in_range() {
        for seed in 0..20 {
            let bg = Background::sample(&mut WeightInit::from_seed(seed));
            assert!((0.35..0.55).contains(&bg.horizon));
        }
    }

    #[test]
    fn lane_markings_are_visible() {
        let bg = Background::default();
        let img = bg.render(64, 32);
        let horizon_row = (32.0 * bg.horizon) as usize;
        let lane_y = horizon_row + (32 - horizon_row) * 2 / 3;
        let has_marking = (0..64).any(|x| img.pixel(x, lane_y)[0] > 180.0);
        assert!(has_marking, "expected dashed lane marking at row {lane_y}");
    }

    #[test]
    fn tiny_canvas_does_not_panic() {
        let bg = Background { post_count: 2, ..Background::default() };
        let img = bg.render(3, 2);
        assert_eq!((img.width(), img.height()), (3, 2));
    }
}
