#!/usr/bin/env bash
# Repo-wide check: formatted, lints clean at -D warnings, full test suite green.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --all -- --check
cargo clippy --workspace --all-targets -- -D warnings
cargo test -q --workspace
