//! Live server metrics rendered in the Prometheus text format.
//!
//! Counters are lock-free atomics on the hot path; per-endpoint status
//! counts and latency histograms take a short mutex only when a request
//! finishes. Rendering snapshots everything into the plain-text
//! exposition format (`# TYPE` lines plus samples) that `GET /metrics`
//! returns.

use bea_detect::CacheStats;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Upper bounds (seconds) of the request-latency histogram buckets; an
/// implicit `+Inf` bucket follows the last entry.
pub const LATENCY_BUCKETS: [f64; 8] = [0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10.0, 60.0];

/// A fixed-bound latency histogram in seconds.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    counts: [u64; LATENCY_BUCKETS.len() + 1],
    sum: f64,
    total: u64,
}

impl Histogram {
    /// Records one observation.
    pub fn observe(&mut self, seconds: f64) {
        let slot = LATENCY_BUCKETS
            .iter()
            .position(|&bound| seconds <= bound)
            .unwrap_or(LATENCY_BUCKETS.len());
        self.counts[slot] += 1;
        self.sum += seconds;
        self.total += 1;
    }

    /// Cumulative count at each bucket bound, `+Inf` last.
    pub fn cumulative(&self) -> [u64; LATENCY_BUCKETS.len() + 1] {
        let mut running = 0;
        let mut out = [0u64; LATENCY_BUCKETS.len() + 1];
        for (slot, &count) in self.counts.iter().enumerate() {
            running += count;
            out[slot] = running;
        }
        out
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Sum of all observed values, in seconds.
    pub fn sum(&self) -> f64 {
        self.sum
    }
}

/// Per-endpoint response accounting.
#[derive(Debug, Clone, Default)]
struct EndpointMetrics {
    by_status: BTreeMap<u16, u64>,
    latency: Histogram,
}

/// Shared server metrics: job counters plus per-endpoint request
/// accounting.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Jobs accepted onto the queue (202 responses).
    pub accepted: AtomicU64,
    /// Jobs rejected with 429 because the queue was full.
    pub rejected: AtomicU64,
    /// Jobs that ran to completion.
    pub completed: AtomicU64,
    /// Jobs that failed (attack error or panic).
    pub failed: AtomicU64,
    endpoints: Mutex<BTreeMap<&'static str, EndpointMetrics>>,
}

impl Metrics {
    /// Records one finished request against its endpoint label.
    pub fn record_request(&self, endpoint: &'static str, status: u16, elapsed: Duration) {
        let mut endpoints = self.endpoints.lock().expect("metrics mutex poisoned");
        let entry = endpoints.entry(endpoint).or_default();
        *entry.by_status.entry(status).or_insert(0) += 1;
        entry.latency.observe(elapsed.as_secs_f64());
    }

    /// Renders the Prometheus text exposition. Queue and worker gauges
    /// are sampled by the caller (they live on the server, not here);
    /// cache counters come from the merged [`CacheStats`] of every
    /// completed job.
    pub fn render(
        &self,
        queue_depth: usize,
        queue_capacity: usize,
        in_flight: usize,
        cache: &CacheStats,
    ) -> String {
        let mut out = String::new();
        let counter = |out: &mut String, name: &str, help: &str, value: u64| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {value}");
        };
        let gauge = |out: &mut String, name: &str, help: &str, value: usize| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {value}");
        };
        gauge(&mut out, "bea_serve_queue_depth", "Jobs waiting on the queue.", queue_depth);
        gauge(&mut out, "bea_serve_queue_capacity", "Bound of the job queue.", queue_capacity);
        gauge(&mut out, "bea_serve_in_flight", "Jobs currently being attacked.", in_flight);
        counter(
            &mut out,
            "bea_serve_jobs_accepted_total",
            "Jobs accepted onto the queue.",
            self.accepted.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "bea_serve_jobs_rejected_total",
            "Jobs rejected with 429 (queue full).",
            self.rejected.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "bea_serve_jobs_completed_total",
            "Jobs that ran to completion.",
            self.completed.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "bea_serve_jobs_failed_total",
            "Jobs that failed.",
            self.failed.load(Ordering::Relaxed),
        );
        for (name, value) in cache.counters() {
            counter(
                &mut out,
                &format!("bea_serve_cache_{name}_total"),
                "Detector cache counter, summed over completed jobs.",
                value,
            );
        }
        // Scratch-arena accounting: flow counters plus the retained /
        // high-water byte gauges, straight from the tensor layer's
        // process-wide counters (the worker pool threads all feed them).
        for (name, value) in bea_tensor::scratch::stats().counters() {
            if name.ends_with("_bytes") {
                let _ = writeln!(out, "# HELP bea_serve_arena_{name} Scratch arena byte gauge.");
                let _ = writeln!(out, "# TYPE bea_serve_arena_{name} gauge");
                let _ = writeln!(out, "bea_serve_arena_{name} {value}");
            } else {
                counter(
                    &mut out,
                    &format!("bea_serve_arena_{name}_total"),
                    "Scratch arena flow counter, process-wide.",
                    value,
                );
            }
        }
        if let Some(bytes) = resident_memory_bytes() {
            let _ = writeln!(
                out,
                "# HELP process_resident_memory_bytes Resident set size of the process."
            );
            let _ = writeln!(out, "# TYPE process_resident_memory_bytes gauge");
            let _ = writeln!(out, "process_resident_memory_bytes {bytes}");
        }

        let endpoints = self.endpoints.lock().expect("metrics mutex poisoned");
        let _ =
            writeln!(out, "# HELP bea_serve_http_requests_total Requests by endpoint and status.");
        let _ = writeln!(out, "# TYPE bea_serve_http_requests_total counter");
        for (endpoint, metrics) in endpoints.iter() {
            for (status, count) in &metrics.by_status {
                let _ = writeln!(
                    out,
                    "bea_serve_http_requests_total{{endpoint=\"{endpoint}\",status=\"{status}\"}} {count}"
                );
            }
        }
        let _ = writeln!(out, "# HELP bea_serve_request_seconds Request latency by endpoint.");
        let _ = writeln!(out, "# TYPE bea_serve_request_seconds histogram");
        for (endpoint, metrics) in endpoints.iter() {
            let cumulative = metrics.latency.cumulative();
            for (slot, &bound) in LATENCY_BUCKETS.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "bea_serve_request_seconds_bucket{{endpoint=\"{endpoint}\",le=\"{bound}\"}} {}",
                    cumulative[slot]
                );
            }
            let _ = writeln!(
                out,
                "bea_serve_request_seconds_bucket{{endpoint=\"{endpoint}\",le=\"+Inf\"}} {}",
                cumulative[LATENCY_BUCKETS.len()]
            );
            let _ = writeln!(
                out,
                "bea_serve_request_seconds_sum{{endpoint=\"{endpoint}\"}} {}",
                metrics.latency.sum()
            );
            let _ = writeln!(
                out,
                "bea_serve_request_seconds_count{{endpoint=\"{endpoint}\"}} {}",
                metrics.latency.total()
            );
        }
        out
    }
}

/// Resident set size of this process in bytes, read from Linux's
/// `/proc/self/statm` (second field, in pages of 4096 bytes — the value
/// procfs reports regardless of the kernel's actual page size
/// configuration is in units of `sysconf(_SC_PAGESIZE)`, which is 4096 on
/// every platform this crate targets). Returns `None` off Linux or when
/// procfs is unavailable, and the metric is simply absent from the
/// exposition — std-only graceful degradation, no libc dependency.
pub fn resident_memory_bytes() -> Option<u64> {
    let statm = std::fs::read_to_string("/proc/self/statm").ok()?;
    let resident_pages: u64 = statm.split_whitespace().nth(1)?.parse().ok()?;
    Some(resident_pages * 4096)
}

/// The `q`-th percentile of a set of latencies, by the nearest-rank
/// method: the smallest element whose rank is at least `⌈q/100 · n⌉`.
/// Returns zero for an empty set; `q` outside `0..=100` (including NaN)
/// clamps to the nearest bound, so `p0` is the minimum and anything at
/// or above `p100` is the maximum — never an out-of-bounds index.
/// Shared by the load generator's report and tests.
pub fn percentile(sorted_seconds: &[f64], q: f64) -> f64 {
    if sorted_seconds.is_empty() {
        return 0.0;
    }
    // Clamp before the float->int cast instead of relying on cast
    // saturation: NaN compares false against everything, so handle it
    // explicitly as the lower bound.
    let q = if q.is_nan() { 0.0 } else { q.clamp(0.0, 100.0) };
    let rank = ((q / 100.0) * sorted_seconds.len() as f64).ceil() as usize;
    sorted_seconds[rank.clamp(1, sorted_seconds.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_cumulative() {
        let mut hist = Histogram::default();
        hist.observe(0.0005); // bucket 0.001
        hist.observe(0.003); // bucket 0.005
        hist.observe(0.003);
        hist.observe(120.0); // +Inf
        let cumulative = hist.cumulative();
        assert_eq!(cumulative[0], 1);
        assert_eq!(cumulative[1], 3);
        assert_eq!(cumulative[LATENCY_BUCKETS.len() - 1], 3);
        assert_eq!(cumulative[LATENCY_BUCKETS.len()], 4);
        assert_eq!(hist.total(), 4);
        assert!((hist.sum() - 120.0065).abs() < 1e-9);
    }

    #[test]
    fn render_exposes_every_metric_family() {
        let metrics = Metrics::default();
        metrics.accepted.store(3, Ordering::Relaxed);
        metrics.rejected.store(1, Ordering::Relaxed);
        metrics.completed.store(2, Ordering::Relaxed);
        metrics.record_request("POST /v1/attacks", 202, Duration::from_millis(2));
        metrics.record_request("POST /v1/attacks", 429, Duration::from_millis(1));
        metrics.record_request("GET /healthz", 200, Duration::from_micros(50));
        let text = metrics.render(5, 64, 2, &CacheStats::default());
        assert!(text.contains("bea_serve_queue_depth 5"), "{text}");
        assert!(text.contains("bea_serve_queue_capacity 64"));
        assert!(text.contains("bea_serve_in_flight 2"));
        assert!(text.contains("bea_serve_jobs_accepted_total 3"));
        assert!(text.contains("bea_serve_jobs_rejected_total 1"));
        assert!(text.contains("bea_serve_jobs_completed_total 2"));
        assert!(text.contains("bea_serve_jobs_failed_total 0"));
        assert!(text.contains("bea_serve_cache_hits_total 0"));
        assert!(text.contains("bea_serve_cache_evictions_total 0"));
        for family in [
            "bea_serve_arena_takes_total",
            "bea_serve_arena_hits_total",
            "bea_serve_arena_misses_total",
            "bea_serve_arena_recycles_total",
            "bea_serve_arena_retained_bytes",
            "bea_serve_arena_high_water_bytes",
        ] {
            assert!(text.contains(family), "missing arena family {family}:\n{text}");
        }
        assert!(text.contains("# TYPE bea_serve_arena_retained_bytes gauge"));
        #[cfg(target_os = "linux")]
        assert!(text.contains("process_resident_memory_bytes"), "{text}");
        assert!(text.contains(
            "bea_serve_http_requests_total{endpoint=\"POST /v1/attacks\",status=\"202\"} 1"
        ));
        assert!(text.contains(
            "bea_serve_http_requests_total{endpoint=\"POST /v1/attacks\",status=\"429\"} 1"
        ));
        assert!(text
            .contains("bea_serve_request_seconds_bucket{endpoint=\"GET /healthz\",le=\"+Inf\"} 1"));
        assert!(text.contains("bea_serve_request_seconds_count{endpoint=\"POST /v1/attacks\"} 2"));
    }

    #[test]
    fn percentile_uses_nearest_rank() {
        let sorted: Vec<f64> = (1..=100).map(|k| k as f64).collect();
        assert_eq!(percentile(&sorted, 50.0), 50.0);
        assert_eq!(percentile(&sorted, 99.0), 99.0);
        assert_eq!(percentile(&sorted, 100.0), 100.0);
        assert_eq!(percentile(&[7.5], 50.0), 7.5);
        assert_eq!(percentile(&[], 50.0), 0.0);
        // Nearest rank rounds up: p10 of 4 samples is rank ⌈0.4⌉ = 1.
        assert_eq!(percentile(&[1.0, 2.0, 3.0, 4.0], 10.0), 1.0);
        assert_eq!(percentile(&[1.0, 2.0, 3.0, 4.0], 75.0), 3.0);
    }

    #[test]
    fn percentile_edges_never_index_out_of_bounds() {
        let sorted = [1.0, 2.0, 3.0];
        // p0 is the minimum (rank 0 clamps to the first element), p100
        // the maximum; out-of-range and NaN quantiles clamp likewise.
        assert_eq!(percentile(&sorted, 0.0), 1.0);
        assert_eq!(percentile(&sorted, 100.0), 3.0);
        assert_eq!(percentile(&sorted, -25.0), 1.0);
        assert_eq!(percentile(&sorted, 250.0), 3.0);
        assert_eq!(percentile(&sorted, f64::NAN), 1.0);
        // A single sample answers every quantile, empty answers zero.
        for q in [0.0, 37.5, 100.0, f64::NAN, -1.0, 101.0] {
            assert_eq!(percentile(&[9.25], q), 9.25);
            assert_eq!(percentile(&[], q), 0.0);
        }
    }

    #[test]
    fn arena_gauges_aggregate_across_worker_threads() {
        // Scratch buffers taken on worker threads must land in the
        // process-wide counters that /metrics renders — a regression
        // test for per-thread counters leaking only the render thread's
        // view. Each spawned thread runs a Blocked-policy GEMM large
        // enough to take packing scratch.
        let before = bea_tensor::scratch::stats();
        std::thread::scope(|scope| {
            for _ in 0..2 {
                scope.spawn(|| {
                    let a = bea_tensor::Matrix::from_vec(
                        24,
                        40,
                        (0..24 * 40).map(|k| k as f32 * 0.01).collect(),
                    )
                    .expect("matrix a");
                    let b = bea_tensor::Matrix::from_vec(
                        40,
                        24,
                        (0..40 * 24).map(|k| 1.0 - k as f32 * 0.02).collect(),
                    )
                    .expect("matrix b");
                    let product =
                        a.matmul_policy(&b, bea_tensor::KernelPolicy::Blocked).expect("gemm");
                    assert_eq!(product.rows(), 24);
                });
            }
        });
        let after = bea_tensor::scratch::stats();
        assert!(
            after.takes > before.takes,
            "worker-thread scratch takes missing from process-wide stats: \
             {before:?} -> {after:?}"
        );
        assert!(after.high_water_bytes > 0);
        let text = Metrics::default().render(0, 1, 0, &CacheStats::default());
        let line = text
            .lines()
            .find(|l| l.starts_with("bea_serve_arena_takes_total "))
            .expect("takes counter rendered");
        let rendered: u64 = line.split_whitespace().nth(1).expect("value").parse().expect("u64");
        assert!(
            rendered >= after.takes,
            "rendered takes {rendered} must include worker-thread takes {}",
            after.takes
        );
        assert!(!text.contains("bea_serve_arena_high_water_bytes 0\n"));
    }
}
