//! **E3 — Figure 2**: three-objective Pareto fronts, YOLO vs DETR.
//!
//! For every (architecture, model seed, image) triple the attack runs
//! NSGA-II and reports the three per-objective champions of the final
//! front — exactly the read-out of the paper's Figure 2 ("we only show the
//! resulting 3 perturbations reflecting the best of three objectives").
//! The grid runs through the parallel campaign runner, so `--jobs N`
//! shards the cells across workers without changing any number in the
//! output.
//!
//! Expected shape (paper Section V-B): "for DETR, with a smaller amount of
//! perturbation, one can generate larger performance degradation", and
//! DETR reaches `obj_degrad ≈ 0.6` while `obj_dist ≈ 0.5` of its
//! achievable range.
//!
//! Run: `cargo run --release -p bea-bench --bin fig2_pareto [--full] [--jobs N]`
//! Writes: `target/experiments/fig2_pareto.csv` (all champions).

use bea_bench::{fmt, output_dir, Harness};
use bea_core::campaign::{Campaign, CampaignConfig, CellSpec};
use bea_core::report::{print_table, rows_succeeded, write_csv, AttackRow, SuccessCriteria};
use bea_detect::Architecture;

fn jobs_from_args() -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--jobs")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

fn main() {
    let harness = Harness::from_args();

    let mut specs = Vec::new();
    for arch in Architecture::ALL {
        specs.extend(CellSpec::grid(arch.name(), &harness.model_seeds(), &harness.image_indices()));
    }
    let campaign = Campaign::new(CampaignConfig {
        attack: harness.attack_config(),
        base_seed: harness.attack_config().nsga2.seed,
        jobs: jobs_from_args(),
        telemetry: false,
    });
    let result = campaign.run(
        &specs,
        |spec: &CellSpec| {
            let arch = Architecture::ALL
                .into_iter()
                .find(|a| a.name() == spec.group)
                .expect("specs are built from Architecture::ALL");
            harness.model(arch, spec.model_seed)
        },
        |spec: &CellSpec| harness.dataset().image(spec.image_index),
    );
    for cell in &result.cells {
        eprintln!(
            "  {} s{} image {}: front {} points",
            cell.spec.group,
            cell.spec.model_seed,
            cell.spec.image_index,
            cell.rows.iter().filter(|r| r.role == "front").count()
        );
    }
    let all_rows: Vec<AttackRow> = result.champion_rows();

    // Per-architecture series (the figure's two point clouds).
    println!("\nFigure 2 — per-objective champions of each attack run");
    let mut table = Vec::new();
    for row in &all_rows {
        table.push(vec![
            row.architecture.clone(),
            format!("s{}", row.model_seed),
            row.image_index.to_string(),
            row.role.clone(),
            fmt(row.point.intensity, 1),
            fmt(row.point.intensity_normalized, 4),
            fmt(row.point.degrad, 3),
            fmt(row.point.dist, 4),
        ]);
    }
    print_table(
        &["arch", "model", "image", "champion", "intensity", "int. (norm)", "degrad", "dist"],
        &table,
    );

    // Aggregate comparison: the paper's headline claim.
    println!("\nAggregate (best-degradation champions):");
    let mut rows = Vec::new();
    for arch in Architecture::ALL {
        let champs: Vec<&AttackRow> = all_rows
            .iter()
            .filter(|r| r.architecture == arch.name() && r.role == "best-degrad")
            .collect();
        if champs.is_empty() {
            continue;
        }
        let n = champs.len() as f64;
        let mean_degrad = champs.iter().map(|r| r.point.degrad).sum::<f64>() / n;
        let mean_intensity = champs.iter().map(|r| r.point.intensity).sum::<f64>() / n;
        let mean_dist = champs.iter().map(|r| r.point.dist).sum::<f64>() / n;
        rows.push(vec![
            arch.name().to_string(),
            fmt(mean_degrad, 3),
            fmt(mean_intensity, 1),
            fmt(mean_dist, 4),
        ]);
    }
    print_table(&["arch", "mean obj_degrad", "mean obj_intensity", "mean obj_dist"], &rows);

    // Success rate: obj_degrad <= 0.6 at bounded intensity, per run.
    let criteria = SuccessCriteria::default();
    println!(
        "\nAttack success rate (some front member with obj_degrad <= {} at intensity <= {}):",
        criteria.max_degrad, criteria.max_intensity
    );
    let mut srows = Vec::new();
    for arch in Architecture::ALL {
        let cells: Vec<_> = result.cells.iter().filter(|c| c.spec.group == arch.name()).collect();
        if cells.is_empty() {
            continue;
        }
        let hits = cells.iter().filter(|c| rows_succeeded(&c.rows, criteria)).count();
        srows.push(vec![
            arch.name().to_string(),
            cells.len().to_string(),
            format!("{:.0}%", 100.0 * hits as f64 / cells.len() as f64),
        ]);
    }
    print_table(&["arch", "runs", "success rate"], &srows);
    println!(
        "\nexpected shape: DETR's mean obj_degrad below YOLO's at comparable or lower \
         intensity (transformers are more susceptible to butterfly effects)"
    );

    let path = output_dir().join("fig2_pareto.csv");
    let file = std::fs::File::create(&path).expect("create csv");
    write_csv(&all_rows, std::io::BufWriter::new(file)).expect("write csv");
    println!("wrote {}", path.display());
}
