//! Steady-state allocation accounting for the attack hot loop.
//!
//! The zero-allocation contract: after a few warm-up iterations, a masked
//! detection loop — the inner loop of the genetic attack — performs **no
//! heap allocations at all**. Weights are pre-packed at model
//! construction and every intermediate buffer comes from the thread-local
//! scratch arenas (`bea_tensor::scratch`), so the steady state only
//! recycles.
//!
//! This bench proves it with a counting `#[global_allocator]`: for each
//! (architecture × kernel policy) configuration it warms a cached model
//! with a few masked detections, then counts allocator calls across a
//! measured window of further iterations with *varying* masks (as the
//! attack would produce). `--check` exits non-zero if any configuration
//! allocates in the window:
//!
//! ```text
//! cargo bench -p bea-bench --bench steady_state -- --check --out BENCH_allocs.json
//! ```
//!
//! * `--quick` shrinks the warm-up and window for CI smoke runs,
//! * `--check` turns the zero-allocation contract into an exit code,
//! * `--out PATH` upserts the records into the keyed run log (see
//!   `support/runlog.rs`).

#[path = "support/alloc_counter.rs"]
mod alloc_counter;
#[path = "support/runlog.rs"]
mod runlog;

use bea_core::telemetry::JsonObject;
use bea_detect::{Architecture, ModelZoo};
use bea_image::FilterMask;
use bea_scene::SyntheticKitti;
use bea_tensor::KernelPolicy;
use std::hint::black_box;
use std::process::ExitCode;

#[global_allocator]
static ALLOC: alloc_counter::CountingAllocator = alloc_counter::CountingAllocator::new();

/// Allocation counts for one (architecture × policy) configuration.
struct Case {
    name: String,
    iters: u64,
    allocations: u64,
    bytes: u64,
    tapes: u64,
}

impl Case {
    fn allocs_per_iter(&self) -> f64 {
        self.allocations as f64 / self.iters.max(1) as f64
    }

    fn json(&self) -> String {
        JsonObject::new()
            .string("name", &self.name)
            .integer("iters", self.iters)
            .integer("allocations", self.allocations)
            .integer("bytes", self.bytes)
            .integer("tapes", self.tapes)
            .float("allocs_per_iter", self.allocs_per_iter())
            .finish()
    }
}

/// A small off-object perturbation "sticker", re-painted with a different
/// intensity each iteration so every pass evaluates a fresh genome (the
/// shape of work the attack loop produces; a constant mask could hide
/// per-novel-input allocations).
fn paint(mask: &mut FilterMask, iter: u64) {
    let v = 20 + (iter % 60) as i16;
    for dy in 0..3 {
        for dx in 0..4 {
            mask.set((iter as usize + dx) % 3, 4 + dy, 5 + dx, v);
        }
    }
}

fn run_case(arch: Architecture, policy: KernelPolicy, warmup: u64, iters: u64) -> Case {
    let policy_name = match policy {
        KernelPolicy::Reference => "reference",
        KernelPolicy::Blocked => "blocked",
    };
    let name = format!("{}_{policy_name}", arch.name().to_lowercase().replace('-', ""));
    let zoo = ModelZoo::with_defaults().with_kernel_policy(policy);
    let model = zoo.cached_model(arch, 1);
    let img = SyntheticKitti::smoke_set().image(0);
    let mut mask = FilterMask::zeros(img.width(), img.height());

    for i in 0..warmup {
        paint(&mut mask, i);
        let _ = black_box(model.detect_masked(&img, &mask));
    }

    let before = ALLOC.snapshot();
    let tapes_before = bea_tensor::tapes_created();
    for i in 0..iters {
        paint(&mut mask, warmup + i);
        let _ = black_box(model.detect_masked(&img, &mask));
    }
    let delta = ALLOC.snapshot().since(&before);
    // The plain detect path must never touch the autodiff tape: gradients
    // are an explicit white-box opt-in (`Detector::input_gradient`), and a
    // tape recording would both allocate and drag the hot loop.
    let tapes = (bea_tensor::tapes_created() - tapes_before) as u64;

    Case { name, iters, allocations: delta.allocations, bytes: delta.bytes, tapes }
}

struct Options {
    quick: bool,
    check: bool,
    out: Option<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options { quick: false, check: false, out: None };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--quick" => options.quick = true,
            "--check" => options.check = true,
            "--out" => options.out = Some(args.next().ok_or("--out needs a value")?),
            // cargo bench forwards a --bench marker to harness=false targets.
            "--bench" => {}
            "--help" | "-h" => {
                return Err("usage: steady_state [--quick] [--check] [--out PATH]\n\
                            --quick shrinks warm-up and window for smoke runs\n\
                            --check exits 1 if any configuration allocates at \
                            steady state\n\
                            --out upserts the records into the keyed run log"
                    .into())
            }
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
    }
    Ok(options)
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    // The zero-allocation contract is defined at one kernel thread:
    // worker threads beyond the first are scoped spawns (they allocate a
    // few stack handles per parallel region by design), so the gate pins
    // the knob rather than inheriting whatever the environment left.
    bea_tensor::threads::set_threads(1);
    let (warmup, iters) = if options.quick { (3, 2) } else { (8, 5) };

    let configs = [
        (Architecture::Yolo, KernelPolicy::Reference),
        (Architecture::Yolo, KernelPolicy::Blocked),
        (Architecture::Detr, KernelPolicy::Reference),
        (Architecture::Detr, KernelPolicy::Blocked),
    ];
    let cases: Vec<Case> =
        configs.iter().map(|&(arch, policy)| run_case(arch, policy, warmup, iters)).collect();

    println!(
        "{:<20} {:>6} {:>12} {:>12} {:>16}",
        "case", "iters", "allocations", "bytes", "allocs_per_iter"
    );
    for case in &cases {
        println!(
            "{:<20} {:>6} {:>12} {:>12} {:>16.2}",
            case.name,
            case.iters,
            case.allocations,
            case.bytes,
            case.allocs_per_iter()
        );
    }
    let scratch = bea_tensor::scratch::stats();
    println!(
        "scratch: hits={} misses={} retained_bytes={} high_water_bytes={}",
        scratch.hits, scratch.misses, scratch.retained_bytes, scratch.high_water_bytes
    );

    if let Some(path) = &options.out {
        let rendered: Vec<String> = cases.iter().map(Case::json).collect();
        let run = JsonObject::new()
            .boolean("quick", options.quick)
            .integer("warmup", warmup)
            .integer("iters", iters)
            .raw("cases", &format!("[{}]", rendered.join(",")))
            .finish();
        if let Err(e) = runlog::merge_keyed_run(path, "steady_state", &run) {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
        println!("merged into {path}");
    }

    if options.check {
        let mut failed = false;
        for case in &cases {
            if case.allocations > 0 {
                eprintln!(
                    "steady-state regression: {} performed {} allocations \
                     ({} bytes) over {} iterations; the hot loop must not \
                     allocate after warm-up",
                    case.name, case.allocations, case.bytes, case.iters
                );
                failed = true;
            }
            if case.tapes > 0 {
                eprintln!(
                    "steady-state regression: {} recorded {} autodiff tapes \
                     over {} iterations; plain detection must stay tape-free",
                    case.name, case.tapes, case.iters
                );
                failed = true;
            }
        }
        if failed {
            return ExitCode::FAILURE;
        }
        println!("check passed: zero steady-state allocations across {} configs", cases.len());
    }
    ExitCode::SUCCESS
}
