//! Peak finding and box-extent measurement on response planes.
//!
//! Both detector heads turn a per-class score plane into boxes the same
//! way: find local maxima above a threshold, then measure the half-peak
//! span of the response around each maximum to estimate the box extents.
//! Because extents are *measured from the score field*, a perturbation that
//! deforms the field changes the predicted box size — the "bounding box
//! changes its size" degradation mode the paper reports (Section V-B).

use bea_tensor::{insertion_sort_by, ScratchGuard};

/// A local maximum of a score plane.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Peak {
    /// Column of the maximum.
    pub x: usize,
    /// Row of the maximum.
    pub y: usize,
    /// Score at the maximum.
    pub value: f32,
}

/// Finds strict-or-equal local maxima above `threshold` in a row-major
/// `height × width` plane.
///
/// A cell is a peak when it is ≥ all 8 neighbours; plateau cells keep only
/// the first (top-left) representative to avoid duplicate boxes.
///
/// Returns a pooled buffer (hot-path callers iterate by reference so the
/// storage recycles; the guard derefs to a `Vec<Peak>`).
pub fn find_peaks(
    plane: &[f32],
    width: usize,
    height: usize,
    threshold: f32,
) -> ScratchGuard<Peak> {
    debug_assert_eq!(plane.len(), width * height);
    let mut peaks: ScratchGuard<Peak> = ScratchGuard::with_pooled_capacity(32);
    for y in 0..height {
        for x in 0..width {
            let v = plane[y * width + x];
            if v < threshold {
                continue;
            }
            let mut is_peak = true;
            let mut first_of_plateau = true;
            for dy in -1i64..=1 {
                for dx in -1i64..=1 {
                    if dx == 0 && dy == 0 {
                        continue;
                    }
                    let ny = y as i64 + dy;
                    let nx = x as i64 + dx;
                    if ny < 0 || nx < 0 || ny >= height as i64 || nx >= width as i64 {
                        continue;
                    }
                    let nv = plane[ny as usize * width + nx as usize];
                    if nv > v {
                        is_peak = false;
                    }
                    // Plateau tie-break: an equal-valued neighbour earlier
                    // in scan order owns the plateau.
                    if nv == v && (ny < y as i64 || (ny == y as i64 && nx < x as i64)) {
                        first_of_plateau = false;
                    }
                }
            }
            if is_peak && first_of_plateau {
                peaks.push(Peak { x, y, value: v });
            }
        }
    }
    insertion_sort_by(&mut peaks, |a, b| {
        b.value.partial_cmp(&a.value).unwrap_or(std::cmp::Ordering::Equal)
    });
    peaks
}

/// The measured span of a peak: the half-peak extent along each axis, and
/// the span midpoint (a sub-cell refinement of the peak position).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeakSpan {
    /// Span midpoint along x (fractional cells).
    pub center_x: f32,
    /// Span midpoint along y (fractional cells).
    pub center_y: f32,
    /// Full width at half peak along x, in cells.
    pub width: f32,
    /// Full width at half peak along y, in cells.
    pub height: f32,
}

/// Measures the half-peak span of `peak` on a score plane.
///
/// Walks outwards from the peak along each axis until the score drops below
/// `frac · peak.value` (or the plane edge), with the walk capped at
/// `max_reach` cells per direction. The crossing point is linearly
/// interpolated between the last in-span cell and the first below-cutoff
/// cell, giving sub-cell extents. The resulting span midpoint shifts when
/// the field becomes asymmetric — which is how perturbations move predicted
/// box centres.
pub fn measure_span(
    plane: &[f32],
    width: usize,
    height: usize,
    peak: Peak,
    frac: f32,
    max_reach: usize,
) -> PeakSpan {
    debug_assert_eq!(plane.len(), width * height);
    let cutoff = peak.value * frac;
    let at = |x: usize, y: usize| plane[y * width + x];

    // Walks along one axis; `sample(k)` is the value k cells away from the
    // peak, or None past the plane edge. Returns the fractional reach.
    let walk = |sample: &dyn Fn(usize) -> Option<f32>| -> f32 {
        let mut steps = 0usize;
        let mut last = peak.value;
        loop {
            if steps >= max_reach {
                return steps as f32;
            }
            match sample(steps + 1) {
                None => return steps as f32,
                Some(v) if v >= cutoff => {
                    last = v;
                    steps += 1;
                }
                Some(v) => {
                    // Interpolate the crossing between `last` and `v`.
                    let t = if last > v { (last - cutoff) / (last - v) } else { 0.0 };
                    return steps as f32 + t.clamp(0.0, 1.0);
                }
            }
        }
    };

    let left = walk(&|k| (peak.x >= k).then(|| at(peak.x - k, peak.y)));
    let right = walk(&|k| (peak.x + k < width).then(|| at(peak.x + k, peak.y)));
    let up = walk(&|k| (peak.y >= k).then(|| at(peak.x, peak.y - k)));
    let down = walk(&|k| (peak.y + k < height).then(|| at(peak.x, peak.y + k)));

    PeakSpan {
        center_x: peak.x as f32 + (right - left) / 2.0,
        center_y: peak.y as f32 + (down - up) / 2.0,
        width: left + right + 1.0,
        height: up + down + 1.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plane_with(width: usize, height: usize, cells: &[(usize, usize, f32)]) -> Vec<f32> {
        let mut p = vec![0.0; width * height];
        for &(x, y, v) in cells {
            p[y * width + x] = v;
        }
        p
    }

    #[test]
    fn single_peak_is_found() {
        let plane = plane_with(8, 6, &[(3, 2, 0.9)]);
        let peaks = find_peaks(&plane, 8, 6, 0.5);
        assert_eq!(peaks, vec![Peak { x: 3, y: 2, value: 0.9 }]);
    }

    #[test]
    fn threshold_filters_weak_peaks() {
        let plane = plane_with(8, 6, &[(3, 2, 0.4), (6, 4, 0.8)]);
        let peaks = find_peaks(&plane, 8, 6, 0.5);
        assert_eq!(peaks.len(), 1);
        assert_eq!(peaks[0].x, 6);
    }

    #[test]
    fn peaks_sorted_by_score() {
        let plane = plane_with(10, 4, &[(1, 1, 0.6), (8, 2, 0.9)]);
        let peaks = find_peaks(&plane, 10, 4, 0.5);
        assert_eq!(peaks[0].value, 0.9);
        assert_eq!(peaks[1].value, 0.6);
    }

    #[test]
    fn plateau_yields_one_peak() {
        let plane = plane_with(8, 4, &[(3, 1, 0.7), (4, 1, 0.7)]);
        let peaks = find_peaks(&plane, 8, 4, 0.5);
        assert_eq!(peaks.len(), 1);
        assert_eq!((peaks[0].x, peaks[0].y), (3, 1));
    }

    #[test]
    fn neighbouring_higher_cell_suppresses() {
        let plane = plane_with(8, 4, &[(3, 1, 0.7), (4, 1, 0.8)]);
        let peaks = find_peaks(&plane, 8, 4, 0.5);
        assert_eq!(peaks.len(), 1);
        assert_eq!(peaks[0].x, 4);
    }

    #[test]
    fn span_of_symmetric_ridge() {
        // Ridge of width 5 around x=5 at y=2.
        let mut plane = vec![0.0; 12 * 5];
        for x in 3..=7 {
            plane[2 * 12 + x] = 0.8;
        }
        plane[2 * 12 + 5] = 1.0;
        let span = measure_span(&plane, 12, 5, Peak { x: 5, y: 2, value: 1.0 }, 0.5, 10);
        // 2 whole cells each side plus an interpolated 0.375 crossing into
        // the zero neighbours: width = 2*(2 + 0.375) + 1.
        assert!((span.width - 5.75).abs() < 1e-6, "width {}", span.width);
        assert_eq!(span.center_x, 5.0);
        // Vertically the 1.0 peak drops straight to 0: crossing at 0.5.
        assert!((span.height - 2.0).abs() < 1e-6, "height {}", span.height);
    }

    #[test]
    fn span_of_asymmetric_ridge_shifts_center() {
        let mut plane = vec![0.0; 12 * 5];
        for x in 5..=8 {
            plane[2 * 12 + x] = 0.8;
        }
        plane[2 * 12 + 5] = 1.0;
        let span = measure_span(&plane, 12, 5, Peak { x: 5, y: 2, value: 1.0 }, 0.5, 10);
        assert!(span.center_x > 5.0, "span centre should shift right");
        assert!(span.width > 3.5 && span.width < 5.5, "width {}", span.width);
    }

    #[test]
    fn max_reach_caps_walk() {
        let plane = vec![1.0; 20 * 3];
        let span = measure_span(&plane, 20, 3, Peak { x: 10, y: 1, value: 1.0 }, 0.5, 2);
        assert_eq!(span.width, 5.0);
        assert_eq!(span.height, 3.0); // capped by plane edge (rows 0..3)
        assert_eq!(span.center_x, 10.0);
    }

    #[test]
    fn edge_peak_is_handled() {
        let plane = plane_with(8, 4, &[(0, 0, 0.9)]);
        let peaks = find_peaks(&plane, 8, 4, 0.5);
        assert_eq!(peaks.len(), 1);
        let span = measure_span(&plane, 8, 4, peaks[0], 0.5, 5);
        // Peak 0.9 drops to 0 at the next cell: crossing fraction 4/9 each
        // reachable side; the left/top sides are plane edges.
        assert!(span.width > 1.0 && span.width < 2.0, "width {}", span.width);
    }

    #[test]
    fn empty_plane_has_no_peaks() {
        let plane = vec![0.0; 6 * 6];
        assert!(find_peaks(&plane, 6, 6, 0.1).is_empty());
    }
}
