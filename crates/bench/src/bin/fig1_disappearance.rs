//! **E4 — Figure 1**: disappearing objects (TP → FN) with noise restricted
//! to one half of the image.
//!
//! The paper's Figure 1 perturbs the *left* part of a KITTI image and
//! observes missed objects on the *right*. This harness attacks with the
//! left-half restriction, then reports objects lost on the untouched right
//! half; before/after PPMs are written to `target/experiments/`.
//!
//! Run: `cargo run --release -p bea-bench --bin fig1_disappearance [--full]`

use bea_bench::figures::save_case_study;
use bea_bench::{fmt, Harness};
use bea_core::attack::{AttackConfig, ButterflyAttack};
use bea_core::report::print_table;
use bea_core::TransitionReport;
use bea_detect::Architecture;
use bea_image::RegionConstraint;

fn main() {
    let harness = Harness::from_args();
    // Figure 1 flips the restriction: perturb LEFT, observe RIGHT.
    let config = AttackConfig { constraint: RegionConstraint::LeftHalf, ..harness.attack_config() };
    let attack = ButterflyAttack::new(config);

    let mut rows = Vec::new();
    let mut best: Option<(f64, String, usize)> = None;
    for &image_index in &harness.image_indices() {
        let scene = harness.dataset().scene(image_index);
        let img = scene.render();
        let half = img.width() as f32 / 2.0;
        for arch in Architecture::ALL {
            let model = harness.model(arch, 1);
            let clean = model.detect(&img);
            let outcome = attack.attack(model.as_ref(), &img);
            let champion = outcome.best_degradation().expect("front never empty");
            let perturbed_img = champion.genome().apply(&img);
            let perturbed = model.detect(&perturbed_img);
            // Count clean right-half detections that vanished.
            let lost_right = clean
                .iter()
                .filter(|d| d.bbox.cx > half)
                .filter(|d| perturbed.best_iou(d.class, &d.bbox) < 0.5)
                .count();
            let report = TransitionReport::analyze(&scene.ground_truths(), &clean, &perturbed);
            rows.push(vec![
                model.name().to_string(),
                image_index.to_string(),
                fmt(champion.objectives()[1], 3),
                lost_right.to_string(),
                report.tp_to_fn.to_string(),
            ]);
            let score = champion.objectives()[1] - lost_right as f64;
            if best.as_ref().is_none_or(|(s, _, _)| score < *s) && lost_right > 0 {
                let (a, b) = save_case_study("fig1", &img, &clean, &perturbed_img, &perturbed);
                println!(
                    "case study: {} image {} -> {} / {}",
                    model.name(),
                    image_index,
                    a.display(),
                    b.display()
                );
                best = Some((score, model.name().to_string(), image_index));
            }
        }
    }

    println!("\nFigure 1 — left-half noise, right-half object loss");
    print_table(
        &["model", "image", "obj_degrad", "right-half objects lost", "TP->FN total"],
        &rows,
    );
    match best {
        Some((_, model, image)) => println!(
            "\nbutterfly effect demonstrated: {model} on image {image} lost untouched \
             right-half objects (see saved PPMs)"
        ),
        None => {
            println!("\nno right-half loss at this scale — rerun with --full for the paper budget")
        }
    }
}
