//! A minimal blocking HTTP client over `std::net::TcpStream`.
//!
//! Shared by the load generator, the integration tests and the CI smoke
//! job so none of them need an external HTTP tool. [`request`] speaks
//! the one-request-per-connection subset; [`HttpConnection`] holds a
//! keep-alive connection open and frames sequential responses through
//! the incremental [`ResponseParser`], reconnect-on-close left to the
//! caller.

use crate::http::{status_reason, Request, ResponseParser};
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Cap on response bodies the client will buffer.
const MAX_RESPONSE_BODY: usize = 16 * 1024 * 1024;

/// Socket deadlines for one request.
///
/// The zero-value of `std::net` timeouts is "block forever", which
/// turned every stalled or half-dead server into a hung client. These
/// defaults are deliberately finite; [`ClientTimeouts::unlimited`]
/// restores the old behaviour for debugging.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientTimeouts {
    /// TCP connect deadline.
    pub connect: Duration,
    /// Per-`read` deadline while receiving the response.
    pub read: Duration,
    /// Per-`write` deadline while sending the request.
    pub write: Duration,
}

impl Default for ClientTimeouts {
    fn default() -> Self {
        Self {
            connect: Duration::from_secs(10),
            read: Duration::from_secs(120),
            write: Duration::from_secs(30),
        }
    }
}

impl ClientTimeouts {
    /// No deadlines at all: every socket operation may block forever.
    pub fn unlimited() -> Self {
        Self { connect: Duration::ZERO, read: Duration::ZERO, write: Duration::ZERO }
    }
}

/// Maps a transport error to [`io::ErrorKind::TimedOut`] when it is a
/// socket deadline expiring, annotated with which phase stalled.
///
/// Linux reports an expired `SO_RCVTIMEO` as `WouldBlock`; other
/// platforms use `TimedOut`. Callers should only ever see the latter.
fn timeout_error(phase: &str, e: io::Error) -> io::Error {
    if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) {
        io::Error::new(io::ErrorKind::TimedOut, format!("{phase} timed out: {e}"))
    } else {
        e
    }
}

/// One parsed HTTP response.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// The status code.
    pub status: u16,
    /// Header `(name, value)` pairs, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The response body.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// The first value of a header (name matched case-insensitively).
    pub fn header(&self, name: &str) -> Option<&str> {
        let want = name.to_ascii_lowercase();
        self.headers.iter().find(|(n, _)| *n == want).map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 text.
    ///
    /// # Errors
    ///
    /// Reports non-UTF-8 bodies.
    pub fn body_text(&self) -> Result<&str, String> {
        std::str::from_utf8(&self.body).map_err(|e| format!("body is not UTF-8: {e}"))
    }

    /// `true` when the server announced it will close the connection
    /// after this response (keep-alive cap reached, or shutdown).
    pub fn closes_connection(&self) -> bool {
        self.header("connection").is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Performs one request against `addr` and reads the full response,
/// using the default [`ClientTimeouts`].
///
/// # Errors
///
/// Propagates connection and transport failures, reports malformed
/// responses as [`io::ErrorKind::InvalidData`], and expired socket
/// deadlines as [`io::ErrorKind::TimedOut`].
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> io::Result<HttpResponse> {
    request_with(addr, method, path, body, ClientTimeouts::default())
}

/// [`request`] with explicit socket deadlines.
///
/// # Errors
///
/// As [`request`].
pub fn request_with(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
    timeouts: ClientTimeouts,
) -> io::Result<HttpResponse> {
    let invalid = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
    let mut stream = if timeouts.connect.is_zero() {
        TcpStream::connect(addr)?
    } else {
        let resolved = std::net::ToSocketAddrs::to_socket_addrs(addr)?
            .next()
            .ok_or_else(|| invalid(format!("no address for {addr:?}")))?;
        TcpStream::connect_timeout(&resolved, timeouts.connect)
            .map_err(|e| timeout_error("connect", e))?
    };
    let optional = |d: Duration| if d.is_zero() { None } else { Some(d) };
    stream.set_read_timeout(optional(timeouts.read))?;
    stream.set_write_timeout(optional(timeouts.write))?;
    let body = body.unwrap_or("");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .map_err(|e| timeout_error("request write", e))?;
    stream.flush().map_err(|e| timeout_error("request write", e))?;

    // The response grammar mirrors the request grammar closely enough to
    // reuse the request parser: swap the status line for a request line.
    let mut reader = BufReader::new(stream);
    let status_line =
        read_status_line(&mut reader).map_err(|e| timeout_error("response read", e))?;
    let mut parts = status_line.splitn(3, ' ');
    let (version, code) = match (parts.next(), parts.next()) {
        (Some(v), Some(c)) if v.starts_with("HTTP/") => (v, c),
        _ => return Err(invalid(format!("malformed status line {status_line:?}"))),
    };
    let _ = version;
    let status: u16 =
        code.parse().map_err(|e| invalid(format!("bad status code {code:?}: {e}")))?;
    // Re-feed the remainder as a bodiless request so header and body
    // handling stay in one place.
    let mut synthetic = Vec::from(&b"GET / HTTP/1.1\r\n"[..]);
    let mut rest = Vec::new();
    io::Read::read_to_end(&mut reader, &mut rest).map_err(|e| timeout_error("response read", e))?;
    synthetic.extend_from_slice(&rest);
    let parsed = Request::read_from(&mut BufReader::new(&synthetic[..]), MAX_RESPONSE_BODY)?;
    Ok(HttpResponse { status, headers: parsed.headers, body: parsed.body })
}

/// Reads the CRLF-terminated status line.
fn read_status_line<R: io::BufRead>(reader: &mut R) -> io::Result<String> {
    let mut line = String::new();
    reader.read_line(&mut line)?;
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    if line.is_empty() {
        return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "empty response"));
    }
    Ok(line)
}

/// Resolves `addr` and connects within the configured deadline.
fn connect(addr: &str, timeouts: ClientTimeouts) -> io::Result<TcpStream> {
    let stream = if timeouts.connect.is_zero() {
        TcpStream::connect(addr)?
    } else {
        let resolved = std::net::ToSocketAddrs::to_socket_addrs(addr)?.next().ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidData, format!("no address for {addr:?}"))
        })?;
        TcpStream::connect_timeout(&resolved, timeouts.connect)
            .map_err(|e| timeout_error("connect", e))?
    };
    let optional = |d: Duration| if d.is_zero() { None } else { Some(d) };
    stream.set_read_timeout(optional(timeouts.read))?;
    stream.set_write_timeout(optional(timeouts.write))?;
    Ok(stream)
}

/// A persistent keep-alive connection: one TCP stream carrying many
/// sequential requests, each response framed by its `Content-Length`
/// through [`ResponseParser`].
///
/// The server may close the connection after its per-connection request
/// cap (the last response carries `Connection: close`) or an idle
/// timeout; the next [`HttpConnection::request`] then fails with
/// [`io::ErrorKind::UnexpectedEof`] / a transport error and the caller
/// reconnects. Check [`HttpResponse::closes_connection`] to reconnect
/// proactively.
#[derive(Debug)]
pub struct HttpConnection {
    addr: String,
    stream: TcpStream,
    parser: ResponseParser,
}

impl HttpConnection {
    /// Connects to `addr` with the given socket deadlines.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect_to(addr: impl Into<String>, timeouts: ClientTimeouts) -> io::Result<Self> {
        let addr = addr.into();
        let stream = connect(&addr, timeouts)?;
        Ok(Self { addr, stream, parser: ResponseParser::new(MAX_RESPONSE_BODY) })
    }

    /// Performs one request on the persistent connection and reads its
    /// response.
    ///
    /// # Errors
    ///
    /// Transport failures (including the server having closed the
    /// connection between requests, surfaced as
    /// [`io::ErrorKind::UnexpectedEof`]); malformed responses as
    /// [`io::ErrorKind::InvalidData`].
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> io::Result<HttpResponse> {
        let body = body.unwrap_or("");
        write!(
            self.stream,
            "{method} {path} HTTP/1.1\r\nHost: {}\r\nContent-Length: {}\r\nConnection: keep-alive\r\n\r\n{body}",
            self.addr,
            body.len()
        )
        .map_err(|e| timeout_error("request write", e))?;
        self.stream.flush().map_err(|e| timeout_error("request write", e))?;
        let mut buf = [0u8; 16 * 1024];
        loop {
            if let Some(parsed) = self.parser.next_response()? {
                return Ok(HttpResponse {
                    status: parsed.status,
                    headers: parsed.headers,
                    body: parsed.body,
                });
            }
            match self.stream.read(&mut buf) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "server closed the keep-alive connection",
                    ))
                }
                Ok(n) => self.parser.feed(&buf[..n]),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(timeout_error("response read", e)),
            }
        }
    }
}

/// A convenience wrapper bound to one server address.
#[derive(Debug, Clone)]
pub struct Client {
    addr: String,
    timeouts: ClientTimeouts,
}

impl Client {
    /// A client for `addr` (`host:port`) with default timeouts.
    pub fn new(addr: impl Into<String>) -> Self {
        Self { addr: addr.into(), timeouts: ClientTimeouts::default() }
    }

    /// The same client with explicit socket deadlines.
    pub fn with_timeouts(mut self, timeouts: ClientTimeouts) -> Self {
        self.timeouts = timeouts;
        self
    }

    /// The server address this client targets.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// The socket deadlines this client applies.
    pub fn timeouts(&self) -> ClientTimeouts {
        self.timeouts
    }

    /// Submits an attack job body to `POST /v1/attacks`.
    ///
    /// # Errors
    ///
    /// Propagates transport failures.
    pub fn submit(&self, job_json: &str) -> io::Result<HttpResponse> {
        request_with(&self.addr, "POST", "/v1/attacks", Some(job_json), self.timeouts)
    }

    /// Fetches `GET /v1/attacks/{id}`.
    ///
    /// # Errors
    ///
    /// Propagates transport failures.
    pub fn status(&self, id: &str) -> io::Result<HttpResponse> {
        request_with(&self.addr, "GET", &format!("/v1/attacks/{id}"), None, self.timeouts)
    }

    /// Fetches the stored result CSV via `GET /v1/attacks/{id}/csv`.
    ///
    /// # Errors
    ///
    /// Propagates transport failures.
    pub fn csv(&self, id: &str) -> io::Result<HttpResponse> {
        request_with(&self.addr, "GET", &format!("/v1/attacks/{id}/csv"), None, self.timeouts)
    }

    /// Fetches `GET /healthz`.
    ///
    /// # Errors
    ///
    /// Propagates transport failures.
    pub fn healthz(&self) -> io::Result<HttpResponse> {
        request_with(&self.addr, "GET", "/healthz", None, self.timeouts)
    }

    /// Fetches `GET /metrics`.
    ///
    /// # Errors
    ///
    /// Propagates transport failures.
    pub fn metrics(&self) -> io::Result<HttpResponse> {
        request_with(&self.addr, "GET", "/metrics", None, self.timeouts)
    }

    /// Follows `GET /v1/attacks/{id}/progress` until the stream ends,
    /// invoking `on_line` for every JSONL record as it arrives and
    /// returning the final status code. The read deadline applies per
    /// read, so a job that keeps producing generations can stream far
    /// longer than one `timeouts.read`.
    ///
    /// # Errors
    ///
    /// Transport failures, malformed chunked framing as
    /// [`io::ErrorKind::InvalidData`].
    pub fn progress(&self, id: &str, mut on_line: impl FnMut(&str)) -> io::Result<u16> {
        let mut stream = connect(&self.addr, self.timeouts)?;
        write!(
            stream,
            "GET /v1/attacks/{id}/progress HTTP/1.1\r\nHost: {}\r\nConnection: close\r\n\r\n",
            self.addr
        )
        .map_err(|e| timeout_error("request write", e))?;
        stream.flush().map_err(|e| timeout_error("request write", e))?;
        let mut reader = BufReader::new(stream);
        let status_line =
            read_status_line(&mut reader).map_err(|e| timeout_error("response read", e))?;
        let code = status_line.split(' ').nth(1).unwrap_or("");
        let status: u16 = code.parse().map_err(|e| {
            io::Error::new(io::ErrorKind::InvalidData, format!("bad status code {code:?}: {e}"))
        })?;
        // Headers: read until the blank line, note the framing.
        let mut chunked = false;
        loop {
            let mut line = String::new();
            reader.read_line(&mut line).map_err(|e| timeout_error("response read", e))?;
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if line.to_ascii_lowercase().replace(' ', "") == "transfer-encoding:chunked" {
                chunked = true;
            }
        }
        let invalid = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
        if !chunked {
            // An error response (404 on an unknown job) is an ordinary
            // Connection: close body; deliver it as one line.
            let mut text = String::new();
            reader.read_to_string(&mut text).map_err(|e| timeout_error("response read", e))?;
            for line in text.lines().filter(|l| !l.is_empty()) {
                on_line(line);
            }
            return Ok(status);
        }
        // Decode chunks as they arrive so the callback observes the
        // stream live, carrying any partial line across chunks.
        let mut carry = String::new();
        loop {
            let mut size_line = String::new();
            reader.read_line(&mut size_line).map_err(|e| timeout_error("response read", e))?;
            let size = usize::from_str_radix(size_line.trim(), 16)
                .map_err(|e| invalid(format!("bad chunk size {:?}: {e}", size_line.trim())))?;
            let mut payload = vec![0u8; size + 2]; // payload + trailing CRLF
            reader.read_exact(&mut payload).map_err(|e| timeout_error("response read", e))?;
            if size == 0 {
                break;
            }
            payload.truncate(size);
            let chunk = std::str::from_utf8(&payload)
                .map_err(|e| invalid(format!("non-UTF-8 progress chunk: {e}")))?;
            carry.push_str(chunk);
            while let Some(nl) = carry.find('\n') {
                let line: String = carry.drain(..=nl).collect();
                let line = line.trim_end();
                if !line.is_empty() {
                    on_line(line);
                }
            }
        }
        if !carry.trim_end().is_empty() {
            on_line(carry.trim_end());
        }
        Ok(status)
    }

    /// Polls `GET /v1/attacks/{id}` until the job leaves `queued` /
    /// `running`, waiting `interval` between polls up to `deadline`.
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::TimedOut`] when the deadline expires, plus any
    /// transport failure.
    pub fn wait(
        &self,
        id: &str,
        interval: Duration,
        deadline: Duration,
    ) -> io::Result<HttpResponse> {
        let start = std::time::Instant::now();
        loop {
            let response = self.status(id)?;
            let text = response.body_text().unwrap_or("");
            if response.status != 200
                || !(text.contains("\"queued\"") || text.contains("\"running\""))
            {
                return Ok(response);
            }
            if start.elapsed() > deadline {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!("job {id} still pending after {deadline:?}"),
                ));
            }
            std::thread::sleep(interval);
        }
    }
}

/// A descriptive string for a reason phrase lookup, used by loadgen's
/// summary output.
pub fn describe_status(code: u16) -> String {
    format!("{code} {}", status_reason(code))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn read_timeout_surfaces_as_timed_out_instead_of_hanging() {
        // A server that accepts the connection and then says nothing.
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        let mute = std::thread::spawn(move || {
            // Hold the accepted socket open until the client gives up.
            let (stream, _) = listener.accept().expect("accept");
            std::thread::sleep(Duration::from_secs(2));
            drop(stream);
        });
        let timeouts = ClientTimeouts { read: Duration::from_millis(100), ..Default::default() };
        let started = std::time::Instant::now();
        let err = request_with(&addr, "GET", "/healthz", None, timeouts)
            .expect_err("a mute server must not produce a response");
        assert_eq!(err.kind(), io::ErrorKind::TimedOut, "{err}");
        assert!(err.to_string().contains("response read"), "{err}");
        // The old behaviour was an unbounded block; prove the deadline
        // actually bounded the wait.
        assert!(started.elapsed() < Duration::from_secs(2), "{:?}", started.elapsed());
        mute.join().expect("mute server");
    }

    #[test]
    fn client_timeouts_are_configurable_and_carried() {
        let custom = ClientTimeouts {
            connect: Duration::from_secs(1),
            read: Duration::from_secs(2),
            write: Duration::from_secs(3),
        };
        let client = Client::new("127.0.0.1:1").with_timeouts(custom);
        assert_eq!(client.timeouts(), custom);
        assert_eq!(ClientTimeouts::unlimited().read, Duration::ZERO);
    }
}
