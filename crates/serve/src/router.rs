//! The multi-process shard router: one front door, `N` worker servers.
//!
//! A single server process is bounded by its worker pool and its
//! allocator; the router scales the service across processes the same
//! way `Campaign` shards cells across threads. The parent process
//! (`serve_cli --shards N`) spawns `N` child servers — each with its
//! own reactor, queue and `jobs.jsonl` under a per-shard store
//! directory — and runs this router in front of them:
//!
//! ```text
//!                      ┌────────────┐
//!   clients ──────────▶│   router   │   (cell-hash / id routing)
//!                      └─┬───┬───┬──┘
//!                        │   │   │
//!              ┌─────────┘   │   └─────────┐
//!        ┌─────▼────┐  ┌─────▼────┐  ┌─────▼────┐
//!        │ shard 0  │  │ shard 1  │  │ shard 2  │   (own reactor +
//!        │ :auto    │  │ :auto    │  │ :auto    │    queue + jobs.jsonl)
//!        └──────────┘  └──────────┘  └──────────┘
//! ```
//!
//! **Submission routing is deterministic**: a job goes to shard
//! `fnv1a(cell identity) % N`, so the same cell always lands on the
//! same shard (and its store directory), no matter the submission
//! order or which jobs raced in between. **Id routing** exploits the
//! shards' strided id spaces — shard `k` issues ids `k+1, k+1+N, ...`
//! — so `(id - 1) % N` names the owning shard of any `job-<id>`
//! without a lookup table. Status polls, CSV fetches and progress
//! streams tunnel straight through; `/metrics` merges the shards'
//! Prometheus samples by summing; `/healthz` aggregates and lists the
//! shard pids. A dead shard answers `503` + `Retry-After` until the
//! supervisor respawns it (the restarted shard replays its own
//! `jobs.jsonl`, so accepted jobs survive a `kill -9`).

use crate::client::{request_with, ClientTimeouts, HttpResponse};
use crate::http::{Request, Response};
use crate::server::error_response;
use bea_core::campaign::CellSpec;
use bea_core::grid::fnv1a;
use bea_core::telemetry::JsonObject;
use bea_core::AttackJob;
use std::io::{self, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// One shard's live endpoint, as the supervisor last reported it.
#[derive(Debug, Clone, Default)]
struct ShardSlot {
    /// `host:port` of the running shard, `None` while it is down.
    addr: Option<String>,
    /// OS pid of the shard process (exposed via `/healthz` so tooling —
    /// and the crash-isolation test — can find a shard to kill).
    pid: Option<u32>,
}

/// The mutable shard directory shared between the router's connection
/// threads and the supervisor that (re)spawns shard processes.
#[derive(Debug, Default)]
pub struct ShardSet {
    slots: Mutex<Vec<ShardSlot>>,
}

impl ShardSet {
    /// A directory of `n` shards, all initially down.
    pub fn new(n: usize) -> Self {
        Self { slots: Mutex::new(vec![ShardSlot::default(); n.max(1)]) }
    }

    /// The shard count (fixed for the router's lifetime).
    pub fn len(&self) -> usize {
        self.slots.lock().expect("shard set lock").len()
    }

    /// `true` when the set holds no shards (never, in practice).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records shard `k` as up at `addr` with process id `pid`, or down
    /// when `addr` is `None`.
    pub fn set(&self, shard: usize, addr: Option<String>, pid: Option<u32>) {
        let mut slots = self.slots.lock().expect("shard set lock");
        if let Some(slot) = slots.get_mut(shard) {
            slot.addr = addr;
            slot.pid = pid;
        }
    }

    /// The address of shard `k`, when it is up.
    pub fn addr(&self, shard: usize) -> Option<String> {
        self.slots.lock().expect("shard set lock").get(shard).and_then(|s| s.addr.clone())
    }

    /// Every shard's `(addr, pid)`.
    fn snapshot(&self) -> Vec<(Option<String>, Option<u32>)> {
        self.slots.lock().expect("shard set lock").iter().map(|s| (s.addr.clone(), s.pid)).collect()
    }
}

/// The shard owning a cell: a deterministic hash of the cell identity,
/// mirroring how `Campaign` shards cells across threads. Every
/// submission of the same cell lands on the same shard regardless of
/// arrival order.
pub fn shard_for_cell(spec: &CellSpec, shards: usize) -> usize {
    let key = format!("{}|{}|{}", spec.group, spec.model_seed, spec.image_index);
    (fnv1a(key.as_bytes()) % shards.max(1) as u64) as usize
}

/// The shard owning `job-<id>` under strided id issuance (shard `k` of
/// `N` issues `k+1, k+1+N, ...`).
pub fn shard_for_id(id: u64, shards: usize) -> usize {
    ((id.saturating_sub(1)) % shards.max(1) as u64) as usize
}

/// The running router front door.
pub struct Router {
    shards: Arc<ShardSet>,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_handle: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for Router {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Router").field("addr", &self.addr).field("shards", &self.shards).finish()
    }
}

impl Router {
    /// Binds `bind_addr` and starts routing to `shards`.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn start(bind_addr: &str, shards: Arc<ShardSet>) -> io::Result<Router> {
        let listener = TcpListener::bind(bind_addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_handle = {
            let shards = Arc::clone(&shards);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || accept_loop(&listener, &shards, &stop))
        };
        Ok(Router { shards, addr, stop, accept_handle: Some(accept_handle) })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// `true` once a client requested `POST /v1/shutdown`; the
    /// supervisor polls this, then shuts the shards down.
    pub fn shutdown_requested(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// Stops accepting and joins the accept thread.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the accept loop so it observes the stop flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
    }
}

/// Deadlines for one proxied hop: generous reads (a CSV of a big cell
/// takes a moment to assemble), snappy connects (the shard is local).
fn hop_timeouts() -> ClientTimeouts {
    ClientTimeouts {
        connect: Duration::from_secs(5),
        read: Duration::from_secs(120),
        write: Duration::from_secs(30),
    }
}

/// Accepts connections until shutdown, one handler thread each (the
/// router is I/O-light; the shards do the heavy lifting).
fn accept_loop(listener: &TcpListener, shards: &Arc<ShardSet>, stop: &Arc<AtomicBool>) {
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let shards = Arc::clone(shards);
        let stop = Arc::clone(stop);
        std::thread::spawn(move || handle_connection(stream, &shards, &stop));
    }
}

/// Serves one client connection: a keep-alive request loop mirroring
/// the single-server blocking front-end.
fn handle_connection(stream: TcpStream, shards: &Arc<ShardSet>, stop: &Arc<AtomicBool>) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(30)));
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    });
    let mut stream = stream;
    loop {
        let request = match Request::read_from(&mut reader, bea_core::job::MAX_JOB_BODY_BYTES) {
            Ok(request) => request,
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                let _ = error_response(400, &e.to_string()).write_to(&mut stream);
                return;
            }
            Err(_) => return,
        };
        let keep_alive = request.wants_keep_alive();
        match dispatch(&request, shards, stop) {
            Dispatched::Response(response) => {
                if response.write_to_with(&mut stream, keep_alive).is_err() {
                    return;
                }
            }
            Dispatched::Tunnel(upstream) => {
                // Progress streams relay raw bytes until the shard ends
                // the chunked response; terminal on this connection.
                tunnel(upstream, &mut stream);
                return;
            }
        }
        if !keep_alive {
            return;
        }
    }
}

/// What the router decided to do with one request.
enum Dispatched {
    /// A complete response (locally composed or proxied).
    Response(Response),
    /// Relay this upstream connection's bytes to the client verbatim
    /// (the request has already been written upstream).
    Tunnel(TcpStream),
}

/// Routes one request: local composition for the aggregate endpoints,
/// a proxied hop for per-job traffic.
fn dispatch(request: &Request, shards: &Arc<ShardSet>, stop: &Arc<AtomicBool>) -> Dispatched {
    let path = request.path.split('?').next().unwrap_or("");
    let n = shards.len();
    match (request.method.as_str(), path) {
        ("GET", "/healthz") => Dispatched::Response(healthz(shards)),
        ("GET", "/metrics") => Dispatched::Response(merged_metrics(shards)),
        ("GET", "/transfer") => Dispatched::Response(merged_transfer(shards)),
        ("POST", "/v1/shutdown") => {
            stop.store(true, Ordering::SeqCst);
            for (addr, _) in shards.snapshot() {
                if let Some(addr) = addr {
                    let _ = request_with(&addr, "POST", "/v1/shutdown", None, hop_timeouts());
                }
            }
            Dispatched::Response(Response::json(
                200,
                &JsonObject::new().string("status", "stopping").finish(),
            ))
        }
        ("POST", "/v1/attacks") => {
            let job = match request.body_text().and_then(AttackJob::from_json) {
                Ok(job) => job,
                Err(e) => return Dispatched::Response(error_response(400, &e)),
            };
            let shard = shard_for_cell(&job.cell_spec(), n);
            Dispatched::Response(proxy(request, shards, shard))
        }
        ("GET", _) if path.starts_with("/v1/attacks/") => {
            let rest = &path["/v1/attacks/".len()..];
            let id_text = rest.strip_suffix("/csv").or_else(|| rest.strip_suffix("/progress"));
            route_by_id(request, shards, id_text.unwrap_or(rest), rest.ends_with("/progress"))
        }
        ("GET", _) if path.starts_with("/jobs/") && path.ends_with("/progress") => {
            let id_text = &path["/jobs/".len()..path.len() - "/progress".len()];
            route_by_id(request, shards, id_text, true)
        }
        (_, "/healthz" | "/metrics" | "/transfer" | "/v1/attacks" | "/v1/shutdown") => {
            Dispatched::Response(error_response(405, "method not allowed"))
        }
        _ => Dispatched::Response(error_response(404, "no such endpoint")),
    }
}

/// Routes a per-job request to the shard owning its id.
fn route_by_id(
    request: &Request,
    shards: &Arc<ShardSet>,
    id_text: &str,
    streaming: bool,
) -> Dispatched {
    let Some(id) = id_text.strip_prefix("job-").and_then(|t| t.parse::<u64>().ok()) else {
        return Dispatched::Response(error_response(404, &format!("malformed job id {id_text:?}")));
    };
    let shard = shard_for_id(id, shards.len());
    if streaming {
        match open_tunnel(request, shards, shard) {
            Ok(upstream) => Dispatched::Tunnel(upstream),
            Err(response) => Dispatched::Response(response),
        }
    } else {
        Dispatched::Response(proxy(request, shards, shard))
    }
}

/// The `503` a request aimed at a down shard receives; `Retry-After`
/// covers the supervisor's respawn latency.
fn shard_down(shard: usize) -> Response {
    error_response(503, &format!("shard {shard} is restarting, retry shortly"))
        .with_header("Retry-After", "1")
}

/// Proxies one request to `shard` and adapts the reply. Transport
/// failure reads as the shard being down mid-restart.
fn proxy(request: &Request, shards: &Arc<ShardSet>, shard: usize) -> Response {
    let Some(addr) = shards.addr(shard) else { return shard_down(shard) };
    let body = std::str::from_utf8(&request.body).ok();
    match request_with(&addr, &request.method, &request.path, body, hop_timeouts()) {
        Ok(upstream) => adapt(upstream),
        Err(_) => shard_down(shard),
    }
}

/// Rebuilds a proxied [`HttpResponse`] as a [`Response`] the router can
/// serialise with its own connection framing.
fn adapt(upstream: HttpResponse) -> Response {
    let content_type = upstream.header("content-type").unwrap_or("application/json").to_string();
    let retry = upstream.header("retry-after").map(str::to_string);
    let mut response = Response::new(upstream.status).with_body(&content_type, upstream.body);
    if let Some(retry) = retry {
        response = response.with_header("Retry-After", &retry);
    }
    response
}

/// Opens the upstream leg of a progress tunnel: connects to the shard,
/// forwards the request with `Connection: close`, hands the socket
/// back for raw relaying.
fn open_tunnel(
    request: &Request,
    shards: &Arc<ShardSet>,
    shard: usize,
) -> Result<TcpStream, Response> {
    let Some(addr) = shards.addr(shard) else { return Err(shard_down(shard)) };
    let mut upstream = TcpStream::connect(&addr).map_err(|_| shard_down(shard))?;
    let _ = upstream.set_write_timeout(Some(Duration::from_secs(30)));
    write!(
        upstream,
        "{} {} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n",
        request.method, request.path
    )
    .map_err(|_| shard_down(shard))?;
    upstream.flush().map_err(|_| shard_down(shard))?;
    Ok(upstream)
}

/// Relays bytes upstream → client until either side ends.
fn tunnel(mut upstream: TcpStream, client: &mut TcpStream) {
    let mut buf = [0u8; 16 * 1024];
    loop {
        match upstream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                if client.write_all(&buf[..n]).is_err() || client.flush().is_err() {
                    break;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        }
    }
}

/// Aggregated liveness: overall status (`ok` only when every shard
/// answers), per-shard state and pids.
fn healthz(shards: &Arc<ShardSet>) -> Response {
    let mut entries = Vec::new();
    let mut all_up = true;
    for (shard, (addr, pid)) in shards.snapshot().into_iter().enumerate() {
        let probe = addr
            .as_deref()
            .and_then(|a| request_with(a, "GET", "/healthz", None, hop_timeouts()).ok());
        let up = probe.as_ref().is_some_and(|r| r.status == 200);
        all_up &= up;
        let mut entry = JsonObject::new()
            .integer("shard", shard as u64)
            .string("status", if up { "ok" } else { "down" });
        if let Some(pid) = pid {
            entry = entry.integer("pid", u64::from(pid));
        }
        if let Some(addr) = &addr {
            entry = entry.string("addr", addr);
        }
        entries.push(entry.finish());
    }
    let body = JsonObject::new()
        .string("status", if all_up { "ok" } else { "degraded" })
        .integer("shards", shards.len() as u64)
        .raw("shard_status", &format!("[{}]", entries.join(",")))
        .finish();
    Response::json(200, &body)
}

/// Merges the shards' Prometheus text: samples with the same
/// `name{labels}` key sum; comment lines and sample order follow the
/// first answering shard, with keys only later shards expose appended.
fn merged_metrics(shards: &Arc<ShardSet>) -> Response {
    let mut texts = Vec::new();
    for (addr, _) in shards.snapshot() {
        let Some(addr) = addr else { continue };
        if let Ok(response) = request_with(&addr, "GET", "/metrics", None, hop_timeouts()) {
            if let Ok(text) = response.body_text() {
                texts.push(text.to_string());
            }
        }
    }
    if texts.is_empty() {
        return shard_down(0);
    }
    Response::new(200).with_body("text/plain; version=0.0.4", merge_prometheus(&texts).into_bytes())
}

/// The text-merge behind [`merged_metrics`], separable for tests.
pub fn merge_prometheus(texts: &[String]) -> String {
    let mut totals: std::collections::HashMap<String, f64> = std::collections::HashMap::new();
    let mut order: Vec<String> = Vec::new();
    // Comment lines (# HELP / # TYPE) keyed by the sample line that
    // follows them in the first text carrying it.
    let mut out = String::new();
    for text in texts {
        for line in text.lines() {
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let Some((key, value)) = line.rsplit_once(' ') else { continue };
            let Ok(value) = value.parse::<f64>() else { continue };
            let key = key.to_string();
            if !totals.contains_key(&key) {
                order.push(key.clone());
            }
            *totals.entry(key).or_insert(0.0) += value;
        }
    }
    // Emit in first-seen order, re-attaching the first text's comments
    // before the first sample that shares their metric name.
    let mut emitted_comments: std::collections::HashSet<String> = std::collections::HashSet::new();
    for key in &order {
        let name = key.split('{').next().unwrap_or(key).to_string();
        if emitted_comments.insert(name.clone()) {
            for line in texts[0].lines().filter(|l| l.starts_with('#')) {
                if line.split_whitespace().nth(2) == Some(name.as_str()) {
                    out.push_str(line);
                    out.push('\n');
                }
            }
        }
        let value = totals[key];
        if (value.fract()).abs() < f64::EPSILON {
            out.push_str(&format!("{key} {}\n", value as i64));
        } else {
            out.push_str(&format!("{key} {value}\n"));
        }
    }
    out
}

/// Merges the shards' `/transfer` summaries by concatenating their
/// matrix arrays (each shard's store holds its own cells).
fn merged_transfer(shards: &Arc<ShardSet>) -> Response {
    let mut matrices: Vec<String> = Vec::new();
    let mut reached = false;
    for (addr, _) in shards.snapshot() {
        let Some(addr) = addr else { continue };
        let Ok(response) = request_with(&addr, "GET", "/transfer", None, hop_timeouts()) else {
            continue;
        };
        reached = true;
        let Ok(text) = response.body_text() else { continue };
        if let Ok(parsed) = bea_core::telemetry::parse_json(text) {
            if let Some(list) = parsed.get("transfer").map(|v| v.render()) {
                // Strip the brackets and keep the comma-joined entries.
                let inner = list.trim().trim_start_matches('[').trim_end_matches(']').trim();
                if !inner.is_empty() {
                    matrices.push(inner.to_string());
                }
            }
        }
    }
    if !reached {
        return shard_down(0);
    }
    let joined = matrices.join(",");
    let count = if joined.is_empty() { 0 } else { joined.split("},{").count() as u64 };
    let body = JsonObject::new()
        .integer("matrices", count)
        .raw("transfer", &format!("[{joined}]"))
        .finish();
    Response::json(200, &body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_routing_is_deterministic_and_spread() {
        let specs: Vec<CellSpec> =
            (0..16u64).map(|i| CellSpec::new("yolo", 1 + (i % 4), (i % 8) as usize)).collect();
        let first: Vec<usize> = specs.iter().map(|s| shard_for_cell(s, 4)).collect();
        let second: Vec<usize> = specs.iter().map(|s| shard_for_cell(s, 4)).collect();
        assert_eq!(first, second, "routing must be a pure function of cell identity");
        assert!(first.iter().all(|&s| s < 4));
        let distinct: std::collections::HashSet<usize> = first.iter().copied().collect();
        assert!(distinct.len() > 1, "16 cells should not all land on one shard: {first:?}");
        assert!(specs.iter().all(|s| shard_for_cell(s, 1) == 0));
    }

    #[test]
    fn id_routing_matches_strided_issuance() {
        // Shard k of 4 issues k+1, k+5, k+9, ...
        for shard in 0..4u64 {
            for step in 0..8u64 {
                let id = shard + 1 + step * 4;
                assert_eq!(shard_for_id(id, 4), shard as usize, "id {id}");
            }
        }
        assert_eq!(shard_for_id(7, 1), 0);
    }

    #[test]
    fn prometheus_merge_sums_samples_and_keeps_structure() {
        let a = "# HELP jobs_total Jobs.\n# TYPE jobs_total counter\njobs_total 3\nqueue_depth 1\n"
            .to_string();
        let b = "# HELP jobs_total Jobs.\n# TYPE jobs_total counter\njobs_total 4\nqueue_depth 2\nonly_b 9\n"
            .to_string();
        let merged = merge_prometheus(&[a, b]);
        assert!(merged.contains("jobs_total 7\n"), "{merged}");
        assert!(merged.contains("queue_depth 3\n"), "{merged}");
        assert!(merged.contains("only_b 9\n"), "{merged}");
        assert!(merged.contains("# HELP jobs_total Jobs.\n"), "{merged}");
        let first_sample = merged.lines().position(|l| l == "jobs_total 7").unwrap();
        let comment = merged.lines().position(|l| l.starts_with("# HELP jobs_total")).unwrap();
        assert!(comment < first_sample, "comments precede their samples:\n{merged}");
    }

    #[test]
    fn shard_set_tracks_liveness() {
        let set = ShardSet::new(2);
        assert_eq!(set.len(), 2);
        assert!(set.addr(0).is_none());
        set.set(0, Some("127.0.0.1:1".to_string()), Some(42));
        assert_eq!(set.addr(0).as_deref(), Some("127.0.0.1:1"));
        set.set(0, None, None);
        assert!(set.addr(0).is_none(), "a dead shard loses its address");
        assert!(!set.is_empty());
    }
}
