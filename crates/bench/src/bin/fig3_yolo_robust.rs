//! **E5 — Figure 3**: YOLO's robustness on image no. 10.
//!
//! The paper shows that "even when the perturbation intensity on the right
//! is already human-recognizable, the resulting prediction remains the
//! same" for YOLO. This harness applies increasingly strong right-half
//! noise to the YOLO model and reports how little `obj_degrad` moves; the
//! strongest case is saved as a before/after PPM pair.
//!
//! Run: `cargo run --release -p bea-bench --bin fig3_yolo_robust [--full]`

use bea_bench::figures::save_case_study;
use bea_bench::{fmt, Harness};
use bea_core::objectives::obj_degrad;
use bea_core::report::print_table;
use bea_detect::Architecture;
use bea_image::{metrics, NoiseKind, RegionConstraint};
use bea_tensor::WeightInit;

fn main() {
    let harness = Harness::from_args();
    let model = harness.model(Architecture::Yolo, 1);
    let img = harness.dataset().image(10);
    let clean = model.detect(&img);
    println!("Figure 3 — {} on image no. 10 ({} clean detections)", model.name(), clean.len());

    let mut rows = Vec::new();
    let mut strongest = None;
    for std_dev in [10.0f32, 25.0, 50.0, 90.0, 140.0] {
        // Average obj_degrad over several noise draws per intensity level.
        let mut degrads = Vec::new();
        let mut example = None;
        for seed in 0..5u64 {
            let mut mask = NoiseKind::Gaussian { std_dev }.generate(
                img.width(),
                img.height(),
                &mut WeightInit::from_seed(seed),
            );
            RegionConstraint::RightHalf.apply(&mut mask);
            let perturbed_img = mask.apply(&img);
            let perturbed = model.detect(&perturbed_img);
            degrads.push(obj_degrad(&clean, &perturbed));
            if seed == 0 {
                example = Some((perturbed_img, perturbed));
            }
        }
        let mean = degrads.iter().sum::<f64>() / degrads.len() as f64;
        let (perturbed_img, perturbed) = example.expect("seed 0 ran");
        let psnr = metrics::psnr(&img, &perturbed_img).expect("same size");
        rows.push(vec![
            fmt(std_dev as f64, 0),
            fmt(psnr, 1),
            fmt(mean, 3),
            fmt(degrads.iter().cloned().fold(f64::MAX, f64::min), 3),
        ]);
        strongest = Some((perturbed_img, perturbed));
    }
    print_table(&["noise std (right half)", "PSNR dB", "mean obj_degrad", "min obj_degrad"], &rows);
    println!(
        "\nexpected shape: obj_degrad stays close to 1.0 even at human-visible noise \
         (PSNR < 20 dB) — the single-stage detector's local receptive fields shield the \
         untouched left half"
    );

    if let Some((perturbed_img, perturbed)) = strongest {
        let (a, b) = save_case_study("fig3", &img, &clean, &perturbed_img, &perturbed);
        println!("saved {} and {}", a.display(), b.display());
    }
}
