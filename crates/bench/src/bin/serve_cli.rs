//! Boots the attack server — single-process, or a multi-process shard
//! router.
//!
//! ```text
//! cargo run --release -p bea-bench --bin serve_cli -- \
//!     --addr 127.0.0.1:7878 --workers 4 --queue 64 \
//!     --out target/experiments/serve
//! ```
//!
//! Serves until `POST /v1/shutdown` (or SIGKILL — accepted jobs survive
//! either through the store's job log). `--smoke` swaps in the 4-image
//! smoke dataset for fast local and CI runs.
//!
//! With `--shards N` (N ≥ 2) this process becomes a supervisor: it
//! spawns `N` copies of itself as worker shards — each with its own
//! reactor, queue and `jobs.jsonl` under `<out>/shard-<k>` — and runs
//! the routing front door on `--addr`. Submissions route by a
//! deterministic hash of the job's cell identity; ids are strided
//! (shard `k` issues `k+1, k+1+N, ...`) so `GET /v1/attacks/job-<id>`
//! finds its owner without a lookup. A crashed shard is respawned and
//! replays its own job log, so accepted jobs survive `kill -9`.

use bea_bench::args::{self, ArgParser};
use bea_scene::SyntheticKitti;
use bea_serve::{Router, Server, ServerConfig, ShardSet, TenantPolicy};
use std::io::{self, BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Child, Command, ExitCode, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Clone)]
struct Options {
    addr: String,
    workers: usize,
    queue: usize,
    out: PathBuf,
    smoke: bool,
    drain_secs: u64,
    threads: usize,
    reactor: bool,
    batch: usize,
    tenant_rate: f64,
    tenant_burst: f64,
    tenant_quota: usize,
    shards: usize,
    idle_secs: u64,
    conn_requests: usize,
    id_start: u64,
    id_stride: u64,
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options {
        addr: "127.0.0.1:7878".to_string(),
        workers: 2,
        queue: 64,
        out: PathBuf::from("target/experiments/serve"),
        smoke: false,
        drain_secs: 60,
        threads: 1,
        reactor: false,
        batch: 1,
        tenant_rate: 0.0,
        tenant_burst: 1.0,
        tenant_quota: 0,
        shards: 1,
        idle_secs: 30,
        conn_requests: 1000,
        id_start: 1,
        id_stride: 1,
    };
    let mut args = ArgParser::from_env();
    while let Some(flag) = args.next_flag() {
        match flag.as_str() {
            "--addr" => options.addr = args.value(&flag)?,
            "--workers" => options.workers = args.parse(&flag)?,
            "--queue" => options.queue = args.parse(&flag)?,
            "--out" => options.out = PathBuf::from(args.value(&flag)?),
            "--smoke" => options.smoke = true,
            "--drain-secs" => options.drain_secs = args.parse(&flag)?,
            "--threads" => options.threads = args.parse(&flag)?,
            "--reactor" => options.reactor = true,
            "--batch" => options.batch = args.parse(&flag)?,
            "--tenant-rate" => options.tenant_rate = args.parse(&flag)?,
            "--tenant-burst" => options.tenant_burst = args.parse(&flag)?,
            "--tenant-quota" => options.tenant_quota = args.parse(&flag)?,
            "--shards" => options.shards = args.parse(&flag)?,
            "--idle-secs" => options.idle_secs = args.parse(&flag)?,
            "--conn-requests" => options.conn_requests = args.parse(&flag)?,
            "--id-start" => options.id_start = args.parse(&flag)?,
            "--id-stride" => options.id_stride = args.parse(&flag)?,
            "--help" | "-h" => {
                return Err("usage: serve_cli [--addr HOST:PORT] [--workers N] [--queue N] \
                            [--out DIR] [--smoke] [--drain-secs N] [--threads N] [--reactor] \
                            [--batch N] [--tenant-rate R] [--tenant-burst B] [--tenant-quota N] \
                            [--shards N] [--idle-secs N] [--conn-requests N]\n\
                            --smoke serves the 4-image smoke dataset (fast jobs for CI)\n\
                            --threads sets kernel worker threads per job (default 1: the worker\n\
                            pool already runs jobs in parallel; 0 = all cores); served CSVs are\n\
                            identical at any thread count\n\
                            --reactor multiplexes all connections on one epoll thread instead of\n\
                            a thread per connection (Linux; elsewhere it falls back)\n\
                            --batch stacks up to N compatible queued jobs into shared forward\n\
                            passes (default 1 = off); served CSVs are identical either way\n\
                            --tenant-rate/--tenant-burst set the per-tenant token bucket\n\
                            (submissions/s and burst size; rate 0 = unlimited) and\n\
                            --tenant-quota caps each tenant's queued+running jobs (0 = unlimited)\n\
                            --shards N (N >= 2) runs N worker processes behind a routing front\n\
                            door: submissions shard by cell-identity hash, each shard persists\n\
                            under <out>/shard-<k>, crashed shards respawn and replay their log\n\
                            --idle-secs drops connections silent for that long (default 30)\n\
                            --conn-requests caps requests served per keep-alive connection\n\
                            (default 1000)\n\
                            --id-start/--id-stride set the job-id sequence (used internally by\n\
                            the shard supervisor; defaults 1/1)\n\
                            POST /v1/attacks submits a job; GET /v1/attacks/{id}/progress streams\n\
                            per-generation telemetry; GET /metrics exposes Prometheus text;\n\
                            POST /v1/shutdown drains in-flight work and exits"
                    .into())
            }
            other => return Err(args::unknown_flag(other)),
        }
    }
    if options.batch == 0 {
        return Err("--batch must be at least 1".into());
    }
    if options.shards == 0 {
        return Err("--shards must be at least 1".into());
    }
    if options.id_stride == 0 {
        return Err("--id-stride must be at least 1".into());
    }
    Ok(options)
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    if options.shards >= 2 {
        return run_router(&options);
    }
    run_single(&options)
}

/// The single-process mode: one [`Server`] on `--addr`.
fn run_single(options: &Options) -> ExitCode {
    let config = ServerConfig {
        addr: options.addr.clone(),
        workers: options.workers,
        queue_capacity: options.queue,
        store_dir: options.out.clone(),
        dataset: if options.smoke {
            SyntheticKitti::smoke_set()
        } else {
            SyntheticKitti::evaluation_set()
        },
        drain_deadline: Duration::from_secs(options.drain_secs),
        request_log: true,
        kernel_threads: options.threads,
        reactor: options.reactor,
        batch_max: options.batch,
        tenant_policy: TenantPolicy {
            rate: options.tenant_rate,
            burst: options.tenant_burst,
            quota: options.tenant_quota,
        },
        done_retention: 64,
        idle_timeout: Duration::from_secs(options.idle_secs.max(1)),
        conn_requests_max: options.conn_requests,
        id_start: options.id_start,
        id_stride: options.id_stride,
    };
    let server = match Server::start(config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("server failed to start: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "bea-serve listening on http://{} ({} front-end, batch {} per group)",
        server.addr(),
        if options.reactor { "reactor" } else { "thread-per-connection" },
        options.batch,
    );
    println!("store: {}", options.out.display());
    println!("endpoints: POST /v1/attacks, GET /v1/attacks/{{id}}[/csv|/progress], GET /healthz, GET /metrics, POST /v1/shutdown");

    // Serve until a client asks us to stop.
    while !server.shutdown_requested() {
        std::thread::sleep(Duration::from_millis(100));
    }
    println!("shutdown requested, draining...");
    let report = server.shutdown();
    println!(
        "drained {} in-flight job(s), requeued {} for the next start{}",
        report.drained,
        report.requeued,
        if report.deadline_expired { " (drain deadline expired)" } else { "" }
    );
    ExitCode::SUCCESS
}

/// One supervised shard process.
struct Shard {
    child: Child,
    addr: String,
}

/// Spawns shard `k`: this executable again, bound to an ephemeral port,
/// persisting under `<out>/shard-<k>`, issuing ids `k+1, k+1+N, ...`.
/// Blocks until the child prints its listening address.
fn spawn_shard(options: &Options, shard: usize) -> io::Result<Shard> {
    let exe = std::env::current_exe()?;
    let mut cmd = Command::new(exe);
    cmd.arg("--addr")
        .arg("127.0.0.1:0")
        .arg("--workers")
        .arg(options.workers.to_string())
        .arg("--queue")
        .arg(options.queue.to_string())
        .arg("--out")
        .arg(options.out.join(format!("shard-{shard}")))
        .arg("--drain-secs")
        .arg(options.drain_secs.to_string())
        .arg("--threads")
        .arg(options.threads.to_string())
        .arg("--batch")
        .arg(options.batch.to_string())
        .arg("--tenant-rate")
        .arg(options.tenant_rate.to_string())
        .arg("--tenant-burst")
        .arg(options.tenant_burst.to_string())
        .arg("--tenant-quota")
        .arg(options.tenant_quota.to_string())
        .arg("--idle-secs")
        .arg(options.idle_secs.to_string())
        .arg("--conn-requests")
        .arg(options.conn_requests.to_string())
        .arg("--id-start")
        .arg((shard as u64 + 1).to_string())
        .arg("--id-stride")
        .arg((options.shards as u64).to_string())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit());
    if options.smoke {
        cmd.arg("--smoke");
    }
    if options.reactor {
        cmd.arg("--reactor");
    }
    let mut child = cmd.spawn()?;
    let stdout = child.stdout.take().expect("piped child stdout");
    let mut reader = BufReader::new(stdout);
    let addr = loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            let _ = child.kill();
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                format!("shard {shard} exited before announcing its address"),
            ));
        }
        if let Some(rest) = line.split("listening on http://").nth(1) {
            let addr = rest.split_whitespace().next().unwrap_or("").to_string();
            if !addr.is_empty() {
                println!("[shard {shard}] {}", line.trim_end());
                break addr;
            }
        }
    };
    // Keep relaying the shard's output so its logs stay visible.
    std::thread::spawn(move || {
        for line in reader.lines().map_while(Result::ok) {
            println!("[shard {shard}] {line}");
        }
    });
    Ok(Shard { child, addr })
}

/// The supervisor mode: `N` shard processes behind one [`Router`].
fn run_router(options: &Options) -> ExitCode {
    let shard_set = Arc::new(ShardSet::new(options.shards));
    let mut shards: Vec<Shard> = Vec::with_capacity(options.shards);
    for k in 0..options.shards {
        match spawn_shard(options, k) {
            Ok(shard) => {
                shard_set.set(k, Some(shard.addr.clone()), Some(shard.child.id()));
                shards.push(shard);
            }
            Err(e) => {
                eprintln!("spawning shard {k} failed: {e}");
                for mut shard in shards {
                    let _ = shard.child.kill();
                }
                return ExitCode::FAILURE;
            }
        }
    }
    let router = match Router::start(&options.addr, Arc::clone(&shard_set)) {
        Ok(router) => router,
        Err(e) => {
            eprintln!("router failed to start: {e}");
            for shard in &mut shards {
                let _ = shard.child.kill();
            }
            return ExitCode::FAILURE;
        }
    };
    println!("bea-serve listening on http://{} (router, {} shards)", router.addr(), options.shards);
    println!("store: {} (per-shard subdirectories)", options.out.display());
    println!("endpoints: POST /v1/attacks, GET /v1/attacks/{{id}}[/csv|/progress], GET /healthz, GET /metrics, POST /v1/shutdown");

    // Supervise: respawn crashed shards until shutdown is requested. A
    // respawned shard replays its own jobs.jsonl, so every job it had
    // accepted before dying re-enqueues and runs.
    while !router.shutdown_requested() {
        for (k, shard) in shards.iter_mut().enumerate() {
            match shard.child.try_wait() {
                Ok(Some(status)) => {
                    if router.shutdown_requested() {
                        // The broadcast already stopped it; draining,
                        // not crashing. Don't resurrect it.
                        continue;
                    }
                    eprintln!("shard {k} died ({status}); respawning");
                    shard_set.set(k, None, None);
                    match spawn_shard(options, k) {
                        Ok(fresh) => {
                            shard_set.set(k, Some(fresh.addr.clone()), Some(fresh.child.id()));
                            *shard = fresh;
                        }
                        Err(e) => eprintln!("respawning shard {k} failed: {e}; retrying"),
                    }
                }
                Ok(None) => {}
                Err(e) => eprintln!("waiting on shard {k} failed: {e}"),
            }
        }
        std::thread::sleep(Duration::from_millis(100));
    }

    println!("shutdown requested, stopping shards...");
    router.shutdown();
    // The router already broadcast /v1/shutdown; give each shard its
    // drain window, then make sure it is gone.
    let deadline = Instant::now() + Duration::from_secs(options.drain_secs + 10);
    for (k, shard) in shards.iter_mut().enumerate() {
        loop {
            match shard.child.try_wait() {
                Ok(Some(_)) => break,
                Ok(None) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(100));
                }
                _ => {
                    eprintln!("shard {k} did not drain in time; killing");
                    let _ = shard.child.kill();
                    let _ = shard.child.wait();
                    break;
                }
            }
        }
    }
    ExitCode::SUCCESS
}
