//! A bounded multi-producer multi-consumer job queue with explicit
//! backpressure — the admission-control primitive behind `bea-serve`.
//!
//! The queue is deliberately simple: a `Mutex<VecDeque>` plus one
//! `Condvar`. [`BoundedQueue::try_push`] never blocks — a full queue is
//! reported to the producer (HTTP `429` upstream) instead of buffering
//! without bound, and a closed queue refuses new work during shutdown.
//! [`BoundedQueue::pop`] blocks consumers until an item arrives or the
//! queue closes; after [`BoundedQueue::close`], consumers stop
//! immediately and the undrained items are recovered with
//! [`BoundedQueue::drain_remaining`] so the caller can persist them.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why [`BoundedQueue::try_push`] refused an item; the item rides along
/// so the producer keeps ownership.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue holds `capacity` items — back off and retry.
    Full(T),
    /// The queue is shutting down and accepts no new work.
    Closed(T),
}

impl<T> PushError<T> {
    /// The refused item.
    pub fn into_inner(self) -> T {
        match self {
            PushError::Full(item) | PushError::Closed(item) => item,
        }
    }
}

struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// The bounded MPMC queue. See the [module docs](self).
pub struct BoundedQueue<T> {
    state: Mutex<QueueState<T>>,
    available: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` items (at least 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            state: Mutex::new(QueueState { items: VecDeque::new(), closed: false }),
            available: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue lock").items.len()
    }

    /// `true` when no items are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `true` once [`BoundedQueue::close`] ran.
    pub fn is_closed(&self) -> bool {
        self.state.lock().expect("queue lock").closed
    }

    /// Enqueues without blocking.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] at capacity, [`PushError::Closed`] after
    /// [`BoundedQueue::close`]; both return the item.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut state = self.state.lock().expect("queue lock");
        if state.closed {
            return Err(PushError::Closed(item));
        }
        if state.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        state.items.push_back(item);
        drop(state);
        self.available.notify_one();
        Ok(())
    }

    /// Dequeues the oldest item, blocking while the queue is empty and
    /// open. Returns `None` once the queue closes — immediately, even if
    /// items remain: close means "start no new work", and the leftovers
    /// are recovered with [`BoundedQueue::drain_remaining`].
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("queue lock");
        loop {
            if state.closed {
                return None;
            }
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            state = self.available.wait(state).expect("queue lock");
        }
    }

    /// Closes the queue: producers get [`PushError::Closed`], blocked and
    /// future [`BoundedQueue::pop`] calls return `None`. Idempotent.
    pub fn close(&self) {
        self.state.lock().expect("queue lock").closed = true;
        self.available.notify_all();
    }

    /// Removes and returns every item still queued (ordinarily called
    /// after [`BoundedQueue::close`], to persist work that never started).
    pub fn drain_remaining(&self) -> Vec<T> {
        self.state.lock().expect("queue lock").items.drain(..).collect()
    }
}

impl<T> std::fmt::Debug for BoundedQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BoundedQueue")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .field("closed", &self.is_closed())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn queue_is_fifo_and_bounded() {
        let queue = BoundedQueue::new(2);
        assert_eq!(queue.capacity(), 2);
        queue.try_push(1).unwrap();
        queue.try_push(2).unwrap();
        assert_eq!(queue.try_push(3), Err(PushError::Full(3)));
        assert_eq!(queue.len(), 2);
        assert_eq!(queue.pop(), Some(1));
        queue.try_push(3).unwrap();
        assert_eq!(queue.pop(), Some(2));
        assert_eq!(queue.pop(), Some(3));
        assert!(queue.is_empty());
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let queue = BoundedQueue::new(0);
        assert_eq!(queue.capacity(), 1);
        queue.try_push(7).unwrap();
        assert!(matches!(queue.try_push(8), Err(PushError::Full(8))));
    }

    #[test]
    fn close_refuses_producers_and_releases_consumers() {
        let queue: Arc<BoundedQueue<u32>> = Arc::new(BoundedQueue::new(4));
        let waiter = {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || queue.pop())
        };
        // Give the consumer a moment to block on the empty queue.
        std::thread::sleep(std::time::Duration::from_millis(20));
        queue.try_push(1).unwrap();
        queue.try_push(2).unwrap();
        queue.close();
        assert_eq!(queue.try_push(3), Err(PushError::Closed(3)));
        assert_eq!(PushError::Closed(3).into_inner(), 3);
        // The blocked consumer saw either the pushed item or the close.
        let seen = waiter.join().unwrap();
        assert!(seen == Some(1) || seen.is_none(), "got {seen:?}");
        // Close wins over remaining items; they drain explicitly.
        assert_eq!(queue.pop(), None);
        let mut rest = queue.drain_remaining();
        if seen == Some(1) {
            assert_eq!(rest, vec![2]);
        } else {
            rest.sort_unstable();
            assert_eq!(rest, vec![1, 2]);
        }
        assert!(queue.is_empty());
    }

    #[test]
    fn concurrent_producers_and_consumers_account_for_every_item() {
        const PRODUCERS: usize = 4;
        const PER_PRODUCER: usize = 200;
        let queue: Arc<BoundedQueue<usize>> = Arc::new(BoundedQueue::new(8));
        let consumed = Arc::new(AtomicUsize::new(0));
        let sum = Arc::new(AtomicUsize::new(0));
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let queue = Arc::clone(&queue);
                let consumed = Arc::clone(&consumed);
                let sum = Arc::clone(&sum);
                std::thread::spawn(move || {
                    while let Some(item) = queue.pop() {
                        consumed.fetch_add(1, Ordering::Relaxed);
                        sum.fetch_add(item, Ordering::Relaxed);
                    }
                })
            })
            .collect();
        let producers: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let queue = Arc::clone(&queue);
                std::thread::spawn(move || {
                    for k in 0..PER_PRODUCER {
                        let mut item = p * PER_PRODUCER + k;
                        // Spin on Full: the bound is backpressure, not loss.
                        loop {
                            match queue.try_push(item) {
                                Ok(()) => break,
                                Err(PushError::Full(back)) => {
                                    item = back;
                                    std::thread::yield_now();
                                }
                                Err(PushError::Closed(_)) => panic!("closed mid-run"),
                            }
                        }
                    }
                })
            })
            .collect();
        for producer in producers {
            producer.join().unwrap();
        }
        // All items pushed; let consumers finish the backlog, then close.
        while !queue.is_empty() {
            std::thread::yield_now();
        }
        queue.close();
        for consumer in consumers {
            consumer.join().unwrap();
        }
        let total = PRODUCERS * PER_PRODUCER;
        assert_eq!(consumed.load(Ordering::Relaxed), total);
        assert_eq!(sum.load(Ordering::Relaxed), (0..total).sum::<usize>());
    }
}
