//! **E11 — Section II**: NSGA-II vs GenAttack vs random noise.
//!
//! The paper positions itself against GenAttack, a single-objective GA
//! that "uses a single-objective optimization approach with the sole aim
//! of changing the prediction class; controlling the amount of
//! perturbation is set as an adaptive hyper-parameter that is not
//! optimized explicitly". This harness runs all three methods at an equal
//! detector-evaluation budget and compares the degradation they reach and
//! the perturbation they spend.
//!
//! Run: `cargo run --release -p bea-bench --bin baseline_compare [--full]`

use bea_bench::{fmt, Harness};
use bea_core::attack::ButterflyAttack;
use bea_core::baseline::{random_noise_baseline, GenAttack, GenAttackConfig};
use bea_core::objectives::{obj_intensity, DistanceField};
use bea_core::report::print_table;
use bea_detect::Architecture;
use bea_image::RegionConstraint;
use bea_tensor::norm::NormKind;

fn main() {
    let harness = Harness::from_args();
    let attack_config = harness.attack_config();
    let attack = ButterflyAttack::new(attack_config.clone());
    let img = harness.dataset().image(0);

    let mut rows = Vec::new();
    for arch in Architecture::ALL {
        let model = harness.model(arch, 1);
        let clean = model.detect(&img);
        let field = DistanceField::new(img.width(), img.height(), &clean, attack_config.epsilon);

        // NSGA-II (ours): the best-degradation champion plus the knee
        // point, to show the front covers several operating points.
        let outcome = attack.attack(model.as_ref(), &img);
        let budget = outcome.evaluations();
        let ours = outcome.best_degradation().expect("front never empty");
        rows.push(vec![
            arch.name().to_string(),
            "NSGA-II (paper)".into(),
            budget.to_string(),
            fmt(ours.objectives()[1], 3),
            fmt(ours.objectives()[0], 1),
            fmt(ours.objectives()[2], 4),
        ]);
        if let Some(knee) =
            bea_nsga2::pareto::knee_point(outcome.result().population(), outcome.directions())
        {
            rows.push(vec![
                arch.name().to_string(),
                "NSGA-II knee".into(),
                budget.to_string(),
                fmt(knee.objectives()[1], 3),
                fmt(knee.objectives()[0], 1),
                fmt(knee.objectives()[2], 4),
            ]);
        }

        // GenAttack at the same budget: pop * (gens + 1) = budget.
        let ga_config = GenAttackConfig {
            population_size: attack_config.nsga2.population_size,
            generations: attack_config.nsga2.generations,
            constraint: RegionConstraint::RightHalf,
            ..GenAttackConfig::default()
        };
        let ga = GenAttack::new(ga_config).run(model.as_ref(), &img);
        rows.push(vec![
            arch.name().to_string(),
            "GenAttack-style".into(),
            ga.evaluations.to_string(),
            fmt(ga.best_fitness, 3),
            fmt(obj_intensity(&ga.best_mask, NormKind::L2), 1),
            fmt(field.objective_normalized(&ga.best_mask), 4),
        ]);

        // Random noise at the same budget, intensity matched to ours.
        let noise_budget = ours.objectives()[0].max(500.0) * 2.0;
        let random = random_noise_baseline(
            model.as_ref(),
            &img,
            noise_budget,
            budget,
            RegionConstraint::RightHalf,
            7,
        );
        rows.push(vec![
            arch.name().to_string(),
            "random noise".into(),
            random.evaluations.to_string(),
            fmt(random.best_degrad, 3),
            fmt(random.best_intensity, 1),
            fmt(field.objective_normalized(&random.best_mask), 4),
        ]);
    }

    println!("\nBaseline comparison at equal evaluation budget");
    print_table(&["arch", "method", "evals", "obj_degrad", "obj_intensity", "obj_dist"], &rows);
    println!(
        "\nexpected shape: single-objective methods can match the raw degradation, but \
         they deliver ONE operating point — NSGA-II's champions come from a front that \
         simultaneously covers low-intensity and high-obj_dist masks (see the extra \
         'NSGA-II knee' row), which is what the paper's formulation buys."
    );
}
