//! **E7 — Figure 5**: ghost objects (TN → FP).
//!
//! The paper's Figure 5 shows a "non-existing person object" appearing on
//! the completely unmodified left side while only the right half is
//! perturbed. This harness scans attack outcomes for TN→FP transitions
//! whose ghost sits on the untouched left half and saves the first case.
//!
//! Run: `cargo run --release -p bea-bench --bin fig5_ghost [--full]`

use bea_bench::figures::save_case_study;
use bea_bench::{fmt, Harness};
use bea_core::attack::ButterflyAttack;
use bea_core::report::print_table;
use bea_core::{ErrorTransition, TransitionReport};
use bea_detect::Architecture;

fn main() {
    let harness = Harness::from_args();
    let attack = ButterflyAttack::new(harness.attack_config());

    let mut rows = Vec::new();
    let mut case = None;
    'outer: for arch in [Architecture::Detr, Architecture::Yolo] {
        for &seed in &harness.model_seeds() {
            let model = harness.model(arch, seed);
            for &image_index in &harness.image_indices() {
                let scene = harness.dataset().scene(image_index);
                let img = scene.render();
                let half = img.width() as f32 / 2.0;
                let clean = model.detect(&img);
                let outcome = attack.attack(model.as_ref(), &img);
                // Scan the whole front: ghosts often appear on
                // non-champion members.
                for member in outcome.result().pareto_front() {
                    let perturbed_img = member.genome().apply(&img);
                    let perturbed = model.detect(&perturbed_img);
                    let report =
                        TransitionReport::analyze(&scene.ground_truths(), &clean, &perturbed);
                    let left_ghosts: Vec<_> = report
                        .transitions
                        .iter()
                        .filter_map(|t| match t {
                            ErrorTransition::TnToFp { ghost, class } if ghost.cx < half => {
                                Some((*ghost, *class))
                            }
                            _ => None,
                        })
                        .collect();
                    if !left_ghosts.is_empty() {
                        let (ghost, class) = left_ghosts[0];
                        rows.push(vec![
                            model.name().to_string(),
                            image_index.to_string(),
                            class.to_string(),
                            format!("({:.0},{:.0})", ghost.cx, ghost.cy),
                            fmt(member.objectives()[0], 1),
                            fmt(member.objectives()[1], 3),
                        ]);
                        if case.is_none() {
                            case = Some(save_case_study(
                                "fig5",
                                &img,
                                &clean,
                                &perturbed_img,
                                &perturbed,
                            ));
                        }
                        if rows.len() >= 5 {
                            break 'outer;
                        }
                        break;
                    }
                }
            }
        }
    }

    println!("\nFigure 5 — ghost objects on the unmodified left half");
    if rows.is_empty() {
        println!("no left-half ghosts found at this scale — rerun with --full");
        return;
    }
    print_table(
        &["model", "image", "ghost class", "ghost centre", "intensity", "obj_degrad"],
        &rows,
    );
    if let Some((a, b)) = case {
        println!("\nsaved {} and {}", a.display(), b.display());
    }
}
