//! Detections and predictions.

use bea_scene::{BBox, ObjectClass};
use bea_tensor::{insertion_sort_by, PoolVec};
use std::fmt;

/// One valid bounding-box prediction `B = (cl, x, y, l, w)` with a
/// confidence score.
///
/// The paper's "no object" class ⊥ is represented by *absence* from a
/// [`Prediction`]; every `Detection` carries a valid class.
///
/// # Examples
///
/// ```
/// use bea_detect::Detection;
/// use bea_scene::{BBox, ObjectClass};
///
/// let det = Detection::new(ObjectClass::Car, BBox::new(40.0, 30.0, 26.0, 12.0), 0.9);
/// assert_eq!(det.class, ObjectClass::Car);
/// assert!(det.score > 0.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Detection {
    /// Predicted class (`cl` in the paper).
    pub class: ObjectClass,
    /// Predicted box (`x, y, l, w` in the paper).
    pub bbox: BBox,
    /// Confidence in `[0, 1]`.
    pub score: f32,
}

impl Detection {
    /// Creates a detection, clamping the score into `[0, 1]`.
    pub fn new(class: ObjectClass, bbox: BBox, score: f32) -> Self {
        Self { class, bbox, score: score.clamp(0.0, 1.0) }
    }
}

impl fmt::Display for Detection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} @ ({:.1},{:.1}) {:.1}x{:.1} score {:.2}",
            self.class, self.bbox.cx, self.bbox.cy, self.bbox.len, self.bbox.wid, self.score
        )
    }
}

/// The full output of a detector on one image: a list of valid detections.
///
/// # Examples
///
/// ```
/// use bea_detect::{Detection, Prediction};
/// use bea_scene::{BBox, ObjectClass};
///
/// let mut pred = Prediction::new();
/// pred.push(Detection::new(ObjectClass::Car, BBox::new(10.0, 10.0, 8.0, 6.0), 0.8));
/// assert_eq!(pred.len(), 1);
/// assert_eq!(pred.of_class(ObjectClass::Car).count(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Prediction {
    // Pooled storage (bea-tensor's scratch arena): predictions are built
    // and dropped once per forward pass on the attack hot path, so their
    // buffers recycle instead of hitting the allocator.
    detections: PoolVec<Detection>,
}

impl Prediction {
    /// Creates an empty prediction with a small pooled buffer ready for
    /// pushes (detectors rarely emit more than a handful of boxes).
    pub fn new() -> Self {
        Self { detections: PoolVec::with_pooled_capacity(8) }
    }

    /// Creates a prediction from a vector of detections.
    pub fn from_detections(detections: Vec<Detection>) -> Self {
        Self { detections: PoolVec::from_vec(detections) }
    }

    /// Appends a detection.
    pub fn push(&mut self, det: Detection) {
        self.detections.push(det);
    }

    /// Number of valid detections.
    pub fn len(&self) -> usize {
        self.detections.len()
    }

    /// `true` when nothing was detected.
    pub fn is_empty(&self) -> bool {
        self.detections.is_empty()
    }

    /// Iterator over the detections.
    pub fn iter(&self) -> std::slice::Iter<'_, Detection> {
        self.detections.iter()
    }

    /// Immutable view of the detections.
    pub fn as_slice(&self) -> &[Detection] {
        &self.detections
    }

    /// Consumes the prediction and returns the detections, releasing the
    /// buffer from the scratch-pool cycle.
    pub fn into_vec(self) -> Vec<Detection> {
        self.detections.into_vec()
    }

    /// Iterator over the detections of one class.
    pub fn of_class(&self, class: ObjectClass) -> impl Iterator<Item = &Detection> {
        self.detections.iter().filter(move |d| d.class == class)
    }

    /// The detection of `class` with the largest IoU against `bbox`, if any
    /// detection of that class overlaps it at all.
    ///
    /// This is the matching rule inside the paper's Algorithm 1: "finds the
    /// bounding box in the new prediction of the same type that has the
    /// largest area overlap".
    pub fn best_match(&self, class: ObjectClass, bbox: &BBox) -> Option<&Detection> {
        self.of_class(class)
            .map(|d| (d, d.bbox.iou(bbox)))
            .filter(|(_, iou)| *iou > 0.0)
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(d, _)| d)
    }

    /// Largest IoU of any same-class detection against `bbox`
    /// (the `AO` value of Algorithm 1), `0.0` when none overlaps.
    pub fn best_iou(&self, class: ObjectClass, bbox: &BBox) -> f32 {
        self.of_class(class).map(|d| d.bbox.iou(bbox)).fold(0.0, f32::max)
    }

    /// Sorts detections by descending score. Uses IEEE 754 `total_cmp`
    /// so the order is a strict total order — deterministic NMS even if a
    /// detector ever emits a non-finite score (`partial_cmp` would treat
    /// NaN as equal to everything, leaving the order
    /// implementation-defined). The allocation-free stable insertion sort
    /// produces the identical permutation `slice::sort_by` would.
    pub fn sort_by_score(&mut self) {
        insertion_sort_by(self.detections.as_mut_slice(), |a, b| b.score.total_cmp(&a.score));
    }
}

impl FromIterator<Detection> for Prediction {
    fn from_iter<I: IntoIterator<Item = Detection>>(iter: I) -> Self {
        Self { detections: iter.into_iter().collect() }
    }
}

impl Extend<Detection> for Prediction {
    fn extend<I: IntoIterator<Item = Detection>>(&mut self, iter: I) {
        self.detections.extend(iter);
    }
}

impl<'a> IntoIterator for &'a Prediction {
    type Item = &'a Detection;
    type IntoIter = std::slice::Iter<'a, Detection>;

    fn into_iter(self) -> Self::IntoIter {
        self.detections.iter()
    }
}

impl IntoIterator for Prediction {
    type Item = Detection;
    type IntoIter = std::vec::IntoIter<Detection>;

    fn into_iter(self) -> Self::IntoIter {
        self.detections.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn det(class: ObjectClass, cx: f32, score: f32) -> Detection {
        Detection::new(class, BBox::new(cx, 10.0, 8.0, 8.0), score)
    }

    #[test]
    fn score_is_clamped() {
        assert_eq!(det(ObjectClass::Car, 0.0, 2.0).score, 1.0);
        assert_eq!(det(ObjectClass::Car, 0.0, -1.0).score, 0.0);
    }

    #[test]
    fn of_class_filters() {
        let pred = Prediction::from_detections(vec![
            det(ObjectClass::Car, 10.0, 0.9),
            det(ObjectClass::Pedestrian, 40.0, 0.8),
            det(ObjectClass::Car, 70.0, 0.7),
        ]);
        assert_eq!(pred.of_class(ObjectClass::Car).count(), 2);
        assert_eq!(pred.of_class(ObjectClass::Tram).count(), 0);
    }

    #[test]
    fn best_match_requires_overlap_and_class() {
        let pred = Prediction::from_detections(vec![
            det(ObjectClass::Car, 10.0, 0.9),
            det(ObjectClass::Car, 13.0, 0.5),
        ]);
        let target = BBox::new(12.0, 10.0, 8.0, 8.0);
        // Car at 13 overlaps more than car at 10.
        let best = pred.best_match(ObjectClass::Car, &target).unwrap();
        assert_eq!(best.bbox.cx, 13.0);
        // Wrong class: no match even with overlap.
        assert!(pred.best_match(ObjectClass::Van, &target).is_none());
        // No overlap: no match.
        let far = BBox::new(500.0, 10.0, 8.0, 8.0);
        assert!(pred.best_match(ObjectClass::Car, &far).is_none());
        assert_eq!(pred.best_iou(ObjectClass::Car, &far), 0.0);
    }

    #[test]
    fn best_iou_is_max_over_same_class() {
        let pred = Prediction::from_detections(vec![
            det(ObjectClass::Car, 10.0, 0.9),
            det(ObjectClass::Car, 12.0, 0.9),
        ]);
        let target = BBox::new(10.0, 10.0, 8.0, 8.0);
        assert_eq!(pred.best_iou(ObjectClass::Car, &target), 1.0);
    }

    #[test]
    fn sort_by_score_descending() {
        let mut pred = Prediction::from_detections(vec![
            det(ObjectClass::Car, 0.0, 0.2),
            det(ObjectClass::Car, 0.0, 0.9),
            det(ObjectClass::Car, 0.0, 0.5),
        ]);
        pred.sort_by_score();
        let scores: Vec<f32> = pred.iter().map(|d| d.score).collect();
        assert_eq!(scores, vec![0.9, 0.5, 0.2]);
    }

    #[test]
    fn collect_from_iterator() {
        let pred: Prediction = (0..3).map(|i| det(ObjectClass::Car, i as f32, 0.5)).collect();
        assert_eq!(pred.len(), 3);
    }

    #[test]
    fn display_is_informative() {
        let text = det(ObjectClass::Cyclist, 4.0, 0.75).to_string();
        assert!(text.contains("Cyclist"));
        assert!(text.contains("0.75"));
    }
}
