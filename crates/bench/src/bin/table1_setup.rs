//! **E1 — Table I**: experiment parametrisation.
//!
//! Prints the realised parametrisation (models per architecture, images
//! per model, ensemble size) and verifies the paper's standing assumption
//! that the clean prediction `f(img)` is correct by evaluating every
//! exercised model on the synthetic evaluation set.
//!
//! Run: `cargo run --release -p bea-bench --bin table1_setup [--full]`

use bea_bench::{fmt, Harness};
use bea_core::report::print_table;
use bea_detect::metrics::evaluate;
use bea_detect::Architecture;

fn main() {
    let harness = Harness::from_args();
    let scale = harness.scale();

    println!("\nTable I — experiment parametrisation");
    print_table(
        &["Configuration", "Paper", "This run"],
        &[
            vec![
                "# models generated".into(),
                "25 YOLOv5 and 25 DETR".into(),
                format!("{} YOLO and {} DETR", scale.model_count(), scale.model_count()),
            ],
            vec![
                "# images tested on each model".into(),
                "16".into(),
                scale.image_count().to_string(),
            ],
            vec![
                "# models used in ensemble".into(),
                "16".into(),
                scale.ensemble_size().to_string(),
            ],
        ],
    );

    println!("\nClean-prediction verification (IoU 0.5 matching against ground truth):");
    let mut rows = Vec::new();
    for arch in Architecture::ALL {
        let mut f1_sum = 0.0;
        let mut f1_min = f64::MAX;
        for &seed in &harness.model_seeds() {
            let model = harness.model(arch, seed);
            let score = evaluate(model.as_ref(), harness.dataset().scenes(), 0.5);
            f1_sum += score.f1();
            f1_min = f1_min.min(score.f1());
            rows.push(vec![
                model.name().to_string(),
                fmt(score.precision(), 3),
                fmt(score.recall(), 3),
                fmt(score.f1(), 3),
                fmt(score.mean_iou(), 3),
            ]);
        }
        rows.push(vec![
            format!("{arch} (mean over {} seeds)", harness.model_seeds().len()),
            String::new(),
            String::new(),
            fmt(f1_sum / harness.model_seeds().len() as f64, 3),
            format!("min F1 {}", fmt(f1_min, 3)),
        ]);
    }
    print_table(&["model", "precision", "recall", "F1", "mean IoU"], &rows);
}
