//! The safe readiness-polling facade over [`crate::sys`].
//!
//! A [`Poller`] owns one epoll instance. Callers register raw fds (any
//! [`std::os::fd::AsRawFd`] socket they keep alive and non-blocking)
//! under a caller-chosen [`Token`], then sleep in [`Poller::wait`] until
//! the kernel reports readiness. Registration is level-triggered: a
//! socket with unread input keeps reporting readable, so a handler that
//! drains until `WouldBlock` never misses bytes.

use std::io;
use std::os::fd::RawFd;
use std::time::Duration;

/// A caller-chosen identifier attached to a registration and carried
/// back on each [`Event`].
pub type Token = u64;

/// Which readiness directions a registration subscribes to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd has input to read (or a peer hang-up).
    pub readable: bool,
    /// Wake when the fd can accept output.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READABLE: Interest = Interest { readable: true, writable: false };
    /// Write-only interest.
    pub const WRITABLE: Interest = Interest { readable: false, writable: true };
    /// Both directions.
    pub const BOTH: Interest = Interest { readable: true, writable: true };
}

/// One readiness report from [`Poller::wait`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The token the fd was registered under.
    pub token: Token,
    /// The fd has input (or the peer closed — read to find out).
    pub readable: bool,
    /// The fd can accept output.
    pub writable: bool,
    /// Error or hang-up condition; the connection is done for.
    pub closed: bool,
}

#[cfg(target_os = "linux")]
mod imp {
    use super::*;
    use crate::sys;

    /// See the [module docs](self).
    #[derive(Debug)]
    pub struct Poller {
        epfd: RawFd,
        buf: Vec<sys::EpollEvent>,
    }

    impl Poller {
        /// Creates an epoll instance.
        ///
        /// # Errors
        ///
        /// Propagates the `epoll_create1` failure.
        pub fn new() -> io::Result<Poller> {
            Ok(Poller { epfd: sys::create()?, buf: vec![sys::EpollEvent::default(); 256] })
        }

        fn mask(interest: Interest) -> u32 {
            let mut mask = sys::EPOLLRDHUP;
            if interest.readable {
                mask |= sys::EPOLLIN;
            }
            if interest.writable {
                mask |= sys::EPOLLOUT;
            }
            mask
        }

        /// Registers `fd` under `token`. The caller keeps the fd open
        /// (and non-blocking) for as long as it stays registered.
        ///
        /// # Errors
        ///
        /// Propagates the `epoll_ctl` failure.
        pub fn register(&self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
            sys::ctl(self.epfd, sys::EPOLL_CTL_ADD, fd, Self::mask(interest), token)
        }

        /// Changes the interest mask of a registered fd.
        ///
        /// # Errors
        ///
        /// Propagates the `epoll_ctl` failure.
        pub fn modify(&self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
            sys::ctl(self.epfd, sys::EPOLL_CTL_MOD, fd, Self::mask(interest), token)
        }

        /// Removes a registration. Dropping the socket also removes it,
        /// so failures here are ignorable; the method exists for callers
        /// that recycle fds.
        ///
        /// # Errors
        ///
        /// Propagates the `epoll_ctl` failure.
        pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
            sys::ctl(self.epfd, sys::EPOLL_CTL_DEL, fd, 0, 0)
        }

        /// Sleeps until readiness arrives, filling `events` (cleared
        /// first). `timeout: None` waits forever. A timeout simply
        /// yields zero events; `EINTR` is retried internally.
        ///
        /// # Errors
        ///
        /// Propagates `epoll_wait` failures other than interruption.
        pub fn wait(
            &mut self,
            events: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<()> {
            events.clear();
            let timeout_ms = match timeout {
                None => -1,
                Some(t) => i32::try_from(t.as_millis()).unwrap_or(i32::MAX).max(0),
            };
            let n = loop {
                match sys::wait(self.epfd, &mut self.buf, timeout_ms) {
                    Ok(n) => break n,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                }
            };
            events.extend(self.buf[..n].iter().map(|raw| {
                let bits = raw.events;
                Event {
                    token: raw.data,
                    readable: bits & (sys::EPOLLIN | sys::EPOLLRDHUP) != 0,
                    writable: bits & sys::EPOLLOUT != 0,
                    closed: bits & (sys::EPOLLERR | sys::EPOLLHUP) != 0,
                }
            }));
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            sys::close_fd(self.epfd);
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod imp {
    use super::*;

    /// Stub poller for non-Linux targets: construction reports
    /// [`io::ErrorKind::Unsupported`] so callers fall back to blocking
    /// serving.
    #[derive(Debug)]
    pub struct Poller {
        never: std::convert::Infallible,
    }

    impl Poller {
        /// Always fails off Linux.
        ///
        /// # Errors
        ///
        /// [`io::ErrorKind::Unsupported`].
        pub fn new() -> io::Result<Poller> {
            Err(io::Error::new(io::ErrorKind::Unsupported, "epoll is only available on Linux"))
        }

        /// Unreachable (no instance can exist).
        pub fn register(&self, _fd: RawFd, _token: Token, _interest: Interest) -> io::Result<()> {
            match self.never {}
        }

        /// Unreachable (no instance can exist).
        pub fn modify(&self, _fd: RawFd, _token: Token, _interest: Interest) -> io::Result<()> {
            match self.never {}
        }

        /// Unreachable (no instance can exist).
        pub fn deregister(&self, _fd: RawFd) -> io::Result<()> {
            match self.never {}
        }

        /// Unreachable (no instance can exist).
        pub fn wait(
            &mut self,
            _events: &mut Vec<Event>,
            _timeout: Option<Duration>,
        ) -> io::Result<()> {
            match self.never {}
        }
    }
}

pub use imp::Poller;

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn timeout_with_no_registrations_yields_no_events() {
        let mut poller = Poller::new().expect("poller");
        let mut events = Vec::new();
        let started = std::time::Instant::now();
        poller.wait(&mut events, Some(Duration::from_millis(20))).expect("wait");
        assert!(events.is_empty());
        assert!(started.elapsed() >= Duration::from_millis(15), "timeout honoured");
    }

    #[test]
    fn listener_becomes_readable_on_connect() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        listener.set_nonblocking(true).expect("nonblocking");
        let mut poller = Poller::new().expect("poller");
        poller.register(listener.as_raw_fd(), 7, Interest::READABLE).expect("register");

        let mut events = Vec::new();
        poller.wait(&mut events, Some(Duration::from_millis(20))).expect("wait");
        assert!(events.is_empty(), "no pending connection yet");

        let _client = TcpStream::connect(listener.local_addr().expect("addr")).expect("connect");
        poller.wait(&mut events, Some(Duration::from_secs(5))).expect("wait");
        assert_eq!(events.len(), 1, "{events:?}");
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);
        let (stream, _) = listener.accept().expect("accept");
        drop(stream);
    }

    #[test]
    fn streams_report_writable_then_readable_and_support_modify() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let client = TcpStream::connect(addr).expect("connect");
        client.set_nonblocking(true).expect("nonblocking");
        let (mut peer, _) = listener.accept().expect("accept");

        let mut poller = Poller::new().expect("poller");
        poller.register(client.as_raw_fd(), 1, Interest::BOTH).expect("register");
        let mut events = Vec::new();
        poller.wait(&mut events, Some(Duration::from_secs(5))).expect("wait");
        // A fresh connected socket with empty buffers is writable, not
        // readable.
        assert_eq!(events.len(), 1);
        assert!(events[0].writable && !events[0].readable, "{events:?}");

        // Narrow interest to readable only: no events until the peer
        // sends.
        poller.modify(client.as_raw_fd(), 2, Interest::READABLE).expect("modify");
        poller.wait(&mut events, Some(Duration::from_millis(20))).expect("wait");
        assert!(events.is_empty(), "{events:?}");
        peer.write_all(b"ping").expect("peer write");
        poller.wait(&mut events, Some(Duration::from_secs(5))).expect("wait");
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 2, "modify rebinds the token");
        assert!(events[0].readable);
        let mut buf = [0u8; 8];
        let mut reader = &client;
        assert_eq!(reader.read(&mut buf).expect("read"), 4);

        // Peer hang-up is reported as readable (level-triggered EOF).
        drop(peer);
        poller.wait(&mut events, Some(Duration::from_secs(5))).expect("wait");
        assert_eq!(events.len(), 1);
        assert!(events[0].readable, "{events:?}");

        poller.deregister(client.as_raw_fd()).expect("deregister");
        poller.wait(&mut events, Some(Duration::from_millis(10))).expect("wait");
        assert!(events.is_empty(), "deregistered fds stay silent");
    }

    #[test]
    fn two_registrations_report_distinct_tokens() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let a = TcpStream::connect(addr).expect("connect a");
        let b = TcpStream::connect(addr).expect("connect b");
        let (mut peer_a, _) = listener.accept().expect("accept a");
        let (mut peer_b, _) = listener.accept().expect("accept b");
        a.set_nonblocking(true).expect("nonblocking");
        b.set_nonblocking(true).expect("nonblocking");

        let mut poller = Poller::new().expect("poller");
        poller.register(a.as_raw_fd(), 100, Interest::READABLE).expect("register a");
        poller.register(b.as_raw_fd(), 200, Interest::READABLE).expect("register b");
        peer_a.write_all(b"a").expect("write a");
        peer_b.write_all(b"b").expect("write b");

        let mut seen = Vec::new();
        let mut events = Vec::new();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while seen.len() < 2 && std::time::Instant::now() < deadline {
            poller.wait(&mut events, Some(Duration::from_millis(100))).expect("wait");
            for event in &events {
                assert!(event.readable);
                if !seen.contains(&event.token) {
                    seen.push(event.token);
                }
            }
            // Drain so level-triggered readiness stops re-reporting.
            for stream in [&a, &b] {
                let mut buf = [0u8; 4];
                let mut reader = stream;
                let _ = reader.read(&mut buf);
            }
        }
        seen.sort_unstable();
        assert_eq!(seen, vec![100, 200]);
    }
}
