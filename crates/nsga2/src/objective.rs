//! Objective directions and Pareto dominance.

/// Whether an objective should be minimised or maximised.
///
/// The paper's attack minimises `obj_intensity` and `obj_degrad` while
/// maximising `obj_dist` (Section V-A), so mixed-direction vectors are the
/// normal case here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Smaller objective values are better.
    Minimize,
    /// Larger objective values are better.
    Maximize,
}

impl Direction {
    /// `true` when `a` is strictly better than `b` under this direction.
    #[inline]
    pub fn better(self, a: f64, b: f64) -> bool {
        match self {
            Direction::Minimize => a < b,
            Direction::Maximize => a > b,
        }
    }

    /// Maps a value onto the minimisation scale (negates maximised values),
    /// used by algorithms that assume minimisation throughout.
    #[inline]
    pub fn to_minimization(self, value: f64) -> f64 {
        match self {
            Direction::Minimize => value,
            Direction::Maximize => -value,
        }
    }
}

/// Pareto dominance: `a` dominates `b` when `a` is at least as good in
/// every objective and strictly better in at least one.
///
/// # Panics
///
/// Panics if the three slices have different lengths.
///
/// # Examples
///
/// ```
/// use bea_nsga2::{dominates, Direction};
///
/// let dirs = [Direction::Minimize, Direction::Maximize];
/// assert!(dominates(&[1.0, 5.0], &[2.0, 4.0], &dirs));
/// assert!(!dominates(&[1.0, 4.0], &[2.0, 5.0], &dirs)); // trade-off
/// ```
pub fn dominates(a: &[f64], b: &[f64], directions: &[Direction]) -> bool {
    assert_eq!(a.len(), b.len(), "objective vectors must have equal lengths");
    assert_eq!(a.len(), directions.len(), "directions must cover every objective");
    let mut strictly_better = false;
    for ((&va, &vb), &dir) in a.iter().zip(b).zip(directions) {
        if dir.better(vb, va) {
            return false;
        }
        if dir.better(va, vb) {
            strictly_better = true;
        }
    }
    strictly_better
}

#[cfg(test)]
mod tests {
    use super::*;

    const MIN2: [Direction; 2] = [Direction::Minimize, Direction::Minimize];

    #[test]
    fn strict_dominance() {
        assert!(dominates(&[1.0, 1.0], &[2.0, 2.0], &MIN2));
        assert!(!dominates(&[2.0, 2.0], &[1.0, 1.0], &MIN2));
    }

    #[test]
    fn equal_vectors_do_not_dominate() {
        assert!(!dominates(&[1.0, 1.0], &[1.0, 1.0], &MIN2));
    }

    #[test]
    fn weak_dominance_needs_one_strict_improvement() {
        assert!(dominates(&[1.0, 1.0], &[1.0, 2.0], &MIN2));
        assert!(!dominates(&[1.0, 2.0], &[1.0, 1.0], &MIN2));
    }

    #[test]
    fn trade_offs_are_incomparable() {
        assert!(!dominates(&[1.0, 3.0], &[3.0, 1.0], &MIN2));
        assert!(!dominates(&[3.0, 1.0], &[1.0, 3.0], &MIN2));
    }

    #[test]
    fn mixed_directions() {
        let dirs = [Direction::Minimize, Direction::Maximize];
        assert!(dominates(&[0.5, 9.0], &[1.0, 8.0], &dirs));
        assert!(!dominates(&[0.5, 7.0], &[1.0, 8.0], &dirs));
    }

    #[test]
    fn dominance_is_antisymmetric() {
        let dirs = [Direction::Minimize, Direction::Maximize, Direction::Minimize];
        let a = [1.0, 5.0, 2.0];
        let b = [1.5, 4.0, 2.5];
        assert!(dominates(&a, &b, &dirs));
        assert!(!dominates(&b, &a, &dirs));
    }

    #[test]
    fn to_minimization_flips_maximized() {
        assert_eq!(Direction::Minimize.to_minimization(3.0), 3.0);
        assert_eq!(Direction::Maximize.to_minimization(3.0), -3.0);
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn length_mismatch_panics() {
        let _ = dominates(&[1.0], &[1.0, 2.0], &MIN2);
    }
}
