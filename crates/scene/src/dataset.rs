//! The indexed synthetic evaluation set.

use crate::generator::SceneGenerator;
use crate::scene::Scene;
use bea_image::Image;

/// Default image width: KITTI's 1242×375 scaled by ≈1/6.5, keeping the wide
/// aspect ratio that makes left/right-half experiments meaningful.
pub const DEFAULT_WIDTH: usize = 192;
/// Default image height (see [`DEFAULT_WIDTH`]).
pub const DEFAULT_HEIGHT: usize = 64;
/// Number of evaluation images per model (Table I).
pub const DEFAULT_IMAGE_COUNT: usize = 16;

/// An indexed, deterministic synthetic dataset standing in for KITTI.
///
/// # Examples
///
/// ```
/// use bea_scene::SyntheticKitti;
///
/// let data = SyntheticKitti::evaluation_set();
/// assert_eq!(data.len(), 16);
/// let img = data.image(10); // "image no. 10" of the figures
/// assert_eq!(img.width(), 192);
/// ```
#[derive(Debug, Clone)]
pub struct SyntheticKitti {
    generator: SceneGenerator,
    count: usize,
}

impl SyntheticKitti {
    /// Creates a dataset of `count` scenes from a generator.
    pub fn new(generator: SceneGenerator, count: usize) -> Self {
        Self { generator, count }
    }

    /// The 16-image evaluation set at the default scaled-KITTI resolution
    /// (Table I: "# images tested on each model: 16").
    pub fn evaluation_set() -> Self {
        Self::new(SceneGenerator::new(DEFAULT_WIDTH, DEFAULT_HEIGHT, 0xBEA7), DEFAULT_IMAGE_COUNT)
    }

    /// A small 4-image set for fast tests.
    pub fn smoke_set() -> Self {
        Self::new(SceneGenerator::new(128, 48, 0xBEA7), 4)
    }

    /// Number of images in the dataset.
    pub fn len(&self) -> usize {
        self.count
    }

    /// `true` when the dataset holds no images.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The underlying generator.
    pub fn generator(&self) -> &SceneGenerator {
        &self.generator
    }

    /// The scene at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    pub fn scene(&self, index: usize) -> Scene {
        assert!(index < self.count, "index {index} out of bounds for {} scenes", self.count);
        self.generator.scene(index)
    }

    /// The rendered image at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    pub fn image(&self, index: usize) -> Image {
        self.scene(index).render()
    }

    /// Iterator over all scenes.
    pub fn scenes(&self) -> impl Iterator<Item = Scene> + '_ {
        (0..self.count).map(|i| self.scene(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluation_set_matches_table1() {
        let data = SyntheticKitti::evaluation_set();
        assert_eq!(data.len(), DEFAULT_IMAGE_COUNT);
        assert!(!data.is_empty());
    }

    #[test]
    fn images_are_stable_across_instances() {
        let a = SyntheticKitti::evaluation_set().image(10);
        let b = SyntheticKitti::evaluation_set().image(10);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_range_index_panics() {
        let _ = SyntheticKitti::smoke_set().scene(99);
    }

    #[test]
    fn scenes_iterator_covers_all() {
        let data = SyntheticKitti::smoke_set();
        assert_eq!(data.scenes().count(), data.len());
    }

    #[test]
    fn every_eval_scene_has_objects() {
        for scene in SyntheticKitti::evaluation_set().scenes() {
            assert!(!scene.ground_truths().is_empty());
        }
    }
}
