//! Shared test fixtures for the crate's unit tests.

use bea_detect::{Detection, Detector, Prediction};
use bea_image::Image;
use bea_scene::{BBox, ObjectClass};

/// Cheap deterministic detector for driver-level tests: detects a "car"
/// whose box shrinks continuously with the mean brightness of the right
/// half. The smooth landscape gives the GA a gradient to climb — a step
/// threshold would leave `obj_degrad` flat at 1.0 until the cliff, making
/// success pure initialization luck at the small population/generation
/// budgets tests use.
pub(crate) struct Toy;

impl Detector for Toy {
    fn detect(&self, img: &Image) -> Prediction {
        let mut acc = 0.0;
        let mut n = 0usize;
        for y in 0..img.height() {
            for x in (img.width() / 2)..img.width() {
                acc += img.pixel(x, y)[0] + img.pixel(x, y)[1];
                n += 1;
            }
        }
        let m = acc / n.max(1) as f32;
        let size = (8.0 - m / 8.0).clamp(3.0, 8.0);
        Prediction::from_detections(vec![Detection::new(
            ObjectClass::Car,
            BBox::new(8.0, 8.0, size, size),
            0.9,
        )])
    }

    fn name(&self) -> &str {
        "toy"
    }
}
