//! Synthetic KITTI-like road-scene generator.
//!
//! The paper evaluates on the KITTI vision benchmark. KITTI itself is not
//! redistributable here, so this crate generates *deterministic synthetic
//! road scenes* with KITTI's class vocabulary and wide aspect ratio. Scenes
//! contain parametrically rendered cars, vans, trucks, pedestrians and
//! cyclists over a sky/road background, and every scene carries exact
//! ground-truth boxes. Because the butterfly attack is black-box (it only
//! consumes images and the detector's own clean prediction), the synthetic
//! substitution preserves everything the attack depends on while making
//! experiments exactly repeatable.
//!
//! * [`ObjectClass`] — the KITTI class vocabulary,
//! * [`BBox`] — centre-based boxes with intersection-over-union,
//! * [`SceneObject`] / [`Scene`] — a renderable scene with ground truth,
//! * [`SceneGenerator`] — seeded scene sampling,
//! * [`dataset::SyntheticKitti`] — the indexed 16-image evaluation set
//!   (Table I: "# images tested on each model = 16"),
//! * [`sequence::FrameSequence`] — moving-object image sequences for the
//!   temporal attack of Section IV-B.
//!
//! # Examples
//!
//! ```
//! use bea_scene::SceneGenerator;
//!
//! let generator = SceneGenerator::new(192, 64, 1);
//! let scene = generator.scene(10); // "image no. 10"
//! let img = scene.render();
//! assert_eq!((img.width(), img.height()), (192, 64));
//! assert!(!scene.ground_truths().is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod background;
pub mod bbox;
pub mod class;
pub mod dataset;
pub mod generator;
pub mod object;
pub mod render;
pub mod scene;
pub mod sequence;

pub use bbox::BBox;
pub use class::ObjectClass;
pub use dataset::SyntheticKitti;
pub use generator::SceneGenerator;
pub use object::SceneObject;
pub use scene::Scene;
pub use sequence::FrameSequence;
