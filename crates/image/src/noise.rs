//! Digital-image-processing noise generators.
//!
//! The paper's initial population consists of "100 ... filter masks
//! randomly initialized from Gaussian distribution and later upon these
//! masks various noise types of digital image processing are applied"
//! (Section IV-A). [`NoiseKind`] enumerates those noise types; each variant
//! can synthesise a fresh mask or be layered on top of an existing one.

use crate::mask::{FilterMask, MASK_LIMIT};
use bea_tensor::WeightInit;

/// A classic digital-image-processing noise model.
///
/// # Examples
///
/// ```
/// use bea_image::NoiseKind;
/// use bea_tensor::WeightInit;
///
/// let mut rng = WeightInit::from_seed(1);
/// let mask = NoiseKind::Gaussian { std_dev: 12.0 }.generate(16, 8, &mut rng);
/// assert_eq!((mask.width(), mask.height()), (16, 8));
/// assert!(!mask.is_zero());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NoiseKind {
    /// Zero-mean Gaussian noise on every gene.
    Gaussian {
        /// Standard deviation in intensity levels.
        std_dev: f32,
    },
    /// Salt-and-pepper impulse noise: each pixel is independently set to
    /// `+amplitude` (salt) or `-amplitude` (pepper) with probability
    /// `density`, all three channels together.
    SaltPepper {
        /// Per-pixel corruption probability in `[0, 1]`.
        density: f32,
        /// Impulse magnitude in intensity levels.
        amplitude: i16,
    },
    /// Uniform noise in `[-amplitude, amplitude]` on every gene.
    Uniform {
        /// Half-width of the uniform interval in intensity levels.
        amplitude: i16,
    },
    /// Sparse speckle: a fraction `density` of genes get Gaussian noise,
    /// the rest stay zero.
    Speckle {
        /// Fraction of affected genes in `[0, 1]`.
        density: f32,
        /// Standard deviation of the affected genes.
        std_dev: f32,
    },
}

impl NoiseKind {
    /// The palette of noise models used to diversify the initial population.
    pub fn default_palette() -> Vec<NoiseKind> {
        vec![
            NoiseKind::Gaussian { std_dev: 8.0 },
            NoiseKind::Gaussian { std_dev: 20.0 },
            NoiseKind::SaltPepper { density: 0.02, amplitude: 200 },
            NoiseKind::SaltPepper { density: 0.08, amplitude: 120 },
            NoiseKind::Uniform { amplitude: 16 },
            NoiseKind::Uniform { amplitude: 48 },
            NoiseKind::Speckle { density: 0.05, std_dev: 60.0 },
            NoiseKind::Speckle { density: 0.15, std_dev: 30.0 },
        ]
    }

    /// Synthesises a fresh `width × height` mask of this noise.
    pub fn generate(&self, width: usize, height: usize, rng: &mut WeightInit) -> FilterMask {
        let mut mask = FilterMask::zeros(width, height);
        self.overlay(&mut mask, rng);
        mask
    }

    /// Layers this noise on top of an existing mask (values clamped into
    /// `[-255, 255]`).
    pub fn overlay(&self, mask: &mut FilterMask, rng: &mut WeightInit) {
        match *self {
            NoiseKind::Gaussian { std_dev } => {
                for v in mask.as_mut_slice() {
                    let n = rng.normal(0.0, std_dev);
                    *v = (*v as f32 + n).round().clamp(-255.0, 255.0) as i16;
                }
            }
            NoiseKind::SaltPepper { density, amplitude } => {
                let (w, h) = (mask.width(), mask.height());
                let amplitude = amplitude.clamp(0, MASK_LIMIT);
                for y in 0..h {
                    for x in 0..w {
                        if rng.coin(density) {
                            let value = if rng.coin(0.5) { amplitude } else { -amplitude };
                            for c in 0..3 {
                                mask.set(c, y, x, value);
                            }
                        }
                    }
                }
            }
            NoiseKind::Uniform { amplitude } => {
                let a = amplitude.clamp(0, MASK_LIMIT) as f32;
                if a == 0.0 {
                    return;
                }
                for v in mask.as_mut_slice() {
                    let n = rng.uniform(-a, a + 1.0);
                    *v = (*v as f32 + n).round().clamp(-255.0, 255.0) as i16;
                }
            }
            NoiseKind::Speckle { density, std_dev } => {
                for v in mask.as_mut_slice() {
                    if rng.coin(density) {
                        let n = rng.normal(0.0, std_dev);
                        *v = (*v as f32 + n).round().clamp(-255.0, 255.0) as i16;
                    }
                }
            }
        }
        mask.clamp_inplace();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> WeightInit {
        WeightInit::from_seed(7)
    }

    #[test]
    fn gaussian_noise_is_roughly_zero_mean() {
        let mask = NoiseKind::Gaussian { std_dev: 10.0 }.generate(64, 32, &mut rng());
        let mean: f64 =
            mask.as_slice().iter().map(|&v| v as f64).sum::<f64>() / mask.gene_count() as f64;
        assert!(mean.abs() < 1.0, "mean {mean} should be near zero");
        assert!(!mask.is_zero());
    }

    #[test]
    fn salt_pepper_density_is_respected() {
        let mask =
            NoiseKind::SaltPepper { density: 0.1, amplitude: 100 }.generate(100, 100, &mut rng());
        let frac = mask.perturbed_pixel_count() as f64 / mask.pixel_count() as f64;
        assert!((frac - 0.1).abs() < 0.03, "impulse fraction {frac} should be near density");
        // Impulses hit all channels of a pixel with the same magnitude.
        for (_, y, x, v) in mask.iter_nonzero().take(10) {
            assert_eq!(v.abs(), 100);
            assert_eq!(mask.at(0, y, x).abs(), 100);
        }
    }

    #[test]
    fn uniform_respects_amplitude() {
        let mask = NoiseKind::Uniform { amplitude: 20 }.generate(32, 32, &mut rng());
        assert!(mask.as_slice().iter().all(|&v| v.abs() <= 21));
    }

    #[test]
    fn speckle_is_sparse() {
        let mask = NoiseKind::Speckle { density: 0.05, std_dev: 50.0 }.generate(64, 64, &mut rng());
        let nonzero = mask.as_slice().iter().filter(|&&v| v != 0).count();
        let frac = nonzero as f64 / mask.gene_count() as f64;
        assert!(frac < 0.10, "speckle should leave most genes zero (got {frac})");
        assert!(nonzero > 0);
    }

    #[test]
    fn overlay_accumulates() {
        let mut mask = FilterMask::zeros(8, 8);
        NoiseKind::Uniform { amplitude: 10 }.overlay(&mut mask, &mut rng());
        let first = mask.clone();
        NoiseKind::Uniform { amplitude: 10 }.overlay(&mut mask, &mut rng());
        assert_ne!(mask, first, "second overlay should change the mask");
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a =
            NoiseKind::Gaussian { std_dev: 5.0 }.generate(16, 16, &mut WeightInit::from_seed(3));
        let b =
            NoiseKind::Gaussian { std_dev: 5.0 }.generate(16, 16, &mut WeightInit::from_seed(3));
        assert_eq!(a, b);
    }

    #[test]
    fn palette_is_diverse() {
        let palette = NoiseKind::default_palette();
        assert!(palette.len() >= 4);
        let masks: Vec<_> =
            palette.iter().map(|k| k.generate(16, 16, &mut WeightInit::from_seed(1))).collect();
        for i in 0..masks.len() {
            for j in (i + 1)..masks.len() {
                assert_ne!(masks[i], masks[j], "palette entries {i} and {j} coincide");
            }
        }
    }
}
