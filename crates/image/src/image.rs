//! RGB images.

use crate::error::{ImageError, Result};
use bea_tensor::FeatureMap;

/// An RGB image with `f32` channel values in `[0, 255]`.
///
/// Storage is channel-major (three planes of `height × width`), matching
/// [`FeatureMap`] so detectors can consume images without copying.
/// Coordinates follow the convention `(channel, y, x)` with `x` horizontal
/// (the paper's `L` axis — KITTI images are wide) and `y` vertical (the
/// paper's `W` axis).
///
/// # Examples
///
/// ```
/// use bea_image::Image;
///
/// let mut img = Image::black(64, 32);
/// img.put_pixel(10, 5, [255.0, 128.0, 0.0]);
/// assert_eq!(img.pixel(10, 5), [255.0, 128.0, 0.0]);
/// assert_eq!((img.width(), img.height()), (64, 32));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Image {
    map: FeatureMap,
}

impl Image {
    /// Creates an all-black image of the given size.
    pub fn black(width: usize, height: usize) -> Self {
        Self { map: FeatureMap::zeros(3, height, width) }
    }

    /// Creates an image filled with a constant RGB colour.
    pub fn filled(width: usize, height: usize, rgb: [f32; 3]) -> Self {
        let mut map = FeatureMap::zeros(3, height, width);
        for (c, &v) in rgb.iter().enumerate() {
            map.channel_mut(c).fill(v.clamp(0.0, 255.0));
        }
        Self { map }
    }

    /// Wraps an existing 3-channel feature map as an image, clamping values
    /// into `[0, 255]`.
    ///
    /// # Errors
    ///
    /// Returns [`ImageError::LengthMismatch`] if the map does not have
    /// exactly 3 channels.
    pub fn from_feature_map(map: FeatureMap) -> Result<Self> {
        if map.channels() != 3 {
            return Err(ImageError::LengthMismatch { expected: 3, actual: map.channels() });
        }
        let mut map = map;
        map.map_inplace(|v| v.clamp(0.0, 255.0));
        Ok(Self { map })
    }

    /// Image width in pixels (the paper's `L` axis).
    pub fn width(&self) -> usize {
        self.map.width()
    }

    /// Image height in pixels (the paper's `W` axis).
    pub fn height(&self) -> usize {
        self.map.height()
    }

    /// Number of pixels (`width × height`).
    pub fn pixel_count(&self) -> usize {
        self.width() * self.height()
    }

    /// Channel value at `(channel, y, x)`.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is out of bounds.
    #[inline]
    pub fn at(&self, channel: usize, y: usize, x: usize) -> f32 {
        self.map.at(channel, y, x)
    }

    /// Sets one channel value, clamped into `[0, 255]`.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is out of bounds.
    #[inline]
    pub fn set(&mut self, channel: usize, y: usize, x: usize, value: f32) {
        self.map.set(channel, y, x, value.clamp(0.0, 255.0));
    }

    /// RGB triple at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is out of bounds.
    pub fn pixel(&self, x: usize, y: usize) -> [f32; 3] {
        [self.at(0, y, x), self.at(1, y, x), self.at(2, y, x)]
    }

    /// Writes an RGB triple at `(x, y)`, clamped into `[0, 255]`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is out of bounds.
    pub fn put_pixel(&mut self, x: usize, y: usize, rgb: [f32; 3]) {
        for (c, &v) in rgb.iter().enumerate() {
            self.set(c, y, x, v);
        }
    }

    /// Borrow the underlying feature map (channel-major planes).
    pub fn as_feature_map(&self) -> &FeatureMap {
        &self.map
    }

    /// Consumes the image and returns the underlying feature map.
    pub fn into_feature_map(self) -> FeatureMap {
        self.map
    }

    /// Per-image mean intensity over all channels.
    pub fn mean(&self) -> f32 {
        self.map.mean()
    }

    /// Converts to a single-channel luminance plane
    /// (Rec. 601 weights: 0.299 R + 0.587 G + 0.114 B).
    pub fn to_luma(&self) -> FeatureMap {
        let mut out = FeatureMap::zeros(1, self.height(), self.width());
        for y in 0..self.height() {
            for x in 0..self.width() {
                let [r, g, b] = self.pixel(x, y);
                out.set(0, y, x, 0.299 * r + 0.587 * g + 0.114 * b);
            }
        }
        out
    }

    /// Returns a copy with every channel value multiplied by `factor`
    /// (clamped back into `[0, 255]`) — a global illumination change used
    /// by the physical-robustness evaluation.
    pub fn brightness_scaled(&self, factor: f32) -> Image {
        let mut map = self.map.clone();
        map.map_inplace(|v| (v * factor).clamp(0.0, 255.0));
        Image { map }
    }

    /// Returns a downscaled copy using box-filter averaging with integer
    /// factor `factor`.
    ///
    /// # Panics
    ///
    /// Panics if `factor == 0`.
    pub fn downscale(&self, factor: usize) -> Image {
        assert!(factor > 0, "downscale factor must be positive");
        let nw = (self.width() / factor).max(1);
        let nh = (self.height() / factor).max(1);
        let mut out = Image::black(nw, nh);
        for c in 0..3 {
            for y in 0..nh {
                for x in 0..nw {
                    let mut acc = 0.0;
                    let mut n = 0;
                    for dy in 0..factor {
                        for dx in 0..factor {
                            let sy = y * factor + dy;
                            let sx = x * factor + dx;
                            if sy < self.height() && sx < self.width() {
                                acc += self.at(c, sy, sx);
                                n += 1;
                            }
                        }
                    }
                    out.set(c, y, x, acc / n.max(1) as f32);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn black_image_is_zero() {
        let img = Image::black(4, 2);
        assert_eq!(img.pixel(0, 0), [0.0; 3]);
        assert_eq!(img.pixel_count(), 8);
    }

    #[test]
    fn filled_clamps_out_of_range() {
        let img = Image::filled(2, 2, [300.0, -5.0, 128.0]);
        assert_eq!(img.pixel(0, 0), [255.0, 0.0, 128.0]);
    }

    #[test]
    fn set_clamps() {
        let mut img = Image::black(2, 2);
        img.set(0, 0, 0, 999.0);
        img.set(1, 0, 0, -999.0);
        assert_eq!(img.at(0, 0, 0), 255.0);
        assert_eq!(img.at(1, 0, 0), 0.0);
    }

    #[test]
    fn from_feature_map_requires_three_channels() {
        assert!(Image::from_feature_map(FeatureMap::zeros(1, 2, 2)).is_err());
        assert!(Image::from_feature_map(FeatureMap::zeros(3, 2, 2)).is_ok());
    }

    #[test]
    fn from_feature_map_clamps() {
        let map = FeatureMap::filled(3, 1, 1, 400.0);
        let img = Image::from_feature_map(map).unwrap();
        assert_eq!(img.pixel(0, 0), [255.0; 3]);
    }

    #[test]
    fn luma_weights() {
        let img = Image::filled(1, 1, [255.0, 0.0, 0.0]);
        let luma = img.to_luma();
        assert!((luma.at(0, 0, 0) - 0.299 * 255.0).abs() < 1e-3);
    }

    #[test]
    fn downscale_halves_dimensions() {
        let mut img = Image::black(4, 4);
        img.put_pixel(0, 0, [100.0; 3]);
        img.put_pixel(1, 0, [100.0; 3]);
        img.put_pixel(0, 1, [100.0; 3]);
        img.put_pixel(1, 1, [100.0; 3]);
        let small = img.downscale(2);
        assert_eq!((small.width(), small.height()), (2, 2));
        assert_eq!(small.pixel(0, 0), [100.0; 3]);
        assert_eq!(small.pixel(1, 1), [0.0; 3]);
    }

    #[test]
    fn brightness_scaling_clamps() {
        let img = Image::filled(2, 2, [100.0, 200.0, 0.0]);
        let brighter = img.brightness_scaled(1.5);
        assert_eq!(brighter.pixel(0, 0), [150.0, 255.0, 0.0]);
        let darker = img.brightness_scaled(0.5);
        assert_eq!(darker.pixel(0, 0), [50.0, 100.0, 0.0]);
    }

    #[test]
    fn mean_of_uniform_image() {
        let img = Image::filled(3, 3, [30.0, 60.0, 90.0]);
        assert!((img.mean() - 60.0).abs() < 1e-4);
    }
}
