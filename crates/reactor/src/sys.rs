//! Raw `epoll` syscall shims.
//!
//! Rust's `std` links the platform C library on Linux, so the `epoll`
//! family is already present in every binary — it just isn't declared.
//! This module declares exactly the four symbols the [`crate::poller`]
//! needs and wraps each in a function that turns the `-1 + errno`
//! convention into [`io::Result`]. Nothing else in the crate (or the
//! workspace) writes `unsafe`; the blocks below are the entire unsafe
//! surface of the serving stack.

#![allow(unsafe_code)]

use std::io;
use std::os::fd::RawFd;

/// `EPOLL_CTL_ADD`: register a new fd with the epoll instance.
pub const EPOLL_CTL_ADD: i32 = 1;
/// `EPOLL_CTL_DEL`: remove an fd from the epoll instance.
pub const EPOLL_CTL_DEL: i32 = 2;
/// `EPOLL_CTL_MOD`: change the event mask of a registered fd.
pub const EPOLL_CTL_MOD: i32 = 3;

/// `EPOLLIN`: the fd is readable.
pub const EPOLLIN: u32 = 0x001;
/// `EPOLLOUT`: the fd is writable.
pub const EPOLLOUT: u32 = 0x004;
/// `EPOLLERR`: error condition (always reported, need not be requested).
pub const EPOLLERR: u32 = 0x008;
/// `EPOLLHUP`: hang-up (always reported, need not be requested).
pub const EPOLLHUP: u32 = 0x010;
/// `EPOLLRDHUP`: peer closed its writing half.
pub const EPOLLRDHUP: u32 = 0x2000;

/// `EPOLL_CLOEXEC` for [`epoll_create1`].
const EPOLL_CLOEXEC: i32 = 0o2000000;

/// One readiness record, ABI-compatible with the kernel's
/// `struct epoll_event`. On x86-64 the kernel struct is packed (4-byte
/// aligned u64), everywhere else it uses natural alignment.
#[cfg(target_arch = "x86_64")]
#[repr(C, packed)]
#[derive(Debug, Clone, Copy, Default)]
pub struct EpollEvent {
    /// Bitmask of `EPOLL*` readiness flags.
    pub events: u32,
    /// Caller-owned token, returned verbatim with each event.
    pub data: u64,
}

/// One readiness record, ABI-compatible with the kernel's
/// `struct epoll_event`.
#[cfg(not(target_arch = "x86_64"))]
#[repr(C)]
#[derive(Debug, Clone, Copy, Default)]
pub struct EpollEvent {
    /// Bitmask of `EPOLL*` readiness flags.
    pub events: u32,
    /// Caller-owned token, returned verbatim with each event.
    pub data: u64,
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout_ms: i32) -> i32;
    fn close(fd: i32) -> i32;
}

/// Creates a close-on-exec epoll instance and returns its fd.
///
/// # Errors
///
/// The syscall's errno as an [`io::Error`].
pub fn create() -> io::Result<RawFd> {
    // SAFETY: epoll_create1 takes no pointers; any flag value is safe to
    // pass and failures surface as -1/errno.
    let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
    if fd < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(fd)
}

/// Adds, modifies or deletes `fd`'s registration on `epfd`. `events` and
/// `token` are ignored by the kernel for `EPOLL_CTL_DEL`.
///
/// # Errors
///
/// The syscall's errno as an [`io::Error`].
pub fn ctl(epfd: RawFd, op: i32, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
    let mut event = EpollEvent { events, data: token };
    // SAFETY: `event` is a live, properly-laid-out epoll_event for the
    // duration of the call; the kernel reads it and does not retain the
    // pointer past return.
    let rc = unsafe { epoll_ctl(epfd, op, fd, &mut event) };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

/// Blocks until readiness events arrive (or `timeout_ms` elapses;
/// negative means wait forever) and fills `events`, returning how many
/// entries are valid.
///
/// # Errors
///
/// The syscall's errno as an [`io::Error`] — including `EINTR`, which
/// callers are expected to retry.
pub fn wait(epfd: RawFd, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
    if events.is_empty() {
        return Ok(0);
    }
    // SAFETY: the pointer/length pair describes the caller's live slice;
    // the kernel writes at most `events.len()` entries into it.
    let rc = unsafe { epoll_wait(epfd, events.as_mut_ptr(), events.len() as i32, timeout_ms) };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(rc as usize)
}

/// Closes an fd obtained from [`create`].
pub fn close_fd(fd: RawFd) {
    // SAFETY: plain fd close; the caller guarantees the fd came from
    // `create` and is not closed twice (Poller owns it uniquely).
    let _ = unsafe { close(fd) };
}
