//! Hand-rolled HTTP/1.1 request parsing and response writing.
//!
//! The build environment has no registry access, so the serving layer
//! speaks the small, strict subset of HTTP/1.1 its endpoints need: one
//! request per connection (`Connection: close`), explicit
//! `Content-Length` bodies, and hard limits on line length, header count
//! and body size so a hostile peer cannot make the server buffer without
//! bound. Anything outside the subset is a parse error the server maps
//! to `400`.

use std::io::{self, BufRead, Write};

/// Upper bound on the request line and on each header line, in bytes.
pub const MAX_LINE_BYTES: usize = 8 * 1024;
/// Upper bound on the number of request headers.
pub const MAX_HEADERS: usize = 64;

/// One parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// The method verb, uppercased by the client (`GET`, `POST`, ...).
    pub method: String,
    /// The request target path, query string included.
    pub path: String,
    /// Header `(name, value)` pairs in arrival order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The request body (empty without a `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// The first value of a header (name matched case-insensitively).
    pub fn header(&self, name: &str) -> Option<&str> {
        let want = name.to_ascii_lowercase();
        self.headers.iter().find(|(n, _)| *n == want).map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 text.
    ///
    /// # Errors
    ///
    /// Reports non-UTF-8 bodies.
    pub fn body_text(&self) -> Result<&str, String> {
        std::str::from_utf8(&self.body).map_err(|e| format!("body is not UTF-8: {e}"))
    }

    /// Reads and parses one request from a buffered stream. `max_body`
    /// bounds the accepted `Content-Length`; bigger announcements fail
    /// without reading the body.
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::InvalidData`] on malformed requests and exceeded
    /// limits, plus any transport error.
    pub fn read_from<R: BufRead>(reader: &mut R, max_body: usize) -> io::Result<Request> {
        let invalid = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
        let request_line = read_line(reader)?;
        let mut parts = request_line.split(' ');
        let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next())
        {
            (Some(m), Some(p), Some(v), None) if !m.is_empty() && p.starts_with('/') => (m, p, v),
            _ => return Err(invalid(format!("malformed request line {request_line:?}"))),
        };
        if version != "HTTP/1.1" && version != "HTTP/1.0" {
            return Err(invalid(format!("unsupported protocol {version:?}")));
        }
        let mut headers = Vec::new();
        loop {
            let line = read_line(reader)?;
            if line.is_empty() {
                break;
            }
            if headers.len() >= MAX_HEADERS {
                return Err(invalid(format!("more than {MAX_HEADERS} headers")));
            }
            let (name, value) = line
                .split_once(':')
                .ok_or_else(|| invalid(format!("malformed header {line:?}")))?;
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
        let request = Request {
            method: method.to_string(),
            path: path.to_string(),
            headers,
            body: Vec::new(),
        };
        let content_length = match request.header("content-length") {
            None => 0,
            Some(text) => text
                .parse::<usize>()
                .map_err(|e| invalid(format!("bad Content-Length {text:?}: {e}")))?,
        };
        if content_length > max_body {
            return Err(invalid(format!(
                "Content-Length {content_length} exceeds the {max_body}-byte limit"
            )));
        }
        let mut request = request;
        request.body = vec![0u8; content_length];
        reader.read_exact(&mut request.body)?;
        Ok(request)
    }
}

/// Reads one CRLF- (or bare-LF-) terminated line, capped at
/// [`MAX_LINE_BYTES`].
fn read_line<R: BufRead>(reader: &mut R) -> io::Result<String> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        reader.read_exact(&mut byte)?;
        if byte[0] == b'\n' {
            break;
        }
        line.push(byte[0]);
        if line.len() > MAX_LINE_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("line exceeds {MAX_LINE_BYTES} bytes"),
            ));
        }
    }
    if line.last() == Some(&b'\r') {
        line.pop();
    }
    String::from_utf8(line)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("non-UTF-8 line: {e}")))
}

/// The reason phrase of the status codes this server emits.
pub fn status_reason(code: u16) -> &'static str {
    match code {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        429 => "Too Many Requests",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// One HTTP response under construction.
#[derive(Debug, Clone)]
pub struct Response {
    /// The status code.
    pub status: u16,
    headers: Vec<(String, String)>,
    body: Vec<u8>,
}

impl Response {
    /// An empty response with a status code.
    pub fn new(status: u16) -> Self {
        Self { status, headers: Vec::new(), body: Vec::new() }
    }

    /// A JSON response.
    pub fn json(status: u16, body: &str) -> Self {
        Self::new(status).with_body("application/json", body.as_bytes().to_vec())
    }

    /// Adds a header.
    pub fn with_header(mut self, name: &str, value: &str) -> Self {
        self.headers.push((name.to_string(), value.to_string()));
        self
    }

    /// Sets the body and its content type.
    pub fn with_body(mut self, content_type: &str, body: Vec<u8>) -> Self {
        self.headers.retain(|(n, _)| !n.eq_ignore_ascii_case("content-type"));
        self.headers.push(("Content-Type".to_string(), content_type.to_string()));
        self.body = body;
        self
    }

    /// The body bytes.
    pub fn body(&self) -> &[u8] {
        &self.body
    }

    /// Serialises the response (status line, headers, `Content-Length`,
    /// `Connection: close`, body) onto the wire.
    ///
    /// # Errors
    ///
    /// Propagates transport failures.
    pub fn write_to<W: Write>(&self, writer: &mut W) -> io::Result<()> {
        write!(writer, "HTTP/1.1 {} {}\r\n", self.status, status_reason(self.status))?;
        for (name, value) in &self.headers {
            write!(writer, "{name}: {value}\r\n")?;
        }
        write!(writer, "Content-Length: {}\r\nConnection: close\r\n\r\n", self.body.len())?;
        writer.write_all(&self.body)?;
        writer.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &[u8]) -> io::Result<Request> {
        Request::read_from(&mut BufReader::new(raw), 1024)
    }

    #[test]
    fn requests_parse_with_headers_and_body() {
        let raw = b"POST /v1/attacks HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nbody";
        let request = parse(raw).unwrap();
        assert_eq!(request.method, "POST");
        assert_eq!(request.path, "/v1/attacks");
        assert_eq!(request.header("HOST"), Some("x"));
        assert_eq!(request.header("content-length"), Some("4"));
        assert_eq!(request.body_text().unwrap(), "body");
        // Bare-LF requests and bodiless GETs also parse.
        let request = parse(b"GET /healthz HTTP/1.0\n\n").unwrap();
        assert_eq!(request.method, "GET");
        assert!(request.body.is_empty());
    }

    #[test]
    fn malformed_requests_are_invalid_data() {
        for raw in [
            &b"GARBAGE\r\n\r\n"[..],
            b"GET noslash HTTP/1.1\r\n\r\n",
            b"GET / SPDY/3\r\n\r\n",
            b"GET / HTTP/1.1 extra\r\n\r\n",
            b"GET / HTTP/1.1\r\nno-colon-header\r\n\r\n",
            b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
        ] {
            let err = parse(raw).expect_err(&format!("{raw:?}"));
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{raw:?}");
        }
    }

    #[test]
    fn limits_bound_bodies_lines_and_headers() {
        let announced = b"POST / HTTP/1.1\r\nContent-Length: 2048\r\n\r\n";
        let err = parse(announced).expect_err("over max_body");
        assert!(err.to_string().contains("exceeds"), "{err}");

        let long_line = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_LINE_BYTES + 1));
        assert!(parse(long_line.as_bytes()).is_err());

        let mut many_headers = String::from("GET / HTTP/1.1\r\n");
        for k in 0..=MAX_HEADERS {
            many_headers.push_str(&format!("h{k}: v\r\n"));
        }
        many_headers.push_str("\r\n");
        assert!(parse(many_headers.as_bytes()).is_err());
    }

    #[test]
    fn responses_serialise_with_length_and_close() {
        let mut wire = Vec::new();
        Response::json(202, "{\"id\":\"job-1\"}")
            .with_header("Retry-After", "1")
            .write_to(&mut wire)
            .unwrap();
        let text = String::from_utf8(wire).unwrap();
        assert!(text.starts_with("HTTP/1.1 202 Accepted\r\n"), "{text}");
        assert!(text.contains("Content-Type: application/json\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.contains("Content-Length: 14\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"id\":\"job-1\"}"));
        assert_eq!(status_reason(429), "Too Many Requests");
        assert_eq!(status_reason(599), "Internal Server Error");
    }
}
