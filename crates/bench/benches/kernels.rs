//! Reference vs blocked kernel throughput on the detectors' hot shapes.
//!
//! Unlike the criterion benches this is a plain `harness = false` binary
//! so it can emit a machine-readable `BENCH_kernels.json` and act as a CI
//! gate:
//!
//! ```text
//! cargo bench -p bea-bench --bench kernels -- --check --out BENCH_kernels.json
//! ```
//!
//! * `--quick` shrinks the repetition count for smoke runs,
//! * `--threads N` sets the kernel worker-thread count (0 = all cores;
//!   default 1) — CI smoke runs the bench at 1 and N threads and the
//!   run log keeps one record per count,
//! * `--check` exits non-zero when the blocked convolution is not faster
//!   than the reference one on the medium shape, or when the DETR
//!   attention matmul misses its minimum speedup (the CI regression
//!   gates),
//! * `--out PATH` upserts the timing records into the keyed run log (one
//!   run per `(--quick, --threads)` pair; see `support/runlog.rs`), so a
//!   quick CI run never clobbers a full-run baseline.
//!
//! Every case first asserts that the two variants produce `==`-identical
//! outputs **at the configured thread count**, so the numbers always
//! compare equivalent kernels and a threaded run doubles as the
//! threaded-equals-reference equality gate. The `*_batchN` cases compare
//! a per-item loop against one population-batched call over the same
//! inputs (their "reference" column is the loop). Each case also records
//! `allocs_per_forward` — heap allocations during one warmed
//! blocked-kernel forward, counted by a `#[global_allocator]` wrapper —
//! which is 0 for every kernel shape at 1 thread now that weights are
//! pre-packed and intermediates come from the scratch arenas (worker
//! threads beyond the first are scoped spawns, so multi-thread runs pay
//! a handful of allocations per call by design).

#[path = "support/alloc_counter.rs"]
mod alloc_counter;
#[path = "support/runlog.rs"]
mod runlog;

use bea_core::telemetry::JsonObject;
use bea_tensor::{Conv2d, FeatureMap, KernelPolicy, Matrix, WeightInit};
use std::hint::black_box;
use std::process::ExitCode;
use std::time::Instant;

#[global_allocator]
static ALLOC: alloc_counter::CountingAllocator = alloc_counter::CountingAllocator::new();

/// One reference-vs-blocked measurement.
struct Case {
    name: &'static str,
    reference_ms: f64,
    blocked_ms: f64,
    /// Heap allocations in one warmed blocked-kernel forward.
    allocs_per_forward: u64,
}

impl Case {
    fn speedup(&self) -> f64 {
        self.reference_ms / self.blocked_ms.max(1e-12)
    }

    fn json(&self) -> String {
        JsonObject::new()
            .string("name", self.name)
            .float("reference_ms", self.reference_ms)
            .float("blocked_ms", self.blocked_ms)
            .float("speedup", self.speedup())
            .integer("allocs_per_forward", self.allocs_per_forward)
            .finish()
    }
}

/// Allocations across one call of `f`, which must already be warm (the
/// timing loops double as warm-up, so the scratch pools hold every buffer
/// the call needs).
fn allocs_in<R, F: FnMut() -> R>(mut f: F) -> u64 {
    let before = ALLOC.snapshot();
    let _ = black_box(f());
    ALLOC.snapshot().since(&before).allocations
}

/// Best-of-`reps` wall time for one closure, in milliseconds.
fn time_ms<R, F: FnMut() -> R>(reps: usize, mut f: F) -> f64 {
    let _ = black_box(f()); // warm up caches outside the timed region
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let started = Instant::now();
        let _ = black_box(f());
        best = best.min(started.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn seeded_map(channels: usize, h: usize, w: usize, seed: u64) -> FeatureMap {
    let mut init = WeightInit::from_seed(seed);
    let mut map = FeatureMap::zeros(channels, h, w);
    for v in map.as_mut_slice() {
        *v = init.uniform(-3.0, 3.0);
    }
    map
}

fn seeded_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut init = WeightInit::from_seed(seed);
    let mut m = Matrix::zeros(rows, cols);
    for v in m.as_mut_slice() {
        *v = init.uniform(-1.0, 1.0);
    }
    m
}

/// Conv shape descriptor: (name, oc, ic, kernel, stride, padding, in_h, in_w).
type ConvShape = (&'static str, usize, usize, usize, usize, usize, usize, usize);

/// The detectors' convolution hot shapes.
///
/// `conv_yolo_stem` mirrors the YOLO stem (6×6 stride-2 over the full
/// image); `conv_medium` is the CI gate shape; `conv_1x1` is the
/// degenerate pointwise case where im2col is a pure copy.
const CONV_SHAPES: [ConvShape; 3] = [
    ("conv_yolo_stem", 16, 3, 6, 2, 2, 48, 128),
    ("conv_medium", 8, 4, 3, 1, 1, 32, 64),
    ("conv_1x1", 8, 8, 1, 1, 0, 24, 48),
];

fn conv_case(shape: ConvShape, reps: usize) -> Case {
    let (name, oc, ic, k, stride, padding, in_h, in_w) = shape;
    let mut init = WeightInit::from_seed(7);
    let conv = Conv2d::seeded(oc, ic, k, k, stride, padding, &mut init)
        .expect("bench conv shape must be valid");
    let input = seeded_map(ic, in_h, in_w, 11);

    let mut reference = conv.clone();
    reference.set_kernel_policy(KernelPolicy::Reference);
    let mut blocked = conv;
    blocked.set_kernel_policy(KernelPolicy::Blocked);
    assert_eq!(
        reference.forward(&input).unwrap(),
        blocked.forward(&input).unwrap(),
        "{name}: policies must agree before timing"
    );

    let reference_ms = time_ms(reps, || reference.forward(black_box(&input)).unwrap());
    let blocked_ms = time_ms(reps, || blocked.forward(black_box(&input)).unwrap());
    let allocs_per_forward = allocs_in(|| blocked.forward(black_box(&input)).unwrap());
    Case { name, reference_ms, blocked_ms, allocs_per_forward }
}

/// DETR's matrix hot shapes: encoder feed-forward (NN), attention
/// `q·kᵀ` (NT) and `scores·v` (NN over the wide score matrix).
fn matmul_cases(reps: usize) -> Vec<Case> {
    let tokens = seeded_matrix(384, 24, 3);
    let dense = seeded_matrix(24, 24, 4);
    let keys = seeded_matrix(384, 24, 5);
    let scores = seeded_matrix(384, 384, 6);
    let values = seeded_matrix(384, 24, 8);

    let nn = |a: &Matrix, b: &Matrix, name: &'static str, reps: usize| {
        assert_eq!(
            a.matmul_policy(b, KernelPolicy::Reference).unwrap(),
            a.matmul_policy(b, KernelPolicy::Blocked).unwrap(),
            "{name}: policies must agree before timing"
        );
        let reference_ms = time_ms(reps, || {
            black_box(a).matmul_policy(black_box(b), KernelPolicy::Reference).unwrap()
        });
        let blocked_ms = time_ms(reps, || {
            black_box(a).matmul_policy(black_box(b), KernelPolicy::Blocked).unwrap()
        });
        let allocs_per_forward =
            allocs_in(|| black_box(a).matmul_policy(black_box(b), KernelPolicy::Blocked).unwrap());
        Case { name, reference_ms, blocked_ms, allocs_per_forward }
    };

    assert_eq!(
        tokens.matmul_nt_policy(&keys, KernelPolicy::Reference).unwrap(),
        tokens.matmul_nt_policy(&keys, KernelPolicy::Blocked).unwrap(),
        "matmul_nt_qk: policies must agree before timing"
    );
    let nt_reference_ms = time_ms(reps, || {
        black_box(&tokens).matmul_nt_policy(black_box(&keys), KernelPolicy::Reference).unwrap()
    });
    let nt_blocked_ms = time_ms(reps, || {
        black_box(&tokens).matmul_nt_policy(black_box(&keys), KernelPolicy::Blocked).unwrap()
    });
    let nt_allocs = allocs_in(|| {
        black_box(&tokens).matmul_nt_policy(black_box(&keys), KernelPolicy::Blocked).unwrap()
    });
    let nt = Case {
        name: "matmul_nt_qk",
        reference_ms: nt_reference_ms,
        blocked_ms: nt_blocked_ms,
        allocs_per_forward: nt_allocs,
    };

    vec![
        nn(&tokens, &dense, "matmul_nn_ffn", reps),
        nt,
        nn(&scores, &values, "matmul_nn_scores_v", reps),
    ]
}

/// How many population members the batched cases stack.
const BATCH: usize = 4;

/// Population-batched cases: a per-item loop ("reference" column) versus
/// one batched call over the same inputs, both on the blocked kernels.
/// The batched outputs must be `==`-identical to the looped ones — the
/// row-banded GEMMs compute each output row independently, so stacking
/// items only changes how much work one call carries.
fn batched_cases(reps: usize) -> Vec<Case> {
    // DETR encoder feed-forward over a whole population: the stacked
    // (BATCH·384)×24 GEMM against BATCH separate 384×24 GEMMs.
    let items: Vec<Matrix> = (0..BATCH).map(|i| seeded_matrix(384, 24, 20 + i as u64)).collect();
    let item_refs: Vec<&Matrix> = items.iter().collect();
    let dense = seeded_matrix(24, 24, 4);
    let stacked = Matrix::vstack(&item_refs).unwrap();
    let looped: Vec<Matrix> =
        items.iter().map(|m| m.matmul_policy(&dense, KernelPolicy::Blocked).unwrap()).collect();
    let product = stacked.matmul_policy(&dense, KernelPolicy::Blocked).unwrap();
    for (i, item) in looped.iter().enumerate() {
        assert_eq!(
            &product.row_block(i * 384, 384),
            item,
            "matmul_ffn_batch{BATCH}: batched rows must match per-item rows"
        );
    }
    let reference_ms = time_ms(reps, || {
        items
            .iter()
            .map(|m| black_box(m).matmul_policy(black_box(&dense), KernelPolicy::Blocked).unwrap())
            .collect::<Vec<_>>()
    });
    let blocked_ms = time_ms(reps, || {
        black_box(&stacked).matmul_policy(black_box(&dense), KernelPolicy::Blocked).unwrap()
    });
    let allocs_per_forward = allocs_in(|| {
        black_box(&stacked).matmul_policy(black_box(&dense), KernelPolicy::Blocked).unwrap()
    });
    let ffn = Case { name: "matmul_ffn_batch4", reference_ms, blocked_ms, allocs_per_forward };

    // The CI-gate convolution over a whole population: one im2col_batch
    // + single wide GEMM against BATCH separate forwards.
    let (_, oc, ic, k, stride, padding, in_h, in_w) = CONV_SHAPES[1];
    let mut init = WeightInit::from_seed(7);
    let mut conv = Conv2d::seeded(oc, ic, k, k, stride, padding, &mut init)
        .expect("bench conv shape must be valid");
    conv.set_kernel_policy(KernelPolicy::Blocked);
    let inputs: Vec<FeatureMap> =
        (0..BATCH).map(|i| seeded_map(ic, in_h, in_w, 30 + i as u64)).collect();
    let input_refs: Vec<&FeatureMap> = inputs.iter().collect();
    let batched = conv.forward_batch(&input_refs).unwrap();
    for (input, out) in inputs.iter().zip(&batched) {
        assert_eq!(
            &conv.forward(input).unwrap(),
            out,
            "conv_medium_batch{BATCH}: batched outputs must match per-item outputs"
        );
    }
    let reference_ms = time_ms(reps, || {
        inputs.iter().map(|input| conv.forward(black_box(input)).unwrap()).collect::<Vec<_>>()
    });
    let blocked_ms = time_ms(reps, || conv.forward_batch(black_box(&input_refs)).unwrap());
    let allocs_per_forward = allocs_in(|| conv.forward_batch(black_box(&input_refs)).unwrap());
    let conv_case =
        Case { name: "conv_medium_batch4", reference_ms, blocked_ms, allocs_per_forward };
    vec![ffn, conv_case]
}

struct Options {
    quick: bool,
    check: bool,
    out: Option<String>,
    threads: usize,
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options { quick: false, check: false, out: None, threads: 1 };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--quick" => options.quick = true,
            "--check" => options.check = true,
            "--out" => options.out = Some(args.next().ok_or("--out needs a value")?),
            "--threads" => {
                let value = args.next().ok_or("--threads needs a value")?;
                options.threads = value.parse().map_err(|e| format!("--threads {value:?}: {e}"))?;
            }
            // cargo bench forwards a --bench marker to harness=false targets.
            "--bench" => {}
            "--help" | "-h" => {
                return Err("usage: kernels [--quick] [--check] [--out PATH] [--threads N]\n\
                            --quick reduces repetitions for smoke runs\n\
                            --threads sets the kernel worker threads (0 = all \
                            cores; default 1); outputs are asserted identical \
                            at any count\n\
                            --check exits 1 if blocked conv is not faster than \
                            reference on the medium shape or the DETR matmul \
                            misses its minimum speedup\n\
                            --out upserts the timings into the keyed run log"
                    .into())
            }
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
    }
    Ok(options)
}

/// The `--check` floor for the DETR attention matmul (`scores·v`, the
/// detector's widest GEMM): the blocked kernel must beat the reference
/// loops by at least this factor. Kept modest — CI boxes are small and
/// noisy — but strictly above parity so a silent fall-back to scalar
/// code fails the gate.
const MIN_DETR_MATMUL_SPEEDUP: f64 = 1.1;

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let reps = if options.quick { 5 } else { 30 };
    bea_tensor::threads::set_threads(options.threads);
    println!(
        "kernel threads: {} requested, {} resolved",
        options.threads,
        bea_tensor::threads::threads()
    );

    let mut cases: Vec<Case> = CONV_SHAPES.iter().map(|&s| conv_case(s, reps)).collect();
    cases.extend(matmul_cases(reps));
    cases.extend(batched_cases(reps));

    println!(
        "{:<20} {:>14} {:>12} {:>9} {:>20}",
        "case", "reference_ms", "blocked_ms", "speedup", "allocs_per_forward"
    );
    for case in &cases {
        println!(
            "{:<20} {:>14.4} {:>12.4} {:>8.2}x {:>20}",
            case.name,
            case.reference_ms,
            case.blocked_ms,
            case.speedup(),
            case.allocs_per_forward
        );
    }

    if let Some(path) = &options.out {
        let rendered: Vec<String> = cases.iter().map(Case::json).collect();
        let run = JsonObject::new()
            .boolean("quick", options.quick)
            .integer("reps", reps as u64)
            .integer("threads", options.threads as u64)
            .raw("cases", &format!("[{}]", rendered.join(",")))
            .finish();
        if let Err(e) = runlog::merge_keyed_run(path, "kernels", &run) {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
        println!("merged into {path}");
    }

    if options.check {
        let gate = cases.iter().find(|c| c.name == "conv_medium").expect("gate case exists");
        if gate.speedup() < 1.0 {
            eprintln!(
                "kernel regression: blocked conv is slower than reference on \
                 conv_medium ({:.4} ms vs {:.4} ms)",
                gate.blocked_ms, gate.reference_ms
            );
            return ExitCode::FAILURE;
        }
        let detr =
            cases.iter().find(|c| c.name == "matmul_nn_scores_v").expect("DETR gate case exists");
        if detr.speedup() < MIN_DETR_MATMUL_SPEEDUP {
            eprintln!(
                "kernel regression: blocked DETR matmul_nn_scores_v is only {:.2}x \
                 reference ({:.4} ms vs {:.4} ms); the gate requires {MIN_DETR_MATMUL_SPEEDUP}x",
                detr.speedup(),
                detr.blocked_ms,
                detr.reference_ms
            );
            return ExitCode::FAILURE;
        }
        println!(
            "check passed: blocked conv_medium is {:.2}x reference, \
             DETR matmul_nn_scores_v is {:.2}x (floor {MIN_DETR_MATMUL_SPEEDUP}x)",
            gate.speedup(),
            detr.speedup()
        );
    }
    ExitCode::SUCCESS
}
