//! The single-stage convolutional (YOLO-like) detector.
//!
//! Decisions are made from *local* evidence: the NCC response of a class
//! template at a position depends only on pixels under the template. The
//! single global pathway — mirroring YOLOv5's SPPF global pooling and
//! image-level normalisation — is a per-class context gain computed from
//! global average pooling of the response maps. It is deliberately weak: a
//! perturbation far from an object can only reach the object's detection by
//! shifting this pooled context, which is why the paper observes YOLO to be
//! much more robust to butterfly perturbations than DETR (Figures 2 and 3)
//! while not perfectly immune (Figure 1).

use crate::cache::{IncrementalDetect, IncrementalPrediction};
use crate::detector::Detector;
use crate::grad::{field_gradient_to_image, field_to_leaf, GradientObjective, InputGradient};
use crate::nms;
use crate::peaks::{find_peaks, measure_span};
use crate::response::ResponseField;
use crate::templates::TemplateBank;
use crate::types::{Detection, Prediction};
use bea_image::Image;
use bea_scene::{BBox, ObjectClass};
use bea_tensor::{DirtyRect, FeatureMap, KernelPolicy, Matrix, Tape, WeightInit};

/// Configuration of a [`YoloDetector`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct YoloConfig {
    /// Model seed; the paper trains seeds 1..25.
    pub seed: u64,
    /// Relative template weight jitter between seeds.
    pub template_jitter: f32,
    /// Base detection threshold on the modulated NCC score.
    pub threshold: f32,
    /// Per-seed threshold jitter half-range.
    pub threshold_jitter: f32,
    /// Strength of the global context gain (0 disables the global pathway
    /// entirely, making the detector mathematically immune to remote
    /// perturbations).
    pub context_gain: f32,
    /// IoU threshold for class-wise NMS.
    pub nms_iou: f32,
    /// Half-peak fraction for box-extent measurement.
    pub span_frac: f32,
}

impl Default for YoloConfig {
    fn default() -> Self {
        Self {
            seed: 1,
            template_jitter: 0.04,
            threshold: 0.60,
            threshold_jitter: 0.03,
            context_gain: 0.18,
            nms_iou: 0.4,
            span_frac: 0.5,
        }
    }
}

impl YoloConfig {
    /// The default configuration with a different seed.
    pub fn with_seed(seed: u64) -> Self {
        Self { seed, ..Self::default() }
    }
}

/// A single-stage convolutional detector built on matched filters.
///
/// # Examples
///
/// ```
/// use bea_detect::{Detector, YoloConfig, YoloDetector};
/// use bea_scene::SyntheticKitti;
///
/// let yolo = YoloDetector::new(YoloConfig::with_seed(1));
/// let pred = yolo.detect(&SyntheticKitti::evaluation_set().image(0));
/// assert!(!pred.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct YoloDetector {
    name: String,
    config: YoloConfig,
    bank: TemplateBank,
    threshold: f32,
    /// Per-class weights of the global context pathway, `C × C`.
    ctx_weights: Vec<f32>,
}

impl YoloDetector {
    /// Builds a detector from a configuration (deterministic per seed).
    pub fn new(config: YoloConfig) -> Self {
        let mut rng = WeightInit::from_seed(config.seed.wrapping_mul(0x517C_C1B7_2722_0A95));
        let bank = TemplateBank::new(config.template_jitter, &mut rng);
        let threshold = config.threshold
            + rng.uniform(-config.threshold_jitter.max(1e-6), config.threshold_jitter.max(1e-6));
        let c = ObjectClass::COUNT;
        let mut ctx_weights = vec![0.0; c * c];
        rng.fill_normal(&mut ctx_weights, 0.0, 1.0);
        Self { name: format!("yolo-s{}", config.seed), config, bank, threshold, ctx_weights }
    }

    /// The configuration this detector was built from.
    pub fn config(&self) -> &YoloConfig {
        &self.config
    }

    /// The effective (jittered) detection threshold.
    pub fn threshold(&self) -> f32 {
        self.threshold
    }

    /// Replaces the detection threshold (used by calibration).
    pub fn set_threshold(&mut self, threshold: f32) {
        self.threshold = threshold;
    }

    /// Computes the context-modulated response field.
    fn modulated_field(&self, img: &Image) -> FeatureMap {
        self.modulate(&ResponseField::compute(img, &self.bank))
    }

    /// Applies the global context gain to a (possibly cached and patched)
    /// backbone field. The gain is a per-class scalar derived from the
    /// field itself, so the incremental path re-runs this in full — it is
    /// O(C·H·W) against the backbone's O(C·H·W·th·tw).
    fn modulate(&self, field: &ResponseField) -> FeatureMap {
        let mut map = field.map().clone();
        let c = ObjectClass::COUNT;
        // Global context: average positive response per class (the SPPF-like
        // global pooling pathway).
        let plane_len = (map.height() * map.width()).max(1) as f32;
        // Fixed-size context vector: the class count is a compile-time
        // constant, so the hot path need not allocate for it.
        let mut context = [0.0f32; ObjectClass::COUNT];
        for (ci, ctx) in context.iter_mut().enumerate() {
            *ctx = map.channel(ci).iter().map(|v| v.max(0.0)).sum::<f32>() / plane_len;
        }
        for ci in 0..c {
            let drive: f32 = (0..c).map(|k| self.ctx_weights[ci * c + k] * context[k]).sum();
            let gain = 1.0 + self.config.context_gain * drive.tanh();
            for v in map.channel_mut(ci) {
                *v *= gain;
            }
        }
        map
    }
}

impl YoloDetector {
    /// Decodes detections from a modulated response field with an explicit
    /// threshold (used by calibration sweeps over cached forward passes).
    fn decode_at(&self, map: &FeatureMap, threshold: f32) -> Prediction {
        let (w, h) = (map.width(), map.height());
        let mut raw = Prediction::new();
        for class in ObjectClass::ALL {
            let plane = map.channel(class.index());
            let template = self.bank.template(class);
            let reach = (template.width().max(template.height())) * 2;
            // Iterate by reference: consuming the guard by value would
            // escape the pooled peak buffer instead of recycling it.
            for &peak in find_peaks(plane, w, h, threshold).iter() {
                let span = measure_span(plane, w, h, peak, self.config.span_frac, reach);
                let (nominal_len, nominal_wid) = template.nominal_box();
                let (expected_x, expected_y) = template.expected_span();
                // Box extents self-calibrate against the clean-instance
                // autocorrelation span of the template.
                let len = (nominal_len * span.width / expected_x)
                    .clamp(0.6 * nominal_len, 1.5 * nominal_len);
                let wid = (nominal_wid * span.height / expected_y)
                    .clamp(0.6 * nominal_wid, 1.5 * nominal_wid);
                let cx = ResponseField::to_full_res(span.center_x);
                let cy = ResponseField::to_full_res(span.center_y);
                let score =
                    ((peak.value - threshold) / (1.0 - threshold)).clamp(0.0, 1.0) * 0.5 + 0.5;
                raw.push(Detection::new(class, BBox::new(cx, cy, len, wid), score));
            }
        }
        nms::suppress(raw, self.config.nms_iou)
    }

    /// Calibrates the detection threshold on a validation set (see
    /// [`DetrDetector::calibrate`](crate::detr::DetrDetector::calibrate)).
    /// Returns the chosen threshold.
    pub fn calibrate<I: IntoIterator<Item = bea_scene::Scene>>(&mut self, scenes: I) -> f32 {
        let cached: Vec<_> = scenes
            .into_iter()
            .map(|scene| {
                let map = self.modulated_field(&scene.render());
                (scene, map)
            })
            .collect();
        let mut best = (self.threshold, f64::MIN);
        let mut t = 0.45f32;
        while t <= 0.80 {
            let mut total = crate::metrics::DetectionScore::default();
            for (scene, map) in &cached {
                let pred = self.decode_at(map, t);
                total.merge(&crate::metrics::match_prediction(&pred, &scene.ground_truths(), 0.5));
            }
            let f1 = total.f1();
            if f1 > best.1 {
                best = (t, f1);
            }
            t += 0.02;
        }
        self.threshold = best.0;
        best.0
    }
}

impl IncrementalDetect for YoloDetector {
    type Clean = ResponseField;

    fn clean_forward(&self, img: &Image) -> (ResponseField, Prediction) {
        let field = ResponseField::compute(img, &self.bank);
        let prediction = self.decode_at(&self.modulate(&field), self.threshold);
        (field, prediction)
    }

    fn detect_incremental(
        &self,
        clean: &ResponseField,
        perturbed: &Image,
        dirty: &DirtyRect,
    ) -> IncrementalPrediction {
        let mut field = clean.clone();
        let window = field.recompute_window(perturbed, &self.bank, dirty);
        let prediction = self.decode_at(&self.modulate(&field), self.threshold);
        IncrementalPrediction {
            prediction,
            cells_recomputed: window.area() as u64,
            // The context gain re-runs over the patched field, but that is
            // derived data, not a fresh pixel-level pass.
            global_stage_full: false,
        }
    }
}

impl Detector for YoloDetector {
    fn detect(&self, img: &Image) -> Prediction {
        let map = self.modulated_field(img);
        self.decode_at(&map, self.threshold)
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn heatmap(&self, img: &Image) -> FeatureMap {
        self.modulated_field(img)
    }

    /// Differentiates the confidence mass of the clean detections through
    /// the context-gain pathway and the NCC backbone.
    ///
    /// The forward replay on the tape reproduces [`Self::modulate`]
    /// bit-for-bit (same `f32` accumulation order), so the peaks found on
    /// the replayed field are exactly the detection peaks of
    /// [`Detector::detect`].
    fn input_gradient(&self, img: &Image, objective: GradientObjective) -> Option<InputGradient> {
        let field = ResponseField::compute(img, &self.bank);
        let (bh, bw) = (field.height(), field.width());
        let cells = bh * bw;
        let c = ObjectClass::COUNT;

        let mut tape = Tape::new();
        let leaf = tape.leaf(field_to_leaf(&field));
        // Global context pathway: mean positive response per class, mixed
        // by the context weights, squashed, and applied as a row gain.
        let positive = tape.relu(leaf).ok()?;
        let context = tape.row_mean(positive).ok()?;
        let w_ctx = Matrix::from_vec(c, c, self.ctx_weights.clone()).ok()?;
        let drive = tape.const_matmul(&w_ctx, context, KernelPolicy::Reference).ok()?;
        let squashed = tape.tanh(drive).ok()?;
        let gain = tape.affine(squashed, self.config.context_gain, 1.0).ok()?;
        let modulated = tape.scale_rows(leaf, gain).ok()?;

        // The objective selects the modulated score at every detection
        // peak (confidence mass), plus — weighted by `area_weight` — the
        // response mass over each peak's template-sized support window
        // (what the box-extent measurement reads).
        let modv = tape.value(modulated).clone();
        let mut coeffs = Matrix::zeros(c, cells);
        for class in ObjectClass::ALL {
            let ci = class.index();
            let plane = modv.row(ci);
            let template = self.bank.template(class);
            let (th, tw) = (template.height(), template.width());
            for &peak in find_peaks(plane, bw, bh, self.threshold).iter() {
                let cell = peak.y * bw + peak.x;
                coeffs.set(ci, cell, coeffs.at(ci, cell) + 1.0);
                if objective.area_weight > 0.0 {
                    let share = objective.area_weight / (th * tw) as f32;
                    for wy in peak.y.saturating_sub(th / 2)..(peak.y + th - th / 2).min(bh) {
                        for wx in peak.x.saturating_sub(tw / 2)..(peak.x + tw - tw / 2).min(bw) {
                            let i = wy * bw + wx;
                            coeffs.set(ci, i, coeffs.at(ci, i) + share);
                        }
                    }
                }
            }
        }
        let objective_var = tape.weighted_sum(modulated, &coeffs).ok()?;
        let objective_value = f64::from(tape.value(objective_var).at(0, 0));

        let grads = tape.backward(objective_var).ok()?;
        let dleaf = grads.get(leaf)?;
        let dfield = FeatureMap::from_vec(c, bh, bw, dleaf.as_slice().to_vec()).ok()?;
        let gradient = field_gradient_to_image(img, &self.bank, &dfield);
        Some(InputGradient { objective: objective_value, gradient })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bea_scene::SyntheticKitti;

    fn detector() -> YoloDetector {
        YoloDetector::new(YoloConfig::with_seed(1))
    }

    #[test]
    fn detects_objects_on_clean_scenes() {
        let data = SyntheticKitti::evaluation_set();
        let yolo = detector();
        let mut matched = 0usize;
        let mut total = 0usize;
        for index in 0..4 {
            let scene = data.scene(index);
            let pred = yolo.detect(&scene.render());
            for (class, bbox) in scene.ground_truths() {
                total += 1;
                if pred.best_iou(class, &bbox) > 0.5 {
                    matched += 1;
                }
            }
        }
        assert!(
            matched * 10 >= total * 7,
            "clean recall too low: {matched}/{total} ground truths matched"
        );
    }

    #[test]
    fn construction_is_deterministic_per_seed() {
        let a = YoloDetector::new(YoloConfig::with_seed(7));
        let b = YoloDetector::new(YoloConfig::with_seed(7));
        let img = SyntheticKitti::smoke_set().image(0);
        assert_eq!(a.detect(&img), b.detect(&img));
        assert_eq!(a.threshold(), b.threshold());
    }

    #[test]
    fn seeds_produce_different_models() {
        let a = YoloDetector::new(YoloConfig::with_seed(1));
        let b = YoloDetector::new(YoloConfig::with_seed(2));
        assert_ne!(a.threshold(), b.threshold());
        assert_eq!(a.name(), "yolo-s1");
        assert_eq!(b.name(), "yolo-s2");
    }

    #[test]
    fn empty_scene_detects_nothing() {
        let yolo = detector();
        let img = bea_scene::Scene::empty(128, 48).render();
        let pred = yolo.detect(&img);
        assert!(
            pred.len() <= 1,
            "background-only scene should yield (almost) no detections, got {}",
            pred.len()
        );
    }

    #[test]
    fn heatmap_has_one_channel_per_class() {
        let yolo = detector();
        let img = SyntheticKitti::smoke_set().image(0);
        let map = yolo.heatmap(&img);
        assert_eq!(map.channels(), ObjectClass::COUNT);
    }

    #[test]
    fn zero_context_gain_is_immune_to_remote_noise() {
        // With the global pathway disabled, right-half perturbations cannot
        // change left-half detections at all.
        let config = YoloConfig { context_gain: 0.0, ..YoloConfig::with_seed(3) };
        let yolo = YoloDetector::new(config);
        let data = SyntheticKitti::evaluation_set();
        let scene = data.scene(0);
        let base = scene.render();
        let mut noisy = base.clone();
        let mut rng = WeightInit::from_seed(5);
        for y in 0..noisy.height() {
            for x in (noisy.width() / 2 + 14)..noisy.width() {
                let p = noisy.pixel(x, y);
                noisy.put_pixel(
                    x,
                    y,
                    [
                        p[0] + rng.uniform(-80.0, 80.0),
                        p[1] + rng.uniform(-80.0, 80.0),
                        p[2] + rng.uniform(-80.0, 80.0),
                    ],
                );
            }
        }
        let pa = yolo.detect(&base);
        let pb = yolo.detect(&noisy);
        let half = base.width() as f32 / 2.0;
        let left = |p: &Prediction| {
            let mut v: Vec<_> = p.iter().filter(|d| d.bbox.cx < half - 14.0).copied().collect();
            v.sort_by(|a, b| a.bbox.cx.partial_cmp(&b.bbox.cx).unwrap());
            v
        };
        assert_eq!(left(&pa), left(&pb));
    }

    #[test]
    fn scores_are_in_unit_interval() {
        let yolo = detector();
        let pred = yolo.detect(&SyntheticKitti::evaluation_set().image(1));
        for det in &pred {
            assert!((0.0..=1.0).contains(&det.score));
        }
    }
}
