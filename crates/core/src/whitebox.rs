//! Gradient-based white-box baselines: FGSM, PGD, and a multi-term Adam
//! attack.
//!
//! These strategies calibrate the paper's black-box NSGA-II search: they
//! read the true input gradient ([`Detector::input_gradient`]) that the
//! genetic attack must do without. Every strategy produces a normal
//! [`AttackOutcome`] — each optimisation step is quantised to a
//! [`FilterMask`], projected onto the configured region constraint,
//! evaluated through the same [`crate::ButterflyProblem`] objectives as the GA,
//! and recorded as one individual / one generation — so campaign
//! plumbing, telemetry and CSV reporting work unchanged.
//!
//! Everything here is single-threaded and allocation-order deterministic:
//! the same config on the same image produces bit-identical outcomes
//! regardless of the campaign's `--jobs` setting.

use crate::attack::{AttackConfig, AttackOutcome, AttackStrategy, ButterflyAttack};
use bea_detect::{Detector, GradientObjective};
use bea_image::mask::MASK_LIMIT;
use bea_image::{FilterMask, Image};
use bea_nsga2::sorting::{assign_ranks, fast_non_dominated_sort};
use bea_nsga2::{Direction, GenerationStats, Individual, Nsga2Result, Problem};
use std::time::Instant;

/// Weight of the box-area term in the Adam objective (the FGSM/PGD
/// confidence objective uses none).
const ADAM_AREA_WEIGHT: f32 = 0.25;
/// Weight of the L1 mask-norm term in the Adam loss.
const ADAM_L1_WEIGHT: f32 = 0.05;
/// Weight of the squared-L2 mask-norm term in the Adam loss.
const ADAM_L2_WEIGHT: f32 = 0.05;
/// Adam first-moment decay.
const ADAM_BETA1: f32 = 0.9;
/// Adam second-moment decay.
const ADAM_BETA2: f32 = 0.999;
/// Adam denominator stabiliser.
const ADAM_EPS: f32 = 1e-8;
/// Adam step size as a fraction of the L∞ budget.
const ADAM_LR_FRACTION: f32 = 0.25;

/// Runs the configured gradient strategy for one detector on one image.
pub(crate) fn run(
    attack: &ButterflyAttack,
    detector: &dyn Detector,
    img: &Image,
    mut observer: impl FnMut(&GenerationStats),
) -> AttackOutcome {
    let config = attack.config();
    let strategy = config.strategy;
    let problem = attack.make_problem(vec![detector], vec![img.clone()]);
    let directions = problem.directions();
    let (width, height) = (problem.width(), problem.height());
    let cache_before = problem.cache_stats();

    let epsilon = config.whitebox_epsilon.max(1.0);
    let steps = match strategy {
        AttackStrategy::Fgsm => 1,
        _ => config.nsga2.generations.max(1),
    };
    let grad_objective = GradientObjective {
        area_weight: if strategy == AttackStrategy::Adam { ADAM_AREA_WEIGHT } else { 0.0 },
    };

    let mut population: Vec<Individual<FilterMask>> = Vec::with_capacity(steps + 1);
    let mut history: Vec<GenerationStats> = Vec::with_capacity(steps + 1);
    let mut objectives_seen: Vec<Vec<f64>> = Vec::with_capacity(steps + 1);
    let mut evaluations = 0usize;

    let record = |mask: FilterMask,
                  generation: usize,
                  select_ms: f64,
                  population: &mut Vec<Individual<FilterMask>>,
                  objectives_seen: &mut Vec<Vec<f64>>,
                  history: &mut Vec<GenerationStats>,
                  evaluations: &mut usize,
                  observer: &mut dyn FnMut(&GenerationStats)| {
        let eval_start = Instant::now();
        let objectives = problem.evaluate(&mask);
        let evaluate_ms = eval_start.elapsed().as_secs_f64() * 1e3;
        *evaluations += 1;
        objectives_seen.push(objectives.clone());
        population.push(Individual::new(mask, objectives));
        let sort_start = Instant::now();
        let fronts = fast_non_dominated_sort(objectives_seen, &directions);
        let front_size = fronts.first().map_or(0, Vec::len);
        let best = best_per_objective(objectives_seen, &directions);
        let stats = GenerationStats {
            generation,
            front_size,
            best,
            hypervolume: None,
            evaluate_ms,
            sort_ms: sort_start.elapsed().as_secs_f64() * 1e3,
            select_ms,
        };
        observer(&stats);
        history.push(stats);
    };

    // Generation 0: the zero mask (the GA seeds it too), which anchors the
    // intensity axis of the front and gives FGSM/PGD their clean-image
    // gradient.
    record(
        FilterMask::zeros(width, height),
        0,
        0.0,
        &mut population,
        &mut objectives_seen,
        &mut history,
        &mut evaluations,
        &mut observer,
    );

    // The continuous perturbation, in the gradient map's channel-major
    // layout; quantised to a FilterMask at every step.
    let plane = width * height;
    let mut delta = vec![0.0f32; 3 * plane];
    let mut adam_m = vec![0.0f32; 3 * plane];
    let mut adam_v = vec![0.0f32; 3 * plane];
    let pgd_alpha = 2.5 * epsilon / steps as f32;

    for step in 1..=steps {
        let step_start = Instant::now();
        let current = quantize(&delta, width, height, config);
        let perturbed = current.apply(img);
        let Some(grad) = detector.input_gradient(&perturbed, grad_objective) else {
            // Black-box detector: no gradient to follow. The outcome keeps
            // whatever was recorded so far (at least the zero mask).
            break;
        };
        let g = grad.gradient.as_slice();
        match strategy {
            AttackStrategy::Fgsm => {
                // One signed step to the corner of the L∞ ball, against
                // the objective.
                for (d, &gi) in delta.iter_mut().zip(g) {
                    *d = -epsilon * sign(gi);
                }
            }
            AttackStrategy::Pgd => {
                for (d, &gi) in delta.iter_mut().zip(g) {
                    *d = (*d - pgd_alpha * sign(gi)).clamp(-epsilon, epsilon);
                }
            }
            AttackStrategy::Adam | AttackStrategy::Nsga2 => {
                // (Nsga2 never reaches this module; the arm keeps the
                // match exhaustive.)
                let n = delta.len() as f32;
                let lr = ADAM_LR_FRACTION * epsilon;
                let t = step as i32;
                for i in 0..delta.len() {
                    let reg =
                        ADAM_L1_WEIGHT * sign(delta[i]) / n + 2.0 * ADAM_L2_WEIGHT * delta[i] / n;
                    let gi = g[i] + reg;
                    adam_m[i] = ADAM_BETA1 * adam_m[i] + (1.0 - ADAM_BETA1) * gi;
                    adam_v[i] = ADAM_BETA2 * adam_v[i] + (1.0 - ADAM_BETA2) * gi * gi;
                    let m_hat = adam_m[i] / (1.0 - ADAM_BETA1.powi(t));
                    let v_hat = adam_v[i] / (1.0 - ADAM_BETA2.powi(t));
                    delta[i] = (delta[i] - lr * m_hat / (v_hat.sqrt() + ADAM_EPS))
                        .clamp(-epsilon, epsilon);
                }
            }
        }
        // Project onto the allowed region in the continuous domain too, so
        // Adam's momentum cannot smuggle mass back in.
        for y in 0..height {
            for x in 0..width {
                if !config.constraint.allows(x, y, width, height) {
                    for c in 0..3 {
                        delta[c * plane + y * width + x] = 0.0;
                    }
                }
            }
        }
        let select_ms = step_start.elapsed().as_secs_f64() * 1e3;
        record(
            quantize(&delta, width, height, config),
            step,
            select_ms,
            &mut population,
            &mut objectives_seen,
            &mut history,
            &mut evaluations,
            &mut observer,
        );
    }

    assign_ranks(&mut population, &directions);
    let cache = match (cache_before, problem.cache_stats()) {
        (Some(before), Some(after)) => Some(after.since(&before)),
        (None, after) => after,
        (Some(_), None) => None,
    };
    let result = Nsga2Result::from_parts(population, directions, history, evaluations);
    AttackOutcome::from_parts(result, cache)
}

/// Sign with an exact zero (unlike `f32::signum`, which maps `+0` to `1`).
fn sign(v: f32) -> f32 {
    if v > 0.0 {
        1.0
    } else if v < 0.0 {
        -1.0
    } else {
        0.0
    }
}

/// Rounds the continuous perturbation to integer mask values and projects
/// it onto the configured region constraint.
fn quantize(delta: &[f32], width: usize, height: usize, config: &AttackConfig) -> FilterMask {
    let plane = width * height;
    let mut mask = FilterMask::zeros(width, height);
    for c in 0..3 {
        for y in 0..height {
            for x in 0..width {
                let v = delta[c * plane + y * width + x].round();
                mask.set(c, y, x, v.clamp(-f32::from(MASK_LIMIT), f32::from(MASK_LIMIT)) as i16);
            }
        }
    }
    config.constraint.apply(&mut mask);
    mask
}

/// Best value seen per objective, respecting its direction.
fn best_per_objective(objectives: &[Vec<f64>], directions: &[Direction]) -> Vec<f64> {
    directions
        .iter()
        .enumerate()
        .map(|(i, direction)| {
            let values = objectives.iter().map(|o| o[i]);
            match direction {
                Direction::Minimize => values.fold(f64::INFINITY, f64::min),
                Direction::Maximize => values.fold(f64::NEG_INFINITY, f64::max),
            }
        })
        .collect()
}
