//! `bea-reactor`: dependency-free readiness polling for the serving layer.
//!
//! The build environment has no registry access, so this crate provides
//! the one primitive `std` withholds that event-driven serving needs: a
//! readiness multiplexer. On Linux it wraps the raw `epoll` syscalls
//! through hand-declared FFI shims ([`sys`]) — no `libc` crate, just the
//! symbols `std` already links — behind a fully safe [`Poller`] facade.
//! One thread registers any number of non-blocking sockets and sleeps in
//! [`Poller::wait`] until some of them become readable or writable,
//! which is what lets `bea-serve` multiplex thousands of connections
//! without a thread per connection.
//!
//! Everything above [`sys`] is `#![deny(unsafe_code)]`-clean: the unsafe
//! surface is four syscall wrappers, each a one-line FFI call with its
//! invariants stated at the call site.
//!
//! Off Linux the crate still compiles; constructing a [`Poller`] reports
//! [`std::io::ErrorKind::Unsupported`] and callers fall back to the
//! blocking thread-per-connection path.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod poller;
#[cfg(target_os = "linux")]
pub mod sys;

pub use poller::{Event, Interest, Poller, Token};
