//! Cross-crate checks of the paper's Algorithms 1 and 2 against
//! hand-computed values, and of their consistency inside the attack
//! problem.

use butterfly_effect_attack::attack::objectives::{obj_degrad, obj_dist, DistanceField};
use butterfly_effect_attack::detect::{Detection, Prediction};
use butterfly_effect_attack::nsga2::Problem;
use butterfly_effect_attack::{
    BBox, ButterflyProblem, Detector, FilterMask, Image, ObjectClass, RegionConstraint,
};

fn det(class: ObjectClass, cx: f32, cy: f32, len: f32, wid: f32) -> Detection {
    Detection::new(class, BBox::new(cx, cy, len, wid), 0.9)
}

#[test]
fn algorithm1_worked_example() {
    // Clean: two cars. Perturbed: one kept exactly, one shifted by half
    // its width (IoU = 1/3 for identically sized boxes).
    let clean = Prediction::from_detections(vec![
        det(ObjectClass::Car, 10.0, 10.0, 8.0, 8.0),
        det(ObjectClass::Car, 50.0, 10.0, 8.0, 8.0),
    ]);
    let perturbed = Prediction::from_detections(vec![
        det(ObjectClass::Car, 10.0, 10.0, 8.0, 8.0),
        det(ObjectClass::Car, 54.0, 10.0, 8.0, 8.0),
    ]);
    // A = 1.0 + 1/3, divided by 2 valid boxes.
    let expected = (1.0 + 1.0 / 3.0) / 2.0;
    assert!((obj_degrad(&clean, &perturbed) - expected).abs() < 1e-6);
}

#[test]
fn algorithm2_worked_example() {
    // One box at (4, 4), one perturbed pixel at (12, 4): D there is the
    // distance 8 to the box centre; sum / 1 perturbed pixel = 8 * weight.
    let clean = Prediction::from_detections(vec![det(ObjectClass::Car, 4.0, 4.0, 2.0, 2.0)]);
    let mut mask = FilterMask::zeros(16, 9);
    mask.set(0, 4, 12, 100);
    let value = obj_dist(16, 9, &clean, &mask, 0.0);
    assert!((value - 8.0 * 100.0).abs() < 1e-9, "got {value}");
}

#[test]
fn algorithm2_penalises_in_box_pixels_with_negative_average() {
    let clean = Prediction::from_detections(vec![det(ObjectClass::Car, 8.0, 4.0, 4.0, 4.0)]);
    let field = DistanceField::new(16, 9, &clean, 0.0);
    // The D value inside the box equals -(mean distance over all pixels).
    let sum: f64 = {
        // Rebuild the distance matrix without the in-box overwrite.
        let raw = DistanceField::from_boxes(16, 9, &[], 0.0);
        let diag = raw.values()[0]; // empty field = diagonal everywhere
        let mut total = 0.0;
        for y in 0..9 {
            for x in 0..16 {
                let dx = 8.0 - x as f64;
                let dy = 4.0 - y as f64;
                total += (dx * dx + dy * dy).sqrt().min(diag);
            }
        }
        total
    };
    let neg_avg = -sum / (16.0 * 9.0);
    let inside = field.values()[4 * 16 + 8];
    assert!((inside - neg_avg).abs() < 1e-9, "inside {inside}, expected {neg_avg}");
}

/// A detector that always reports one fixed car.
struct Fixed;

impl Detector for Fixed {
    fn detect(&self, _img: &Image) -> Prediction {
        Prediction::from_detections(vec![det(ObjectClass::Car, 8.0, 8.0, 6.0, 6.0)])
    }

    fn name(&self) -> &str {
        "fixed"
    }
}

#[test]
fn problem_objectives_match_standalone_functions() {
    let img = Image::black(32, 16);
    let problem = ButterflyProblem::single(&Fixed, &img, 2.0, RegionConstraint::Full);
    let mut mask = FilterMask::zeros(32, 16);
    mask.set(0, 2, 28, 120);
    mask.set(1, 13, 30, -60);

    let objectives = problem.evaluate(&mask);
    // obj_intensity is the plain L2 norm.
    let expected_intensity = ((120.0f64).powi(2) + (60.0f64).powi(2)).sqrt();
    assert!((objectives[0] - expected_intensity).abs() < 1e-6);
    // The detector is input-independent: no degradation, ever.
    assert_eq!(objectives[1], 1.0);
    // obj_dist equals the cached field's normalised value.
    let clean = Fixed.detect(&img);
    let field = DistanceField::new(32, 16, &clean, 2.0);
    assert!((objectives[2] - field.objective_normalized(&mask)).abs() < 1e-12);
}

#[test]
fn ensemble_objectives_average_member_objectives() {
    // Eqs. 1-3 with two *different* detectors: a fixed one (never degrades)
    // and a brightness-sensitive one.
    struct Fragile;
    impl Detector for Fragile {
        fn detect(&self, img: &Image) -> Prediction {
            if img.pixel(30, 2)[0] > 50.0 {
                Prediction::new()
            } else {
                Prediction::from_detections(vec![det(ObjectClass::Car, 8.0, 8.0, 6.0, 6.0)])
            }
        }
        fn name(&self) -> &str {
            "fragile"
        }
    }
    let img = Image::black(32, 16);
    let mut mask = FilterMask::zeros(32, 16);
    mask.set(0, 2, 30, 120); // kills Fragile's detection, Fixed is immune
    let pair =
        ButterflyProblem::ensemble(vec![&Fixed, &Fragile], &img, 2.0, RegionConstraint::Full);
    let objectives = pair.evaluate(&mask);
    // Eq. 2: average of 1.0 (Fixed) and 0.0 (Fragile).
    assert_eq!(objectives[1], 0.5);
    // Eq. 1: intensity is the mask's own norm, not averaged.
    assert!((objectives[0] - 120.0).abs() < 1e-6);
}
