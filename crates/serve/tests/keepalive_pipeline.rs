//! Keep-alive, pipelining and progress-streaming tests against the
//! event-driven front-end.
//!
//! The keep-alive contract: a client may pipeline any number of
//! requests on one connection, under any byte chunking, and the
//! response sequence must be exactly what the same requests produce
//! serially on fresh connections. `Connection: close` (or the
//! per-connection request cap) truncates the conversation after the
//! in-flight response, per RFC 9112 §9.6. Progress streams ride the
//! same connections as chunked bodies and replay deterministically.

use bea_scene::SyntheticKitti;
use bea_serve::http::ResponseParser;
use bea_serve::{Client, Server, ServerConfig};
use proptest::prelude::*;
use proptest::test_runner::TestRng;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::OnceLock;
use std::time::Duration;

fn scratch(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("bea_keepalive_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    root
}

fn reactor_config(store_dir: PathBuf) -> ServerConfig {
    ServerConfig {
        workers: 1,
        queue_capacity: 32,
        dataset: SyntheticKitti::smoke_set(),
        drain_deadline: Duration::from_secs(120),
        reactor: true,
        ..ServerConfig::new(store_dir)
    }
}

/// One server shared by every proptest case: booting a server per case
/// would dominate the test, and the idempotent request pool below never
/// mutates its state. Leaked on purpose — the process end reaps it.
fn shared_server_addr() -> &'static str {
    static ADDR: OnceLock<String> = OnceLock::new();
    ADDR.get_or_init(|| {
        let server =
            Server::start(reactor_config(scratch("shared"))).expect("shared server starts");
        let addr = server.addr().to_string();
        std::mem::forget(server);
        addr
    })
}

/// The request pool the properties draw from: state-independent
/// requests whose responses never change across calls (no `/metrics`,
/// whose counters move; no successful submissions).
const POOL: &[(&str, &str, &str)] = &[
    ("GET", "/healthz", ""),
    ("GET", "/does-not-exist", ""),
    ("GET", "/v1/attacks/999999", ""),
    ("GET", "/v1/attacks/999999/csv", ""),
    ("GET", "/v1/attacks/not-a-number/progress", ""),
    ("PUT", "/healthz", ""),
    ("POST", "/v1/attacks", "{}"),
    ("POST", "/v1/attacks", "not json at all"),
];

/// Renders one pool request. `close` appends `Connection: close`.
fn render(index: usize, close: bool) -> Vec<u8> {
    let (method, path, body) = POOL[index % POOL.len()];
    let mut text = format!("{method} {path} HTTP/1.1\r\nHost: test\r\n");
    if !body.is_empty() || method == "POST" {
        text.push_str(&format!("Content-Length: {}\r\n", body.len()));
    }
    if close {
        text.push_str("Connection: close\r\n");
    }
    text.push_str("\r\n");
    text.push_str(body);
    text.into_bytes()
}

/// Writes `stream_bytes` to one connection in chunks whose sizes are
/// drawn from `rng` in `[1, max_chunk]` (1 = byte at a time), then
/// reads until `expected` responses have parsed or the peer closes.
/// Returns the `(status, body)` sequence.
fn pipelined_roundtrip(
    addr: &str,
    stream_bytes: &[u8],
    rng: &mut TestRng,
    max_chunk: usize,
    expected: usize,
) -> Vec<(u16, Vec<u8>)> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).expect("read timeout");
    let mut at = 0;
    while at < stream_bytes.len() {
        let take = (1 + rng.below(max_chunk as u64) as usize).min(stream_bytes.len() - at);
        stream.write_all(&stream_bytes[at..at + take]).expect("pipelined write");
        at += take;
    }
    let mut parser = ResponseParser::new(1024 * 1024);
    let mut responses = Vec::new();
    let mut buf = [0u8; 4096];
    while responses.len() < expected {
        while let Some(response) = parser.next_response().expect("well-formed response") {
            responses.push((response.status, response.body));
        }
        if responses.len() >= expected {
            break;
        }
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => parser.feed(&buf[..n]),
            Err(e) => panic!("read failed after {} responses: {e}", responses.len()),
        }
    }
    responses
}

/// The serial baseline: each request on its own fresh connection with
/// `Connection: close`, read to EOF.
fn serial_roundtrip(addr: &str, indices: &[usize]) -> Vec<(u16, Vec<u8>)> {
    indices
        .iter()
        .map(|&index| {
            let mut stream = TcpStream::connect(addr).expect("connect");
            stream.set_read_timeout(Some(Duration::from_secs(30))).expect("read timeout");
            stream.write_all(&render(index, true)).expect("write");
            let mut bytes = Vec::new();
            stream.read_to_end(&mut bytes).expect("read to EOF");
            let mut parser = ResponseParser::new(1024 * 1024);
            parser.feed(&bytes);
            let response = parser
                .next_response()
                .expect("well-formed response")
                .expect("one full response before EOF");
            (response.status, response.body)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any pipelined burst, under any chunking down to one byte per
    /// write, answers with exactly the response sequence the same
    /// requests produce serially on fresh connections.
    #[test]
    fn pipelined_keepalive_matches_serial_one_shot(
        (count, max_chunk, seed) in (1usize..=6, 1usize..=24, 0u64..=u64::MAX)
    ) {
        let addr = shared_server_addr();
        let mut rng = TestRng::from_seed(seed);
        let indices: Vec<usize> =
            (0..count).map(|_| rng.below(POOL.len() as u64) as usize).collect();
        let mut stream_bytes = Vec::new();
        for (k, &index) in indices.iter().enumerate() {
            // The last request closes so the server ends the
            // conversation once everything is answered.
            stream_bytes.extend_from_slice(&render(index, k + 1 == indices.len()));
        }
        let pipelined = pipelined_roundtrip(addr, &stream_bytes, &mut rng, max_chunk, count);
        let serial = serial_roundtrip(addr, &indices);
        prop_assert_eq!(pipelined.len(), count, "a pipelined response went missing");
        prop_assert_eq!(pipelined, serial);
    }
}

/// A `Connection: close` in the middle of a pipelined burst answers
/// everything up to and including the closing request, then ends the
/// connection — later pipelined requests are never answered.
#[test]
fn mid_pipeline_connection_close_truncates_the_conversation() {
    let addr = shared_server_addr();
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).expect("read timeout");
    let mut burst = Vec::new();
    burst.extend_from_slice(&render(0, false)); // GET /healthz, keep-alive
    burst.extend_from_slice(&render(1, true)); // GET /does-not-exist, close
    burst.extend_from_slice(&render(0, false)); // never answered
    stream.write_all(&burst).expect("pipelined write");

    let mut bytes = Vec::new();
    stream.read_to_end(&mut bytes).expect("server closes after the marked request");
    let mut parser = ResponseParser::new(1024 * 1024);
    parser.feed(&bytes);
    let first = parser.next_response().expect("parse").expect("first response");
    assert_eq!(first.status, 200);
    assert_eq!(first.header("connection"), Some("keep-alive"));
    let second = parser.next_response().expect("parse").expect("second response");
    assert_eq!(second.status, 404);
    assert_eq!(second.header("connection"), Some("close"));
    assert!(
        parser.next_response().expect("no trailing garbage").is_none(),
        "the request after Connection: close must go unanswered"
    );
}

/// An HTTP/1.0 request without `Connection: keep-alive` closes after
/// one response.
#[test]
fn http10_defaults_to_close() {
    let addr = shared_server_addr();
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).expect("read timeout");
    stream.write_all(b"GET /healthz HTTP/1.0\r\nHost: test\r\n\r\n").expect("write");
    let mut bytes = Vec::new();
    stream.read_to_end(&mut bytes).expect("read to EOF");
    let mut parser = ResponseParser::new(1024 * 1024);
    parser.feed(&bytes);
    let response = parser.next_response().expect("parse").expect("one response");
    assert_eq!(response.status, 200);
    assert_eq!(response.header("connection"), Some("close"));
}

/// The per-connection request cap retires a connection after its quota:
/// the capped response carries `Connection: close` and later pipelined
/// requests go unanswered.
#[test]
fn per_connection_request_cap_closes_at_the_cap() {
    let store_dir = scratch("cap");
    let mut config = reactor_config(store_dir.clone());
    config.conn_requests_max = 2;
    let server = Server::start(config).expect("server starts");
    let addr = server.addr().to_string();

    let mut stream = TcpStream::connect(&addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).expect("read timeout");
    let mut burst = Vec::new();
    for _ in 0..3 {
        burst.extend_from_slice(&render(0, false)); // all keep-alive
    }
    stream.write_all(&burst).expect("pipelined write");
    let mut bytes = Vec::new();
    stream.read_to_end(&mut bytes).expect("server closes at the cap");
    let mut parser = ResponseParser::new(1024 * 1024);
    parser.feed(&bytes);
    let first = parser.next_response().expect("parse").expect("first response");
    assert_eq!(first.header("connection"), Some("keep-alive"));
    let second = parser.next_response().expect("parse").expect("second response");
    assert_eq!(second.header("connection"), Some("close"), "the cap marks the final response");
    assert!(parser.next_response().expect("parse").is_none(), "the third request is unanswered");

    server.shutdown();
    let _ = std::fs::remove_dir_all(&store_dir);
}

/// Progress streams deliver one record per generation plus a terminal
/// `progress_end`, replay identically once the job is done, and the
/// `/jobs/<id>/progress` alias serves the same chunked stream.
#[test]
fn progress_streams_per_generation_telemetry_and_replays() {
    let store_dir = scratch("progress");
    let server = Server::start(reactor_config(store_dir.clone())).expect("server starts");
    let client = Client::new(server.addr().to_string());

    let body = "{\"arch\":\"yolo\",\"pop\":8,\"gens\":3,\"seed\":11,\
                \"image\":{\"width\":64,\"height\":32,\"fill\":[10,20,30]}}";
    let accepted = client.submit(body).expect("submit");
    assert_eq!(accepted.status, 202, "{:?}", accepted.body_text());
    let id = bea_core::telemetry::parse_json(accepted.body_text().unwrap())
        .ok()
        .and_then(|v| v.get("id").and_then(|id| id.as_str().map(String::from)))
        .expect("202 body carries an id");

    // First stream: may attach while the job still runs (live tail) or
    // after it finished (replay) — the delivered lines are the same.
    let mut live = Vec::new();
    let status = client.progress(&id, |line| live.push(line.to_string())).expect("progress");
    assert_eq!(status, 200);
    let (end, generations) = live.split_last().expect("at least the terminal record");
    assert!(
        end.contains("\"type\":\"progress_end\"") && end.contains("\"status\":\"done\""),
        "terminal record: {end}"
    );
    assert!(!generations.is_empty(), "at least one generation record");
    for line in generations {
        let record = bea_core::telemetry::parse_json(line).expect("generation record is JSON");
        assert_eq!(record.get("type").and_then(|v| v.as_str()), Some("generation"));
        assert!(record.get("generation").is_some(), "{line}");
    }

    // Second stream after completion: a full replay, byte-for-byte.
    let mut replay = Vec::new();
    let status = client.progress(&id, |line| replay.push(line.to_string())).expect("replay");
    assert_eq!(status, 200);
    assert_eq!(live, replay, "progress replay diverged from the live stream");

    // The alias path serves the same stream as a chunked response.
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).expect("read timeout");
    stream
        .write_all(format!("GET /jobs/{id}/progress HTTP/1.1\r\nHost: test\r\n\r\n").as_bytes())
        .expect("write");
    let mut bytes = Vec::new();
    stream.read_to_end(&mut bytes).expect("stream is terminal on the connection");
    let head = String::from_utf8_lossy(&bytes);
    assert!(head.starts_with("HTTP/1.1 200 OK\r\n"), "{head}");
    assert!(head.to_ascii_lowercase().contains("transfer-encoding: chunked"), "{head}");
    assert!(bytes.ends_with(b"0\r\n\r\n"), "the zero chunk terminates the stream");

    // Unknown and malformed ids answer 404 without streaming.
    assert_eq!(client.progress("999999", |_| {}).expect("unknown id"), 404);

    let report = server.shutdown();
    assert!(!report.deadline_expired);
    let _ = std::fs::remove_dir_all(&store_dir);
}
