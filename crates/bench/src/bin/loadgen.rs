//! Closed-loop load generator for the attack server.
//!
//! ```text
//! cargo run --release -p bea-bench --bin loadgen -- \
//!     --addr 127.0.0.1:7878 --clients 8 --requests 20 \
//!     --csv target/experiments/loadgen.csv
//! ```
//!
//! Each client thread submits `--requests` jobs back to back. A `429`
//! is backpressure, not loss: the client retries the same job with
//! bounded exponential backoff (base `Retry-After` or 100 ms, doubling
//! per attempt, capped at 5 s, at most [`MAX_SUBMIT_ATTEMPTS`] tries)
//! and only counts the job rejected once every attempt came back `429`.
//! The run reports p50/p99 submit latency, the acceptance/rejection
//! split, and — with `--wait` — polls every accepted job to completion
//! so the tool doubles as an end-to-end soak test. Per-request rows
//! (final status plus how many attempts it took) land in `--csv`.

use bea_bench::args::{self, ArgParser};
use bea_serve::{percentile, Client};
use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::{Duration, Instant};

struct Options {
    addr: String,
    clients: usize,
    requests: usize,
    pop: usize,
    gens: usize,
    seed: u64,
    csv: Option<PathBuf>,
    wait: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options {
        addr: "127.0.0.1:7878".to_string(),
        clients: 4,
        requests: 10,
        pop: 4,
        gens: 1,
        seed: 1,
        csv: None,
        wait: false,
    };
    let mut args = ArgParser::from_env();
    while let Some(flag) = args.next_flag() {
        match flag.as_str() {
            "--addr" => options.addr = args.value(&flag)?,
            "--clients" => options.clients = args.parse(&flag)?,
            "--requests" => options.requests = args.parse(&flag)?,
            "--pop" => options.pop = args.parse(&flag)?,
            "--gens" => options.gens = args.parse(&flag)?,
            "--seed" => options.seed = args.parse(&flag)?,
            "--csv" => options.csv = Some(PathBuf::from(args.value(&flag)?)),
            "--wait" => options.wait = true,
            "--help" | "-h" => {
                return Err("usage: loadgen [--addr HOST:PORT] [--clients N] [--requests N] \
                            [--pop N] [--gens N] [--seed N] [--csv FILE] [--wait]\n\
                            each client submits --requests inline-image jobs back to back;\n\
                            429 responses count as backpressure, not errors\n\
                            --wait polls every accepted job to completion afterwards"
                    .into())
            }
            other => return Err(args::unknown_flag(other)),
        }
    }
    if options.clients == 0 || options.requests == 0 {
        return Err("--clients and --requests must be positive".into());
    }
    Ok(options)
}

/// Most submit attempts per job before a `429` storm counts as a real
/// rejection.
const MAX_SUBMIT_ATTEMPTS: u32 = 5;

/// How long to sleep before retry number `attempt` (0-based) of a job
/// the server answered `429`: the advertised `Retry-After` (seconds)
/// when present, otherwise 100 ms, doubled per attempt and capped at
/// 5 s so a saturated server backs clients off without stranding them.
fn backoff_delay(attempt: u32, retry_after_secs: Option<u64>) -> Duration {
    const CAP: Duration = Duration::from_secs(5);
    let base = match retry_after_secs {
        Some(secs) => Duration::from_secs(secs),
        None => Duration::from_millis(100),
    };
    let scaled = base.saturating_mul(1u32 << attempt.min(16));
    scaled.min(CAP)
}

/// One submission's outcome (its final attempt).
struct Sample {
    client: usize,
    request: usize,
    status: u16,
    latency_s: f64,
    attempts: u32,
    id: Option<String>,
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    println!(
        "loadgen: {} client(s) x {} request(s) against {} (pop {}, gens {})",
        options.clients, options.requests, options.addr, options.pop, options.gens
    );
    let started = Instant::now();
    let samples: Vec<Sample> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..options.clients)
            .map(|client_id| {
                let addr = options.addr.clone();
                let (pop, gens, seed, requests) =
                    (options.pop, options.gens, options.seed, options.requests);
                scope.spawn(move || {
                    let client = Client::new(addr);
                    let mut samples = Vec::with_capacity(requests);
                    for request_id in 0..requests {
                        // Distinct fills vary the work without changing
                        // the cell identity or requiring pixel payloads.
                        let fill = (client_id * 31 + request_id * 7) % 256;
                        let body = format!(
                            "{{\"arch\":\"yolo\",\"pop\":{pop},\"gens\":{gens},\"seed\":{seed},\
                             \"image\":{{\"width\":64,\"height\":32,\"fill\":[{fill},64,128]}}}}"
                        );
                        // Retry `429` with bounded exponential backoff;
                        // only the final attempt is recorded, so a job
                        // counts rejected only once the storm outlasted
                        // every retry.
                        let mut attempt = 0u32;
                        let final_response = loop {
                            let submit_started = Instant::now();
                            let response = match client.submit(&body) {
                                Ok(response) => response,
                                Err(e) => {
                                    eprintln!("client {client_id}: submit failed: {e}");
                                    break None;
                                }
                            };
                            let latency_s = submit_started.elapsed().as_secs_f64();
                            if response.status == 429 && attempt + 1 < MAX_SUBMIT_ATTEMPTS {
                                let advertised =
                                    response.header("retry-after").and_then(|v| v.parse().ok());
                                std::thread::sleep(backoff_delay(attempt, advertised));
                                attempt += 1;
                                continue;
                            }
                            break Some((response, latency_s));
                        };
                        let Some((response, latency_s)) = final_response else { continue };
                        let id = (response.status == 202).then(|| {
                            bea_core::telemetry::parse_json(response.body_text().unwrap_or("{}"))
                                .ok()
                                .and_then(|v| {
                                    v.get("id").and_then(|id| id.as_str().map(String::from))
                                })
                                .unwrap_or_default()
                        });
                        samples.push(Sample {
                            client: client_id,
                            request: request_id,
                            status: response.status,
                            latency_s,
                            attempts: attempt + 1,
                            id,
                        });
                    }
                    samples
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("client thread")).collect()
    });
    let wall_s = started.elapsed().as_secs_f64();

    let accepted: Vec<&Sample> = samples.iter().filter(|s| s.status == 202).collect();
    let rejected = samples.iter().filter(|s| s.status == 429).count();
    let other = samples.len() - accepted.len() - rejected;
    let retried = samples.iter().filter(|s| s.attempts > 1).count();
    let mut latencies: Vec<f64> = samples.iter().map(|s| s.latency_s).collect();
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    println!(
        "{} submissions in {wall_s:.2}s: {} accepted (202), {rejected} rejected \
         (429 through {MAX_SUBMIT_ATTEMPTS} backoff attempts), {other} other, \
         {retried} needed retries",
        samples.len(),
        accepted.len(),
    );
    println!(
        "submit latency: p50 {:.1}ms, p99 {:.1}ms, max {:.1}ms",
        percentile(&latencies, 50.0) * 1e3,
        percentile(&latencies, 99.0) * 1e3,
        latencies.last().copied().unwrap_or(0.0) * 1e3,
    );

    if let Some(path) = &options.csv {
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        let mut out = String::from("client,request,status,latency_s,attempts,id\n");
        for s in &samples {
            out.push_str(&format!(
                "{},{},{},{:.6},{},{}\n",
                s.client,
                s.request,
                s.status,
                s.latency_s,
                s.attempts,
                s.id.as_deref().unwrap_or("")
            ));
        }
        match std::fs::File::create(path).and_then(|mut f| f.write_all(out.as_bytes())) {
            Ok(()) => println!("wrote {}", path.display()),
            Err(e) => {
                eprintln!("failed to write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
    }

    if options.wait {
        let client = Client::new(options.addr.clone());
        let mut done = 0usize;
        for sample in &accepted {
            let Some(id) = sample.id.as_deref().filter(|id| !id.is_empty()) else { continue };
            match client.wait(id, Duration::from_millis(100), Duration::from_secs(600)) {
                Ok(response)
                    if response.body_text().unwrap_or("").contains("\"status\":\"done\"") =>
                {
                    done += 1;
                }
                Ok(response) => {
                    eprintln!("job {id} ended badly: {:?}", response.body_text());
                    return ExitCode::FAILURE;
                }
                Err(e) => {
                    eprintln!("job {id} never finished: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        println!("all {done} accepted job(s) ran to completion — no accepted job lost");
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_from_the_default_base_and_caps() {
        assert_eq!(backoff_delay(0, None), Duration::from_millis(100));
        assert_eq!(backoff_delay(1, None), Duration::from_millis(200));
        assert_eq!(backoff_delay(2, None), Duration::from_millis(400));
        assert_eq!(backoff_delay(3, None), Duration::from_millis(800));
        // By attempt 6 the doubled default passes the 5 s cap.
        assert_eq!(backoff_delay(6, None), Duration::from_secs(5));
        assert_eq!(backoff_delay(60, None), Duration::from_secs(5));
    }

    #[test]
    fn backoff_honours_retry_after_up_to_the_cap() {
        assert_eq!(backoff_delay(0, Some(2)), Duration::from_secs(2));
        // Retry-After also doubles per attempt, still capped.
        assert_eq!(backoff_delay(1, Some(2)), Duration::from_secs(4));
        assert_eq!(backoff_delay(2, Some(2)), Duration::from_secs(5));
        assert_eq!(backoff_delay(0, Some(3600)), Duration::from_secs(5));
        assert_eq!(backoff_delay(0, Some(0)), Duration::ZERO);
    }
}
