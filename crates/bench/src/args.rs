//! Shared command-line flag parsing for the experiment and serving
//! binaries.
//!
//! Every binary in this workspace speaks the same tiny flag dialect
//! (`--flag value` pairs plus boolean switches), and before this module
//! each one hand-rolled the same cursor loop with the same error
//! strings. [`ArgParser`] centralises the loop so `attack_cli`,
//! `campaign_cli`, `serve_cli` and `loadgen` parse — and misparse —
//! identically:
//!
//! * a flag missing its value reports `"{flag} needs a value"`,
//! * a value failing to parse reports `"{flag}: {error}"`,
//! * an unrecognised flag reports `"unknown flag {flag:?} (try --help)"`
//!   via [`unknown_flag`],
//! * architecture values parse through [`parse_arch`] /
//!   [`parse_arches`] with `"unknown architecture {value:?}"`.

use bea_detect::Architecture;
use std::fmt::Display;
use std::str::FromStr;

/// A cursor over command-line arguments.
#[derive(Debug, Clone)]
pub struct ArgParser {
    args: Vec<String>,
    index: usize,
}

impl ArgParser {
    /// A parser over the process arguments (program name skipped).
    pub fn from_env() -> Self {
        Self::new(std::env::args().skip(1).collect())
    }

    /// A parser over explicit arguments (tests, embedding).
    pub fn new(args: Vec<String>) -> Self {
        Self { args, index: 0 }
    }

    /// The next flag, advancing the cursor; `None` when exhausted.
    pub fn next_flag(&mut self) -> Option<String> {
        let flag = self.args.get(self.index).cloned();
        if flag.is_some() {
            self.index += 1;
        }
        flag
    }

    /// The value of the flag just returned by [`ArgParser::next_flag`],
    /// advancing past it.
    ///
    /// # Errors
    ///
    /// `"{flag} needs a value"` when the arguments end first.
    pub fn value(&mut self, flag: &str) -> Result<String, String> {
        let value = self.args.get(self.index).cloned().ok_or(format!("{flag} needs a value"))?;
        self.index += 1;
        Ok(value)
    }

    /// Takes and parses the flag's value via [`FromStr`].
    ///
    /// # Errors
    ///
    /// `"{flag} needs a value"` or `"{flag}: {error}"`.
    pub fn parse<T: FromStr>(&mut self, flag: &str) -> Result<T, String>
    where
        T::Err: Display,
    {
        self.value(flag)?.parse().map_err(|e| format!("{flag}: {e}"))
    }

    /// Takes the flag's value as an architecture.
    ///
    /// # Errors
    ///
    /// `"{flag} needs a value"` or `"unknown architecture {value:?}"`.
    pub fn arch(&mut self, flag: &str) -> Result<Architecture, String> {
        parse_arch(&self.value(flag)?)
    }
}

/// Parses one architecture name (`yolo`/`YOLO`, `detr`/`DETR`).
///
/// # Errors
///
/// `"unknown architecture {value:?}"`.
pub fn parse_arch(value: &str) -> Result<Architecture, String> {
    match value {
        "yolo" | "YOLO" => Ok(Architecture::Yolo),
        "detr" | "DETR" => Ok(Architecture::Detr),
        other => Err(format!("unknown architecture {other:?}")),
    }
}

/// Parses an architecture list (`yolo`, `detr` or `both`).
///
/// # Errors
///
/// `"unknown architecture {value:?}"`.
pub fn parse_arches(value: &str) -> Result<Vec<Architecture>, String> {
    match value {
        "both" => Ok(vec![Architecture::Yolo, Architecture::Detr]),
        other => parse_arch(other).map(|a| vec![a]),
    }
}

/// The shared unknown-flag error.
pub fn unknown_flag(flag: &str) -> String {
    format!("unknown flag {flag:?} (try --help)")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parser(args: &[&str]) -> ArgParser {
        ArgParser::new(args.iter().map(|s| s.to_string()).collect())
    }

    #[test]
    fn flags_and_values_stream_in_order() {
        let mut args = parser(&["--seed", "7", "--cache", "--out", "dir"]);
        assert_eq!(args.next_flag().as_deref(), Some("--seed"));
        assert_eq!(args.parse::<u64>("--seed"), Ok(7));
        assert_eq!(args.next_flag().as_deref(), Some("--cache"));
        assert_eq!(args.next_flag().as_deref(), Some("--out"));
        assert_eq!(args.value("--out").as_deref(), Ok("dir"));
        assert_eq!(args.next_flag(), None);
        assert_eq!(args.next_flag(), None, "exhaustion is stable");
    }

    #[test]
    fn error_messages_match_the_historical_clis() {
        // "{flag} needs a value" — the message attack_cli and
        // campaign_cli have always printed.
        let mut args = parser(&["--seed"]);
        args.next_flag();
        assert_eq!(args.value("--seed").unwrap_err(), "--seed needs a value");

        // "{flag}: {parse error}".
        let mut args = parser(&["--pop", "many"]);
        args.next_flag();
        let err = args.parse::<usize>("--pop").unwrap_err();
        assert!(err.starts_with("--pop: "), "{err}");

        // Negative numbers fail usize parsing with the flag named.
        let mut args = parser(&["--gens", "-3"]);
        args.next_flag();
        assert!(args.parse::<usize>("--gens").unwrap_err().starts_with("--gens: "));

        assert_eq!(unknown_flag("--bogus"), "unknown flag \"--bogus\" (try --help)");
        assert_eq!(parse_arch("vgg").unwrap_err(), "unknown architecture \"vgg\"");
        assert_eq!(parse_arches("vgg").unwrap_err(), "unknown architecture \"vgg\"");
    }

    #[test]
    fn architectures_parse_both_cases_and_lists() {
        assert_eq!(parse_arch("yolo"), Ok(Architecture::Yolo));
        assert_eq!(parse_arch("YOLO"), Ok(Architecture::Yolo));
        assert_eq!(parse_arch("detr"), Ok(Architecture::Detr));
        assert_eq!(parse_arch("DETR"), Ok(Architecture::Detr));
        assert_eq!(parse_arches("both"), Ok(vec![Architecture::Yolo, Architecture::Detr]));
        assert_eq!(parse_arches("detr"), Ok(vec![Architecture::Detr]));
        let mut args = parser(&["--arch", "yolo"]);
        args.next_flag();
        assert_eq!(args.arch("--arch"), Ok(Architecture::Yolo));
    }
}
