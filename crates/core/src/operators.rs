//! The paper's variation operators (Section IV-A).
//!
//! * **Crossover**: "one-point crossover is applied with a probability p_c
//!   on the pixel array" — [`MaskCrossover`] cuts the flattened gene buffer
//!   at a random point and swaps the tails.
//! * **Mutation**: "pixels \[are\] individual genes of the filter masks";
//!   four operators are investigated, each touching at most a window of
//!   `w` (1 %) of the pixels:
//!   1. [`MutationKind::Complement`] — flip values to their complement in
//!      `[-255, 255]` (the paper's "similar to a bit flip"),
//!   2. [`MutationKind::Shuffle`] — permute randomly selected pixels
//!      ("similar to a swap operation"),
//!   3. [`MutationKind::RandomAssign`] — assign fresh random values,
//!   4. [`MutationKind::Invert`] — horizontally and/or vertically mirror a
//!      window of pixels.

use bea_image::{FilterMask, Region, RegionConstraint};
use bea_nsga2::operators::{Crossover, Mutation};
use bea_tensor::WeightInit;

/// One-point crossover on the flattened pixel array.
///
/// # Examples
///
/// ```
/// use bea_core::operators::MaskCrossover;
/// use bea_image::FilterMask;
/// use bea_nsga2::operators::Crossover;
/// use bea_tensor::WeightInit;
///
/// let a = FilterMask::from_values(2, 2, vec![10; 12]).unwrap();
/// let b = FilterMask::from_values(2, 2, vec![-10; 12]).unwrap();
/// let mut rng = WeightInit::from_seed(1);
/// let (c1, c2) = MaskCrossover.crossover(&a, &b, &mut rng);
/// // Genes are conserved between the two children.
/// let sum: i32 = c1.as_slice().iter().chain(c2.as_slice()).map(|&v| v as i32).sum();
/// assert_eq!(sum, 0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaskCrossover;

impl Crossover<FilterMask> for MaskCrossover {
    fn crossover(
        &self,
        a: &FilterMask,
        b: &FilterMask,
        rng: &mut WeightInit,
    ) -> (FilterMask, FilterMask) {
        let n = a.gene_count().min(b.gene_count());
        let mut c1 = a.clone();
        let mut c2 = b.clone();
        if n < 2 {
            return (c1, c2);
        }
        let cut = 1 + rng.index(n - 1);
        let (s1, s2) = (c1.as_mut_slice(), c2.as_mut_slice());
        for i in cut..n {
            std::mem::swap(&mut s1[i], &mut s2[i]);
        }
        (c1, c2)
    }
}

/// The four mutation operators of Section IV-A(d).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MutationKind {
    /// Replace selected pixels with their complement in `[-255, 255]`
    /// (`v ≥ 0 → 255 − v`, `v < 0 → −255 − v`), the integer analogue of a
    /// bit flip.
    Complement,
    /// Randomly permute the values of selected pixels (swap operation).
    Shuffle,
    /// Assign fresh uniform random values in `[-255, 255]` to selected
    /// pixels.
    RandomAssign,
    /// Mirror a random pixel window horizontally and/or vertically.
    Invert,
    /// **Extension** (paper Section VI future work: "refine our mutation
    /// operation such that the initial mutation choices directly create
    /// human unrecognizable perturbation"): add small-amplitude Gaussian
    /// noise (σ = 6) to the selected pixels instead of large jumps.
    GentleNoise,
}

impl MutationKind {
    /// The paper's four operators (Section IV-A(d)).
    pub const ALL: [MutationKind; 4] = [
        MutationKind::Complement,
        MutationKind::Shuffle,
        MutationKind::RandomAssign,
        MutationKind::Invert,
    ];

    /// The paper's four operators plus the low-visibility extension.
    pub const EXTENDED: [MutationKind; 5] = [
        MutationKind::Complement,
        MutationKind::Shuffle,
        MutationKind::RandomAssign,
        MutationKind::Invert,
        MutationKind::GentleNoise,
    ];
}

/// The complement of a mask value in `[-255, 255]`.
#[inline]
fn complement(v: i16) -> i16 {
    if v >= 0 {
        255 - v
    } else {
        -255 - v
    }
}

/// The paper's mutation operator: picks one of the enabled
/// [`MutationKind`]s uniformly and applies it to at most
/// `window_fraction` of the *allowed* pixels (Table II: w = 1 %).
#[derive(Debug, Clone, PartialEq)]
pub struct MaskMutation {
    kinds: Vec<MutationKind>,
    window_fraction: f32,
    constraint: RegionConstraint,
}

impl MaskMutation {
    /// Builds the mutation with all four operators enabled.
    ///
    /// # Panics
    ///
    /// Panics if `window_fraction` is not within `(0, 1]`.
    pub fn new(window_fraction: f32, constraint: RegionConstraint) -> Self {
        Self::with_kinds(MutationKind::ALL.to_vec(), window_fraction, constraint)
    }

    /// Builds the mutation with a custom operator subset (used by the
    /// mutation-mix ablation).
    ///
    /// # Panics
    ///
    /// Panics if `kinds` is empty or `window_fraction` is not within
    /// `(0, 1]`.
    pub fn with_kinds(
        kinds: Vec<MutationKind>,
        window_fraction: f32,
        constraint: RegionConstraint,
    ) -> Self {
        assert!(!kinds.is_empty(), "at least one mutation kind is required");
        assert!(
            window_fraction > 0.0 && window_fraction <= 1.0,
            "window fraction must be in (0, 1], got {window_fraction}"
        );
        Self { kinds, window_fraction, constraint }
    }

    /// The enabled operators.
    pub fn kinds(&self) -> &[MutationKind] {
        &self.kinds
    }

    /// The window size `w` as a fraction of the pixels.
    pub fn window_fraction(&self) -> f32 {
        self.window_fraction
    }

    /// Number of pixels one mutation may touch on a mask of this size.
    fn budget(&self, mask: &FilterMask) -> usize {
        let allowed = self.constraint.allowed_region(mask.width(), mask.height()).area();
        ((allowed as f32 * self.window_fraction).ceil() as usize).max(1).min(allowed.max(1))
    }

    /// Samples a pixel inside the allowed region.
    fn sample_pixel(&self, mask: &FilterMask, rng: &mut WeightInit) -> Option<(usize, usize)> {
        let region = self.constraint.allowed_region(mask.width(), mask.height());
        if region.is_empty() {
            return None;
        }
        let x = region.x0 + rng.index(region.x1 - region.x0);
        let y = region.y0 + rng.index(region.y1 - region.y0);
        Some((x, y))
    }

    fn apply_complement(&self, mask: &mut FilterMask, rng: &mut WeightInit) {
        for _ in 0..self.budget(mask) {
            if let Some((x, y)) = self.sample_pixel(mask, rng) {
                for c in 0..3 {
                    mask.set(c, y, x, complement(mask.at(c, y, x)));
                }
            }
        }
    }

    fn apply_shuffle(&self, mask: &mut FilterMask, rng: &mut WeightInit) {
        let budget = self.budget(mask);
        let pixels: Vec<(usize, usize)> =
            (0..budget).filter_map(|_| self.sample_pixel(mask, rng)).collect();
        // Fisher–Yates over the sampled pixels' RGB triples.
        for i in (1..pixels.len()).rev() {
            let j = rng.index(i + 1);
            let (xa, ya) = pixels[i];
            let (xb, yb) = pixels[j];
            for c in 0..3 {
                let (va, vb) = (mask.at(c, ya, xa), mask.at(c, yb, xb));
                mask.set(c, ya, xa, vb);
                mask.set(c, yb, xb, va);
            }
        }
    }

    fn apply_random_assign(&self, mask: &mut FilterMask, rng: &mut WeightInit) {
        for _ in 0..self.budget(mask) {
            if let Some((x, y)) = self.sample_pixel(mask, rng) {
                for c in 0..3 {
                    let v = rng.index(511) as i16 - 255;
                    mask.set(c, y, x, v);
                }
            }
        }
    }

    fn apply_gentle_noise(&self, mask: &mut FilterMask, rng: &mut WeightInit) {
        for _ in 0..self.budget(mask) {
            if let Some((x, y)) = self.sample_pixel(mask, rng) {
                for c in 0..3 {
                    let v = mask.at(c, y, x) as f32 + rng.normal(0.0, 6.0);
                    mask.set(c, y, x, v.round().clamp(-255.0, 255.0) as i16);
                }
            }
        }
    }

    fn apply_invert(&self, mask: &mut FilterMask, rng: &mut WeightInit) {
        let region = self.constraint.allowed_region(mask.width(), mask.height());
        if region.is_empty() {
            return;
        }
        // A window whose area stays within the pixel budget.
        let budget = self.budget(mask);
        let side = ((budget as f32).sqrt().floor() as usize).max(1);
        let w = side.min(region.x1 - region.x0);
        let h = side.min(region.y1 - region.y0);
        let x0 = region.x0 + rng.index(region.x1 - region.x0 - w + 1);
        let y0 = region.y0 + rng.index(region.y1 - region.y0 - h + 1);
        let window = Region::new(x0, y0, x0 + w, y0 + h);
        let horizontal = rng.coin(0.5);
        // "horizontal and/or vertical": if the horizontal coin fails,
        // vertical is forced so the operator never degenerates to a no-op.
        let vertical = if horizontal { rng.coin(0.5) } else { true };
        let mut copy = mask.clone();
        for y in window.y0..window.y1 {
            for x in window.x0..window.x1 {
                let sx = if horizontal { window.x1 - 1 - (x - window.x0) } else { x };
                let sy = if vertical { window.y1 - 1 - (y - window.y0) } else { y };
                for c in 0..3 {
                    copy.set(c, y, x, mask.at(c, sy, sx));
                }
            }
        }
        *mask = copy;
    }
}

impl Mutation<FilterMask> for MaskMutation {
    fn mutate(&self, mask: &mut FilterMask, rng: &mut WeightInit) {
        let kind = self.kinds[rng.index(self.kinds.len())];
        match kind {
            MutationKind::Complement => self.apply_complement(mask, rng),
            MutationKind::Shuffle => self.apply_shuffle(mask, rng),
            MutationKind::RandomAssign => self.apply_random_assign(mask, rng),
            MutationKind::Invert => self.apply_invert(mask, rng),
            MutationKind::GentleNoise => self.apply_gentle_noise(mask, rng),
        }
        self.constraint.apply(mask);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> WeightInit {
        WeightInit::from_seed(42)
    }

    fn random_mask(width: usize, height: usize) -> FilterMask {
        let mut rng = WeightInit::from_seed(7);
        let values = (0..3 * width * height).map(|_| rng.index(511) as i16 - 255).collect();
        FilterMask::from_values(width, height, values).expect("length matches")
    }

    #[test]
    fn crossover_conserves_genes() {
        let a = random_mask(8, 4);
        let b = random_mask(8, 4);
        let (c1, c2) = MaskCrossover.crossover(&a, &b, &mut rng());
        let mut expected: Vec<i16> = a.as_slice().iter().chain(b.as_slice()).copied().collect();
        let mut actual: Vec<i16> = c1.as_slice().iter().chain(c2.as_slice()).copied().collect();
        expected.sort_unstable();
        actual.sort_unstable();
        assert_eq!(expected, actual);
    }

    #[test]
    fn crossover_exchanges_a_tail() {
        let a = FilterMask::from_values(4, 2, vec![1; 24]).unwrap();
        let b = FilterMask::from_values(4, 2, vec![-1; 24]).unwrap();
        let (c1, _) = MaskCrossover.crossover(&a, &b, &mut rng());
        let flips = c1.as_slice().windows(2).filter(|w| w[0] != w[1]).count();
        assert_eq!(flips, 1, "one-point crossover has exactly one switch");
        assert_eq!(c1.as_slice()[0], 1, "the head comes from parent a");
    }

    #[test]
    fn complement_function_matches_definition() {
        assert_eq!(complement(0), 255);
        assert_eq!(complement(255), 0);
        assert_eq!(complement(-255), 0);
        assert_eq!(complement(100), 155);
        assert_eq!(complement(-100), -155);
    }

    #[test]
    fn mutations_respect_the_window_budget() {
        let mutation = MaskMutation::new(0.01, RegionConstraint::Full);
        for kind in MutationKind::ALL {
            let op = MaskMutation::with_kinds(vec![kind], 0.01, RegionConstraint::Full);
            let mut mask = random_mask(40, 20);
            let before = mask.clone();
            op.mutate(&mut mask, &mut rng());
            let changed =
                before.as_slice().iter().zip(mask.as_slice()).filter(|(a, b)| a != b).count();
            // The budget is per *pixel* (3 genes each); shuffle/invert touch
            // at most 2x the budget through swaps.
            let budget_pixels = mutation.budget(&before);
            assert!(
                changed <= 3 * 2 * budget_pixels.max(1),
                "{kind:?} changed {changed} genes, budget {budget_pixels} pixels"
            );
        }
    }

    #[test]
    fn mutations_respect_region_constraint() {
        for kind in MutationKind::ALL {
            let op = MaskMutation::with_kinds(vec![kind], 0.05, RegionConstraint::RightHalf);
            let mut mask = FilterMask::zeros(20, 10);
            // Seed some content in the right half so shuffle has something to move.
            for x in 10..20 {
                mask.set(0, 3, x, 50);
            }
            for _ in 0..10 {
                op.mutate(&mut mask, &mut rng());
            }
            assert!(
                RegionConstraint::RightHalf.is_satisfied(&mask),
                "{kind:?} leaked outside the allowed region"
            );
        }
    }

    #[test]
    fn random_assign_changes_zero_mask() {
        let op = MaskMutation::with_kinds(
            vec![MutationKind::RandomAssign],
            0.01,
            RegionConstraint::Full,
        );
        let mut mask = FilterMask::zeros(30, 20);
        op.mutate(&mut mask, &mut rng());
        assert!(!mask.is_zero());
    }

    #[test]
    fn complement_bootstraps_zero_mask() {
        // complement(0) = 255: the operator can escape the all-zero genome.
        let op =
            MaskMutation::with_kinds(vec![MutationKind::Complement], 0.01, RegionConstraint::Full);
        let mut mask = FilterMask::zeros(30, 20);
        op.mutate(&mut mask, &mut rng());
        assert!(!mask.is_zero());
    }

    #[test]
    fn shuffle_preserves_multiset_of_genes() {
        let op =
            MaskMutation::with_kinds(vec![MutationKind::Shuffle], 0.10, RegionConstraint::Full);
        let mut mask = random_mask(16, 8);
        let mut before: Vec<i16> = mask.as_slice().to_vec();
        op.mutate(&mut mask, &mut rng());
        let mut after: Vec<i16> = mask.as_slice().to_vec();
        before.sort_unstable();
        after.sort_unstable();
        assert_eq!(before, after);
    }

    #[test]
    fn invert_mirrors_a_window() {
        let op = MaskMutation::with_kinds(vec![MutationKind::Invert], 0.30, RegionConstraint::Full);
        let mut mask = random_mask(12, 12);
        let before = mask.clone();
        op.mutate(&mut mask, &mut rng());
        assert_ne!(mask, before, "inversion of a random window should change the mask");
        // Gene multiset is preserved (mirroring only moves values).
        let mut a: Vec<i16> = before.as_slice().to_vec();
        let mut b: Vec<i16> = mask.as_slice().to_vec();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn gentle_noise_stays_small() {
        let op =
            MaskMutation::with_kinds(vec![MutationKind::GentleNoise], 0.05, RegionConstraint::Full);
        let mut mask = FilterMask::zeros(30, 20);
        op.mutate(&mut mask, &mut rng());
        assert!(!mask.is_zero());
        let max = mask.as_slice().iter().map(|v| v.abs()).max().unwrap();
        assert!(max < 40, "gentle noise should stay low-amplitude, got {max}");
    }

    #[test]
    fn extended_set_contains_the_paper_set() {
        for k in MutationKind::ALL {
            assert!(MutationKind::EXTENDED.contains(&k));
        }
        assert_eq!(MutationKind::EXTENDED.len(), 5);
    }

    #[test]
    fn mutation_is_deterministic_per_seed() {
        let op = MaskMutation::new(0.02, RegionConstraint::Full);
        let mut a = random_mask(10, 10);
        let mut b = a.clone();
        op.mutate(&mut a, &mut WeightInit::from_seed(5));
        op.mutate(&mut b, &mut WeightInit::from_seed(5));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "window fraction")]
    fn zero_window_rejected() {
        let _ = MaskMutation::new(0.0, RegionConstraint::Full);
    }

    #[test]
    #[should_panic(expected = "at least one mutation kind")]
    fn empty_kind_list_rejected() {
        let _ = MaskMutation::with_kinds(Vec::new(), 0.01, RegionConstraint::Full);
    }
}
