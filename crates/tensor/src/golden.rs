//! Golden differential harness: paired reference/fast kernel execution.
//!
//! The [`crate::gemm`] fast paths promise `==`-equality with the naive
//! reference kernels wherever the per-element summation order is preserved
//! (which is everywhere in this crate — see the `gemm` module docs for the
//! signed-zero caveat that makes `==`, not bit-pattern equality, the right
//! relation). This module is the enforcement tooling:
//!
//! * [`compare_slices`] produces a [`Comparison`] that can be asserted
//!   **bit-exact** (`==`-equal, treating `-0.0 == 0.0`) or **ULP-bounded**
//!   (for any future kernel that legitimately reorders its reduction);
//! * [`assert_matmul_golden`] / [`assert_matmul_nt_golden`] /
//!   [`assert_conv_golden`] run both kernel policies on the same operands
//!   and assert the exact contract, with a first-mismatch diagnostic that
//!   names the element, both values and their bit patterns.
//!
//! The crate's proptests drive these helpers over random shapes; the
//! workspace-level `tests/golden_predictions.rs` suite applies the same
//! idea end-to-end (whole detectors under both policies).

use crate::autodiff;
use crate::conv::Conv2d;
use crate::gemm::{self, KernelPolicy};
use crate::linear::Linear;
use crate::matrix::Matrix;
use crate::tensor3::FeatureMap;

/// ULP (units in the last place) distance between two `f32` values.
///
/// Returns `0` for `==`-equal values (including `-0.0` vs `0.0`),
/// the lattice distance for same-sign finite values, and `u32::MAX`
/// when the values differ in sign or either is NaN — such pairs are
/// never "close" for kernel-equivalence purposes.
pub fn ulp_distance(a: f32, b: f32) -> u32 {
    if a == b {
        return 0;
    }
    if a.is_nan() || b.is_nan() || a.is_sign_positive() != b.is_sign_positive() {
        return u32::MAX;
    }
    let (ia, ib) = (a.to_bits() & 0x7fff_ffff, b.to_bits() & 0x7fff_ffff);
    ia.abs_diff(ib)
}

/// The element of a [`Comparison`] that diverged the most.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mismatch {
    /// Flat index of the element.
    pub index: usize,
    /// The reference kernel's value.
    pub reference: f32,
    /// The fast kernel's value.
    pub fast: f32,
    /// ULP distance between the two.
    pub ulp: u32,
}

/// Result of comparing a reference and a fast kernel output element-wise.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Comparison {
    /// Number of elements compared.
    pub len: usize,
    /// Worst divergence observed, if any element failed `==`.
    pub worst: Option<Mismatch>,
}

impl Comparison {
    /// `true` when every element pair is `==`-equal.
    pub fn is_bit_exact(&self) -> bool {
        self.worst.is_none()
    }

    /// Largest ULP distance observed (0 when bit-exact).
    pub fn max_ulp(&self) -> u32 {
        self.worst.map_or(0, |m| m.ulp)
    }

    /// Asserts the `==`-equality contract (the one preserved-summation-
    /// order kernels must meet).
    ///
    /// # Panics
    ///
    /// Panics with a first-worst-mismatch diagnostic when any element
    /// differs.
    #[track_caller]
    pub fn assert_bit_exact(&self, context: &str) {
        if let Some(m) = self.worst {
            panic!(
                "{context}: kernel outputs diverge at element {} of {}: \
                 reference {:?} ({:#010x}) vs fast {:?} ({:#010x}), {} ulp",
                m.index,
                self.len,
                m.reference,
                m.reference.to_bits(),
                m.fast,
                m.fast.to_bits(),
                m.ulp,
            );
        }
    }

    /// Asserts a ULP-bounded contract (for reductions whose order is
    /// *not* preserved; nothing in this crate currently needs a bound
    /// above 0, but the harness supports auditing future kernels).
    ///
    /// # Panics
    ///
    /// Panics when any element pair is further apart than `max_ulp`, or
    /// differs in sign / NaN-ness.
    #[track_caller]
    pub fn assert_within_ulp(&self, context: &str, max_ulp: u32) {
        if let Some(m) = self.worst {
            if m.ulp > max_ulp {
                panic!(
                    "{context}: kernel outputs diverge by {} ulp (allowed {max_ulp}) \
                     at element {} of {}: reference {:?} vs fast {:?}",
                    m.ulp, m.index, self.len, m.reference, m.fast,
                );
            }
        }
    }
}

/// Compares two kernel outputs element-wise, tracking the worst ULP
/// divergence.
///
/// # Panics
///
/// Panics if the slices have different lengths — paired kernels must
/// agree on shape before values are even comparable.
pub fn compare_slices(reference: &[f32], fast: &[f32]) -> Comparison {
    assert_eq!(reference.len(), fast.len(), "paired kernel outputs must have equal length");
    let mut worst: Option<Mismatch> = None;
    for (index, (&r, &f)) in reference.iter().zip(fast).enumerate() {
        let ulp = ulp_distance(r, f);
        if ulp > 0 && worst.is_none_or(|w| ulp > w.ulp) {
            worst = Some(Mismatch { index, reference: r, fast: f, ulp });
        }
    }
    Comparison { len: reference.len(), worst }
}

/// Runs `a · b` under both kernel policies and asserts `==`-equality.
///
/// # Panics
///
/// Panics on shape mismatch or any diverging element.
#[track_caller]
pub fn assert_matmul_golden(a: &Matrix, b: &Matrix) {
    let reference = a.matmul(b).expect("reference matmul");
    let fast = gemm::matmul_blocked(a, b).expect("blocked matmul");
    compare_slices(reference.as_slice(), fast.as_slice()).assert_bit_exact(&format!(
        "matmul {:?}·{:?}",
        a.shape(),
        b.shape()
    ));
}

/// Runs `a · bᵀ` under both kernel policies (the reference path goes
/// through an explicit transpose) and asserts `==`-equality.
///
/// # Panics
///
/// Panics on shape mismatch or any diverging element.
#[track_caller]
pub fn assert_matmul_nt_golden(a: &Matrix, b: &Matrix) {
    let reference = a.matmul(&b.transpose()).expect("reference matmul_nt");
    let fast = gemm::matmul_nt_blocked(a, b).expect("blocked matmul_nt");
    compare_slices(reference.as_slice(), fast.as_slice()).assert_bit_exact(&format!(
        "matmul_nt {:?}·{:?}ᵀ",
        a.shape(),
        b.shape()
    ));
}

/// Runs one convolution under both kernel policies and asserts
/// `==`-equality of the full output map.
///
/// # Panics
///
/// Panics if the forward pass fails or any output element diverges.
#[track_caller]
pub fn assert_conv_golden(conv: &Conv2d, input: &FeatureMap) {
    let mut reference_conv = conv.clone();
    reference_conv.set_kernel_policy(KernelPolicy::Reference);
    let mut blocked_conv = conv.clone();
    blocked_conv.set_kernel_policy(KernelPolicy::Blocked);
    let reference = reference_conv.forward(input).expect("reference conv forward");
    let fast = blocked_conv.forward(input).expect("blocked conv forward");
    compare_slices(reference.as_slice(), fast.as_slice()).assert_bit_exact(&format!(
        "conv {}ch {}x{} stride {} pad {} on {:?}",
        conv.out_channels(),
        conv.kernel_h(),
        conv.kernel_w(),
        conv.stride(),
        conv.padding(),
        input.shape(),
    ));
}

/// Runs the matmul *backward* pass under both kernel policies and asserts
/// `==`-equality of both operand gradients. The backward matmuls reuse the
/// forward kernels, so they inherit the same preserved-summation-order
/// contract — white-box attack gradients must not depend on dispatch.
///
/// # Panics
///
/// Panics on shape mismatch or any diverging gradient element.
#[track_caller]
pub fn assert_matmul_gradient_golden(a: &Matrix, b: &Matrix, dy: &Matrix) {
    let (da_ref, db_ref) =
        autodiff::matmul_backward(a, b, dy, KernelPolicy::Reference).expect("reference backward");
    let (da_fast, db_fast) =
        autodiff::matmul_backward(a, b, dy, KernelPolicy::Blocked).expect("blocked backward");
    let context = format!("matmul backward {:?}·{:?}", a.shape(), b.shape());
    compare_slices(da_ref.as_slice(), da_fast.as_slice())
        .assert_bit_exact(&format!("{context} dA"));
    compare_slices(db_ref.as_slice(), db_fast.as_slice())
        .assert_bit_exact(&format!("{context} dB"));
}

/// Runs the `a·bᵀ` backward pass under both kernel policies and asserts
/// `==`-equality of both operand gradients.
///
/// # Panics
///
/// Panics on shape mismatch or any diverging gradient element.
#[track_caller]
pub fn assert_matmul_nt_gradient_golden(a: &Matrix, b: &Matrix, dy: &Matrix) {
    let (da_ref, db_ref) = autodiff::matmul_nt_backward(a, b, dy, KernelPolicy::Reference)
        .expect("reference backward");
    let (da_fast, db_fast) =
        autodiff::matmul_nt_backward(a, b, dy, KernelPolicy::Blocked).expect("blocked backward");
    let context = format!("matmul_nt backward {:?}·{:?}ᵀ", a.shape(), b.shape());
    compare_slices(da_ref.as_slice(), da_fast.as_slice())
        .assert_bit_exact(&format!("{context} dA"));
    compare_slices(db_ref.as_slice(), db_fast.as_slice())
        .assert_bit_exact(&format!("{context} dB"));
}

/// Computes the linear-layer input gradient under both kernel policies —
/// which also exercises packed vs unpacked weights, since the `Blocked`
/// layer carries construction-time NT panels — and asserts `==`-equality.
///
/// # Panics
///
/// Panics if the backward pass fails or any gradient element diverges.
#[track_caller]
pub fn assert_linear_gradient_golden(layer: &Linear, dy: &Matrix) {
    let mut reference = layer.clone();
    reference.set_kernel_policy(KernelPolicy::Reference);
    let mut blocked = layer.clone();
    blocked.set_kernel_policy(KernelPolicy::Blocked);
    let dx_ref = autodiff::linear_input_backward(&reference, dy).expect("reference backward");
    let dx_fast = autodiff::linear_input_backward(&blocked, dy).expect("blocked backward");
    compare_slices(dx_ref.as_slice(), dx_fast.as_slice()).assert_bit_exact(&format!(
        "linear backward {}→{} on dy {:?}",
        layer.in_features(),
        layer.out_features(),
        dy.shape(),
    ));
}

/// Computes the convolution input gradient under both kernel policies and
/// asserts `==`-equality of the full gradient map.
///
/// # Panics
///
/// Panics if the backward pass fails or any gradient element diverges.
#[track_caller]
pub fn assert_conv_gradient_golden(conv: &Conv2d, dy: &FeatureMap, in_h: usize, in_w: usize) {
    let mut reference_conv = conv.clone();
    reference_conv.set_kernel_policy(KernelPolicy::Reference);
    let mut blocked_conv = conv.clone();
    blocked_conv.set_kernel_policy(KernelPolicy::Blocked);
    let dx_ref =
        autodiff::conv2d_input_backward(&reference_conv, dy, in_h, in_w).expect("reference");
    let dx_fast = autodiff::conv2d_input_backward(&blocked_conv, dy, in_h, in_w).expect("blocked");
    compare_slices(dx_ref.as_slice(), dx_fast.as_slice()).assert_bit_exact(&format!(
        "conv backward {}ch {}x{} stride {} pad {} on {in_h}x{in_w}",
        conv.out_channels(),
        conv.kernel_h(),
        conv.kernel_w(),
        conv.stride(),
        conv.padding(),
    ));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ulp_distance_basics() {
        assert_eq!(ulp_distance(1.0, 1.0), 0);
        assert_eq!(ulp_distance(0.0, -0.0), 0);
        assert_eq!(ulp_distance(1.0, f32::from_bits(1.0f32.to_bits() + 1)), 1);
        assert_eq!(ulp_distance(1.0, -1.0), u32::MAX);
        assert_eq!(ulp_distance(f32::NAN, 1.0), u32::MAX);
    }

    #[test]
    fn comparison_reports_worst_mismatch() {
        let reference = [1.0f32, 2.0, 3.0];
        let one_ulp = f32::from_bits(2.0f32.to_bits() + 1);
        let two_ulp = f32::from_bits(3.0f32.to_bits() + 2);
        let cmp = compare_slices(&reference, &[1.0, one_ulp, two_ulp]);
        assert!(!cmp.is_bit_exact());
        assert_eq!(cmp.max_ulp(), 2);
        assert_eq!(cmp.worst.unwrap().index, 2);
        cmp.assert_within_ulp("tolerant", 2);
    }

    #[test]
    #[should_panic(expected = "kernel outputs diverge at element 1")]
    fn bit_exact_assertion_names_the_element() {
        let cmp = compare_slices(&[1.0, 2.0], &[1.0, 2.5]);
        cmp.assert_bit_exact("unit");
    }

    #[test]
    #[should_panic(expected = "allowed 0")]
    fn ulp_assertion_enforces_the_bound() {
        let nudged = f32::from_bits(2.0f32.to_bits() + 1);
        compare_slices(&[2.0], &[nudged]).assert_within_ulp("unit", 0);
    }

    #[test]
    fn signed_zero_outputs_count_as_equal() {
        let cmp = compare_slices(&[0.0, -0.0], &[-0.0, 0.0]);
        assert!(cmp.is_bit_exact());
        cmp.assert_bit_exact("signed zeros");
    }
}
