//! Result summarisation and export for the experiment harnesses.

use crate::attack::AttackOutcome;
// Rows serialise via the hand-rolled CSV writer below; the build
// environment has no registry access for serde.
use std::io::Write;

/// One Pareto-front point of an attack run, in the paper's Figure 2 axes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParetoPoint {
    /// `obj_intensity` (raw L2).
    pub intensity: f64,
    /// `obj_intensity` normalised into `[0, 1]`.
    pub intensity_normalized: f64,
    /// `obj_degrad` (Algorithm 1; lower = stronger attack).
    pub degrad: f64,
    /// `obj_dist` (Algorithm 2, normalised; higher = more unrelated).
    pub dist: f64,
}

/// One labelled experiment row: a Pareto point attributed to an
/// architecture / model / image triple.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackRow {
    /// Architecture name (`"YOLO"` / `"DETR"`).
    pub architecture: String,
    /// Model seed.
    pub model_seed: u64,
    /// Image index in the dataset.
    pub image_index: usize,
    /// Which champion this row is (`"best-intensity"` etc. or `"front"`).
    pub role: String,
    /// The objectives.
    pub point: ParetoPoint,
}

/// Extracts all front points of an outcome as [`ParetoPoint`]s.
pub fn pareto_points(outcome: &AttackOutcome) -> Vec<ParetoPoint> {
    let raw = outcome.pareto_points();
    let normalized = outcome.pareto_points_normalized();
    raw.iter()
        .zip(&normalized)
        .map(|(r, n)| ParetoPoint {
            intensity: r[0],
            intensity_normalized: n[0],
            degrad: r[1],
            dist: r[2],
        })
        .collect()
}

/// Extracts the three per-objective champions (the paper's Figure 2
/// read-out) as labelled rows.
pub fn champion_rows(
    outcome: &AttackOutcome,
    architecture: &str,
    model_seed: u64,
    image_index: usize,
) -> Vec<AttackRow> {
    let champions = [
        ("best-intensity", outcome.best_intensity()),
        ("best-degrad", outcome.best_degradation()),
        ("best-dist", outcome.best_distance()),
    ];
    champions
        .into_iter()
        .filter_map(|(role, individual)| {
            let individual = individual?;
            let objs = individual.objectives();
            Some(AttackRow {
                architecture: architecture.to_string(),
                model_seed,
                image_index,
                role: role.to_string(),
                point: ParetoPoint {
                    intensity: objs[0],
                    intensity_normalized:
                        crate::objectives::intensity::obj_intensity_normalized(
                            individual.genome(),
                        ),
                    degrad: objs[1],
                    dist: objs[2],
                },
            })
        })
        .collect()
}

/// Writes rows as CSV (with header).
///
/// # Errors
///
/// Propagates I/O failures from the writer.
pub fn write_csv<W: Write>(rows: &[AttackRow], mut writer: W) -> std::io::Result<()> {
    writeln!(
        writer,
        "architecture,model_seed,image_index,role,intensity,intensity_normalized,degrad,dist"
    )?;
    for row in rows {
        writeln!(
            writer,
            "{},{},{},{},{:.4},{:.6},{:.6},{:.6}",
            row.architecture,
            row.model_seed,
            row.image_index,
            row.role,
            row.point.intensity,
            row.point.intensity_normalized,
            row.point.degrad,
            row.point.dist
        )?;
    }
    Ok(())
}

/// Attack-success criteria: a run "succeeds" when some front member
/// reaches `obj_degrad ≤ max_degrad` while spending at most
/// `max_intensity` (raw L2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SuccessCriteria {
    /// Largest admissible `obj_degrad` (e.g. 0.6, the paper's "reasonable
    /// performance drop").
    pub max_degrad: f64,
    /// Largest admissible `obj_intensity` (raw L2 norm of the mask).
    pub max_intensity: f64,
}

impl Default for SuccessCriteria {
    fn default() -> Self {
        // The paper calls obj_degrad ≈ 0.6 a reasonable drop; the intensity
        // cap corresponds to a perturbation a casual observer misses on a
        // 192x64 image (≈ 3% of the maximal mask norm).
        Self { max_degrad: 0.6, max_intensity: 5000.0 }
    }
}

/// `true` when any front member of the outcome satisfies the criteria.
pub fn attack_succeeded(outcome: &AttackOutcome, criteria: SuccessCriteria) -> bool {
    outcome
        .pareto_points()
        .iter()
        .any(|p| p[1] <= criteria.max_degrad && p[0] <= criteria.max_intensity)
}

/// Fraction of outcomes satisfying the criteria (the attack-success rate
/// over a model × image grid).
pub fn success_rate(outcomes: &[AttackOutcome], criteria: SuccessCriteria) -> f64 {
    if outcomes.is_empty() {
        return 0.0;
    }
    let hits = outcomes.iter().filter(|o| attack_succeeded(o, criteria)).count();
    hits as f64 / outcomes.len() as f64
}

/// Prints a fixed-width text table (used by every harness for its
/// stdout summary).
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let padded: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<width$}", c, width = widths.get(i).copied().unwrap_or(0)))
            .collect();
        println!("| {} |", padded.join(" | "));
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    println!(
        "|{}|",
        widths.iter().map(|w| "-".repeat(w + 2)).collect::<Vec<_>>().join("|")
    );
    for row in rows {
        line(row.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_row() -> AttackRow {
        AttackRow {
            architecture: "DETR".into(),
            model_seed: 3,
            image_index: 10,
            role: "best-degrad".into(),
            point: ParetoPoint {
                intensity: 123.4,
                intensity_normalized: 0.05,
                degrad: 0.6,
                dist: 0.5,
            },
        }
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut buf = Vec::new();
        write_csv(&[sample_row()], &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let mut lines = text.lines();
        assert!(lines.next().unwrap().starts_with("architecture,"));
        let row = lines.next().unwrap();
        assert!(row.starts_with("DETR,3,10,best-degrad,"));
        assert!(row.contains("0.600000"));
    }

    #[test]
    fn empty_rows_produce_header_only() {
        let mut buf = Vec::new();
        write_csv(&[], &mut buf).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap().lines().count(), 1);
    }

    #[test]
    fn rows_clone_compare_equal() {
        let row = sample_row();
        let clone = row.clone();
        assert_eq!(row, clone);
    }

    #[test]
    fn success_criteria_defaults_are_sane() {
        let c = SuccessCriteria::default();
        assert!(c.max_degrad > 0.0 && c.max_degrad < 1.0);
        assert!(c.max_intensity > 0.0);
    }

    #[test]
    fn empty_outcome_list_has_zero_success_rate() {
        assert_eq!(success_rate(&[], SuccessCriteria::default()), 0.0);
    }
}
