#!/usr/bin/env bash
# Steady-state allocation gate: counts heap allocations across a warmed
# masked-detect loop for every (architecture x kernel policy) pair.
# Upserts the records into BENCH_allocs.json at the repo root and fails
# (via --check) if any configuration allocates after warm-up.
#
# Usage: scripts/bench_allocs.sh [--quick]
set -euo pipefail
cd "$(dirname "$0")/.."

cargo bench -p bea-bench --bench steady_state -- \
    --check --out "$(pwd)/BENCH_allocs.json" "$@"
