//! Scaled dot-product and multi-head attention.
//!
//! Attention is the *global mixing* primitive: every output token is a
//! softmax-weighted combination of **all** value tokens, so a perturbation
//! anywhere in the image influences every token downstream. This is the
//! architectural channel the paper blames for DETR's susceptibility to
//! butterfly effects ("attention mechanisms connecting two arbitrary regions
//! in an image").

use crate::activation::softmax_rows_inplace;
use crate::error::{Result, TensorError};
use crate::gemm::KernelPolicy;
use crate::init::WeightInit;
use crate::linear::Linear;
use crate::matrix::Matrix;

/// Computes scaled dot-product attention `softmax(QKᵀ/√d)·V`.
///
/// `queries` is `n_q × d`, `keys` and `values` are `n_k × d_k` / `n_k × d_v`
/// with `d == d_k`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if the query/key widths differ or
/// the key/value row counts differ.
pub fn scaled_dot_attention(queries: &Matrix, keys: &Matrix, values: &Matrix) -> Result<Matrix> {
    scaled_dot_attention_policy(queries, keys, values, KernelPolicy::default())
}

/// [`scaled_dot_attention`] under an explicit [`KernelPolicy`] for the two
/// matmuls (`q·kᵀ` and `softmax·v`). Outputs are `==`-identical across
/// policies.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if the query/key widths differ or
/// the key/value row counts differ.
pub fn scaled_dot_attention_policy(
    queries: &Matrix,
    keys: &Matrix,
    values: &Matrix,
    policy: KernelPolicy,
) -> Result<Matrix> {
    if queries.cols() != keys.cols() {
        return Err(TensorError::ShapeMismatch {
            op: "attention q/k width",
            lhs: vec![queries.rows(), queries.cols()],
            rhs: vec![keys.rows(), keys.cols()],
        });
    }
    if keys.rows() != values.rows() {
        return Err(TensorError::ShapeMismatch {
            op: "attention k/v rows",
            lhs: vec![keys.rows(), keys.cols()],
            rhs: vec![values.rows(), values.cols()],
        });
    }
    let scale = 1.0 / (queries.cols().max(1) as f32).sqrt();
    let mut scores = queries.matmul_nt_policy(keys, policy)?.scale(scale);
    softmax_rows_inplace(&mut scores);
    scores.matmul_policy(values, policy)
}

/// Returns the attention weight matrix `softmax(QKᵀ/√d)` without applying it
/// to the values (used for heatmap introspection).
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if the query/key widths differ.
pub fn attention_weights(queries: &Matrix, keys: &Matrix) -> Result<Matrix> {
    if queries.cols() != keys.cols() {
        return Err(TensorError::ShapeMismatch {
            op: "attention q/k width",
            lhs: vec![queries.rows(), queries.cols()],
            rhs: vec![keys.rows(), keys.cols()],
        });
    }
    let scale = 1.0 / (queries.cols().max(1) as f32).sqrt();
    let mut scores = queries.matmul(&keys.transpose())?.scale(scale);
    softmax_rows_inplace(&mut scores);
    Ok(scores)
}

/// A multi-head attention layer with learned Q/K/V/output projections.
///
/// # Examples
///
/// ```
/// use bea_tensor::{MultiHeadAttention, Matrix, WeightInit};
///
/// # fn main() -> Result<(), bea_tensor::TensorError> {
/// let mut init = WeightInit::from_seed(1);
/// let mha = MultiHeadAttention::seeded(8, 2, &mut init)?;
/// let tokens = Matrix::zeros(5, 8);
/// let out = mha.forward(&tokens, &tokens, &tokens)?;
/// assert_eq!(out.shape(), (5, 8));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct MultiHeadAttention {
    heads: usize,
    model_dim: usize,
    head_dim: usize,
    q_proj: Linear,
    k_proj: Linear,
    v_proj: Linear,
    out_proj: Linear,
    policy: KernelPolicy,
}

// Manual impl: the kernel dispatch policy does not change what the layer
// computes, so it is excluded from equality (mirroring `Linear`).
impl PartialEq for MultiHeadAttention {
    fn eq(&self, other: &Self) -> bool {
        self.heads == other.heads
            && self.model_dim == other.model_dim
            && self.q_proj == other.q_proj
            && self.k_proj == other.k_proj
            && self.v_proj == other.v_proj
            && self.out_proj == other.out_proj
    }
}

impl MultiHeadAttention {
    /// Builds a seeded multi-head attention layer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidConfig`] if `model_dim` is not divisible
    /// by `heads` or either is zero.
    pub fn seeded(model_dim: usize, heads: usize, init: &mut WeightInit) -> Result<Self> {
        if heads == 0 || model_dim == 0 || !model_dim.is_multiple_of(heads) {
            return Err(TensorError::InvalidConfig {
                what: format!("model_dim {model_dim} must be a positive multiple of heads {heads}"),
            });
        }
        Ok(Self {
            heads,
            model_dim,
            head_dim: model_dim / heads,
            q_proj: Linear::seeded(model_dim, model_dim, init),
            k_proj: Linear::seeded(model_dim, model_dim, init),
            v_proj: Linear::seeded(model_dim, model_dim, init),
            out_proj: Linear::seeded(model_dim, model_dim, init),
            policy: KernelPolicy::default(),
        })
    }

    /// The kernel dispatch policy currently in effect.
    pub fn kernel_policy(&self) -> KernelPolicy {
        self.policy
    }

    /// Selects the matmul kernels used by [`Self::forward`]: propagated to
    /// all four projections and to the per-head attention products.
    /// Outputs are `==`-identical across policies.
    pub fn set_kernel_policy(&mut self, policy: KernelPolicy) {
        self.policy = policy;
        self.q_proj.set_kernel_policy(policy);
        self.k_proj.set_kernel_policy(policy);
        self.v_proj.set_kernel_policy(policy);
        self.out_proj.set_kernel_policy(policy);
    }

    /// Number of attention heads.
    pub fn heads(&self) -> usize {
        self.heads
    }

    /// Model (embedding) dimensionality.
    pub fn model_dim(&self) -> usize {
        self.model_dim
    }

    /// Per-head dimensionality (`model_dim / heads`).
    pub fn head_dim(&self) -> usize {
        self.head_dim
    }

    /// The query projection (read access for the autodiff tape, which
    /// re-composes [`Self::forward`] from these layers op by op).
    pub fn q_proj(&self) -> &Linear {
        &self.q_proj
    }

    /// The key projection.
    pub fn k_proj(&self) -> &Linear {
        &self.k_proj
    }

    /// The value projection.
    pub fn v_proj(&self) -> &Linear {
        &self.v_proj
    }

    /// The output projection applied to the concatenated head outputs.
    pub fn out_proj(&self) -> &Linear {
        &self.out_proj
    }

    /// Applies multi-head attention.
    ///
    /// `queries`, `keys` and `values` all have `model_dim` columns; for
    /// self-attention pass the same token matrix three times, for
    /// cross-attention (the DETR decoder) pass object queries as `queries`
    /// and encoder tokens as `keys`/`values`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if any operand width differs
    /// from `model_dim` or key/value row counts differ.
    pub fn forward(&self, queries: &Matrix, keys: &Matrix, values: &Matrix) -> Result<Matrix> {
        let q = self.q_proj.forward(queries)?;
        let k = self.k_proj.forward(keys)?;
        let v = self.v_proj.forward(values)?;
        // Write each head's output straight into its column range of a
        // preallocated concat matrix. The incremental `hconcat` this
        // replaces copied the accumulated prefix once per head (O(heads²)
        // copies plus a fresh allocation each round); the values placed in
        // each column are identical.
        let mut concat = Matrix::zeros(q.rows(), self.model_dim);
        for h in 0..self.heads {
            let start = h * self.head_dim;
            let qh = q.columns(start, self.head_dim);
            let kh = k.columns(start, self.head_dim);
            let vh = v.columns(start, self.head_dim);
            let head_out = scaled_dot_attention_policy(&qh, &kh, &vh, self.policy)?;
            for r in 0..concat.rows() {
                concat.row_mut(r)[start..start + self.head_dim].copy_from_slice(head_out.row(r));
            }
        }
        self.out_proj.forward(&concat)
    }

    /// [`Self::forward`] over a row-stacked batch of `item_rows`-row token
    /// matrices (see [`crate::batch`]).
    ///
    /// The four projections run **once** over the stacked matrix — their
    /// GEMMs compute every output row independently, so this streams the
    /// pre-packed weight panels once per batch while producing each row
    /// bit-identically to the per-item call. Attention itself mixes rows,
    /// so `softmax(q·kᵀ)·v` runs per item block with exactly the per-item
    /// operands; the result equals [`Self::forward`] on each item alone,
    /// `==`-element for element, regardless of what else shares the batch.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the operand row counts
    /// are not equal multiples of `item_rows` (or `item_rows` is zero),
    /// or on any width mismatch [`Self::forward`] would reject.
    pub fn forward_batched(
        &self,
        queries: &Matrix,
        keys: &Matrix,
        values: &Matrix,
        item_rows: usize,
    ) -> Result<Matrix> {
        if item_rows == 0
            || !queries.rows().is_multiple_of(item_rows)
            || keys.rows() != queries.rows()
            || values.rows() != queries.rows()
        {
            return Err(TensorError::ShapeMismatch {
                op: "attention batch rows",
                lhs: vec![queries.rows(), keys.rows(), values.rows()],
                rhs: vec![item_rows],
            });
        }
        let q = self.q_proj.forward(queries)?;
        let k = self.k_proj.forward(keys)?;
        let v = self.v_proj.forward(values)?;
        let items = q.rows() / item_rows;
        let mut concat = Matrix::zeros(q.rows(), self.model_dim);
        for item in 0..items {
            let r0 = item * item_rows;
            let qb = q.row_block(r0, item_rows);
            let kb = k.row_block(r0, item_rows);
            let vb = v.row_block(r0, item_rows);
            for h in 0..self.heads {
                let start = h * self.head_dim;
                let qh = qb.columns(start, self.head_dim);
                let kh = kb.columns(start, self.head_dim);
                let vh = vb.columns(start, self.head_dim);
                let head_out = scaled_dot_attention_policy(&qh, &kh, &vh, self.policy)?;
                for r in 0..item_rows {
                    concat.row_mut(r0 + r)[start..start + self.head_dim]
                        .copy_from_slice(head_out.row(r));
                }
            }
        }
        self.out_proj.forward(&concat)
    }

    /// Averaged per-head attention weights from `queries` to `keys`
    /// (for heatmap introspection).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] on operand width mismatch.
    pub fn average_attention(&self, queries: &Matrix, keys: &Matrix) -> Result<Matrix> {
        let q = self.q_proj.forward(queries)?;
        let k = self.k_proj.forward(keys)?;
        let mut acc = Matrix::zeros(q.rows(), k.rows());
        for h in 0..self.heads {
            let start = h * self.head_dim;
            let qh = q.columns(start, self.head_dim);
            let kh = k.columns(start, self.head_dim);
            acc = acc.add(&attention_weights(&qh, &kh)?)?;
        }
        Ok(acc.scale(1.0 / self.heads as f32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attention_rows_are_convex_combinations() {
        let q = Matrix::from_rows(&[&[1.0, 0.0]]).unwrap();
        let k = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]).unwrap();
        let v = Matrix::from_rows(&[&[10.0, 0.0], &[0.0, 10.0]]).unwrap();
        let out = scaled_dot_attention(&q, &k, &v).unwrap();
        // Output must lie inside the convex hull of value rows.
        assert!(out.at(0, 0) > 0.0 && out.at(0, 0) < 10.0);
        assert!((out.at(0, 0) + out.at(0, 1) - 10.0).abs() < 1e-4);
        // The query matches key 0 more strongly.
        assert!(out.at(0, 0) > out.at(0, 1));
    }

    #[test]
    fn attention_weight_rows_sum_to_one() {
        let q = Matrix::from_rows(&[&[0.3, -0.7], &[1.5, 0.2]]).unwrap();
        let k = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]).unwrap();
        let w = attention_weights(&q, &k).unwrap();
        assert_eq!(w.shape(), (2, 3));
        for r in 0..2 {
            let sum: f32 = w.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
            assert!(w.row(r).iter().all(|&p| p >= 0.0));
        }
    }

    #[test]
    fn attention_shape_mismatch_errors() {
        let q = Matrix::zeros(1, 3);
        let k = Matrix::zeros(2, 4);
        let v = Matrix::zeros(2, 4);
        assert!(scaled_dot_attention(&q, &k, &v).is_err());
        let k2 = Matrix::zeros(2, 3);
        let v2 = Matrix::zeros(3, 4);
        assert!(scaled_dot_attention(&q, &k2, &v2).is_err());
    }

    #[test]
    fn mha_shapes() {
        let mut init = WeightInit::from_seed(2);
        let mha = MultiHeadAttention::seeded(12, 3, &mut init).unwrap();
        let tokens = Matrix::filled(7, 12, 0.1);
        let out = mha.forward(&tokens, &tokens, &tokens).unwrap();
        assert_eq!(out.shape(), (7, 12));
    }

    #[test]
    fn mha_rejects_bad_config() {
        let mut init = WeightInit::from_seed(3);
        assert!(MultiHeadAttention::seeded(10, 3, &mut init).is_err());
        assert!(MultiHeadAttention::seeded(0, 1, &mut init).is_err());
        assert!(MultiHeadAttention::seeded(8, 0, &mut init).is_err());
    }

    #[test]
    fn attention_propagates_remote_changes() {
        // The butterfly channel: perturbing ONE token changes EVERY output
        // token, in contrast to conv locality (see conv::tests::conv_output_is_local).
        let mut init = WeightInit::from_seed(4);
        let mha = MultiHeadAttention::seeded(8, 2, &mut init).unwrap();
        let mut tokens = Matrix::zeros(6, 8);
        for r in 0..6 {
            for c in 0..8 {
                tokens.set(r, c, ((r * 8 + c) as f32 * 0.01).sin());
            }
        }
        let base = mha.forward(&tokens, &tokens, &tokens).unwrap();
        let mut perturbed = tokens.clone();
        perturbed.set(5, 0, perturbed.at(5, 0) + 1.0); // poke the last token
        let out = mha.forward(&perturbed, &perturbed, &perturbed).unwrap();
        for r in 0..5 {
            let moved: f32 = (0..8).map(|c| (base.at(r, c) - out.at(r, c)).abs()).sum();
            assert!(moved > 0.0, "token {r} should feel the remote perturbation");
        }
    }

    #[test]
    fn mha_forward_is_policy_invariant() {
        let mut init = WeightInit::from_seed(6);
        let mha = MultiHeadAttention::seeded(12, 3, &mut init).unwrap();
        let mut tokens = Matrix::zeros(9, 12);
        for (i, v) in tokens.as_mut_slice().iter_mut().enumerate() {
            *v = ((i as f32) * 0.23).sin();
        }
        let mut reference = mha.clone();
        reference.set_kernel_policy(KernelPolicy::Reference);
        let mut blocked = mha.clone();
        blocked.set_kernel_policy(KernelPolicy::Blocked);
        assert_eq!(
            reference.forward(&tokens, &tokens, &tokens).unwrap(),
            blocked.forward(&tokens, &tokens, &tokens).unwrap()
        );
        assert_eq!(reference, blocked, "policy must be excluded from equality");
    }

    #[test]
    fn batched_forward_matches_per_item_forward_bitwise() {
        for policy in KernelPolicy::ALL {
            let mut init = WeightInit::from_seed(8);
            let mut mha = MultiHeadAttention::seeded(12, 3, &mut init).unwrap();
            mha.set_kernel_policy(policy);
            let items: Vec<Matrix> = (0..3)
                .map(|i| {
                    let mut tokens = Matrix::zeros(7, 12);
                    for (j, v) in tokens.as_mut_slice().iter_mut().enumerate() {
                        *v = ((j as f32) * 0.19 + i as f32).sin();
                    }
                    tokens
                })
                .collect();
            let refs: Vec<&Matrix> = items.iter().collect();
            let stacked = Matrix::vstack(&refs).unwrap();
            let batched = mha.forward_batched(&stacked, &stacked, &stacked, 7).unwrap();
            for (i, item) in items.iter().enumerate() {
                assert_eq!(
                    batched.row_block(i * 7, 7),
                    mha.forward(item, item, item).unwrap(),
                    "{policy} item {i}"
                );
            }
        }
    }

    #[test]
    fn batched_forward_validates_item_rows() {
        let mut init = WeightInit::from_seed(9);
        let mha = MultiHeadAttention::seeded(8, 2, &mut init).unwrap();
        let tokens = Matrix::zeros(6, 8);
        assert!(mha.forward_batched(&tokens, &tokens, &tokens, 0).is_err());
        assert!(mha.forward_batched(&tokens, &tokens, &tokens, 4).is_err());
        assert!(mha.forward_batched(&tokens, &tokens, &Matrix::zeros(4, 8), 3).is_err());
        assert!(mha.forward_batched(&tokens, &tokens, &tokens, 3).is_ok());
    }

    #[test]
    fn cross_attention_shapes() {
        let mut init = WeightInit::from_seed(5);
        let mha = MultiHeadAttention::seeded(8, 2, &mut init).unwrap();
        let queries = Matrix::filled(4, 8, 0.5); // object queries
        let memory = Matrix::filled(20, 8, 0.25); // encoder tokens
        let out = mha.forward(&queries, &memory, &memory).unwrap();
        assert_eq!(out.shape(), (4, 8));
        let w = mha.average_attention(&queries, &memory).unwrap();
        assert_eq!(w.shape(), (4, 20));
    }
}
