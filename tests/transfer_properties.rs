//! Property-based tests of the transfer matrix's distortion-aware
//! metrics and CSV schema.

use butterfly_effect_attack::attack::campaign::CellSpec;
use butterfly_effect_attack::attack::transfer::{
    normalize_degradation, read_matrix_csv, round6, write_matrix_csv, DistortionBudget, TargetPath,
    TargetSpec, TransferCellSpec, TransferMetrics, TransferRow,
};
use butterfly_effect_attack::FilterMask;
use proptest::prelude::*;

fn arb_mask(width: usize, height: usize) -> impl Strategy<Value = FilterMask> {
    proptest::collection::vec(-255i16..=255, 3 * width * height)
        .prop_map(move |v| FilterMask::from_values(width, height, v).expect("length matches"))
}

fn arb_path() -> impl Strategy<Value = TargetPath> {
    (0usize..3).prop_map(|i| TargetPath::ALL[i])
}

/// Group labels including CSV-hostile ones (commas, quotes, spaces).
fn arb_group() -> impl Strategy<Value = String> {
    (0usize..4).prop_map(|i| ["YOLO", "DETR", "odd,comma", "quo\"te d"][i].to_string())
}

/// A transfer row whose floats all went through [`round6`], like every
/// row [`butterfly_effect_attack::attack::transfer::transfer_metrics`]
/// produces.
fn arb_row() -> impl Strategy<Value = TransferRow> {
    (
        (arb_group(), 1u64..5, 0usize..4),
        (arb_group(), 1u64..5, arb_path()),
        (0.0f64..1.0, 0.0f64..1.0),
        arb_mask(6, 4),
        (0usize..4, 0usize..4, 0usize..4),
    )
        .prop_map(|((sg, ss, si), (tg, ts, path), (source, target), mask, (v, a, d))| {
            let source_fitness = round6(source);
            let target_fitness = round6(target);
            let degradation = round6(1.0 - target_fitness);
            let budget = DistortionBudget::of(&mask);
            TransferRow {
                spec: TransferCellSpec::new(
                    CellSpec::new(sg, ss, si),
                    &TargetSpec::new(tg, ts, path),
                ),
                metrics: TransferMetrics {
                    source_fitness,
                    target_fitness,
                    delta: round6(target_fitness - source_fitness),
                    degradation,
                    vanished: v,
                    appeared: a,
                    deformed: d,
                    budget,
                    normalized: normalize_degradation(degradation, &budget),
                },
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The normalized scores are a pure function of (mask, degradation):
    /// the same champion mask duplicated across different source seeds,
    /// images or target columns scores identically per unit budget.
    #[test]
    fn normalized_scores_are_invariant_under_mask_duplication(
        mask in arb_mask(8, 5),
        degradation in 0.0f64..1.0,
    ) {
        let degradation = round6(degradation);
        let a = normalize_degradation(degradation, &DistortionBudget::of(&mask));
        let duplicate = FilterMask::from_values(8, 5, mask.as_slice().to_vec())
            .expect("same dimensions");
        let b = normalize_degradation(degradation, &DistortionBudget::of(&duplicate));
        prop_assert_eq!(a, b);
        // The budget itself is also duplication-invariant.
        prop_assert_eq!(DistortionBudget::of(&mask), DistortionBudget::of(&duplicate));
    }

    /// At a fixed budget the normalized scores are monotone in the raw
    /// transferred degradation.
    #[test]
    fn normalized_scores_are_monotone_in_degradation(
        mask in arb_mask(8, 5),
        d1 in 0.0f64..1.0,
        d2 in 0.0f64..1.0,
    ) {
        let (lo, hi) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
        let budget = DistortionBudget::of(&mask);
        let a = normalize_degradation(round6(lo), &budget);
        let b = normalize_degradation(round6(hi), &budget);
        prop_assert!(a.per_l1 <= b.per_l1, "{} > {}", a.per_l1, b.per_l1);
        prop_assert!(a.per_l2 <= b.per_l2, "{} > {}", a.per_l2, b.per_l2);
        prop_assert!(a.per_area <= b.per_area, "{} > {}", a.per_area, b.per_area);
    }

    /// Degenerate masks never produce NaN or infinite scores: the empty
    /// mask spends zero budget (scores defined as 0), the full-frame
    /// mask spends the maximal budget (scores equal the degradation).
    #[test]
    fn zero_area_and_full_frame_masks_have_finite_scores(degradation in 0.0f64..1.0) {
        let degradation = round6(degradation);
        let zero = FilterMask::zeros(7, 3);
        let budget = DistortionBudget::of(&zero);
        prop_assert_eq!(budget.l1, 0.0);
        prop_assert_eq!(budget.area, 0.0);
        let scores = normalize_degradation(degradation, &budget);
        for value in [scores.per_l1, scores.per_l2, scores.per_area] {
            prop_assert!(value.is_finite(), "zero mask produced {value}");
            prop_assert_eq!(value, 0.0, "zero budget means zero score, not a blow-up");
        }

        let full = FilterMask::from_values(7, 3, vec![255; 3 * 7 * 3]).expect("full mask");
        let budget = DistortionBudget::of(&full);
        prop_assert_eq!(budget.l1, 1.0);
        prop_assert_eq!(budget.l2, 1.0);
        prop_assert_eq!(budget.area, 1.0);
        let scores = normalize_degradation(degradation, &budget);
        for value in [scores.per_l1, scores.per_l2, scores.per_area] {
            prop_assert!(value.is_finite(), "full mask produced {value}");
        }
        prop_assert_eq!(scores.per_l1, degradation);
    }

    /// The matrix CSV round-trips: write → read → write reproduces the
    /// bytes (quoting hostile labels per RFC 4180), and the reloaded
    /// rows compare equal — the property behind resume-stable stores.
    #[test]
    fn matrix_csv_round_trips_byte_stable(rows in proptest::collection::vec(arb_row(), 0..8)) {
        let mut first = Vec::new();
        write_matrix_csv(&rows, &mut first).expect("serialize");
        let reloaded = read_matrix_csv(first.as_slice()).expect("reparse");
        prop_assert_eq!(&rows, &reloaded);
        let mut second = Vec::new();
        write_matrix_csv(&reloaded, &mut second).expect("re-serialize");
        prop_assert_eq!(first, second);
    }
}
