//! Vector norms used by the attack objectives, plus the inference-time
//! channel normalisation layer.
//!
//! The paper's `obj_intensity(δ) := ‖δ‖₂` (Section III-B) is computed with
//! [`l2`]; [`l1`] and [`linf`] are provided because the paper notes "one can
//! use different types of norms such as L1, L2 or L∞".

use crate::dirty::DirtyRect;
use crate::error::{Result, TensorError};
use crate::tensor3::FeatureMap;

/// L1 norm (sum of absolute values).
///
/// # Examples
///
/// ```
/// assert_eq!(bea_tensor::norm::l1(&[3.0, -4.0]), 7.0);
/// ```
pub fn l1(values: &[f32]) -> f64 {
    values.iter().map(|v| v.abs() as f64).sum()
}

/// L2 (Euclidean) norm.
///
/// Accumulates in `f64` so masks with hundreds of thousands of pixels do not
/// lose precision.
///
/// # Examples
///
/// ```
/// assert_eq!(bea_tensor::norm::l2(&[3.0, -4.0]), 5.0);
/// ```
pub fn l2(values: &[f32]) -> f64 {
    values.iter().map(|v| (*v as f64) * (*v as f64)).sum::<f64>().sqrt()
}

/// L∞ norm (maximum absolute value). Returns `0.0` for an empty slice.
///
/// # Examples
///
/// ```
/// assert_eq!(bea_tensor::norm::linf(&[3.0, -4.0]), 4.0);
/// ```
pub fn linf(values: &[f32]) -> f64 {
    values.iter().map(|v| v.abs() as f64).fold(0.0, f64::max)
}

/// Which norm to use for the intensity objective.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum NormKind {
    /// Sum of absolute values.
    L1,
    /// Euclidean norm (the paper's choice).
    #[default]
    L2,
    /// Maximum absolute value.
    LInf,
}

impl NormKind {
    /// Evaluates this norm on a slice.
    pub fn eval(self, values: &[f32]) -> f64 {
        match self {
            NormKind::L1 => l1(values),
            NormKind::L2 => l2(values),
            NormKind::LInf => linf(values),
        }
    }
}

impl std::fmt::Display for NormKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NormKind::L1 => write!(f, "L1"),
            NormKind::L2 => write!(f, "L2"),
            NormKind::LInf => write!(f, "Linf"),
        }
    }
}

/// Inference-time per-channel normalisation with *frozen* statistics
/// (batch-norm folded for inference): `y = γ · (x − μ) / √(σ² + ε) + β`.
///
/// Because the statistics are fixed, the layer is elementwise and thus
/// local — a dirty region passes through unchanged, which makes the
/// incremental path trivial and bit-identical.
///
/// # Examples
///
/// ```
/// use bea_tensor::norm::ChannelNorm;
/// use bea_tensor::FeatureMap;
///
/// # fn main() -> Result<(), bea_tensor::TensorError> {
/// let norm = ChannelNorm::new(vec![2.0], vec![1.0], vec![0.0], vec![1.0])?;
/// let input = FeatureMap::filled(1, 2, 2, 3.0);
/// let out = norm.forward(&input)?;
/// assert!((out.at(0, 0, 0) - 7.0).abs() < 1e-3); // 2·3 + 1 (ε keeps it shy of exact)
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelNorm {
    gamma: Vec<f32>,
    beta: Vec<f32>,
    mean: Vec<f32>,
    var: Vec<f32>,
    eps: f32,
}

impl ChannelNorm {
    /// Builds the layer from per-channel scale, shift, and frozen
    /// statistics (all four must have the same length).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] when the buffers disagree
    /// and [`TensorError::EmptyShape`] for zero channels.
    pub fn new(gamma: Vec<f32>, beta: Vec<f32>, mean: Vec<f32>, var: Vec<f32>) -> Result<Self> {
        if gamma.is_empty() {
            return Err(TensorError::EmptyShape { op: "channel_norm" });
        }
        for buf in [&beta, &mean, &var] {
            if buf.len() != gamma.len() {
                return Err(TensorError::LengthMismatch {
                    expected: gamma.len(),
                    actual: buf.len(),
                });
            }
        }
        Ok(Self { gamma, beta, mean, var, eps: 1e-5 })
    }

    /// The identity normalisation over `channels` channels (γ = 1, β = 0,
    /// μ = 0, σ² = 1).
    pub fn identity(channels: usize) -> Result<Self> {
        Self::new(
            vec![1.0; channels],
            vec![0.0; channels],
            vec![0.0; channels],
            vec![1.0; channels],
        )
    }

    /// Number of channels the layer expects.
    pub fn channels(&self) -> usize {
        self.gamma.len()
    }

    #[inline]
    fn apply(&self, c: usize, v: f32) -> f32 {
        self.gamma[c] * (v - self.mean[c]) / (self.var[c] + self.eps).sqrt() + self.beta[c]
    }

    /// Normalises every channel with its frozen statistics.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] on a channel-count mismatch.
    pub fn forward(&self, input: &FeatureMap) -> Result<FeatureMap> {
        self.check_channels(input)?;
        let mut out = input.clone();
        for c in 0..input.channels() {
            for v in out.channel_mut(c) {
                *v = self.apply(c, *v);
            }
        }
        Ok(out)
    }

    /// Patches a cached output in place over the dirty window only.
    /// Elementwise ⇒ the dirty region passes through unchanged, and the
    /// recomputed cells are bit-identical to [`Self::forward`].
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] on a channel-count mismatch
    /// or when `cached` differs in shape from `input`.
    pub fn forward_incremental(
        &self,
        input: &FeatureMap,
        cached: &mut FeatureMap,
        dirty: &DirtyRect,
    ) -> Result<DirtyRect> {
        self.check_channels(input)?;
        if cached.shape() != input.shape() {
            return Err(TensorError::ShapeMismatch {
                op: "channel_norm incremental (cached output shape)",
                lhs: vec![input.channels(), input.height(), input.width()],
                rhs: vec![cached.channels(), cached.height(), cached.width()],
            });
        }
        let window = dirty.clamp(input.width(), input.height());
        for c in 0..input.channels() {
            for y in window.y0..window.y1 {
                for x in window.x0..window.x1 {
                    cached.set(c, y, x, self.apply(c, input.at(c, y, x)));
                }
            }
        }
        Ok(window)
    }

    fn check_channels(&self, input: &FeatureMap) -> Result<()> {
        if input.channels() != self.channels() {
            return Err(TensorError::ShapeMismatch {
                op: "channel_norm",
                lhs: vec![self.channels()],
                rhs: vec![input.channels()],
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pythagorean_triple() {
        assert_eq!(l2(&[3.0, 4.0]), 5.0);
        assert_eq!(l1(&[3.0, 4.0]), 7.0);
        assert_eq!(linf(&[3.0, 4.0]), 4.0);
    }

    #[test]
    fn empty_slices() {
        assert_eq!(l1(&[]), 0.0);
        assert_eq!(l2(&[]), 0.0);
        assert_eq!(linf(&[]), 0.0);
    }

    #[test]
    fn norms_ignore_sign() {
        let pos = [1.0, 2.0, 3.0];
        let neg = [-1.0, -2.0, -3.0];
        for kind in [NormKind::L1, NormKind::L2, NormKind::LInf] {
            assert_eq!(kind.eval(&pos), kind.eval(&neg));
        }
    }

    #[test]
    fn norm_ordering_inequality() {
        // For any vector: linf <= l2 <= l1.
        let v = [0.5, -2.0, 1.5, 0.25];
        assert!(linf(&v) <= l2(&v));
        assert!(l2(&v) <= l1(&v));
    }

    #[test]
    fn large_mask_precision() {
        // 100k entries of 1.0: l2 should be sqrt(100000) with f64 precision.
        let v = vec![1.0f32; 100_000];
        assert!((l2(&v) - (100_000f64).sqrt()).abs() < 1e-6);
    }

    #[test]
    fn display_names() {
        assert_eq!(NormKind::L2.to_string(), "L2");
        assert_eq!(NormKind::default(), NormKind::L2);
    }

    #[test]
    fn channel_norm_standardises() {
        let norm = ChannelNorm::new(vec![1.0], vec![0.0], vec![2.0], vec![4.0]).unwrap();
        let input = FeatureMap::filled(1, 2, 2, 6.0);
        let out = norm.forward(&input).unwrap();
        // (6 − 2) / √(4 + ε) ≈ 2.
        assert!((out.at(0, 0, 0) - 2.0).abs() < 1e-3);
    }

    #[test]
    fn channel_norm_identity_is_near_noop() {
        let norm = ChannelNorm::identity(2).unwrap();
        let input = FeatureMap::filled(2, 3, 3, 5.0);
        let out = norm.forward(&input).unwrap();
        for &v in out.as_slice() {
            assert!((v - 5.0).abs() < 1e-4);
        }
    }

    #[test]
    fn channel_norm_incremental_matches_full() {
        let norm =
            ChannelNorm::new(vec![1.5, -0.5], vec![0.1, 0.2], vec![1.0, 2.0], vec![2.0, 0.5])
                .unwrap();
        let mut base = FeatureMap::zeros(2, 6, 8);
        for (i, v) in base.as_mut_slice().iter_mut().enumerate() {
            *v = (i as f32 * 0.37).sin() * 3.0;
        }
        let mut perturbed = base.clone();
        perturbed.set(0, 2, 3, 9.0);
        perturbed.set(1, 3, 4, -7.0);
        let mut cached = norm.forward(&base).unwrap();
        let dirty = DirtyRect::new(3, 2, 5, 4);
        let window = norm.forward_incremental(&perturbed, &mut cached, &dirty).unwrap();
        assert_eq!(window, dirty);
        assert_eq!(cached, norm.forward(&perturbed).unwrap(), "bit-identical patch");
    }

    #[test]
    fn channel_norm_validates_shapes() {
        assert!(ChannelNorm::new(vec![1.0], vec![0.0, 0.0], vec![0.0], vec![1.0]).is_err());
        assert!(ChannelNorm::new(Vec::new(), Vec::new(), Vec::new(), Vec::new()).is_err());
        let norm = ChannelNorm::identity(1).unwrap();
        assert!(norm.forward(&FeatureMap::zeros(3, 2, 2)).is_err());
        let mut wrong = FeatureMap::zeros(1, 3, 3);
        let input = FeatureMap::zeros(1, 2, 2);
        assert!(norm.forward_incremental(&input, &mut wrong, &DirtyRect::full(2, 2)).is_err());
    }
}
