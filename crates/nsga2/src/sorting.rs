//! Fast non-dominated sorting (Deb et al., 2002, Section III-A).

use crate::objective::{dominates, Direction};

/// Sorts objective vectors into Pareto fronts.
///
/// Returns the fronts in rank order: `fronts[0]` holds the indices of the
/// non-dominated solutions, `fronts[1]` the solutions dominated only by
/// front 0, and so on ("to find the solutions of rank i ≥ 2, the solutions
/// of rank i−1 are removed and the remaining Pareto solutions from this
/// subset are of rank i").
///
/// Complexity is O(M·N²) as in the original algorithm.
///
/// # Examples
///
/// ```
/// use bea_nsga2::sorting::fast_non_dominated_sort;
/// use bea_nsga2::Direction;
///
/// let objs = vec![vec![1.0, 1.0], vec![2.0, 2.0], vec![0.5, 3.0]];
/// let fronts = fast_non_dominated_sort(&objs, &[Direction::Minimize, Direction::Minimize]);
/// assert_eq!(fronts[0], vec![0, 2]); // (1,1) and (0.5,3) are incomparable
/// assert_eq!(fronts[1], vec![1]);
/// ```
pub fn fast_non_dominated_sort(
    objectives: &[Vec<f64>],
    directions: &[Direction],
) -> Vec<Vec<usize>> {
    let n = objectives.len();
    if n == 0 {
        return Vec::new();
    }
    // dominated_by[p]: solutions p dominates; domination_count[p]: how many
    // solutions dominate p.
    let mut dominated: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut domination_count = vec![0usize; n];
    for p in 0..n {
        for q in (p + 1)..n {
            if dominates(&objectives[p], &objectives[q], directions) {
                dominated[p].push(q);
                domination_count[q] += 1;
            } else if dominates(&objectives[q], &objectives[p], directions) {
                dominated[q].push(p);
                domination_count[p] += 1;
            }
        }
    }
    let mut fronts: Vec<Vec<usize>> = Vec::new();
    let mut current: Vec<usize> = (0..n).filter(|&p| domination_count[p] == 0).collect();
    while !current.is_empty() {
        let mut next = Vec::new();
        for &p in &current {
            for &q in &dominated[p] {
                domination_count[q] -= 1;
                if domination_count[q] == 0 {
                    next.push(q);
                }
            }
        }
        fronts.push(std::mem::take(&mut current));
        current = next;
    }
    fronts
}

/// Assigns Pareto ranks in place on a population of [`crate::Individual`]s,
/// so externally assembled populations (e.g. the gradient-attack
/// trajectories fed to [`crate::Nsga2Result::from_parts`]) filter correctly
/// through [`crate::Nsga2Result::pareto_front`].
pub fn assign_ranks<G>(population: &mut [crate::Individual<G>], directions: &[Direction]) {
    let objectives: Vec<Vec<f64>> =
        population.iter().map(|ind| ind.objectives().to_vec()).collect();
    for (ind, rank) in population.iter_mut().zip(ranks(&objectives, directions)) {
        ind.rank = rank;
    }
}

/// Assigns each solution its Pareto rank (front index).
pub fn ranks(objectives: &[Vec<f64>], directions: &[Direction]) -> Vec<usize> {
    let fronts = fast_non_dominated_sort(objectives, directions);
    let mut out = vec![0usize; objectives.len()];
    for (rank, front) in fronts.iter().enumerate() {
        for &i in front {
            out[i] = rank;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const MIN2: [Direction; 2] = [Direction::Minimize, Direction::Minimize];

    #[test]
    fn empty_input() {
        assert!(fast_non_dominated_sort(&[], &MIN2).is_empty());
    }

    #[test]
    fn single_solution_is_front_zero() {
        let fronts = fast_non_dominated_sort(&[vec![1.0, 2.0]], &MIN2);
        assert_eq!(fronts, vec![vec![0]]);
    }

    #[test]
    fn chain_of_dominated_solutions() {
        let objs: Vec<Vec<f64>> = (0..5).map(|i| vec![i as f64, i as f64]).collect();
        let fronts = fast_non_dominated_sort(&objs, &MIN2);
        assert_eq!(fronts.len(), 5, "each solution is its own front");
        for (rank, front) in fronts.iter().enumerate() {
            assert_eq!(front, &vec![rank]);
        }
    }

    #[test]
    fn incomparable_solutions_share_a_front() {
        let objs = vec![vec![0.0, 3.0], vec![1.0, 2.0], vec![2.0, 1.0], vec![3.0, 0.0]];
        let fronts = fast_non_dominated_sort(&objs, &MIN2);
        assert_eq!(fronts.len(), 1);
        assert_eq!(fronts[0].len(), 4);
    }

    #[test]
    fn fronts_partition_the_population() {
        let objs = vec![
            vec![1.0, 5.0],
            vec![2.0, 4.0],
            vec![3.0, 3.0],
            vec![2.0, 6.0],
            vec![4.0, 4.0],
            vec![5.0, 5.0],
        ];
        let fronts = fast_non_dominated_sort(&objs, &MIN2);
        let mut seen: Vec<usize> = fronts.concat();
        seen.sort_unstable();
        assert_eq!(seen, (0..objs.len()).collect::<Vec<_>>());
    }

    #[test]
    fn every_front_is_internally_nondominated() {
        let objs = vec![
            vec![1.0, 5.0],
            vec![2.0, 4.0],
            vec![3.0, 3.0],
            vec![2.0, 6.0],
            vec![4.0, 4.0],
            vec![5.0, 5.0],
            vec![1.5, 4.5],
        ];
        let fronts = fast_non_dominated_sort(&objs, &MIN2);
        for front in &fronts {
            for &a in front {
                for &b in front {
                    assert!(
                        !dominates(&objs[a], &objs[b], &MIN2),
                        "{a} dominates {b} within one front"
                    );
                }
            }
        }
    }

    #[test]
    fn later_fronts_are_dominated_by_earlier_ones() {
        let objs = vec![vec![1.0, 1.0], vec![1.0, 2.0], vec![2.0, 1.0], vec![2.0, 2.0]];
        let r = ranks(&objs, &MIN2);
        assert_eq!(r[0], 0);
        assert!(r[3] > r[0]);
    }

    #[test]
    fn maximization_flips_order() {
        let dirs = [Direction::Maximize, Direction::Maximize];
        let objs = vec![vec![1.0, 1.0], vec![2.0, 2.0]];
        let fronts = fast_non_dominated_sort(&objs, &dirs);
        assert_eq!(fronts[0], vec![1]);
        assert_eq!(fronts[1], vec![0]);
    }

    #[test]
    fn duplicate_vectors_share_front() {
        let objs = vec![vec![1.0, 1.0], vec![1.0, 1.0], vec![2.0, 2.0]];
        let fronts = fast_non_dominated_sort(&objs, &MIN2);
        assert_eq!(fronts[0], vec![0, 1]);
    }
}
