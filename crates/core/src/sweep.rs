//! Programmatic attack grids: run one attack per (detector, image) pair
//! and aggregate the champions.
//!
//! The paper's evaluation is a grid — 25 models × 16 images per
//! architecture (Table I). This module gives library users the same
//! machinery the `fig2_pareto` harness uses: run the grid, keep the
//! per-run champions, and summarise per group.

use crate::attack::{AttackOutcome, ButterflyAttack};
use crate::report::{attack_succeeded, champion_rows, AttackRow, SuccessCriteria};
use bea_detect::Detector;
use bea_image::Image;

/// One completed grid cell.
#[derive(Debug, Clone)]
pub struct SweepCell {
    /// Group label the cell belongs to (e.g. the architecture name).
    pub group: String,
    /// Model seed used.
    pub model_seed: u64,
    /// Image index used.
    pub image_index: usize,
    /// The attack outcome.
    pub outcome: AttackOutcome,
}

/// Aggregated statistics of one group of cells.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSummary {
    /// Group label.
    pub group: String,
    /// Number of runs aggregated.
    pub runs: usize,
    /// Mean `obj_degrad` of the best-degradation champions.
    pub mean_degrad: f64,
    /// Best (lowest) champion `obj_degrad` in the group.
    pub best_degrad: f64,
    /// Mean `obj_intensity` of those champions.
    pub mean_intensity: f64,
    /// Mean `obj_dist` of those champions.
    pub mean_dist: f64,
    /// Fraction of runs meeting the success criteria.
    pub success_rate: f64,
}

/// Accumulates attack runs over a (detector × image) grid.
///
/// # Examples
///
/// ```no_run
/// use bea_core::attack::{AttackConfig, ButterflyAttack};
/// use bea_core::sweep::AttackSweep;
/// use bea_detect::{Architecture, ModelZoo};
/// use bea_scene::SyntheticKitti;
///
/// let zoo = ModelZoo::with_defaults();
/// let data = SyntheticKitti::evaluation_set();
/// let attack = ButterflyAttack::new(AttackConfig::scaled(24, 20));
/// let mut sweep = AttackSweep::new(attack);
/// for seed in 1..=2 {
///     let model = zoo.model(Architecture::Detr, seed);
///     for image in 0..2 {
///         sweep.run_cell("DETR", model.as_ref(), seed, image, &data.image(image));
///     }
/// }
/// for summary in sweep.summaries(Default::default()) {
///     println!("{}: mean degrad {:.3}", summary.group, summary.mean_degrad);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct AttackSweep {
    attack: ButterflyAttack,
    cells: Vec<SweepCell>,
}

impl AttackSweep {
    /// Creates an empty sweep around an attack configuration.
    pub fn new(attack: ButterflyAttack) -> Self {
        Self { attack, cells: Vec::new() }
    }

    /// Runs one grid cell and records it under `group`. Returns a
    /// reference to the recorded cell.
    pub fn run_cell(
        &mut self,
        group: &str,
        detector: &dyn Detector,
        model_seed: u64,
        image_index: usize,
        img: &Image,
    ) -> &SweepCell {
        let outcome = self.attack.attack(detector, img);
        self.cells.push(SweepCell {
            group: group.to_string(),
            model_seed,
            image_index,
            outcome,
        });
        self.cells.last().expect("just pushed")
    }

    /// All recorded cells.
    pub fn cells(&self) -> &[SweepCell] {
        &self.cells
    }

    /// The per-objective champions of every cell as labelled rows
    /// (CSV-exportable via [`crate::report::write_csv`]).
    pub fn champion_rows(&self) -> Vec<AttackRow> {
        self.cells
            .iter()
            .flat_map(|c| {
                champion_rows(&c.outcome, &c.group, c.model_seed, c.image_index)
            })
            .collect()
    }

    /// Group labels in first-seen order.
    pub fn groups(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for cell in &self.cells {
            if !out.contains(&cell.group) {
                out.push(cell.group.clone());
            }
        }
        out
    }

    /// Aggregates each group (empty for an empty sweep).
    pub fn summaries(&self, criteria: SuccessCriteria) -> Vec<SweepSummary> {
        self.groups()
            .into_iter()
            .filter_map(|group| {
                let members: Vec<&SweepCell> =
                    self.cells.iter().filter(|c| c.group == group).collect();
                if members.is_empty() {
                    return None;
                }
                let champs: Vec<&[f64]> = members
                    .iter()
                    .filter_map(|c| c.outcome.best_degradation().map(|i| i.objectives()))
                    .collect();
                if champs.is_empty() {
                    return None;
                }
                let n = champs.len() as f64;
                let hits = members
                    .iter()
                    .filter(|c| attack_succeeded(&c.outcome, criteria))
                    .count();
                Some(SweepSummary {
                    group,
                    runs: members.len(),
                    mean_degrad: champs.iter().map(|o| o[1]).sum::<f64>() / n,
                    best_degrad: champs
                        .iter()
                        .map(|o| o[1])
                        .fold(f64::INFINITY, f64::min),
                    mean_intensity: champs.iter().map(|o| o[0]).sum::<f64>() / n,
                    mean_dist: champs.iter().map(|o| o[2]).sum::<f64>() / n,
                    success_rate: hits as f64 / members.len() as f64,
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attack::AttackConfig;
    use bea_detect::{Detection, Prediction};
    use bea_scene::{BBox, ObjectClass};

    /// Toy detector with a smooth right-half response (as in attack tests).
    struct Toy;

    impl Detector for Toy {
        fn detect(&self, img: &Image) -> Prediction {
            let mut acc = 0.0;
            let mut n = 0usize;
            for y in 0..img.height() {
                for x in (img.width() / 2)..img.width() {
                    acc += img.pixel(x, y)[0];
                    n += 1;
                }
            }
            let size = (8.0 - acc / n.max(1) as f32 / 4.0).clamp(3.0, 8.0);
            Prediction::from_detections(vec![Detection::new(
                ObjectClass::Car,
                BBox::new(8.0, 8.0, size, size),
                0.9,
            )])
        }

        fn name(&self) -> &str {
            "toy"
        }
    }

    fn sweep_with_cells() -> AttackSweep {
        let mut sweep = AttackSweep::new(ButterflyAttack::new(AttackConfig::scaled(10, 4)));
        let img = Image::black(24, 12);
        sweep.run_cell("A", &Toy, 1, 0, &img);
        sweep.run_cell("A", &Toy, 2, 0, &img);
        sweep.run_cell("B", &Toy, 1, 1, &img);
        sweep
    }

    #[test]
    fn cells_are_recorded_in_groups() {
        let sweep = sweep_with_cells();
        assert_eq!(sweep.cells().len(), 3);
        assert_eq!(sweep.groups(), vec!["A".to_string(), "B".to_string()]);
    }

    #[test]
    fn summaries_aggregate_champions() {
        let sweep = sweep_with_cells();
        let summaries = sweep.summaries(SuccessCriteria::default());
        assert_eq!(summaries.len(), 2);
        let a = &summaries[0];
        assert_eq!(a.group, "A");
        assert_eq!(a.runs, 2);
        assert!(a.best_degrad <= a.mean_degrad);
        assert!((0.0..=1.0).contains(&a.success_rate));
    }

    #[test]
    fn champion_rows_cover_every_cell() {
        let sweep = sweep_with_cells();
        // 3 champions per cell.
        assert_eq!(sweep.champion_rows().len(), 9);
    }

    #[test]
    fn empty_sweep_has_no_summaries() {
        let sweep = AttackSweep::new(ButterflyAttack::new(AttackConfig::scaled(8, 2)));
        assert!(sweep.summaries(SuccessCriteria::default()).is_empty());
        assert!(sweep.groups().is_empty());
    }
}
