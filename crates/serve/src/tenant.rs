//! Multi-tenant admission control: per-tenant token buckets and
//! in-system quotas.
//!
//! The governor sits between request parsing and the job queue. Each
//! tenant owns a token bucket (capacity `burst`, refilled at `rate`
//! tokens per second); a submission spends one token or is rate-limited
//! with a computed `Retry-After`. Independently, each tenant is capped
//! at `quota` jobs *in the system* (queued or running) so one tenant
//! cannot occupy the whole queue even while under its rate.
//!
//! The governor is pure bookkeeping over an injected clock — admission
//! decisions take the current [`Instant`] as an argument, so tests
//! drive time explicitly and the semantics stay deterministic.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Instant;

/// Per-tenant admission policy. Zero disables the corresponding check.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantPolicy {
    /// Token-bucket refill rate, submissions per second (`0.0` =
    /// unlimited rate).
    pub rate: f64,
    /// Token-bucket capacity: how many submissions may burst after an
    /// idle period. Clamped to at least 1 token when rate limiting is
    /// on.
    pub burst: f64,
    /// Maximum jobs a tenant may have queued or running at once (`0` =
    /// unlimited).
    pub quota: usize,
}

impl Default for TenantPolicy {
    fn default() -> Self {
        Self { rate: 0.0, burst: 1.0, quota: 0 }
    }
}

/// Why a submission was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmitError {
    /// The tenant's bucket is empty; retry after the given whole number
    /// of seconds (at least 1, suitable for a `Retry-After` header).
    RateLimited {
        /// Whole seconds until a token is available.
        retry_after_secs: u64,
    },
    /// The tenant already has `quota` jobs queued or running.
    QuotaExceeded {
        /// The configured quota that was hit.
        quota: usize,
    },
}

impl AdmitError {
    /// The `Retry-After` value to answer with.
    pub fn retry_after_secs(&self) -> u64 {
        match self {
            AdmitError::RateLimited { retry_after_secs } => *retry_after_secs,
            // Quota frees up when a job finishes; 1s is the poll hint.
            AdmitError::QuotaExceeded { .. } => 1,
        }
    }

    /// A human-readable refusal message.
    pub fn message(&self) -> String {
        match self {
            AdmitError::RateLimited { retry_after_secs } => {
                format!("tenant rate limit exceeded, retry in {retry_after_secs}s")
            }
            AdmitError::QuotaExceeded { quota } => {
                format!("tenant quota of {quota} in-system jobs exceeded")
            }
        }
    }
}

#[derive(Debug)]
struct TenantState {
    /// Fractional tokens currently in the bucket.
    tokens: f64,
    /// When the bucket was last refilled.
    refilled: Instant,
    /// Jobs currently queued or running.
    in_system: usize,
}

/// The admission governor. See the [module docs](self).
#[derive(Debug)]
pub struct TenantGovernor {
    policy: TenantPolicy,
    tenants: Mutex<HashMap<String, TenantState>>,
}

impl TenantGovernor {
    /// A governor applying `policy` to every tenant.
    pub fn new(policy: TenantPolicy) -> Self {
        Self { policy, tenants: Mutex::new(HashMap::new()) }
    }

    /// The configured policy.
    pub fn policy(&self) -> TenantPolicy {
        self.policy
    }

    /// Admits one submission for `tenant` at time `now`: checks the
    /// quota, then spends a token. On success the tenant's in-system
    /// count is incremented — pair every success with a later
    /// [`TenantGovernor::release`].
    ///
    /// # Errors
    ///
    /// [`AdmitError::QuotaExceeded`] before any token is spent, or
    /// [`AdmitError::RateLimited`] with a retry hint.
    pub fn try_admit(&self, tenant: &str, now: Instant) -> Result<(), AdmitError> {
        let mut tenants = self.tenants.lock().expect("governor lock");
        let burst = self.policy.burst.max(1.0);
        let state = tenants.entry(tenant.to_string()).or_insert_with(|| TenantState {
            tokens: burst,
            refilled: now,
            in_system: 0,
        });
        if self.policy.quota > 0 && state.in_system >= self.policy.quota {
            return Err(AdmitError::QuotaExceeded { quota: self.policy.quota });
        }
        if self.policy.rate > 0.0 {
            let elapsed = now.saturating_duration_since(state.refilled).as_secs_f64();
            state.tokens = (state.tokens + elapsed * self.policy.rate).min(burst);
            state.refilled = now;
            if state.tokens < 1.0 {
                let wait = (1.0 - state.tokens) / self.policy.rate;
                return Err(AdmitError::RateLimited {
                    retry_after_secs: (wait.ceil() as u64).max(1),
                });
            }
            state.tokens -= 1.0;
        }
        state.in_system += 1;
        Ok(())
    }

    /// Counts an already-admitted job (restart recovery) against the
    /// tenant's quota without spending a token: recovered jobs were
    /// rate-limited when they were first accepted.
    pub fn occupy(&self, tenant: &str) {
        let mut tenants = self.tenants.lock().expect("governor lock");
        let burst = self.policy.burst.max(1.0);
        let state = tenants.entry(tenant.to_string()).or_insert_with(|| TenantState {
            tokens: burst,
            refilled: Instant::now(),
            in_system: 0,
        });
        state.in_system += 1;
    }

    /// Releases one in-system slot for `tenant` (job finished, failed,
    /// or was rolled back after a failed enqueue).
    pub fn release(&self, tenant: &str) {
        let mut tenants = self.tenants.lock().expect("governor lock");
        if let Some(state) = tenants.get_mut(tenant) {
            state.in_system = state.in_system.saturating_sub(1);
        }
    }

    /// Jobs `tenant` currently has queued or running.
    pub fn in_system(&self, tenant: &str) -> usize {
        let tenants = self.tenants.lock().expect("governor lock");
        tenants.get(tenant).map_or(0, |state| state.in_system)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn unlimited_policy_admits_everything() {
        let governor = TenantGovernor::new(TenantPolicy::default());
        let now = Instant::now();
        for _ in 0..1000 {
            governor.try_admit("a", now).expect("unlimited");
        }
        assert_eq!(governor.in_system("a"), 1000);
    }

    #[test]
    fn token_bucket_limits_bursts_and_refills_over_time() {
        let policy = TenantPolicy { rate: 2.0, burst: 3.0, quota: 0 };
        let governor = TenantGovernor::new(policy);
        let t0 = Instant::now();
        // The initial burst allowance is exactly `burst` tokens.
        for _ in 0..3 {
            governor.try_admit("a", t0).expect("within burst");
        }
        let refused = governor.try_admit("a", t0).expect_err("bucket empty");
        assert!(matches!(refused, AdmitError::RateLimited { retry_after_secs: 1 }), "{refused:?}");
        assert!(refused.message().contains("rate limit"), "{}", refused.message());
        // 500ms at 2 tokens/s refills one token.
        let t1 = t0 + Duration::from_millis(500);
        governor.try_admit("a", t1).expect("refilled one token");
        governor.try_admit("a", t1).expect_err("only one refilled");
        // A long idle period refills to the burst cap, never beyond.
        let t2 = t1 + Duration::from_secs(60);
        for _ in 0..3 {
            governor.try_admit("a", t2).expect("refilled to burst");
        }
        governor.try_admit("a", t2).expect_err("capped at burst");
    }

    #[test]
    fn tenants_have_independent_buckets() {
        let policy = TenantPolicy { rate: 1.0, burst: 1.0, quota: 0 };
        let governor = TenantGovernor::new(policy);
        let now = Instant::now();
        governor.try_admit("a", now).expect("a's token");
        governor.try_admit("a", now).expect_err("a is dry");
        governor.try_admit("b", now).expect("b has its own bucket");
    }

    #[test]
    fn quota_bounds_in_system_jobs_and_releases_free_slots() {
        let policy = TenantPolicy { rate: 0.0, burst: 1.0, quota: 2 };
        let governor = TenantGovernor::new(policy);
        let now = Instant::now();
        governor.try_admit("a", now).expect("slot 1");
        governor.try_admit("a", now).expect("slot 2");
        let refused = governor.try_admit("a", now).expect_err("quota hit");
        assert_eq!(refused, AdmitError::QuotaExceeded { quota: 2 });
        assert_eq!(refused.retry_after_secs(), 1);
        assert!(refused.message().contains("quota"), "{}", refused.message());
        // Quota refusal must not burn a rate token (checked first).
        governor.release("a");
        governor.try_admit("a", now).expect("slot freed");
        assert_eq!(governor.in_system("a"), 2);
        // Releasing an unknown tenant is a no-op, not a panic.
        governor.release("ghost");
        assert_eq!(governor.in_system("ghost"), 0);
    }

    #[test]
    fn occupy_counts_against_quota_without_spending_tokens() {
        let policy = TenantPolicy { rate: 1.0, burst: 1.0, quota: 2 };
        let governor = TenantGovernor::new(policy);
        governor.occupy("a");
        governor.occupy("a");
        assert_eq!(governor.in_system("a"), 2);
        let now = Instant::now();
        // Quota full from recovery; the bucket is untouched.
        assert!(matches!(
            governor.try_admit("a", now),
            Err(AdmitError::QuotaExceeded { quota: 2 })
        ));
        governor.release("a");
        governor.try_admit("a", now).expect("token still available after recovery");
    }

    #[test]
    fn retry_after_scales_with_the_deficit() {
        // 0.2 tokens/s: an empty bucket needs 5s for the next token.
        let policy = TenantPolicy { rate: 0.2, burst: 1.0, quota: 0 };
        let governor = TenantGovernor::new(policy);
        let now = Instant::now();
        governor.try_admit("a", now).expect("initial token");
        let refused = governor.try_admit("a", now).expect_err("dry");
        assert_eq!(refused, AdmitError::RateLimited { retry_after_secs: 5 });
    }
}
