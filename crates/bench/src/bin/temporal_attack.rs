//! **E9 — Section IV-B**: one mask effective across an image sequence.
//!
//! "For attacking temporally stable predictions, the single mask
//! implementing δ simply needs to be effective not on multiple predictors
//! but rather on a sequence of images." This harness builds a moving-object
//! clip, attacks the whole sequence with one mask, and verifies per-frame
//! effectiveness against masks optimised for a single frame only.
//!
//! Run: `cargo run --release -p bea-bench --bin temporal_attack [--full]`

use bea_bench::{fmt, Harness};
use bea_core::attack::ButterflyAttack;
use bea_core::objectives::obj_degrad;
use bea_core::report::print_table;
use bea_detect::Architecture;
use bea_image::Image;
use bea_scene::FrameSequence;

fn main() {
    let harness = Harness::from_args();
    let attack = ButterflyAttack::new(harness.attack_config());
    let frame_count = 5;
    let sequence = FrameSequence::generate(harness.dataset().generator(), 0, frame_count);
    let frames: Vec<Image> = sequence.frames().collect();
    let model = harness.model(Architecture::Detr, 1);

    // One mask for the whole clip...
    let temporal_outcome = attack.attack_sequence(model.as_ref(), &frames);
    let temporal_best = temporal_outcome.best_degradation().expect("front never empty");
    // ...versus a mask optimised on frame 0 only.
    let single_outcome = attack.attack(model.as_ref(), &frames[0]);
    let single_best = single_outcome.best_degradation().expect("front never empty");

    let mut rows = Vec::new();
    let mut temporal_sum = 0.0;
    let mut single_sum = 0.0;
    for (t, frame) in frames.iter().enumerate() {
        let clean = model.detect(frame);
        let d_temporal = obj_degrad(&clean, &model.detect(&temporal_best.genome().apply(frame)));
        let d_single = obj_degrad(&clean, &model.detect(&single_best.genome().apply(frame)));
        temporal_sum += d_temporal;
        single_sum += d_single;
        rows.push(vec![
            t.to_string(),
            clean.len().to_string(),
            fmt(d_temporal, 3),
            fmt(d_single, 3),
        ]);
    }
    rows.push(vec![
        "mean".into(),
        String::new(),
        fmt(temporal_sum / frame_count as f64, 3),
        fmt(single_sum / frame_count as f64, 3),
    ]);

    println!(
        "\nTemporal attack — {} over a {}-frame clip (sequence-optimised vs \
         frame-0-optimised mask)",
        model.name(),
        frame_count
    );
    print_table(
        &["frame", "clean detections", "obj_degrad (temporal mask)", "obj_degrad (frame-0 mask)"],
        &rows,
    );
    println!(
        "\nexpected shape: the temporal mask degrades every frame roughly uniformly; \
         the frame-0 mask is only tuned to the first frame. At quick budgets the two \
         are close (the attack mostly exploits the global attention channel, which is \
         insensitive to small object motion) — rerun with --full to see the gap grow."
    );
}
