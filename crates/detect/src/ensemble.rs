//! Detector ensembles.
//!
//! The paper builds 16-model ensembles (Table I) and attacks them with a
//! single shared mask (Section IV-B). An [`Ensemble`] exposes both the
//! member list (the attack aggregates per-member objectives, Eqs. 1–3) and
//! a fused consensus prediction, the standard ensemble defence of
//! Strauss et al. that the paper cites.

use crate::cache::CacheStats;
use crate::detector::Detector;
use crate::nms;
use crate::types::{Detection, Prediction};
use bea_image::{FilterMask, Image};
use bea_scene::BBox;
use bea_tensor::{insertion_sort_by, PoolVec, ScratchGuard};

/// An ensemble of detectors with consensus fusion.
///
/// # Examples
///
/// ```
/// use bea_detect::{Architecture, Detector, Ensemble, ModelZoo};
/// use bea_scene::SyntheticKitti;
///
/// let zoo = ModelZoo::with_defaults();
/// let ensemble = Ensemble::new(zoo.models(Architecture::Yolo, 1..=3));
/// let pred = ensemble.detect(&SyntheticKitti::evaluation_set().image(0));
/// assert!(!pred.is_empty());
/// ```
pub struct Ensemble {
    name: String,
    members: Vec<Box<dyn Detector>>,
    /// Fraction of members that must agree for a fused detection.
    quorum: f32,
    /// IoU at which two members' detections count as the same object.
    match_iou: f32,
}

impl Ensemble {
    /// Builds an ensemble with a majority quorum.
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty.
    pub fn new(members: Vec<Box<dyn Detector>>) -> Self {
        assert!(!members.is_empty(), "an ensemble needs at least one member");
        Self { name: format!("ensemble-{}", members.len()), members, quorum: 0.5, match_iou: 0.4 }
    }

    /// Returns a copy with a custom agreement quorum in `(0, 1]`.
    pub fn with_quorum(mut self, quorum: f32) -> Self {
        self.quorum = quorum.clamp(f32::MIN_POSITIVE, 1.0);
        self
    }

    /// Number of member detectors (`K` in the paper's Eqs. 1–3).
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// `false` always (construction rejects empty ensembles); present for
    /// API completeness.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The member detectors.
    pub fn members(&self) -> &[Box<dyn Detector>] {
        &self.members
    }

    /// Per-member predictions for one image (the attack objective needs
    /// each `f^k(img)` separately). The returned buffer is pooled — it
    /// derefs to a `Vec<Prediction>` and recycles on drop.
    pub fn member_predictions(&self, img: &Image) -> PoolVec<Prediction> {
        self.members.iter().map(|m| m.detect(img)).collect()
    }

    /// Per-member predictions on `clean` perturbed by `mask`, routed
    /// through each member's [`Detector::detect_masked`] so cache-aware
    /// members take their incremental path.
    pub fn member_predictions_masked(
        &self,
        clean: &Image,
        mask: &FilterMask,
    ) -> PoolVec<Prediction> {
        self.members.iter().map(|m| m.detect_masked(clean, mask)).collect()
    }

    /// Consensus fusion over per-member predictions: detections are
    /// clustered by class and IoU; a cluster supported by at least
    /// `quorum · K` members becomes one fused detection whose box is the
    /// support-weighted mean.
    fn fuse<P: std::borrow::Borrow<Prediction>>(&self, predictions: &[P]) -> Prediction {
        // Copy detections out of the members' predictions instead of
        // draining them via `into_vec`, which would release each member's
        // buffer from the scratch pool; all temporaries below are pooled.
        let total: usize = predictions.iter().map(|p| p.borrow().len()).sum();
        let mut all: ScratchGuard<Detection> = ScratchGuard::with_pooled_capacity(total);
        for pred in predictions {
            all.extend_from_slice(pred.borrow().as_slice());
        }
        let mut used: ScratchGuard<bool> = ScratchGuard::with_pooled_capacity(all.len());
        used.resize(all.len(), false);
        let mut fused = Prediction::new();
        let needed = (self.quorum * self.members.len() as f32).ceil().max(1.0) as usize;
        // Seed clusters from the highest-scoring unused detection.
        let mut order: ScratchGuard<usize> = ScratchGuard::with_pooled_capacity(all.len());
        order.extend(0..all.len());
        insertion_sort_by(&mut order, |&a, &b| {
            all[b].score.partial_cmp(&all[a].score).unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut cluster: ScratchGuard<usize> = ScratchGuard::with_pooled_capacity(all.len().max(1));
        for &seed in order.iter() {
            if used[seed] {
                continue;
            }
            cluster.clear();
            cluster.push(seed);
            for (i, det) in all.iter().enumerate() {
                if i != seed
                    && !used[i]
                    && det.class == all[seed].class
                    && det.bbox.iou(&all[seed].bbox) >= self.match_iou
                {
                    cluster.push(i);
                }
            }
            for &i in &cluster {
                used[i] = true;
            }
            if cluster.len() < needed {
                continue;
            }
            let inv = 1.0 / cluster.len() as f32;
            let mut cx = 0.0;
            let mut cy = 0.0;
            let mut len = 0.0;
            let mut wid = 0.0;
            let mut score = 0.0;
            for &i in &cluster {
                cx += all[i].bbox.cx * inv;
                cy += all[i].bbox.cy * inv;
                len += all[i].bbox.len * inv;
                wid += all[i].bbox.wid * inv;
                score += all[i].score * inv;
            }
            let support = cluster.len() as f32 / self.members.len() as f32;
            fused.push(Detection::new(
                all[seed].class,
                BBox::new(cx, cy, len, wid),
                score * support.min(1.0),
            ));
        }
        nms::suppress(fused, 0.5)
    }
}

impl Detector for Ensemble {
    /// Consensus fusion of the members' predictions (see [`Ensemble::fuse`]).
    fn detect(&self, img: &Image) -> Prediction {
        self.fuse(&self.member_predictions(img))
    }

    fn name(&self) -> &str {
        &self.name
    }

    /// Fuses the members' masked predictions, so cache-aware members take
    /// their dirty-region incremental path.
    fn detect_masked(&self, clean: &Image, mask: &FilterMask) -> Prediction {
        self.fuse(&self.member_predictions_masked(clean, mask))
    }

    /// One batched pass per member (members with a batchable global stage
    /// — DETR's transformer — stack the whole batch through it), then
    /// per-image fusion across members. `==`-identical to fusing scalar
    /// passes, because each member's batching is bit-transparent.
    fn detect_batch_into(&self, imgs: &[&Image], out: &mut Vec<Prediction>) {
        out.clear();
        let per_member: Vec<Vec<Prediction>> =
            self.members.iter().map(|m| m.detect_batch(imgs)).collect();
        let mut stack: Vec<&Prediction> = Vec::with_capacity(self.members.len());
        for i in 0..imgs.len() {
            stack.clear();
            stack.extend(per_member.iter().map(|preds| &preds[i]));
            out.push(self.fuse(&stack));
        }
    }

    /// The masked-population counterpart of
    /// [`Ensemble::detect_batch_into`]: each member evaluates the whole
    /// mask population through its batched (and cache-aware) path once,
    /// then every mask's member predictions fuse.
    fn detect_masked_batch_into(
        &self,
        clean: &Image,
        masks: &[&FilterMask],
        out: &mut Vec<Prediction>,
    ) {
        out.clear();
        let per_member: Vec<Vec<Prediction>> =
            self.members.iter().map(|m| m.detect_masked_batch(clean, masks)).collect();
        let mut stack: Vec<&Prediction> = Vec::with_capacity(self.members.len());
        for i in 0..masks.len() {
            stack.clear();
            stack.extend(per_member.iter().map(|preds| &preds[i]));
            out.push(self.fuse(&stack));
        }
    }

    /// The sum of the members' cache counters, or `None` when no member
    /// caches.
    fn cache_stats(&self) -> Option<CacheStats> {
        let mut merged = CacheStats::default();
        let mut any = false;
        for member in &self.members {
            if let Some(stats) = member.cache_stats() {
                merged.merge(&stats);
                any = true;
            }
        }
        any.then_some(merged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bea_scene::ObjectClass;

    /// A detector that reports one fixed detection.
    struct Fixed(Option<Detection>);

    impl Detector for Fixed {
        fn detect(&self, _img: &Image) -> Prediction {
            Prediction::from_detections(self.0.into_iter().collect())
        }

        fn name(&self) -> &str {
            "fixed"
        }
    }

    fn car(cx: f32, score: f32) -> Detection {
        Detection::new(ObjectClass::Car, BBox::new(cx, 10.0, 10.0, 10.0), score)
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn empty_ensemble_panics() {
        let _ = Ensemble::new(Vec::new());
    }

    #[test]
    fn unanimous_members_fuse_to_one_detection() {
        let members: Vec<Box<dyn Detector>> = (0..4)
            .map(|i| Box::new(Fixed(Some(car(10.0 + i as f32 * 0.2, 0.9)))) as Box<dyn Detector>)
            .collect();
        let ensemble = Ensemble::new(members);
        let pred = ensemble.detect(&Image::black(32, 32));
        assert_eq!(pred.len(), 1);
        let det = pred.as_slice()[0];
        assert!((det.bbox.cx - 10.3).abs() < 0.01, "fused centre is the mean");
    }

    #[test]
    fn minority_detections_are_dropped() {
        let mut members: Vec<Box<dyn Detector>> = vec![Box::new(Fixed(Some(car(10.0, 0.9))))];
        for _ in 0..3 {
            members.push(Box::new(Fixed(None)));
        }
        let ensemble = Ensemble::new(members);
        assert!(ensemble.detect(&Image::black(32, 32)).is_empty());
    }

    #[test]
    fn quorum_is_configurable() {
        let mut members: Vec<Box<dyn Detector>> = vec![Box::new(Fixed(Some(car(10.0, 0.9))))];
        for _ in 0..3 {
            members.push(Box::new(Fixed(None)));
        }
        let ensemble = Ensemble::new(members).with_quorum(0.25);
        assert_eq!(ensemble.detect(&Image::black(32, 32)).len(), 1);
    }

    #[test]
    fn member_predictions_are_exposed() {
        let members: Vec<Box<dyn Detector>> =
            vec![Box::new(Fixed(Some(car(5.0, 0.8)))), Box::new(Fixed(None))];
        let ensemble = Ensemble::new(members);
        let preds = ensemble.member_predictions(&Image::black(16, 16));
        assert_eq!(preds.len(), 2);
        assert_eq!(preds[0].len(), 1);
        assert!(preds[1].is_empty());
        assert_eq!(ensemble.len(), 2);
    }

    #[test]
    fn masked_detection_routes_through_members() {
        use crate::yolo::{YoloConfig, YoloDetector};
        use crate::CachedDetector;
        let members: Vec<Box<dyn Detector>> = vec![
            Box::new(CachedDetector::new(YoloDetector::new(YoloConfig::with_seed(1)))),
            Box::new(YoloDetector::new(YoloConfig::with_seed(2))),
        ];
        let ensemble = Ensemble::new(members);
        let img = bea_scene::SyntheticKitti::smoke_set().image(0);
        let mut mask = FilterMask::zeros(img.width(), img.height());
        mask.set(1, 3, 5, 80);
        let fused = ensemble.detect_masked(&img, &mask);
        assert_eq!(fused, ensemble.detect(&mask.apply(&img)));
        // Only the first member caches; the merged stats reflect its pass.
        let stats = ensemble.cache_stats().expect("one member caches");
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn batched_paths_match_scalar_paths() {
        use crate::detr::{DetrConfig, DetrDetector};
        use crate::yolo::{YoloConfig, YoloDetector};
        use crate::CachedDetector;
        let members: Vec<Box<dyn Detector>> = vec![
            Box::new(CachedDetector::new(YoloDetector::new(YoloConfig::with_seed(1)))),
            Box::new(DetrDetector::new(DetrConfig::with_seed(2)).unwrap()),
        ];
        let ensemble = Ensemble::new(members);
        let img = bea_scene::SyntheticKitti::smoke_set().image(0);
        let other = bea_scene::SyntheticKitti::smoke_set().image(1);
        let imgs: Vec<&Image> = vec![&img, &other];
        let batch = ensemble.detect_batch(&imgs);
        assert_eq!(batch.len(), 2);
        for (i, pred) in batch.iter().enumerate() {
            assert_eq!(pred, &ensemble.detect(imgs[i]), "image {i} must match the scalar path");
        }
        let mut a = FilterMask::zeros(img.width(), img.height());
        a.set(0, 2, 3, 90);
        let b = FilterMask::zeros(img.width(), img.height());
        let masks: Vec<&FilterMask> = vec![&a, &b];
        let masked = ensemble.detect_masked_batch(&img, &masks);
        assert_eq!(masked.len(), 2);
        for (i, pred) in masked.iter().enumerate() {
            assert_eq!(pred, &ensemble.detect_masked(&img, masks[i]), "mask {i} must match");
        }
    }

    #[test]
    fn uncached_members_report_no_stats() {
        let ensemble = Ensemble::new(vec![Box::new(Fixed(None)) as Box<dyn Detector>]);
        assert!(ensemble.cache_stats().is_none());
    }

    #[test]
    fn distinct_objects_stay_separate() {
        let members: Vec<Box<dyn Detector>> = vec![
            Box::new(Fixed(Some(car(10.0, 0.9)))),
            Box::new(Fixed(Some(car(10.0, 0.9)))),
            Box::new(Fixed(Some(car(100.0, 0.9)))),
            Box::new(Fixed(Some(car(100.0, 0.9)))),
        ];
        let ensemble = Ensemble::new(members);
        assert_eq!(ensemble.detect(&Image::black(128, 32)).len(), 2);
    }
}
