//! 2-D convolution over feature maps.

use crate::dirty::DirtyRect;
use crate::error::{Result, TensorError};
use crate::gemm::{self, ConvGeometry, KernelPolicy};
use crate::init::WeightInit;
use crate::tensor3::FeatureMap;

/// A 2-D convolutional layer with optional stride and zero padding.
///
/// Weights are stored as `[out_channels][in_channels][kh][kw]` in one flat
/// buffer; one bias per output channel. Convolution is the *locality*
/// primitive of the YOLO-like detector: an output activation depends only on
/// the input pixels inside its receptive field, which is why far-away
/// perturbations cannot reach it directly.
///
/// The forward pass dispatches on a [`KernelPolicy`]: the default
/// `Blocked` policy lowers to im2col + register-blocked GEMM
/// ([`crate::gemm`]), `Reference` keeps the naive per-cell loop nest.
/// Both produce `==`-identical outputs (the GEMM preserves each output
/// cell's accumulation order), so the policy is purely a speed knob; it is
/// excluded from layer equality so two convolutions with the same weights
/// compare equal regardless of dispatch.
///
/// # Examples
///
/// ```
/// use bea_tensor::{Conv2d, FeatureMap};
///
/// # fn main() -> Result<(), bea_tensor::TensorError> {
/// // A 1x1 "identity" convolution.
/// let conv = Conv2d::from_weights(1, 1, 1, 1, vec![1.0], vec![0.0], 1, 0)?;
/// let input = FeatureMap::filled(1, 4, 4, 2.0);
/// let out = conv.forward(&input)?;
/// assert_eq!(out, input);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Conv2d {
    out_channels: usize,
    in_channels: usize,
    kernel_h: usize,
    kernel_w: usize,
    stride: usize,
    padding: usize,
    weights: Vec<f32>,
    bias: Vec<f32>,
    policy: KernelPolicy,
}

// Manual impl: the dispatch policy is a speed knob, not part of what the
// layer computes, so it must not affect equality.
impl PartialEq for Conv2d {
    fn eq(&self, other: &Self) -> bool {
        self.out_channels == other.out_channels
            && self.in_channels == other.in_channels
            && self.kernel_h == other.kernel_h
            && self.kernel_w == other.kernel_w
            && self.stride == other.stride
            && self.padding == other.padding
            && self.weights == other.weights
            && self.bias == other.bias
    }
}

impl Conv2d {
    /// Builds a convolution from explicit weights and biases.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if the weight or bias buffer
    /// length is wrong, and [`TensorError::InvalidConfig`] for a zero-sized
    /// kernel or stride.
    #[allow(clippy::too_many_arguments)]
    pub fn from_weights(
        out_channels: usize,
        in_channels: usize,
        kernel_h: usize,
        kernel_w: usize,
        weights: Vec<f32>,
        bias: Vec<f32>,
        stride: usize,
        padding: usize,
    ) -> Result<Self> {
        if kernel_h == 0 || kernel_w == 0 || stride == 0 || out_channels == 0 || in_channels == 0 {
            return Err(TensorError::InvalidConfig {
                what: format!(
                    "conv2d dims must be positive: out={out_channels} in={in_channels} \
                     k={kernel_h}x{kernel_w} stride={stride}"
                ),
            });
        }
        let expected = out_channels * in_channels * kernel_h * kernel_w;
        if weights.len() != expected {
            return Err(TensorError::LengthMismatch { expected, actual: weights.len() });
        }
        if bias.len() != out_channels {
            return Err(TensorError::LengthMismatch { expected: out_channels, actual: bias.len() });
        }
        Ok(Self {
            out_channels,
            in_channels,
            kernel_h,
            kernel_w,
            stride,
            padding,
            weights,
            bias,
            policy: KernelPolicy::default(),
        })
    }

    /// Builds a convolution with Xavier-initialised weights from a seed.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidConfig`] for zero-sized dimensions.
    #[allow(clippy::too_many_arguments)]
    pub fn seeded(
        out_channels: usize,
        in_channels: usize,
        kernel_h: usize,
        kernel_w: usize,
        stride: usize,
        padding: usize,
        init: &mut WeightInit,
    ) -> Result<Self> {
        let mut weights = vec![0.0; out_channels * in_channels * kernel_h * kernel_w];
        let fan_in = in_channels * kernel_h * kernel_w;
        let fan_out = out_channels * kernel_h * kernel_w;
        init.xavier_uniform(&mut weights, fan_in, fan_out);
        Self::from_weights(
            out_channels,
            in_channels,
            kernel_h,
            kernel_w,
            weights,
            vec![0.0; out_channels],
            stride,
            padding,
        )
    }

    /// Number of output channels.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Number of input channels the layer expects.
    pub fn in_channels(&self) -> usize {
        self.in_channels
    }

    /// `(kernel_h, kernel_w)` pair.
    pub fn kernel_size(&self) -> (usize, usize) {
        (self.kernel_h, self.kernel_w)
    }

    /// Kernel height.
    pub fn kernel_h(&self) -> usize {
        self.kernel_h
    }

    /// Kernel width.
    pub fn kernel_w(&self) -> usize {
        self.kernel_w
    }

    /// The kernel dispatch policy currently in effect.
    pub fn kernel_policy(&self) -> KernelPolicy {
        self.policy
    }

    /// Selects the kernel implementation behind [`Self::forward`] and
    /// [`Self::forward_incremental`]. Both policies produce `==`-identical
    /// outputs (see [`crate::gemm`]); `Blocked` is the default.
    pub fn set_kernel_policy(&mut self, policy: KernelPolicy) {
        self.policy = policy;
    }

    /// Stride used along both axes.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Zero-padding used along both axes.
    pub fn padding(&self) -> usize {
        self.padding
    }

    /// Immutable view of the flat weight buffer
    /// (`[out][in][kh][kw]`-ordered).
    pub fn weights(&self) -> &[f32] {
        &self.weights
    }

    /// Immutable view of the per-output-channel bias buffer.
    pub fn bias(&self) -> &[f32] {
        &self.bias
    }

    /// Mutable access to the flat weight buffer (for seeded jitter).
    pub fn weights_mut(&mut self) -> &mut [f32] {
        &mut self.weights
    }

    /// Mutable access to the bias buffer.
    pub fn bias_mut(&mut self) -> &mut [f32] {
        &mut self.bias
    }

    /// Output spatial size for a given input size.
    pub fn output_size(&self, in_h: usize, in_w: usize) -> (usize, usize) {
        let oh = (in_h + 2 * self.padding).saturating_sub(self.kernel_h) / self.stride + 1;
        let ow = (in_w + 2 * self.padding).saturating_sub(self.kernel_w) / self.stride + 1;
        (oh, ow)
    }

    /// Runs the convolution.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the input channel count
    /// differs from the configured one, or if the padded input is smaller
    /// than the kernel.
    pub fn forward(&self, input: &FeatureMap) -> Result<FeatureMap> {
        if input.channels() != self.in_channels {
            return Err(TensorError::ShapeMismatch {
                op: "conv2d",
                lhs: vec![self.in_channels],
                rhs: vec![input.channels()],
            });
        }
        let (in_h, in_w) = (input.height(), input.width());
        if in_h + 2 * self.padding < self.kernel_h || in_w + 2 * self.padding < self.kernel_w {
            return Err(TensorError::ShapeMismatch {
                op: "conv2d (input smaller than kernel)",
                lhs: vec![in_h, in_w],
                rhs: vec![self.kernel_h, self.kernel_w],
            });
        }
        let (out_h, out_w) = self.output_size(in_h, in_w);
        let mut out = FeatureMap::zeros(self.out_channels, out_h, out_w);
        self.fill_window(input, &mut out, &DirtyRect::full(out_w, out_h));
        Ok(out)
    }

    /// Runs the convolution over a batch of equally-shaped inputs.
    ///
    /// Under the `Blocked` policy the whole batch lowers into **one**
    /// column-concatenated [`crate::gemm::im2col_batch`] matrix and a
    /// single GEMM; `Reference` loops the per-item forward. Either way
    /// each item's output is `==`-identical to [`Self::forward`] on that
    /// item alone — batching is a speed knob, not a semantic one.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if inputs disagree in shape
    /// or fail the [`Self::forward`] checks.
    pub fn forward_batch(&self, inputs: &[&FeatureMap]) -> Result<Vec<FeatureMap>> {
        let Some(first) = inputs.first() else {
            return Ok(Vec::new());
        };
        for input in inputs {
            if input.shape() != first.shape() {
                return Err(TensorError::ShapeMismatch {
                    op: "conv2d batch",
                    lhs: vec![first.channels(), first.height(), first.width()],
                    rhs: vec![input.channels(), input.height(), input.width()],
                });
            }
        }
        if let KernelPolicy::Reference = self.policy {
            return inputs.iter().map(|input| self.forward(input)).collect();
        }
        if first.channels() != self.in_channels {
            return Err(TensorError::ShapeMismatch {
                op: "conv2d",
                lhs: vec![self.in_channels],
                rhs: vec![first.channels()],
            });
        }
        let (in_h, in_w) = (first.height(), first.width());
        if in_h + 2 * self.padding < self.kernel_h || in_w + 2 * self.padding < self.kernel_w {
            return Err(TensorError::ShapeMismatch {
                op: "conv2d (input smaller than kernel)",
                lhs: vec![in_h, in_w],
                rhs: vec![self.kernel_h, self.kernel_w],
            });
        }
        let (out_h, out_w) = self.output_size(in_h, in_w);
        let window = DirtyRect::full(out_w, out_h);
        let geometry = ConvGeometry {
            kernel_h: self.kernel_h,
            kernel_w: self.kernel_w,
            stride: self.stride,
            padding: self.padding,
        };
        let cols = gemm::im2col_batch(inputs, geometry, &window);
        let scores = gemm::conv_scores(&self.weights, &self.bias, &cols);
        let cells = out_h * out_w;
        Ok((0..inputs.len())
            .map(|item| {
                let mut out = FeatureMap::zeros(self.out_channels, out_h, out_w);
                gemm::scatter_columns(&scores, item * cells, &mut out, &window);
                out
            })
            .collect())
    }

    /// One output activation: the shared per-cell kernel of the full and
    /// the incremental path, so both produce bit-identical results (same
    /// accumulation order).
    #[inline]
    fn cell(&self, input: &FeatureMap, oc: usize, oy: usize, ox: usize) -> f32 {
        let (in_h, in_w) = (input.height(), input.width());
        let kernel_volume = self.in_channels * self.kernel_h * self.kernel_w;
        let w_base = oc * kernel_volume;
        let mut acc = self.bias[oc];
        // Top-left corner of the receptive field in padded coords.
        let y0 = oy * self.stride;
        let x0 = ox * self.stride;
        for ic in 0..self.in_channels {
            for ky in 0..self.kernel_h {
                let iy = y0 + ky;
                if iy < self.padding || iy >= in_h + self.padding {
                    continue;
                }
                let iy = iy - self.padding;
                for kx in 0..self.kernel_w {
                    let ix = x0 + kx;
                    if ix < self.padding || ix >= in_w + self.padding {
                        continue;
                    }
                    let ix = ix - self.padding;
                    let w = self.weights[w_base + (ic * self.kernel_h + ky) * self.kernel_w + kx];
                    acc += w * input.at(ic, iy, ix);
                }
            }
        }
        acc
    }

    fn fill_window(&self, input: &FeatureMap, out: &mut FeatureMap, window: &DirtyRect) {
        if window.is_empty() {
            return;
        }
        match self.policy {
            KernelPolicy::Reference => {
                for oc in 0..self.out_channels {
                    for oy in window.y0..window.y1 {
                        for ox in window.x0..window.x1 {
                            out.set(oc, oy, ox, self.cell(input, oc, oy, ox));
                        }
                    }
                }
            }
            KernelPolicy::Blocked => {
                let geometry = ConvGeometry {
                    kernel_h: self.kernel_h,
                    kernel_w: self.kernel_w,
                    stride: self.stride,
                    padding: self.padding,
                };
                let cols = gemm::im2col(input, geometry, window);
                let scores = gemm::conv_scores(&self.weights, &self.bias, &cols);
                gemm::scatter_window(&scores, out, window);
            }
        }
    }

    /// Patches a cached output in place, recomputing only the cells whose
    /// receptive field intersects the dirty input region. Returns the
    /// output-space dirty window (empty input dirt is a no-op).
    ///
    /// `cached` must hold this layer's output for the previous input; the
    /// recomputed window is bit-identical to a full [`Self::forward`] of
    /// `input` because both run the same per-cell kernel.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when the input fails the
    /// [`Self::forward`] checks or `cached` has the wrong shape.
    pub fn forward_incremental(
        &self,
        input: &FeatureMap,
        cached: &mut FeatureMap,
        dirty: &DirtyRect,
    ) -> Result<DirtyRect> {
        if input.channels() != self.in_channels {
            return Err(TensorError::ShapeMismatch {
                op: "conv2d incremental",
                lhs: vec![self.in_channels],
                rhs: vec![input.channels()],
            });
        }
        let (out_h, out_w) = self.output_size(input.height(), input.width());
        if cached.shape() != (self.out_channels, out_h, out_w) {
            return Err(TensorError::ShapeMismatch {
                op: "conv2d incremental (cached output shape)",
                lhs: vec![self.out_channels, out_h, out_w],
                rhs: vec![cached.channels(), cached.height(), cached.width()],
            });
        }
        let window = dirty.conv_output_window(
            self.kernel_h,
            self.kernel_w,
            self.stride,
            self.padding,
            out_h,
            out_w,
        );
        self.fill_window(input, cached, &window);
        Ok(window)
    }
}

/// Cross-correlates a single-channel template against every channel of an
/// image summed together, producing one response plane.
///
/// The template is applied "valid"-style with the response placed at the
/// template centre, zero elsewhere; responses are normalised by the template
/// L2 norm so different templates are comparable. This is the matched-filter
/// primitive used by the detector backbones.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when the template is larger than
/// the image, and [`TensorError::EmptyShape`] for an empty template.
pub fn matched_filter(input: &FeatureMap, template: &FeatureMap) -> Result<FeatureMap> {
    if template.height() == 0 || template.width() == 0 {
        return Err(TensorError::EmptyShape { op: "matched_filter" });
    }
    if template.height() > input.height()
        || template.width() > input.width()
        || template.channels() != input.channels()
    {
        return Err(TensorError::ShapeMismatch {
            op: "matched_filter",
            lhs: vec![input.channels(), input.height(), input.width()],
            rhs: vec![template.channels(), template.height(), template.width()],
        });
    }
    let norm = template.as_slice().iter().map(|v| v * v).sum::<f32>().sqrt().max(1e-6);
    let (th, tw) = (template.height(), template.width());
    let mut out = FeatureMap::zeros(1, input.height(), input.width());
    for y0 in 0..=(input.height() - th) {
        for x0 in 0..=(input.width() - tw) {
            let mut acc = 0.0;
            for c in 0..input.channels() {
                for ty in 0..th {
                    for tx in 0..tw {
                        acc += template.at(c, ty, tx) * input.at(c, y0 + ty, x0 + tx);
                    }
                }
            }
            out.set(0, y0 + th / 2, x0 + tw / 2, acc / norm);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_conv_is_noop() {
        let conv = Conv2d::from_weights(1, 1, 1, 1, vec![1.0], vec![0.0], 1, 0).unwrap();
        let mut input = FeatureMap::zeros(1, 3, 3);
        input.set(0, 1, 1, 5.0);
        assert_eq!(conv.forward(&input).unwrap(), input);
    }

    #[test]
    fn box_filter_averages() {
        let conv = Conv2d::from_weights(1, 1, 3, 3, vec![1.0 / 9.0; 9], vec![0.0], 1, 0).unwrap();
        let input = FeatureMap::filled(1, 5, 5, 9.0);
        let out = conv.forward(&input).unwrap();
        assert_eq!(out.shape(), (1, 3, 3));
        for &v in out.as_slice() {
            assert!((v - 9.0).abs() < 1e-5);
        }
    }

    #[test]
    fn padding_preserves_size() {
        let conv = Conv2d::from_weights(1, 1, 3, 3, vec![0.0; 9], vec![1.0], 1, 1).unwrap();
        let input = FeatureMap::zeros(1, 4, 6);
        let out = conv.forward(&input).unwrap();
        assert_eq!(out.shape(), (1, 4, 6));
        assert!(out.as_slice().iter().all(|&v| v == 1.0), "bias-only conv outputs bias");
    }

    #[test]
    fn stride_downsamples() {
        let conv = Conv2d::from_weights(1, 1, 2, 2, vec![0.25; 4], vec![0.0], 2, 0).unwrap();
        let input = FeatureMap::filled(1, 4, 4, 4.0);
        let out = conv.forward(&input).unwrap();
        assert_eq!(out.shape(), (1, 2, 2));
        assert!(out.as_slice().iter().all(|&v| (v - 4.0).abs() < 1e-6));
    }

    #[test]
    fn multi_channel_sums_contributions() {
        // Two input channels, one output channel, 1x1 kernel with weights 1 and 2.
        let conv = Conv2d::from_weights(1, 2, 1, 1, vec![1.0, 2.0], vec![0.0], 1, 0).unwrap();
        let mut input = FeatureMap::zeros(2, 1, 1);
        input.set(0, 0, 0, 3.0);
        input.set(1, 0, 0, 4.0);
        let out = conv.forward(&input).unwrap();
        assert_eq!(out.at(0, 0, 0), 3.0 + 8.0);
    }

    #[test]
    fn channel_mismatch_errors() {
        let conv = Conv2d::from_weights(1, 2, 1, 1, vec![1.0, 1.0], vec![0.0], 1, 0).unwrap();
        let input = FeatureMap::zeros(3, 2, 2);
        assert!(conv.forward(&input).is_err());
    }

    #[test]
    fn weight_length_validated() {
        assert!(Conv2d::from_weights(1, 1, 3, 3, vec![0.0; 8], vec![0.0], 1, 0).is_err());
        assert!(Conv2d::from_weights(2, 1, 1, 1, vec![0.0; 2], vec![0.0], 1, 0).is_err());
    }

    #[test]
    fn seeded_conv_is_deterministic() {
        let mut i1 = WeightInit::from_seed(11);
        let mut i2 = WeightInit::from_seed(11);
        let c1 = Conv2d::seeded(4, 3, 3, 3, 1, 1, &mut i1).unwrap();
        let c2 = Conv2d::seeded(4, 3, 3, 3, 1, 1, &mut i2).unwrap();
        assert_eq!(c1, c2);
    }

    #[test]
    fn conv_output_is_local() {
        // A 3x3 conv without padding: changing a pixel far from a given
        // output position must not change that output. This is the locality
        // property the YOLO-like detector inherits.
        let mut init = WeightInit::from_seed(1);
        let conv = Conv2d::seeded(2, 1, 3, 3, 1, 0, &mut init).unwrap();
        let base = FeatureMap::filled(1, 8, 16, 1.0);
        let mut perturbed = base.clone();
        perturbed.set(0, 0, 15, 100.0); // far right corner
        let a = conv.forward(&base).unwrap();
        let b = conv.forward(&perturbed).unwrap();
        // Output at (0, 4, 2) has receptive field columns 2..5, untouched.
        assert_eq!(a.at(0, 4, 2), b.at(0, 4, 2));
        assert_eq!(a.at(1, 4, 2), b.at(1, 4, 2));
        // But outputs near the perturbation do change.
        assert_ne!(a.at(0, 0, 13), b.at(0, 0, 13));
    }

    #[test]
    fn matched_filter_peaks_at_pattern() {
        let mut input = FeatureMap::zeros(1, 9, 9);
        // Plant a 3x3 cross pattern centred at (4, 4).
        for (dy, dx) in [(0i32, 0i32), (-1, 0), (1, 0), (0, -1), (0, 1)] {
            input.set(0, (4 + dy) as usize, (4 + dx) as usize, 1.0);
        }
        let mut template = FeatureMap::zeros(1, 3, 3);
        for (dy, dx) in [(1i32, 1i32), (0, 1), (2, 1), (1, 0), (1, 2)] {
            template.set(0, dy as usize, dx as usize, 1.0);
        }
        let response = matched_filter(&input, &template).unwrap();
        assert_eq!(response.argmax(), Some((0, 4, 4)));
    }

    #[test]
    fn matched_filter_rejects_oversized_template() {
        let input = FeatureMap::zeros(1, 3, 3);
        let template = FeatureMap::zeros(1, 5, 5);
        assert!(matched_filter(&input, &template).is_err());
    }

    fn noisy_map(channels: usize, h: usize, w: usize, phase: f32) -> FeatureMap {
        let mut map = FeatureMap::zeros(channels, h, w);
        for (i, v) in map.as_mut_slice().iter_mut().enumerate() {
            *v = ((i as f32) * 0.173 + phase).sin() * 2.0;
        }
        map
    }

    #[test]
    fn incremental_matches_full_forward_bitwise() {
        for (stride, padding) in [(1, 0), (1, 1), (2, 0), (2, 1)] {
            let mut init = WeightInit::from_seed(7);
            let conv = Conv2d::seeded(3, 2, 3, 3, stride, padding, &mut init).unwrap();
            let base = noisy_map(2, 12, 16, 0.0);
            let mut perturbed = base.clone();
            for y in 4..7 {
                for x in 9..12 {
                    perturbed.set(0, y, x, 5.0);
                    perturbed.set(1, y, x, -5.0);
                }
            }
            let mut cached = conv.forward(&base).unwrap();
            let dirty = DirtyRect::new(9, 4, 12, 7);
            let window = conv.forward_incremental(&perturbed, &mut cached, &dirty).unwrap();
            assert!(!window.is_empty());
            let full = conv.forward(&perturbed).unwrap();
            assert_eq!(cached, full, "stride {stride} pad {padding}: patch must be bit-identical");
        }
    }

    #[test]
    fn incremental_empty_dirt_is_noop() {
        let mut init = WeightInit::from_seed(3);
        let conv = Conv2d::seeded(1, 1, 3, 3, 1, 1, &mut init).unwrap();
        let input = noisy_map(1, 8, 8, 1.0);
        let mut cached = conv.forward(&input).unwrap();
        let before = cached.clone();
        let window = conv.forward_incremental(&input, &mut cached, &DirtyRect::empty()).unwrap();
        assert!(window.is_empty());
        assert_eq!(cached, before);
    }

    #[test]
    fn blocked_forward_matches_reference_bitwise() {
        for (stride, padding) in [(1, 0), (1, 1), (2, 0), (2, 1), (3, 2)] {
            let mut init = WeightInit::from_seed(21);
            let conv = Conv2d::seeded(5, 3, 3, 3, stride, padding, &mut init).unwrap();
            let input = noisy_map(3, 13, 17, 0.3);
            crate::golden::assert_conv_golden(&conv, &input);
        }
    }

    #[test]
    fn blocked_incremental_matches_reference_full_forward() {
        let mut init = WeightInit::from_seed(9);
        let mut conv = Conv2d::seeded(3, 2, 3, 3, 1, 1, &mut init).unwrap();
        conv.set_kernel_policy(KernelPolicy::Blocked);
        let base = noisy_map(2, 12, 16, 0.0);
        let mut perturbed = base.clone();
        perturbed.set(0, 5, 10, 9.0);
        let mut cached = conv.forward(&base).unwrap();
        let window = conv
            .forward_incremental(&perturbed, &mut cached, &DirtyRect::new(10, 5, 11, 6))
            .unwrap();
        assert!(!window.is_empty());
        let mut reference = conv.clone();
        reference.set_kernel_policy(KernelPolicy::Reference);
        assert_eq!(cached, reference.forward(&perturbed).unwrap());
    }

    #[test]
    fn batched_forward_matches_per_item_forward_bitwise() {
        for policy in KernelPolicy::ALL {
            for (stride, padding) in [(1, 0), (1, 1), (2, 1)] {
                let mut init = WeightInit::from_seed(17);
                let mut conv = Conv2d::seeded(4, 2, 3, 3, stride, padding, &mut init).unwrap();
                conv.set_kernel_policy(policy);
                let items: Vec<FeatureMap> =
                    (0..3).map(|i| noisy_map(2, 11, 14, i as f32 * 0.7)).collect();
                let refs: Vec<&FeatureMap> = items.iter().collect();
                let batched = conv.forward_batch(&refs).unwrap();
                for (item, out) in items.iter().zip(&batched) {
                    assert_eq!(out, &conv.forward(item).unwrap(), "{policy} s{stride} p{padding}");
                }
            }
        }
    }

    #[test]
    fn batched_forward_validates_shapes() {
        let mut init = WeightInit::from_seed(5);
        let conv = Conv2d::seeded(2, 1, 3, 3, 1, 1, &mut init).unwrap();
        let a = noisy_map(1, 8, 8, 0.0);
        let b = noisy_map(1, 8, 9, 0.0);
        assert!(conv.forward_batch(&[&a, &b]).is_err());
        let c = noisy_map(2, 8, 8, 0.0);
        assert!(conv.forward_batch(&[&c]).is_err(), "channel mismatch");
        assert!(conv.forward_batch(&[]).unwrap().is_empty());
    }

    #[test]
    fn policy_is_excluded_from_layer_equality() {
        let mut init = WeightInit::from_seed(2);
        let conv = Conv2d::seeded(2, 1, 3, 3, 1, 1, &mut init).unwrap();
        assert_eq!(conv.kernel_policy(), KernelPolicy::Blocked);
        let mut other = conv.clone();
        other.set_kernel_policy(KernelPolicy::Reference);
        assert_eq!(conv, other);
    }

    #[test]
    fn incremental_validates_cached_shape() {
        let mut init = WeightInit::from_seed(3);
        let conv = Conv2d::seeded(1, 1, 3, 3, 1, 0, &mut init).unwrap();
        let input = noisy_map(1, 8, 8, 0.5);
        let mut wrong = FeatureMap::zeros(1, 8, 8); // forward output is 6x6
        assert!(conv.forward_incremental(&input, &mut wrong, &DirtyRect::full(8, 8)).is_err());
    }
}
