//! Thread-local scratch arenas: size-classed, recycling buffer pools.
//!
//! The attack hot loop runs the same forward passes thousands of times over
//! fixed shapes, so every intermediate buffer it allocates is a buffer it
//! will allocate *again* next iteration. This module turns those
//! allocations into checkouts from a thread-local pool: a [`PoolVec`] owns
//! a plain `Vec<T>` while alive and, on drop, returns the storage to the
//! current thread's [`ScratchArena`] so the next checkout of a compatible
//! size reuses it. After a few warm-up iterations the pool holds one buffer
//! per live intermediate and the steady state performs **zero** heap
//! allocations (asserted by `bea-bench`'s `steady_state` bench behind a
//! counting global allocator).
//!
//! Design rules:
//!
//! * **Size classes.** Buffers are binned by the power of two at or below
//!   their capacity; a checkout for `min_cap` elements scans classes from
//!   `ceil(log2(min_cap))` upward, so any buffer it finds is guaranteed to
//!   hold at least `min_cap` elements without growing. Pool misses
//!   allocate capacity rounded up to the next power of two, so the buffer
//!   recycles into exactly the class where an identical request starts
//!   scanning. Hit/miss behaviour therefore depends only on per-class
//!   occupancy, which makes the warm-up deterministic: a deterministic
//!   per-iteration checkout sequence converges to all-hits after the
//!   first iteration that sees no growth.
//! * **Thread locality.** Each thread owns its pool; a `PoolVec` dropped
//!   on another thread recycles into *that* thread's pool. No locks on
//!   the checkout path, and campaign workers / serve's worker pool each
//!   warm their own arena.
//! * **Borrow-checked checkout.** The guard ([`ScratchGuard`], an alias
//!   for [`PoolVec`]) *owns* its buffer — aliasing is impossible by
//!   construction and return-to-pool is just `Drop`.
//! * **Escape hatch.** [`PoolVec::into_vec`] releases the buffer from the
//!   pool permanently, for values that outlive the hot loop.
//!
//! The module also hosts [`insertion_sort_by`]: the standard library's
//! stable `slice::sort_by` allocates a merge buffer for slices longer than
//! ~20 elements, which would re-introduce steady-state allocations in the
//! detector decode paths. The insertion sort is allocation-free and, being
//! stable, produces the *identical* permutation for any total preorder, so
//! swapping it in preserves the bit-exactness contract.

use std::any::{Any, TypeId};
use std::cell::{Cell, RefCell};
use std::cmp::Ordering;
use std::collections::HashMap;
use std::fmt;
use std::mem;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering as Atomic};

/// Number of power-of-two size classes tracked per element type.
const NUM_CLASSES: usize = 48;
/// Maximum buffers retained per size class before eviction.
const PER_CLASS_CAP: usize = 512;

// Process-wide flow counters (relaxed; exported to serve's /metrics).
static TAKES: AtomicU64 = AtomicU64::new(0);
static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static RECYCLES: AtomicU64 = AtomicU64::new(0);
/// Bytes currently resting inside all thread pools.
static RETAINED_BYTES: AtomicU64 = AtomicU64::new(0);
/// High-water mark of [`RETAINED_BYTES`].
static HIGH_WATER_BYTES: AtomicU64 = AtomicU64::new(0);

struct LocalCounters {
    takes: Cell<u64>,
    hits: Cell<u64>,
    misses: Cell<u64>,
    recycles: Cell<u64>,
}

thread_local! {
    static LOCAL: LocalCounters = const {
        LocalCounters {
            takes: Cell::new(0),
            hits: Cell::new(0),
            misses: Cell::new(0),
            recycles: Cell::new(0),
        }
    };
    static POOL: RefCell<HashMap<TypeId, Box<dyn Any>>> = RefCell::new(HashMap::new());
}

/// Per-type shelf of size-classed retained buffers.
struct Shelf<T> {
    classes: Vec<Vec<Vec<T>>>,
}

impl<T> Shelf<T> {
    fn new() -> Self {
        Self { classes: (0..NUM_CLASSES).map(|_| Vec::new()).collect() }
    }
}

impl<T> Drop for Shelf<T> {
    fn drop(&mut self) {
        // Thread teardown: the retained gauge must not leak the bytes the
        // dying thread was holding.
        let elem = mem::size_of::<T>() as u64;
        let bytes: u64 = self.classes.iter().flatten().map(|v| v.capacity() as u64 * elem).sum();
        RETAINED_BYTES.fetch_sub(bytes, Atomic::Relaxed);
    }
}

/// Smallest class whose every buffer holds at least `min_cap` elements.
fn request_class(min_cap: usize) -> usize {
    debug_assert!(min_cap > 0);
    ((usize::BITS - (min_cap - 1).leading_zeros()) as usize).min(NUM_CLASSES - 1)
}

/// Class a buffer of capacity `cap` is stored under (`cap >= 2^class`).
fn storage_class(cap: usize) -> usize {
    debug_assert!(cap > 0);
    ((usize::BITS - 1 - cap.leading_zeros()) as usize).min(NUM_CLASSES - 1)
}

fn bump(local: impl Fn(&LocalCounters), global: &AtomicU64) {
    global.fetch_add(1, Atomic::Relaxed);
    let _ = LOCAL.try_with(|cells| local(cells));
}

/// Pops a pooled buffer of capacity `>= min_cap`, if one exists.
fn pool_take<T: 'static>(min_cap: usize) -> Option<Vec<T>> {
    POOL.try_with(|pool| {
        let mut map = pool.borrow_mut();
        let shelf = map
            .entry(TypeId::of::<T>())
            .or_insert_with(|| Box::new(Shelf::<T>::new()) as Box<dyn Any>)
            .downcast_mut::<Shelf<T>>()
            .expect("shelf is keyed by its own TypeId");
        for class in request_class(min_cap)..NUM_CLASSES {
            if let Some(buf) = shelf.classes[class].pop() {
                let bytes = (buf.capacity() * mem::size_of::<T>()) as u64;
                RETAINED_BYTES.fetch_sub(bytes, Atomic::Relaxed);
                return Some(buf);
            }
        }
        None
    })
    .ok()
    .flatten()
}

/// Returns a buffer to the current thread's pool (or drops it when the
/// class is full or the thread is tearing down).
fn pool_recycle<T: 'static>(mut buf: Vec<T>) {
    // Element drops run here, before the pool borrow: a `T` that itself
    // owns a `PoolVec` must be able to re-enter the pool safely.
    buf.clear();
    if buf.capacity() == 0 {
        return;
    }
    bump(|c| c.recycles.set(c.recycles.get() + 1), &RECYCLES);
    let evicted = POOL.try_with(|pool| {
        let mut map = pool.borrow_mut();
        let shelf = map
            .entry(TypeId::of::<T>())
            .or_insert_with(|| Box::new(Shelf::<T>::new()) as Box<dyn Any>)
            .downcast_mut::<Shelf<T>>()
            .expect("shelf is keyed by its own TypeId");
        let class = storage_class(buf.capacity());
        if shelf.classes[class].len() >= PER_CLASS_CAP {
            return Some(buf); // evict: dropped outside the borrow
        }
        let bytes = (buf.capacity() * mem::size_of::<T>()) as u64;
        let now = RETAINED_BYTES.fetch_add(bytes, Atomic::Relaxed) + bytes;
        HIGH_WATER_BYTES.fetch_max(now, Atomic::Relaxed);
        shelf.classes[class].push(buf);
        None
    });
    match evicted {
        Ok(leftover) => drop(leftover),
        Err(_teardown) => {} // buf already moved into the closure? no: try_with failed before call
    }
}

/// A `Vec<T>` whose storage is checked out of the thread-local scratch
/// pool and returned to it on drop.
///
/// `PoolVec` dereferences to `Vec<T>` (and through it to `[T]`), so it is
/// a drop-in replacement for owned buffers: index, iterate, `push`,
/// `resize` and `extend` all work unchanged. Cloning draws the copy's
/// storage from the pool too.
///
/// [`PoolVec::new`] (and [`Default`]) build an empty, capacity-zero value
/// without touching the pool — cheap for placeholder fields. Use
/// [`PoolVec::with_pooled_capacity`] on hot paths.
pub struct PoolVec<T: 'static> {
    inner: Vec<T>,
}

impl<T: 'static> PoolVec<T> {
    /// An empty buffer; does not touch the pool (no allocation either).
    pub const fn new() -> Self {
        Self { inner: Vec::new() }
    }

    /// Checks a buffer of capacity at least `min_cap` out of the pool,
    /// allocating a fresh one only on a pool miss. `min_cap == 0` is the
    /// same as [`PoolVec::new`].
    pub fn with_pooled_capacity(min_cap: usize) -> Self {
        if min_cap == 0 {
            return Self::new();
        }
        bump(|c| c.takes.set(c.takes.get() + 1), &TAKES);
        match pool_take::<T>(min_cap) {
            Some(buf) => {
                bump(|c| c.hits.set(c.hits.get() + 1), &HITS);
                Self { inner: buf }
            }
            None => {
                bump(|c| c.misses.set(c.misses.get() + 1), &MISSES);
                // Round fresh allocations up to a power of two so the
                // recycled buffer lands exactly in the class where the next
                // request for `min_cap` starts scanning. Allocating
                // `min_cap` exactly would store a non-power-of-two capacity
                // one class *below* the scan start, making the buffer
                // unfindable by the very request size that created it.
                let cap = min_cap.checked_next_power_of_two().unwrap_or(min_cap);
                Self { inner: Vec::with_capacity(cap) }
            }
        }
    }

    /// A pooled buffer resized to `len` copies of `value`.
    pub fn filled(len: usize, value: T) -> Self
    where
        T: Clone,
    {
        let mut out = Self::with_pooled_capacity(len);
        out.inner.resize(len, value);
        out
    }

    /// Wraps an existing `Vec` (its storage joins the pool cycle on drop).
    pub fn from_vec(inner: Vec<T>) -> Self {
        Self { inner }
    }

    /// Releases the buffer from the pool cycle permanently and returns it
    /// as a plain `Vec`. Use for values that outlive the hot loop.
    pub fn into_vec(mut self) -> Vec<T> {
        mem::take(&mut self.inner)
    }

    /// Immutable slice view.
    pub fn as_slice(&self) -> &[T] {
        &self.inner
    }

    /// Mutable slice view.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.inner
    }
}

impl<T: 'static> Drop for PoolVec<T> {
    fn drop(&mut self) {
        pool_recycle(mem::take(&mut self.inner));
    }
}

impl<T: 'static> Deref for PoolVec<T> {
    type Target = Vec<T>;

    fn deref(&self) -> &Vec<T> {
        &self.inner
    }
}

impl<T: 'static> DerefMut for PoolVec<T> {
    fn deref_mut(&mut self) -> &mut Vec<T> {
        &mut self.inner
    }
}

impl<T: 'static> Default for PoolVec<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Clone + 'static> Clone for PoolVec<T> {
    fn clone(&self) -> Self {
        let mut out = Self::with_pooled_capacity(self.inner.len());
        out.inner.extend_from_slice(&self.inner);
        out
    }
}

impl<T: fmt::Debug + 'static> fmt::Debug for PoolVec<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: PartialEq + 'static> PartialEq for PoolVec<T> {
    fn eq(&self, other: &Self) -> bool {
        self.inner == other.inner
    }
}

impl<T: PartialEq + 'static> PartialEq<Vec<T>> for PoolVec<T> {
    fn eq(&self, other: &Vec<T>) -> bool {
        self.inner == *other
    }
}

impl<T: PartialEq + 'static> PartialEq<[T]> for PoolVec<T> {
    fn eq(&self, other: &[T]) -> bool {
        self.inner == other
    }
}

impl<T: 'static> From<Vec<T>> for PoolVec<T> {
    fn from(inner: Vec<T>) -> Self {
        Self::from_vec(inner)
    }
}

impl<T: 'static> FromIterator<T> for PoolVec<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let iter = iter.into_iter();
        let mut out = Self::with_pooled_capacity(iter.size_hint().0);
        out.inner.extend(iter);
        out
    }
}

impl<T: 'static> IntoIterator for PoolVec<T> {
    type Item = T;
    type IntoIter = std::vec::IntoIter<T>;

    /// By-value iteration escapes the buffer from the pool (like
    /// [`PoolVec::into_vec`]); prefer `.iter()` on hot paths.
    fn into_iter(self) -> Self::IntoIter {
        self.into_vec().into_iter()
    }
}

impl<'a, T: 'static> IntoIterator for &'a PoolVec<T> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;

    fn into_iter(self) -> Self::IntoIter {
        self.inner.iter()
    }
}

impl<'a, T: 'static> IntoIterator for &'a mut PoolVec<T> {
    type Item = &'a mut T;
    type IntoIter = std::slice::IterMut<'a, T>;

    fn into_iter(self) -> Self::IntoIter {
        self.inner.iter_mut()
    }
}

/// Handle to the calling thread's scratch pool.
///
/// The arena itself is zero-sized — all state lives in thread-local
/// storage — so the handle is freely `Copy` and exists to make checkout
/// sites explicit and greppable.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScratchArena;

impl ScratchArena {
    /// The current thread's arena.
    pub fn current() -> Self {
        Self
    }

    /// Checks out a buffer with capacity at least `min_cap`; the guard
    /// returns it to this thread's pool (or the dropping thread's pool,
    /// if it migrates) when dropped.
    pub fn checkout<T: 'static>(self, min_cap: usize) -> ScratchGuard<T> {
        PoolVec::with_pooled_capacity(min_cap)
    }
}

/// The borrow-checked checkout guard: owns its buffer while alive and
/// recycles it on drop. An alias for [`PoolVec`] — ownership *is* the
/// guard discipline.
pub type ScratchGuard<T> = PoolVec<T>;

/// Snapshot of arena activity counters.
///
/// Mirrors the shape of `bea-detect`'s `CacheStats`: plain public fields
/// plus a [`ScratchStats::counters`] iterator hook for metrics exporters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ScratchStats {
    /// Checkout requests (`hits + misses`).
    pub takes: u64,
    /// Checkouts served from the pool.
    pub hits: u64,
    /// Checkouts that had to allocate a fresh buffer.
    pub misses: u64,
    /// Buffers returned to a pool.
    pub recycles: u64,
    /// Bytes currently resting inside the pools (process-wide gauge).
    pub retained_bytes: u64,
    /// High-water mark of `retained_bytes` (process-wide gauge).
    pub high_water_bytes: u64,
}

impl ScratchStats {
    /// The counters as stable `(name, value)` pairs, in declaration order
    /// — the shape metrics exporters iterate over without hard-coding the
    /// field list (mirrors `CacheStats::counters`).
    pub fn counters(&self) -> [(&'static str, u64); 6] {
        [
            ("takes", self.takes),
            ("hits", self.hits),
            ("misses", self.misses),
            ("recycles", self.recycles),
            ("retained_bytes", self.retained_bytes),
            ("high_water_bytes", self.high_water_bytes),
        ]
    }

    /// The activity since an earlier snapshot (gauges pass through).
    pub fn since(&self, earlier: &ScratchStats) -> ScratchStats {
        ScratchStats {
            takes: self.takes.saturating_sub(earlier.takes),
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            recycles: self.recycles.saturating_sub(earlier.recycles),
            retained_bytes: self.retained_bytes,
            high_water_bytes: self.high_water_bytes,
        }
    }
}

/// Process-wide arena counters (summed across all threads).
pub fn stats() -> ScratchStats {
    ScratchStats {
        takes: TAKES.load(Atomic::Relaxed),
        hits: HITS.load(Atomic::Relaxed),
        misses: MISSES.load(Atomic::Relaxed),
        recycles: RECYCLES.load(Atomic::Relaxed),
        retained_bytes: RETAINED_BYTES.load(Atomic::Relaxed),
        high_water_bytes: HIGH_WATER_BYTES.load(Atomic::Relaxed),
    }
}

/// Flow counters for the calling thread only (deterministic in tests even
/// while other threads churn their own pools). The byte gauges are
/// process-wide and copied through unchanged.
pub fn thread_stats() -> ScratchStats {
    let (takes, hits, misses, recycles) = LOCAL
        .try_with(|c| (c.takes.get(), c.hits.get(), c.misses.get(), c.recycles.get()))
        .unwrap_or_default();
    ScratchStats {
        takes,
        hits,
        misses,
        recycles,
        retained_bytes: RETAINED_BYTES.load(Atomic::Relaxed),
        high_water_bytes: HIGH_WATER_BYTES.load(Atomic::Relaxed),
    }
}

/// Allocation-free stable sort.
///
/// Produces exactly the permutation `slice::sort_by` would (both are
/// stable, and a stable sort's output is unique for any total preorder),
/// without the merge buffer std allocates for slices longer than ~20
/// elements — which matters because the detector decode paths sort small
/// score lists inside the zero-allocation steady state. Insertion sort is
/// O(n²) worst case; every hot-path call site sorts well under a few
/// hundred elements.
pub fn insertion_sort_by<T, F>(slice: &mut [T], mut cmp: F)
where
    F: FnMut(&T, &T) -> Ordering,
{
    for i in 1..slice.len() {
        let mut j = i;
        while j > 0 && cmp(&slice[j - 1], &slice[i]) == Ordering::Greater {
            j -= 1;
        }
        slice[j..=i].rotate_right(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recycled_capacity_is_reused() {
        // Thread-local pool: each #[test] thread starts with an empty one.
        let mut a = PoolVec::<f32>::with_pooled_capacity(100);
        a.resize(100, 1.0);
        let cap = a.capacity();
        drop(a);
        let b = PoolVec::<f32>::with_pooled_capacity(10);
        assert_eq!(b.capacity(), cap, "the recycled buffer should be found");
        assert!(b.is_empty(), "recycled buffers come back cleared");
    }

    #[test]
    fn thread_stats_track_hits_and_misses() {
        let before = thread_stats();
        let a = PoolVec::<u32>::with_pooled_capacity(64);
        drop(a);
        let _b = PoolVec::<u32>::with_pooled_capacity(32);
        let delta = thread_stats().since(&before);
        assert_eq!(delta.takes, 2);
        assert_eq!(delta.misses, 1, "first checkout allocates");
        assert_eq!(delta.hits, 1, "second checkout reuses the recycled buffer");
        assert_eq!(delta.recycles, 1);
    }

    #[test]
    fn zero_capacity_requests_bypass_the_pool() {
        let before = thread_stats();
        let a = PoolVec::<f64>::new();
        assert_eq!(a.capacity(), 0);
        drop(a);
        let _ = PoolVec::<f64>::with_pooled_capacity(0);
        let delta = thread_stats().since(&before);
        assert_eq!(delta.takes, 0);
        assert_eq!(delta.recycles, 0);
    }

    #[test]
    fn non_power_of_two_capacities_are_refound() {
        // Regression: a request for a non-power-of-two size (e.g. 3·w·h
        // image planes) must hit the pool on its second checkout. Misses
        // round the allocation up to the next power of two precisely so
        // the recycled buffer sits in the class the scan starts at.
        // Ascending sizes so a later request cannot be served by an
        // earlier (larger) recycled buffer; each size's first checkout is
        // a genuine miss and its second must hit.
        let sizes = [3usize, 100, 768 * 5, 24_576];
        for &n in &sizes {
            let a = PoolVec::<f32>::with_pooled_capacity(n);
            assert_eq!(a.capacity(), n.next_power_of_two(), "misses round up for {n}");
            drop(a);
            let before = thread_stats();
            let b = PoolVec::<f32>::with_pooled_capacity(n);
            let delta = thread_stats().since(&before);
            assert_eq!(delta.hits, 1, "checkout of {n} must reuse the recycled buffer");
            assert_eq!(delta.misses, 0);
            // The pool still holds each smaller class's buffer; this one
            // came from exactly the class the request scan starts at.
            assert_eq!(b.capacity(), n.next_power_of_two());
            drop(b);
        }
    }

    #[test]
    fn size_classes_never_hand_back_undersized_buffers() {
        // A capacity-9 buffer (class 3) must not satisfy a request for 12
        // (request class 4).
        let mut small = PoolVec::<u8>::with_pooled_capacity(9);
        small.reserve_exact(9);
        let small_cap = small.capacity();
        drop(small);
        let big = PoolVec::<u8>::with_pooled_capacity(12);
        assert!(big.capacity() >= 12);
        if small_cap < 12 {
            assert_ne!(big.capacity(), small_cap);
        }
    }

    #[test]
    fn pools_are_per_type() {
        let mut floats = PoolVec::<f32>::with_pooled_capacity(50);
        floats.resize(50, 0.0);
        drop(floats);
        let before = thread_stats();
        let _ints = PoolVec::<u64>::with_pooled_capacity(50);
        let delta = thread_stats().since(&before);
        assert_eq!(delta.misses, 1, "a u64 request must not see the f32 buffer");
    }

    #[test]
    fn clone_draws_from_the_pool_and_compares_equal() {
        let mut a = PoolVec::<i32>::with_pooled_capacity(8);
        a.extend([1, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(b.as_slice(), &[1, 2, 3]);
    }

    #[test]
    fn into_vec_escapes_without_recycling() {
        let before = thread_stats();
        let mut a = PoolVec::<u16>::with_pooled_capacity(16);
        a.push(7);
        let plain = a.into_vec();
        assert_eq!(plain, vec![7]);
        let delta = thread_stats().since(&before);
        assert_eq!(delta.recycles, 0, "into_vec must not recycle");
    }

    #[test]
    fn arena_checkout_round_trips() {
        let arena = ScratchArena::current();
        let mut guard: ScratchGuard<f32> = arena.checkout(24);
        guard.resize(24, 1.5);
        assert_eq!(guard.len(), 24);
        assert!(guard.capacity() >= 24);
    }

    #[test]
    fn stats_counters_cover_every_field() {
        let stats = ScratchStats {
            takes: 1,
            hits: 2,
            misses: 3,
            recycles: 4,
            retained_bytes: 5,
            high_water_bytes: 6,
        };
        let counters = stats.counters();
        assert_eq!(
            counters.map(|(name, _)| name),
            ["takes", "hits", "misses", "recycles", "retained_bytes", "high_water_bytes"]
        );
        assert_eq!(counters.map(|(_, value)| value), [1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn insertion_sort_matches_std_stable_sort() {
        // Stability check: equal keys keep their original order, exactly
        // like slice::sort_by.
        let base: Vec<(i32, usize)> = (0..97i32).map(|i| ((i * 37) % 11 - 5, i as usize)).collect();
        let mut std_sorted = base.clone();
        std_sorted.sort_by_key(|pair| std::cmp::Reverse(pair.0));
        let mut ours = base;
        insertion_sort_by(&mut ours, |a, b| b.0.cmp(&a.0));
        assert_eq!(ours, std_sorted);
    }

    #[test]
    fn insertion_sort_handles_edges() {
        let mut empty: [f32; 0] = [];
        insertion_sort_by(&mut empty, |a, b| a.total_cmp(b));
        let mut one = [3.0f32];
        insertion_sort_by(&mut one, |a, b| a.total_cmp(b));
        assert_eq!(one, [3.0]);
        let mut rev = [5, 4, 3, 2, 1];
        insertion_sort_by(&mut rev, |a, b| a.cmp(b));
        assert_eq!(rev, [1, 2, 3, 4, 5]);
    }

    #[test]
    fn retained_bytes_gauge_moves() {
        let before = stats();
        let mut a = PoolVec::<f64>::with_pooled_capacity(1024);
        a.resize(1024, 0.0);
        drop(a); // now retained by the pool
        let after = stats();
        assert!(after.high_water_bytes >= before.high_water_bytes);
        assert!(after.recycles > before.recycles);
    }
}
