//! **E10 — Section V-B**: the five qualitative error transitions.
//!
//! "We have observed the following impacts caused by the butterfly effect
//! attack: 1) the bounding box changes its size; 2) TP becomes FN; 3) TN
//! becomes FP; 4) FN becomes TP; 5) FP becomes TN." This harness runs
//! attacks over the configured model/image grid, classifies every
//! transition on the best-degradation masks, and prints the counts per
//! architecture.
//!
//! Run: `cargo run --release -p bea-bench --bin error_taxonomy [--full]`

use bea_bench::Harness;
use bea_core::attack::ButterflyAttack;
use bea_core::report::print_table;
use bea_core::TransitionReport;
use bea_detect::Architecture;

fn main() {
    let harness = Harness::from_args();
    let attack = ButterflyAttack::new(harness.attack_config());

    let mut rows = Vec::new();
    for arch in Architecture::ALL {
        let mut total = TransitionReport::default();
        let mut runs = 0usize;
        for &seed in &harness.model_seeds() {
            let model = harness.model(arch, seed);
            for &image_index in &harness.image_indices() {
                let scene = harness.dataset().scene(image_index);
                let img = scene.render();
                let clean = model.detect(&img);
                let outcome = attack.attack(model.as_ref(), &img);
                // Classify every front member, not just the champion: the
                // paper's taxonomy describes the attack's whole effect
                // spectrum.
                for member in outcome.result().pareto_front() {
                    let perturbed = model.detect(&member.genome().apply(&img));
                    total.merge(&TransitionReport::analyze(
                        &scene.ground_truths(),
                        &clean,
                        &perturbed,
                    ));
                    runs += 1;
                }
            }
        }
        rows.push(vec![
            arch.name().to_string(),
            runs.to_string(),
            total.box_deformed.to_string(),
            total.tp_to_fn.to_string(),
            total.tn_to_fp.to_string(),
            total.fn_to_tp.to_string(),
            total.fp_to_tn.to_string(),
        ]);
    }

    println!("\nError-transition taxonomy over all front members");
    print_table(&["arch", "masks", "box change", "TP->FN", "TN->FP", "FN->TP", "FP->TN"], &rows);
    println!(
        "\nexpected shape: every one of the paper's five transition types occurs, with \
         DETR accumulating more transitions per mask than YOLO"
    );
}
