//! **A1 — ablation**: Algorithm 2's division by the perturbed-pixel count.
//!
//! The paper argues the division is "crucial in designing the objective":
//! it discourages "many tiny perturbations being nearby the object" in
//! favour of "a relatively large perturbation on a few pixels being
//! distant from any object". This harness runs the attack with and
//! without the division and compares how concentrated and how distant the
//! best-distance masks end up.
//!
//! Run: `cargo run --release -p bea-bench --bin ablation_objdist [--full]`

use bea_bench::{fmt, Harness};
use bea_core::attack::{AttackConfig, ButterflyAttack};
use bea_core::report::print_table;
use bea_detect::Architecture;
use bea_image::FilterMask;

fn perturbed_fraction(mask: &FilterMask) -> f64 {
    mask.perturbed_pixel_count() as f64 / mask.pixel_count().max(1) as f64
}

fn main() {
    let harness = Harness::from_args();
    let model = harness.model(Architecture::Detr, 1);
    let img = harness.dataset().image(0);

    let mut rows = Vec::new();
    for (label, division) in [("with division (paper)", true), ("without division", false)] {
        let config = AttackConfig { distance_count_division: division, ..harness.attack_config() };
        let outcome = ButterflyAttack::new(config).attack(model.as_ref(), &img);
        let best_dist = outcome.best_distance().expect("front never empty");
        let best_deg = outcome.best_degradation().expect("front never empty");
        rows.push(vec![
            label.to_string(),
            fmt(perturbed_fraction(best_dist.genome()) * 100.0, 1),
            fmt(best_dist.objectives()[0], 1),
            fmt(best_dist.objectives()[2], 4),
            fmt(best_deg.objectives()[1], 3),
        ]);
    }

    println!("\nAblation A1 — dividing obj_dist by the perturbed-pixel count");
    print_table(
        &[
            "variant",
            "perturbed pixels of best-dist mask (%)",
            "its intensity",
            "its obj_dist",
            "best obj_degrad",
        ],
        &rows,
    );
    println!(
        "\nexpected shape: with the division, the best-distance mask concentrates on \
         few pixels (small perturbed fraction); without it, masks spread over many \
         pixels — the scenario the paper's design explicitly discourages"
    );
}
