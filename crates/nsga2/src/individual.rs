//! Evaluated individuals.

/// A genome together with its evaluated objectives and the NSGA-II ranking
/// metadata attached during selection.
///
/// # Examples
///
/// ```
/// use bea_nsga2::Individual;
///
/// let ind = Individual::new(42u32, vec![1.0, 2.0]);
/// assert_eq!(*ind.genome(), 42);
/// assert_eq!(ind.objectives(), &[1.0, 2.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Individual<G> {
    genome: G,
    objectives: Vec<f64>,
    /// Pareto rank (0 = non-dominated front), assigned by sorting.
    pub(crate) rank: usize,
    /// Crowding distance within the rank, assigned during selection.
    pub(crate) crowding: f64,
}

impl<G> Individual<G> {
    /// Wraps a genome with its objective values.
    ///
    /// # Panics
    ///
    /// Panics when any objective is NaN or infinite. Non-dominated sorting,
    /// crowding distances and tournament selection all compare objective
    /// values; a single NaN would make those comparisons inconsistent and
    /// silently corrupt selection, so a misbehaving evaluation function
    /// fails loudly here instead.
    pub fn new(genome: G, objectives: Vec<f64>) -> Self {
        assert!(
            objectives.iter().all(|v| v.is_finite()),
            "objective vector must be finite, got {objectives:?}"
        );
        Self { genome, objectives, rank: usize::MAX, crowding: 0.0 }
    }

    /// The genome.
    pub fn genome(&self) -> &G {
        &self.genome
    }

    /// Consumes the individual, returning the genome.
    pub fn into_genome(self) -> G {
        self.genome
    }

    /// The evaluated objective values.
    pub fn objectives(&self) -> &[f64] {
        &self.objectives
    }

    /// Pareto rank (0 is the non-dominated front); `usize::MAX` before the
    /// first sort.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Crowding distance within the individual's front; boundary solutions
    /// carry `f64::INFINITY`.
    pub fn crowding(&self) -> f64 {
        self.crowding
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "objective vector must be finite")]
    fn nan_objectives_are_rejected() {
        let _ = Individual::new(0u8, vec![1.0, f64::NAN]);
    }

    #[test]
    #[should_panic(expected = "objective vector must be finite")]
    fn infinite_objectives_are_rejected() {
        let _ = Individual::new(0u8, vec![f64::INFINITY]);
    }

    #[test]
    fn accessors_roundtrip() {
        let ind = Individual::new("gene", vec![0.5]);
        assert_eq!(*ind.genome(), "gene");
        assert_eq!(ind.objectives(), &[0.5]);
        assert_eq!(ind.rank(), usize::MAX);
        assert_eq!(ind.crowding(), 0.0);
        assert_eq!(ind.into_genome(), "gene");
    }
}
