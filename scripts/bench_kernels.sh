#!/usr/bin/env bash
# Kernel micro-benchmark: reference vs blocked GEMM/im2col (plus the
# population-batched cases) on the detectors' hot shapes. Writes
# BENCH_kernels.json at the repo root — one record per (--quick,
# --threads) pair — and fails (via --check) when the blocked convolution
# regresses below the reference one on the medium shape or the DETR
# attention matmul misses its minimum speedup.
#
# Usage: scripts/bench_kernels.sh [--quick] [--threads N]
set -euo pipefail
cd "$(dirname "$0")/.."

cargo bench -p bea-bench --bench kernels -- \
    --check --out "$(pwd)/BENCH_kernels.json" "$@"
