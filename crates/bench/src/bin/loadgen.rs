//! Load generator for the attack server: closed-loop client threads or
//! an open-loop epoll fan-out.
//!
//! ```text
//! # closed loop: 8 threads, 20 submissions each
//! cargo run --release -p bea-bench --bin loadgen -- \
//!     --addr 127.0.0.1:7878 --clients 8 --requests 20 \
//!     --csv target/experiments/loadgen.csv
//!
//! # open loop: 512 concurrent connections, 4096 total submissions
//! cargo run --release -p bea-bench --bin loadgen -- \
//!     --addr 127.0.0.1:7878 --conns 512 --total 4096 \
//!     --bench-out BENCH_serve.json --wait
//! ```
//!
//! In the default closed loop each client thread submits `--requests`
//! jobs back to back. A `429` is backpressure, not loss: the client
//! retries the same job with bounded exponential backoff (base
//! `Retry-After` or 100 ms, doubling per attempt, capped at 5 s, at most
//! [`MAX_SUBMIT_ATTEMPTS`] tries) and only counts the job rejected once
//! every attempt came back `429`. The run reports p50/p99 submit
//! latency, the acceptance/rejection split, and — with `--wait` — polls
//! every accepted job to completion so the tool doubles as an
//! end-to-end soak test. Per-request rows (final status plus how many
//! attempts it took) land in `--csv`.
//!
//! `--conns N` switches to the open loop: one thread multiplexes `N`
//! concurrent non-blocking connections through the same epoll
//! [`Poller`] the server's reactor uses, keeping `N` requests in flight
//! until `--total` submissions have been answered. `429`s are recorded,
//! not retried — the point is to measure the serving layer under a
//! fixed offered concurrency. With `--keepalive` each connection is
//! opened once and reused for its whole share of the submissions
//! (reconnecting transparently when the server's per-connection cap
//! closes it); without it every submission pays a fresh TCP + teardown,
//! which is the baseline the keep-alive speedup is measured against.
//! `--ramp-ms` staggers the initial connection ramp so a burst of
//! simultaneous first requests does not trip admission control before
//! the server has seen any traffic. Results (throughput, p50/p99
//! round-trip latency, the status split, the rejected-rate) merge into
//! the `--bench-out` run log keyed by `(quick, conns, keepalive)`, and
//! `--min-throughput` / `--max-p99-ms` turn the run into a CI gate.
//! `--compare-keepalive` drives both modes back to back against the
//! same server and `--min-keepalive-speedup` gates their throughput
//! ratio.

use bea_bench::args::{self, ArgParser};
use bea_serve::{percentile, Client};
use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::{Duration, Instant};

#[path = "../../benches/support/runlog.rs"]
mod runlog;

struct Options {
    addr: String,
    clients: usize,
    requests: usize,
    pop: usize,
    gens: usize,
    seed: u64,
    csv: Option<PathBuf>,
    wait: bool,
    conns: usize,
    total: usize,
    tenants: usize,
    bench_out: Option<String>,
    quick: bool,
    min_throughput: Option<f64>,
    max_p99_ms: Option<f64>,
    keepalive: bool,
    compare_keepalive: bool,
    min_keepalive_speedup: Option<f64>,
    ramp_ms: u64,
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options {
        addr: "127.0.0.1:7878".to_string(),
        clients: 4,
        requests: 10,
        pop: 4,
        gens: 1,
        seed: 1,
        csv: None,
        wait: false,
        conns: 0,
        total: 0,
        tenants: 1,
        bench_out: None,
        quick: false,
        min_throughput: None,
        max_p99_ms: None,
        keepalive: false,
        compare_keepalive: false,
        min_keepalive_speedup: None,
        ramp_ms: 0,
    };
    let mut args = ArgParser::from_env();
    while let Some(flag) = args.next_flag() {
        match flag.as_str() {
            "--addr" => options.addr = args.value(&flag)?,
            "--clients" => options.clients = args.parse(&flag)?,
            "--requests" => options.requests = args.parse(&flag)?,
            "--pop" => options.pop = args.parse(&flag)?,
            "--gens" => options.gens = args.parse(&flag)?,
            "--seed" => options.seed = args.parse(&flag)?,
            "--csv" => options.csv = Some(PathBuf::from(args.value(&flag)?)),
            "--wait" => options.wait = true,
            "--conns" => options.conns = args.parse(&flag)?,
            "--total" => options.total = args.parse(&flag)?,
            "--tenants" => options.tenants = args.parse(&flag)?,
            "--bench-out" => options.bench_out = Some(args.value(&flag)?),
            "--quick" => options.quick = true,
            "--min-throughput" => options.min_throughput = Some(args.parse(&flag)?),
            "--max-p99-ms" => options.max_p99_ms = Some(args.parse(&flag)?),
            "--keepalive" => options.keepalive = true,
            "--compare-keepalive" => options.compare_keepalive = true,
            "--min-keepalive-speedup" => options.min_keepalive_speedup = Some(args.parse(&flag)?),
            "--ramp-ms" => options.ramp_ms = args.parse(&flag)?,
            "--help" | "-h" => {
                return Err("usage: loadgen [--addr HOST:PORT] [--clients N] [--requests N] \
                            [--pop N] [--gens N] [--seed N] [--csv FILE] [--wait]\n\
                            \x20      loadgen --conns N [--total N] [--tenants N] \
                            [--keepalive] [--compare-keepalive] \
                            [--min-keepalive-speedup X] [--ramp-ms MS] \
                            [--bench-out FILE] [--quick] \
                            [--min-throughput RPS] [--max-p99-ms MS] [--wait]\n\
                            closed loop (default): each client thread submits --requests\n\
                            inline-image jobs back to back; 429s retry with backoff\n\
                            open loop (--conns): one epoll thread keeps N connections in\n\
                            flight until --total submissions (default 8xN) are answered;\n\
                            429s are recorded, not retried; --tenants spreads submissions\n\
                            over that many tenant names; --keepalive reuses each\n\
                            connection for its whole share of the submissions instead of\n\
                            one connection per request; --compare-keepalive runs the\n\
                            close-per-request baseline then the keep-alive run against\n\
                            the same server and --min-keepalive-speedup gates their\n\
                            throughput ratio; --ramp-ms spreads the initial connection\n\
                            ramp over that many milliseconds; --bench-out merges each\n\
                            run into a BENCH_serve.json run log keyed by\n\
                            (quick, conns, keepalive) and the\n\
                            --min-throughput/--max-p99-ms gates fail the process when\n\
                            violated\n\
                            --wait polls every accepted job to completion afterwards"
                    .into())
            }
            other => return Err(args::unknown_flag(other)),
        }
    }
    if options.conns == 0 && (options.clients == 0 || options.requests == 0) {
        return Err("--clients and --requests must be positive".into());
    }
    if options.tenants == 0 {
        return Err("--tenants must be positive".into());
    }
    if options.conns > 0 && options.total == 0 {
        options.total = options.conns * 8;
    }
    if (options.keepalive || options.compare_keepalive || options.min_keepalive_speedup.is_some())
        && options.conns == 0
    {
        return Err("--keepalive/--compare-keepalive need the open loop (--conns N)".into());
    }
    if options.min_keepalive_speedup.is_some() && !options.compare_keepalive {
        return Err("--min-keepalive-speedup needs --compare-keepalive".into());
    }
    Ok(options)
}

/// Most submit attempts per job before a `429` storm counts as a real
/// rejection.
const MAX_SUBMIT_ATTEMPTS: u32 = 5;

/// How long to sleep before retry number `attempt` (0-based) of a job
/// the server answered `429`: the advertised `Retry-After` (seconds)
/// when present, otherwise 100 ms, doubled per attempt and capped at
/// 5 s so a saturated server backs clients off without stranding them.
fn backoff_delay(attempt: u32, retry_after_secs: Option<u64>) -> Duration {
    const CAP: Duration = Duration::from_secs(5);
    let base = match retry_after_secs {
        Some(secs) => Duration::from_secs(secs),
        None => Duration::from_millis(100),
    };
    let scaled = base.saturating_mul(1u32 << attempt.min(16));
    scaled.min(CAP)
}

/// One submission's outcome (its final attempt).
struct Sample {
    client: usize,
    request: usize,
    status: u16,
    latency_s: f64,
    attempts: u32,
    id: Option<String>,
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    if options.conns > 0 {
        return open_loop(&options);
    }

    println!(
        "loadgen: {} client(s) x {} request(s) against {} (pop {}, gens {})",
        options.clients, options.requests, options.addr, options.pop, options.gens
    );
    let started = Instant::now();
    let samples: Vec<Sample> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..options.clients)
            .map(|client_id| {
                let addr = options.addr.clone();
                let (pop, gens, seed, requests) =
                    (options.pop, options.gens, options.seed, options.requests);
                scope.spawn(move || {
                    let client = Client::new(addr);
                    let mut samples = Vec::with_capacity(requests);
                    for request_id in 0..requests {
                        // Distinct fills vary the work without changing
                        // the cell identity or requiring pixel payloads.
                        let fill = (client_id * 31 + request_id * 7) % 256;
                        let body = format!(
                            "{{\"arch\":\"yolo\",\"pop\":{pop},\"gens\":{gens},\"seed\":{seed},\
                             \"image\":{{\"width\":64,\"height\":32,\"fill\":[{fill},64,128]}}}}"
                        );
                        // Retry `429` with bounded exponential backoff;
                        // only the final attempt is recorded, so a job
                        // counts rejected only once the storm outlasted
                        // every retry.
                        let mut attempt = 0u32;
                        let final_response = loop {
                            let submit_started = Instant::now();
                            let response = match client.submit(&body) {
                                Ok(response) => response,
                                Err(e) => {
                                    eprintln!("client {client_id}: submit failed: {e}");
                                    break None;
                                }
                            };
                            let latency_s = submit_started.elapsed().as_secs_f64();
                            if response.status == 429 && attempt + 1 < MAX_SUBMIT_ATTEMPTS {
                                let advertised =
                                    response.header("retry-after").and_then(|v| v.parse().ok());
                                std::thread::sleep(backoff_delay(attempt, advertised));
                                attempt += 1;
                                continue;
                            }
                            break Some((response, latency_s));
                        };
                        let Some((response, latency_s)) = final_response else { continue };
                        let id = (response.status == 202).then(|| {
                            bea_core::telemetry::parse_json(response.body_text().unwrap_or("{}"))
                                .ok()
                                .and_then(|v| {
                                    v.get("id").and_then(|id| id.as_str().map(String::from))
                                })
                                .unwrap_or_default()
                        });
                        samples.push(Sample {
                            client: client_id,
                            request: request_id,
                            status: response.status,
                            latency_s,
                            attempts: attempt + 1,
                            id,
                        });
                    }
                    samples
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("client thread")).collect()
    });
    let wall_s = started.elapsed().as_secs_f64();

    let accepted: Vec<&Sample> = samples.iter().filter(|s| s.status == 202).collect();
    let rejected = samples.iter().filter(|s| s.status == 429).count();
    let other = samples.len() - accepted.len() - rejected;
    let retried = samples.iter().filter(|s| s.attempts > 1).count();
    let mut latencies: Vec<f64> = samples.iter().map(|s| s.latency_s).collect();
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    println!(
        "{} submissions in {wall_s:.2}s: {} accepted (202), {rejected} rejected \
         (429 through {MAX_SUBMIT_ATTEMPTS} backoff attempts), {other} other, \
         {retried} needed retries",
        samples.len(),
        accepted.len(),
    );
    println!(
        "submit latency: p50 {:.1}ms, p99 {:.1}ms, max {:.1}ms",
        percentile(&latencies, 50.0) * 1e3,
        percentile(&latencies, 99.0) * 1e3,
        latencies.last().copied().unwrap_or(0.0) * 1e3,
    );

    if let Some(path) = &options.csv {
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        let mut out = String::from("client,request,status,latency_s,attempts,id\n");
        for s in &samples {
            out.push_str(&format!(
                "{},{},{},{:.6},{},{}\n",
                s.client,
                s.request,
                s.status,
                s.latency_s,
                s.attempts,
                s.id.as_deref().unwrap_or("")
            ));
        }
        match std::fs::File::create(path).and_then(|mut f| f.write_all(out.as_bytes())) {
            Ok(()) => println!("wrote {}", path.display()),
            Err(e) => {
                eprintln!("failed to write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
    }

    if options.wait {
        let client = Client::new(options.addr.clone());
        let mut done = 0usize;
        for sample in &accepted {
            let Some(id) = sample.id.as_deref().filter(|id| !id.is_empty()) else { continue };
            match client.wait(id, Duration::from_millis(100), Duration::from_secs(600)) {
                Ok(response)
                    if response.body_text().unwrap_or("").contains("\"status\":\"done\"") =>
                {
                    done += 1;
                }
                Ok(response) => {
                    eprintln!("job {id} ended badly: {:?}", response.body_text());
                    return ExitCode::FAILURE;
                }
                Err(e) => {
                    eprintln!("job {id} never finished: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        println!("all {done} accepted job(s) ran to completion — no accepted job lost");
    }
    ExitCode::SUCCESS
}

/// One in-flight open-loop connection.
#[cfg(unix)]
struct LoadConn {
    stream: std::net::TcpStream,
    /// Which submission this connection is currently carrying.
    request: usize,
    /// The rendered request; `written` bytes already on the wire.
    out: Vec<u8>,
    written: usize,
    parser: bea_serve::http::ResponseParser,
    started: Instant,
    /// The interest currently registered with the poller.
    interest: bea_reactor::Interest,
    /// Transparent replays of `request` on a fresh connection after the
    /// server closed this one under us (per-connection request cap, a
    /// shard restart).
    resends: u32,
}

/// Why a connection could not be pumped further.
#[cfg(unix)]
enum PumpError {
    /// The peer closed before a full response arrived. In keep-alive
    /// mode this is expected at the server's per-connection cap and the
    /// submission replays on a fresh connection; in close-per-request
    /// mode it is a hard failure.
    Closed,
    Fatal(String),
}

/// Replays of one submission before its connection loss counts as a
/// real failure.
#[cfg(unix)]
const MAX_RESENDS: u32 = 3;

/// Responses in the open loop are small JSON bodies; cap generously.
#[cfg(unix)]
const OPEN_LOOP_MAX_BODY: usize = 1024 * 1024;

/// One completed open-loop request.
struct OpenSample {
    status: u16,
    latency_s: f64,
    id: Option<String>,
}

/// The open-loop engine: keeps `conns` submissions in flight over one
/// epoll poller until `total` have been answered. With `keepalive` each
/// connection carries one submission after another; without it each
/// finished connection is replaced by a fresh one. Returns the samples
/// plus how many transparent reconnects the keep-alive path needed.
#[cfg(unix)]
fn drive_open_loop(options: &Options, keepalive: bool) -> Result<(Vec<OpenSample>, usize), String> {
    use bea_reactor::{Event, Interest, Poller};
    use std::os::fd::AsRawFd;

    let mut poller = Poller::new().map_err(|e| format!("epoll unavailable: {e}"))?;
    let body = |request: usize| {
        let fill = (request * 7) % 256;
        let tenant = format!("tenant-{}", request % options.tenants);
        format!(
            "{{\"arch\":\"yolo\",\"pop\":{},\"gens\":{},\"seed\":{},\"tenant\":\"{tenant}\",\
             \"image\":{{\"width\":64,\"height\":32,\"fill\":[{fill},64,128]}}}}",
            options.pop, options.gens, options.seed
        )
    };
    let render = |request: usize| {
        let payload = body(request);
        format!(
            "POST /v1/attacks HTTP/1.1\r\nHost: {}\r\nContent-Length: {}\r\n\
             Connection: {}\r\n\r\n{payload}",
            options.addr,
            payload.len(),
            if keepalive { "keep-alive" } else { "close" },
        )
        .into_bytes()
    };
    // Blocking connect (instant on loopback), then non-blocking I/O.
    let open = |request: usize| -> Result<LoadConn, String> {
        let stream = std::net::TcpStream::connect(&options.addr)
            .map_err(|e| format!("connect to {} failed: {e}", options.addr))?;
        stream.set_nonblocking(true).map_err(|e| format!("set_nonblocking failed: {e}"))?;
        Ok(LoadConn {
            stream,
            request,
            out: render(request),
            written: 0,
            parser: bea_serve::http::ResponseParser::new(OPEN_LOOP_MAX_BODY),
            started: Instant::now(),
            interest: Interest::BOTH,
            resends: 0,
        })
    };
    // `--ramp-ms` spreads the initial connection opens over that window
    // so the first burst does not hit per-tenant admission all at once.
    let ramp_pause = (options.ramp_ms > 0).then(|| {
        Duration::from_micros(
            (options.ramp_ms.saturating_mul(1000) / options.conns.max(1) as u64).max(1),
        )
    });
    let mut ramping = options.conns;

    let mut conns: std::collections::HashMap<u64, LoadConn> = std::collections::HashMap::new();
    let mut samples = Vec::with_capacity(options.total);
    let mut issued = 0usize;
    let mut reconnects = 0usize;
    let mut next_token = 0u64;
    let mut events: Vec<Event> = Vec::new();
    let mut errors = 0usize;
    // Ramp up to the target concurrency, then replace (close mode) or
    // reuse (keep-alive mode) each finished connection until the budget
    // is spent.
    while samples.len() + errors < options.total {
        while issued < options.total && conns.len() < options.conns {
            if ramping > 0 {
                if let Some(pause) = ramp_pause {
                    std::thread::sleep(pause);
                }
                ramping -= 1;
            }
            let conn = open(issued)?;
            let token = next_token;
            next_token += 1;
            poller
                .register(conn.stream.as_raw_fd(), token, Interest::BOTH)
                .map_err(|e| format!("registering a connection failed: {e}"))?;
            conns.insert(token, conn);
            issued += 1;
        }
        poller
            .wait(&mut events, Some(Duration::from_secs(10)))
            .map_err(|e| format!("epoll wait failed: {e}"))?;
        if events.is_empty() && !conns.is_empty() {
            return Err(format!(
                "open loop stalled: {} connection(s) silent for 10s after {} of {} responses",
                conns.len(),
                samples.len(),
                options.total
            ));
        }
        let batch = std::mem::take(&mut events);
        for event in &batch {
            let Some(mut conn) = conns.remove(&event.token) else { continue };
            match pump_conn(&mut conn, event) {
                Ok(Some((sample, reusable))) => {
                    samples.push(sample);
                    if keepalive && reusable && issued < options.total {
                        // Reuse the warm connection for the next
                        // submission: same socket, fresh request. The
                        // parser stays — it reset itself after the
                        // yielded response.
                        conn.request = issued;
                        conn.out = render(issued);
                        conn.written = 0;
                        conn.started = Instant::now();
                        conn.resends = 0;
                        issued += 1;
                        if conn.interest != Interest::BOTH {
                            poller
                                .modify(conn.stream.as_raw_fd(), event.token, Interest::BOTH)
                                .map_err(|e| format!("re-arming a connection failed: {e}"))?;
                            conn.interest = Interest::BOTH;
                        }
                        conns.insert(event.token, conn);
                    } else {
                        let _ = poller.deregister(conn.stream.as_raw_fd());
                    }
                }
                Ok(None) => {
                    // Once the request is fully written, drop write
                    // interest so level-triggered writability does not
                    // spin the loop while we wait for the response.
                    let desired = if conn.written < conn.out.len() {
                        Interest::BOTH
                    } else {
                        Interest::READABLE
                    };
                    if desired != conn.interest {
                        poller
                            .modify(conn.stream.as_raw_fd(), event.token, desired)
                            .map_err(|e| format!("adjusting connection interest failed: {e}"))?;
                        conn.interest = desired;
                    }
                    conns.insert(event.token, conn);
                }
                Err(PumpError::Closed) if keepalive && conn.resends < MAX_RESENDS => {
                    // The server retired the connection (request cap,
                    // shard restart): replay the same submission on a
                    // fresh socket.
                    let _ = poller.deregister(conn.stream.as_raw_fd());
                    let mut fresh = open(conn.request)?;
                    fresh.resends = conn.resends + 1;
                    let token = next_token;
                    next_token += 1;
                    poller
                        .register(fresh.stream.as_raw_fd(), token, Interest::BOTH)
                        .map_err(|e| format!("registering a connection failed: {e}"))?;
                    conns.insert(token, fresh);
                    reconnects += 1;
                }
                Err(e) => {
                    let _ = poller.deregister(conn.stream.as_raw_fd());
                    let msg = match e {
                        PumpError::Closed => "connection closed before a full response".to_string(),
                        PumpError::Fatal(msg) => msg,
                    };
                    eprintln!("open-loop connection failed: {msg}");
                    errors += 1;
                }
            }
        }
        events = batch;
    }
    if errors > 0 {
        return Err(format!("{errors} connection(s) failed during the open loop"));
    }
    Ok((samples, reconnects))
}

/// Advances one open-loop connection: writes request bytes while the
/// socket accepts them, reads response bytes while they arrive, and
/// returns the finished sample once the response parses, along with
/// whether the server will keep the connection open for another
/// request.
#[cfg(unix)]
fn pump_conn(
    conn: &mut LoadConn,
    event: &bea_reactor::Event,
) -> Result<Option<(OpenSample, bool)>, PumpError> {
    use std::io::ErrorKind;
    use std::io::{Read as _, Write as _};

    let dropped =
        |e: &std::io::Error| matches!(e.kind(), ErrorKind::ConnectionReset | ErrorKind::BrokenPipe);
    if event.writable && conn.written < conn.out.len() {
        loop {
            match (&conn.stream).write(&conn.out[conn.written..]) {
                Ok(0) => return Err(PumpError::Closed),
                Ok(n) => {
                    conn.written += n;
                    if conn.written == conn.out.len() {
                        break;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) if dropped(&e) => return Err(PumpError::Closed),
                Err(e) => return Err(PumpError::Fatal(format!("write failed: {e}"))),
            }
        }
    }
    if event.readable || event.closed {
        let mut buf = [0u8; 16 * 1024];
        loop {
            match (&conn.stream).read(&mut buf) {
                Ok(0) => break,
                Ok(n) => conn.parser.feed(&buf[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) if dropped(&e) => return Err(PumpError::Closed),
                Err(e) => return Err(PumpError::Fatal(format!("read failed: {e}"))),
            }
        }
        match conn.parser.next_response() {
            Ok(Some(response)) => {
                let id = (response.status == 202)
                    .then(|| {
                        bea_core::telemetry::parse_json(
                            std::str::from_utf8(&response.body).unwrap_or("{}"),
                        )
                        .ok()
                        .and_then(|v| v.get("id").and_then(|id| id.as_str().map(String::from)))
                    })
                    .flatten();
                let reusable = !event.closed
                    && !response
                        .header("connection")
                        .is_some_and(|v| v.eq_ignore_ascii_case("close"));
                return Ok(Some((
                    OpenSample {
                        status: response.status,
                        latency_s: conn.started.elapsed().as_secs_f64(),
                        id,
                    },
                    reusable,
                )));
            }
            Ok(None) => {
                if event.closed {
                    return Err(PumpError::Closed);
                }
            }
            Err(e) => return Err(PumpError::Fatal(format!("malformed response: {e}"))),
        }
    }
    Ok(None)
}

#[cfg(not(unix))]
fn drive_open_loop(
    _options: &Options,
    _keepalive: bool,
) -> Result<(Vec<OpenSample>, usize), String> {
    Err("the open-loop mode needs epoll and is only available on Unix".to_string())
}

/// The digest of one open-loop run the caller gates and reports on.
struct RunStats {
    keepalive: bool,
    throughput: f64,
    p99_ms: f64,
    accepted_ids: Vec<String>,
}

/// Drives one open-loop run in the given connection mode, prints its
/// summary (including the rejected-rate), and merges the record into
/// the `--bench-out` run log keyed by `(quick, conns, keepalive)`.
fn run_open(options: &Options, keepalive: bool) -> Result<RunStats, String> {
    println!(
        "loadgen (open loop, {}): {} concurrent connection(s), {} total submissions, \
         {} tenant(s) against {} (pop {}, gens {})",
        if keepalive { "keep-alive" } else { "close-per-request" },
        options.conns,
        options.total,
        options.tenants,
        options.addr,
        options.pop,
        options.gens
    );
    let started = Instant::now();
    let (samples, reconnects) = drive_open_loop(options, keepalive)?;
    let wall_s = started.elapsed().as_secs_f64();
    let throughput = samples.len() as f64 / wall_s.max(1e-9);
    let accepted: Vec<&OpenSample> = samples.iter().filter(|s| s.status == 202).collect();
    let rejected = samples.iter().filter(|s| s.status == 429).count();
    let other = samples.len() - accepted.len() - rejected;
    let rejected_rate = rejected as f64 / (samples.len().max(1)) as f64;
    let mut latencies: Vec<f64> = samples.iter().map(|s| s.latency_s).collect();
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let p50_ms = percentile(&latencies, 50.0) * 1e3;
    let p99_ms = percentile(&latencies, 99.0) * 1e3;
    let max_ms = latencies.last().copied().unwrap_or(0.0) * 1e3;
    println!(
        "{} responses in {wall_s:.2}s ({throughput:.0} req/s): {} accepted (202), \
         {rejected} rejected (429, {:.1}% rejected-rate), {other} other, \
         {reconnects} reconnect(s)",
        samples.len(),
        accepted.len(),
        rejected_rate * 100.0,
    );
    println!("round-trip latency: p50 {p50_ms:.1}ms, p99 {p99_ms:.1}ms, max {max_ms:.1}ms");

    if let Some(path) = &options.bench_out {
        // Keyed by (quick, conns, keepalive): a quick CI run and a full
        // run at the same concurrency each keep one record per
        // connection mode. The runlog helper reads the concurrency from
        // the "threads" slot of its key.
        let run = format!(
            "{{\"quick\":{},\"threads\":{},\"conns\":{},\"total\":{},\"tenants\":{},\
             \"keepalive\":{keepalive},\"wall_s\":{wall_s},\"throughput_rps\":{throughput},\
             \"p50_ms\":{p50_ms},\"p99_ms\":{p99_ms},\"max_ms\":{max_ms},\
             \"accepted\":{},\"rejected\":{rejected},\"rejected_rate\":{rejected_rate},\
             \"other\":{other},\"reconnects\":{reconnects}}}",
            options.quick,
            options.conns,
            options.conns,
            options.total,
            options.tenants,
            accepted.len(),
        );
        runlog::merge_keyed_run(path, "serve", &run)?;
        println!("merged run into {path}");
    }
    let accepted_ids =
        accepted.iter().map(|s| s.id.clone().unwrap_or_default()).collect::<Vec<_>>();
    Ok(RunStats { keepalive, throughput, p99_ms, accepted_ids })
}

/// Waits every job in `ids` to completion (between comparison legs).
fn drain_backlog(options: &Options, ids: &[String]) -> Result<(), String> {
    let client = Client::new(options.addr.clone());
    for id in ids {
        if id.is_empty() {
            return Err("an accepted job carried no id".to_string());
        }
        let response = client
            .wait(id, Duration::from_millis(100), Duration::from_secs(600))
            .map_err(|e| format!("job {id} never finished: {e}"))?;
        if !response.body_text().unwrap_or("").contains("\"status\":\"done\"") {
            return Err(format!("job {id} ended badly: {:?}", response.body_text()));
        }
    }
    Ok(())
}

/// Runs the open loop (or the close-vs-keep-alive comparison), reports,
/// persists the run log, applies gates.
fn open_loop(options: &Options) -> ExitCode {
    let modes: &[bool] = if options.compare_keepalive {
        // Baseline first so the keep-alive run measures against a
        // server already warmed by the same workload.
        &[false, true]
    } else if options.keepalive {
        &[true]
    } else {
        &[false]
    };
    let mut runs = Vec::with_capacity(modes.len());
    for (index, &keepalive) in modes.iter().enumerate() {
        match run_open(options, keepalive) {
            Ok(stats) => runs.push(stats),
            Err(e) => {
                eprintln!("open loop failed: {e}");
                return ExitCode::FAILURE;
            }
        }
        if index + 1 < modes.len() {
            // Let the previous leg's backlog finish before the next leg
            // submits, so both modes measure admission against an empty
            // queue rather than the earlier run's leftover depth.
            let backlog = &runs[index].accepted_ids;
            if let Err(e) = drain_backlog(options, backlog) {
                eprintln!("draining the backlog between runs failed: {e}");
                return ExitCode::FAILURE;
            }
            println!("backlog drained ({} job(s) done); starting the next leg", backlog.len());
        }
    }

    if options.wait {
        let client = Client::new(options.addr.clone());
        let mut done = 0usize;
        for id in runs.iter().flat_map(|r| r.accepted_ids.iter()) {
            if id.is_empty() {
                eprintln!("an accepted job carried no id");
                return ExitCode::FAILURE;
            }
            match client.wait(id, Duration::from_millis(100), Duration::from_secs(600)) {
                Ok(response)
                    if response.body_text().unwrap_or("").contains("\"status\":\"done\"") =>
                {
                    done += 1;
                }
                Ok(response) => {
                    eprintln!("job {id} ended badly: {:?}", response.body_text());
                    return ExitCode::FAILURE;
                }
                Err(e) => {
                    eprintln!("job {id} never finished: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        println!("all {done} accepted job(s) ran to completion — no accepted job lost");
    }

    let mut gates_ok = true;
    for run in &runs {
        let label = if run.keepalive { "keep-alive" } else { "close-per-request" };
        if let Some(min) = options.min_throughput {
            if run.throughput < min {
                eprintln!(
                    "GATE FAILED ({label}): throughput {:.0} req/s < required {min:.0}",
                    run.throughput
                );
                gates_ok = false;
            }
        }
        if let Some(max) = options.max_p99_ms {
            if run.p99_ms > max {
                eprintln!("GATE FAILED ({label}): p99 {:.1}ms > allowed {max:.1}ms", run.p99_ms);
                gates_ok = false;
            }
        }
    }
    if options.compare_keepalive {
        let close = runs.iter().find(|r| !r.keepalive).map(|r| r.throughput).unwrap_or(0.0);
        let keepalive = runs.iter().find(|r| r.keepalive).map(|r| r.throughput).unwrap_or(0.0);
        let speedup = keepalive / close.max(1e-9);
        println!(
            "keep-alive speedup: {speedup:.2}x ({keepalive:.0} req/s keep-alive vs \
             {close:.0} req/s close-per-request)"
        );
        if let Some(min) = options.min_keepalive_speedup {
            if speedup < min {
                eprintln!("GATE FAILED: keep-alive speedup {speedup:.2}x < required {min:.2}x");
                gates_ok = false;
            }
        }
    }
    if gates_ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_from_the_default_base_and_caps() {
        assert_eq!(backoff_delay(0, None), Duration::from_millis(100));
        assert_eq!(backoff_delay(1, None), Duration::from_millis(200));
        assert_eq!(backoff_delay(2, None), Duration::from_millis(400));
        assert_eq!(backoff_delay(3, None), Duration::from_millis(800));
        // By attempt 6 the doubled default passes the 5 s cap.
        assert_eq!(backoff_delay(6, None), Duration::from_secs(5));
        assert_eq!(backoff_delay(60, None), Duration::from_secs(5));
    }

    #[test]
    fn backoff_honours_retry_after_up_to_the_cap() {
        assert_eq!(backoff_delay(0, Some(2)), Duration::from_secs(2));
        // Retry-After also doubles per attempt, still capped.
        assert_eq!(backoff_delay(1, Some(2)), Duration::from_secs(4));
        assert_eq!(backoff_delay(2, Some(2)), Duration::from_secs(5));
        assert_eq!(backoff_delay(0, Some(3600)), Duration::from_secs(5));
        assert_eq!(backoff_delay(0, Some(0)), Duration::ZERO);
    }
}
