//! Boots the attack server.
//!
//! ```text
//! cargo run --release -p bea-bench --bin serve_cli -- \
//!     --addr 127.0.0.1:7878 --workers 4 --queue 64 \
//!     --out target/experiments/serve
//! ```
//!
//! Serves until `POST /v1/shutdown` (or SIGKILL — accepted jobs survive
//! either through the store's job log). `--smoke` swaps in the 4-image
//! smoke dataset for fast local and CI runs.

use bea_bench::args::{self, ArgParser};
use bea_scene::SyntheticKitti;
use bea_serve::{Server, ServerConfig, TenantPolicy};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

struct Options {
    addr: String,
    workers: usize,
    queue: usize,
    out: PathBuf,
    smoke: bool,
    drain_secs: u64,
    threads: usize,
    reactor: bool,
    batch: usize,
    tenant_rate: f64,
    tenant_burst: f64,
    tenant_quota: usize,
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options {
        addr: "127.0.0.1:7878".to_string(),
        workers: 2,
        queue: 64,
        out: PathBuf::from("target/experiments/serve"),
        smoke: false,
        drain_secs: 60,
        threads: 1,
        reactor: false,
        batch: 1,
        tenant_rate: 0.0,
        tenant_burst: 1.0,
        tenant_quota: 0,
    };
    let mut args = ArgParser::from_env();
    while let Some(flag) = args.next_flag() {
        match flag.as_str() {
            "--addr" => options.addr = args.value(&flag)?,
            "--workers" => options.workers = args.parse(&flag)?,
            "--queue" => options.queue = args.parse(&flag)?,
            "--out" => options.out = PathBuf::from(args.value(&flag)?),
            "--smoke" => options.smoke = true,
            "--drain-secs" => options.drain_secs = args.parse(&flag)?,
            "--threads" => options.threads = args.parse(&flag)?,
            "--reactor" => options.reactor = true,
            "--batch" => options.batch = args.parse(&flag)?,
            "--tenant-rate" => options.tenant_rate = args.parse(&flag)?,
            "--tenant-burst" => options.tenant_burst = args.parse(&flag)?,
            "--tenant-quota" => options.tenant_quota = args.parse(&flag)?,
            "--help" | "-h" => {
                return Err("usage: serve_cli [--addr HOST:PORT] [--workers N] [--queue N] \
                            [--out DIR] [--smoke] [--drain-secs N] [--threads N] [--reactor] \
                            [--batch N] [--tenant-rate R] [--tenant-burst B] [--tenant-quota N]\n\
                            --smoke serves the 4-image smoke dataset (fast jobs for CI)\n\
                            --threads sets kernel worker threads per job (default 1: the worker\n\
                            pool already runs jobs in parallel; 0 = all cores); served CSVs are\n\
                            identical at any thread count\n\
                            --reactor multiplexes all connections on one epoll thread instead of\n\
                            a thread per connection (Linux; elsewhere it falls back)\n\
                            --batch stacks up to N compatible queued jobs into shared forward\n\
                            passes (default 1 = off); served CSVs are identical either way\n\
                            --tenant-rate/--tenant-burst set the per-tenant token bucket\n\
                            (submissions/s and burst size; rate 0 = unlimited) and\n\
                            --tenant-quota caps each tenant's queued+running jobs (0 = unlimited)\n\
                            POST /v1/attacks submits a job; GET /metrics exposes Prometheus text;\n\
                            POST /v1/shutdown drains in-flight work and exits"
                    .into())
            }
            other => return Err(args::unknown_flag(other)),
        }
    }
    if options.batch == 0 {
        return Err("--batch must be at least 1".into());
    }
    Ok(options)
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let config = ServerConfig {
        addr: options.addr,
        workers: options.workers,
        queue_capacity: options.queue,
        store_dir: options.out.clone(),
        dataset: if options.smoke {
            SyntheticKitti::smoke_set()
        } else {
            SyntheticKitti::evaluation_set()
        },
        drain_deadline: Duration::from_secs(options.drain_secs),
        request_log: true,
        kernel_threads: options.threads,
        reactor: options.reactor,
        batch_max: options.batch,
        tenant_policy: TenantPolicy {
            rate: options.tenant_rate,
            burst: options.tenant_burst,
            quota: options.tenant_quota,
        },
        done_retention: 64,
    };
    let server = match Server::start(config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("server failed to start: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "bea-serve listening on http://{} ({} front-end, batch {} per group)",
        server.addr(),
        if options.reactor { "reactor" } else { "thread-per-connection" },
        options.batch,
    );
    println!("store: {}", options.out.display());
    println!("endpoints: POST /v1/attacks, GET /v1/attacks/{{id}}[/csv], GET /healthz, GET /metrics, POST /v1/shutdown");

    // Serve until a client asks us to stop.
    while !server.shutdown_requested() {
        std::thread::sleep(Duration::from_millis(100));
    }
    println!("shutdown requested, draining...");
    let report = server.shutdown();
    println!(
        "drained {} in-flight job(s), requeued {} for the next start{}",
        report.drained,
        report.requeued,
        if report.deadline_expired { " (drain deadline expired)" } else { "" }
    );
    ExitCode::SUCCESS
}
