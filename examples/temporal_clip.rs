//! Temporal attack: one filter mask effective across a moving clip.
//!
//! Section IV-B of the paper: "the single mask implementing δ simply needs
//! to be effective not on multiple predictors but rather on a sequence of
//! images." This example builds a 4-frame clip with moving objects,
//! optimises one mask for the whole clip, and verifies its per-frame
//! effect.
//!
//! Run: `cargo run --release --example temporal_clip`

use butterfly_effect_attack::attack::objectives::obj_degrad;
use butterfly_effect_attack::image::Image;
use butterfly_effect_attack::scene::FrameSequence;
use butterfly_effect_attack::{
    Architecture, AttackConfig, ButterflyAttack, Detector, ModelZoo, SyntheticKitti,
};

fn main() {
    let dataset = SyntheticKitti::evaluation_set();
    let clip = FrameSequence::generate(dataset.generator(), 3, 4);
    let frames: Vec<Image> = clip.frames().collect();
    println!("clip: {} frames, {} moving objects", clip.len(), clip.objects().len());

    let zoo = ModelZoo::with_defaults();
    let detr = zoo.model(Architecture::Detr, 1);

    let attack = ButterflyAttack::new(AttackConfig::scaled(20, 12));
    let outcome = attack.attack_sequence(detr.as_ref(), &frames);
    let champion = outcome.best_degradation().expect("front is never empty");
    println!("sequence-averaged obj_degrad of the champion mask: {:.3}", champion.objectives()[1]);

    println!("\nper-frame verification:");
    for (t, frame) in frames.iter().enumerate() {
        let clean = detr.detect(frame);
        let perturbed = detr.detect(&champion.genome().apply(frame));
        let d = obj_degrad(&clean, &perturbed);
        println!(
            "  frame {t}: {} -> {} detections, obj_degrad {:.3}",
            clean.len(),
            perturbed.len(),
            d
        );
    }
    println!(
        "\nthe same static mask keeps degrading the prediction while the objects move \
         — the temporally stable attack of Section IV-B."
    );
}
