//! Crowding-distance density estimation (Deb et al., 2002, Section III-B).

/// Computes the crowding distance of every member of one front.
///
/// `front` holds indices into `objectives`. For each objective the front is
/// sorted; boundary solutions receive `f64::INFINITY` and interior ones the
/// normalised gap between their neighbours, summed over objectives —
/// "the average distance of the two points on either side of this point
/// along each of the objectives".
///
/// Optimisation direction is irrelevant: distance measures spread, not
/// quality.
///
/// # Examples
///
/// ```
/// use bea_nsga2::crowding::crowding_distances;
///
/// let objs = vec![vec![0.0, 2.0], vec![1.0, 1.0], vec![2.0, 0.0]];
/// let d = crowding_distances(&[0, 1, 2], &objs);
/// assert!(d[0].is_infinite());
/// assert!(d[2].is_infinite());
/// assert!(d[1].is_finite());
/// ```
pub fn crowding_distances(front: &[usize], objectives: &[Vec<f64>]) -> Vec<f64> {
    let n = front.len();
    if n == 0 {
        return Vec::new();
    }
    if n <= 2 {
        return vec![f64::INFINITY; n];
    }
    let m = objectives[front[0]].len();
    let mut distance = vec![0.0f64; n];
    // Position of each front member inside the `front`/`distance` arrays.
    let mut order: Vec<usize> = (0..n).collect();
    #[allow(clippy::needless_range_loop)] // `obj` indexes a column, not a slice
    for obj in 0..m {
        // `total_cmp` keeps the sort a strict weak ordering even if a
        // non-finite value slips through (Individual::new rejects them,
        // but this function also accepts raw objective matrices).
        order.sort_by(|&a, &b| objectives[front[a]][obj].total_cmp(&objectives[front[b]][obj]));
        let lo = objectives[front[order[0]]][obj];
        let hi = objectives[front[order[n - 1]]][obj];
        distance[order[0]] = f64::INFINITY;
        distance[order[n - 1]] = f64::INFINITY;
        let range = hi - lo;
        if range <= 0.0 {
            continue; // all equal along this objective: no contribution
        }
        for w in 1..(n - 1) {
            let prev = objectives[front[order[w - 1]]][obj];
            let next = objectives[front[order[w + 1]]][obj];
            distance[order[w]] += (next - prev) / range;
        }
    }
    distance
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_front() {
        assert!(crowding_distances(&[], &[]).is_empty());
    }

    #[test]
    fn one_or_two_members_are_boundaries() {
        let objs = vec![vec![1.0], vec![2.0]];
        assert_eq!(crowding_distances(&[0], &objs), vec![f64::INFINITY]);
        assert_eq!(crowding_distances(&[0, 1], &objs), vec![f64::INFINITY; 2]);
    }

    #[test]
    fn boundaries_are_infinite_interior_finite() {
        let objs = vec![vec![0.0, 4.0], vec![1.0, 3.0], vec![2.0, 2.0], vec![4.0, 0.0]];
        let d = crowding_distances(&[0, 1, 2, 3], &objs);
        assert!(d[0].is_infinite());
        assert!(d[3].is_infinite());
        assert!(d[1].is_finite() && d[1] > 0.0);
        assert!(d[2].is_finite() && d[2] > 0.0);
    }

    #[test]
    fn lonely_points_get_larger_distance() {
        // Points at 0, 1, 2, 10: the point at 2 has a huge gap to 10.
        let objs: Vec<Vec<f64>> = [0.0, 1.0, 2.0, 10.0].iter().map(|&v| vec![v, -v]).collect();
        let d = crowding_distances(&[0, 1, 2, 3], &objs);
        assert!(d[2] > d[1], "the point next to the gap should be less crowded");
    }

    #[test]
    fn constant_objective_contributes_nothing() {
        let objs = vec![vec![0.0, 5.0], vec![1.0, 5.0], vec![2.0, 5.0]];
        let d = crowding_distances(&[0, 1, 2], &objs);
        // Along objective 1, all values are equal; only objective 0 counts.
        assert!((d[1] - 2.0 / 2.0).abs() < 1e-12);
    }

    #[test]
    fn distance_is_permutation_invariant() {
        let objs = vec![vec![0.0, 4.0], vec![1.0, 3.0], vec![2.0, 2.0], vec![4.0, 0.0]];
        let a = crowding_distances(&[0, 1, 2, 3], &objs);
        let b = crowding_distances(&[3, 1, 0, 2], &objs);
        // b is in order [3, 1, 0, 2]; map back.
        assert_eq!(a[3], b[0]);
        assert_eq!(a[1], b[1]);
        assert_eq!(a[0], b[2]);
        assert_eq!(a[2], b[3]);
    }
}
