//! Bounded multi-producer multi-consumer job queues with explicit
//! backpressure — the admission-control primitives behind `bea-serve`.
//!
//! [`BoundedQueue`] is the single-lane original: a `Mutex<VecDeque>`
//! plus one `Condvar`. [`BoundedQueue::try_push`] never blocks — a full
//! queue is reported to the producer (HTTP `429` upstream) instead of
//! buffering without bound, and a closed queue refuses new work during
//! shutdown. [`BoundedQueue::pop`] blocks consumers until an item
//! arrives or the queue closes; after [`BoundedQueue::close`],
//! consumers stop immediately and the undrained items are recovered
//! with [`BoundedQueue::drain_remaining`] so the caller can persist
//! them.
//!
//! [`FairQueue`] is the multi-tenant variant: one FIFO lane per tenant
//! under a single global capacity, popped round-robin across lanes so a
//! tenant flooding the queue cannot starve the others, plus
//! [`FairQueue::pop_group`] which assembles a compatible batch for the
//! cross-job batching path.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why [`BoundedQueue::try_push`] refused an item; the item rides along
/// so the producer keeps ownership.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue holds `capacity` items — back off and retry.
    Full(T),
    /// The queue is shutting down and accepts no new work.
    Closed(T),
}

impl<T> PushError<T> {
    /// The refused item.
    pub fn into_inner(self) -> T {
        match self {
            PushError::Full(item) | PushError::Closed(item) => item,
        }
    }
}

struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// The bounded MPMC queue. See the [module docs](self).
pub struct BoundedQueue<T> {
    state: Mutex<QueueState<T>>,
    available: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` items (at least 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            state: Mutex::new(QueueState { items: VecDeque::new(), closed: false }),
            available: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue lock").items.len()
    }

    /// `true` when no items are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `true` once [`BoundedQueue::close`] ran.
    pub fn is_closed(&self) -> bool {
        self.state.lock().expect("queue lock").closed
    }

    /// Enqueues without blocking.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] at capacity, [`PushError::Closed`] after
    /// [`BoundedQueue::close`]; both return the item.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut state = self.state.lock().expect("queue lock");
        if state.closed {
            return Err(PushError::Closed(item));
        }
        if state.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        state.items.push_back(item);
        drop(state);
        self.available.notify_one();
        Ok(())
    }

    /// Dequeues the oldest item, blocking while the queue is empty and
    /// open. Returns `None` once the queue closes — immediately, even if
    /// items remain: close means "start no new work", and the leftovers
    /// are recovered with [`BoundedQueue::drain_remaining`].
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("queue lock");
        loop {
            if state.closed {
                return None;
            }
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            state = self.available.wait(state).expect("queue lock");
        }
    }

    /// Closes the queue: producers get [`PushError::Closed`], blocked and
    /// future [`BoundedQueue::pop`] calls return `None`. Idempotent.
    pub fn close(&self) {
        self.state.lock().expect("queue lock").closed = true;
        self.available.notify_all();
    }

    /// Removes and returns every item still queued (ordinarily called
    /// after [`BoundedQueue::close`], to persist work that never started).
    pub fn drain_remaining(&self) -> Vec<T> {
        self.state.lock().expect("queue lock").items.drain(..).collect()
    }
}

impl<T> std::fmt::Debug for BoundedQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BoundedQueue")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .field("closed", &self.is_closed())
            .finish()
    }
}

struct FairState<T> {
    /// One FIFO lane per tenant, in first-submission order. Lanes are
    /// kept once created (the tenant set is bounded by admission
    /// control) so the round-robin cursor stays meaningful.
    lanes: Vec<(String, VecDeque<T>)>,
    /// Index of the lane the next pop starts scanning from.
    cursor: usize,
    /// Total items across all lanes.
    len: usize,
    closed: bool,
}

impl<T> FairState<T> {
    /// The index of the next non-empty lane at or after the cursor,
    /// wrapping around.
    fn next_busy_lane(&self) -> Option<usize> {
        if self.lanes.is_empty() {
            return None;
        }
        (0..self.lanes.len())
            .map(|k| (self.cursor + k) % self.lanes.len())
            .find(|&i| !self.lanes[i].1.is_empty())
    }
}

/// The tenant-fair bounded MPMC queue. See the [module docs](self).
pub struct FairQueue<T> {
    state: Mutex<FairState<T>>,
    available: Condvar,
    capacity: usize,
}

impl<T> FairQueue<T> {
    /// A queue holding at most `capacity` items in total (at least 1),
    /// shared across all lanes.
    pub fn new(capacity: usize) -> Self {
        Self {
            state: Mutex::new(FairState { lanes: Vec::new(), cursor: 0, len: 0, closed: false }),
            available: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The configured global capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently queued, across all lanes.
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue lock").len
    }

    /// `true` when no items are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Items currently queued for one tenant.
    pub fn lane_len(&self, tenant: &str) -> usize {
        let state = self.state.lock().expect("queue lock");
        state.lanes.iter().find(|(name, _)| name == tenant).map_or(0, |(_, lane)| lane.len())
    }

    /// `true` once [`FairQueue::close`] ran.
    pub fn is_closed(&self) -> bool {
        self.state.lock().expect("queue lock").closed
    }

    /// Enqueues onto `tenant`'s lane without blocking.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] when the queue holds `capacity` items in
    /// total, [`PushError::Closed`] after [`FairQueue::close`]; both
    /// return the item.
    pub fn try_push(&self, tenant: &str, item: T) -> Result<(), PushError<T>> {
        let mut state = self.state.lock().expect("queue lock");
        if state.closed {
            return Err(PushError::Closed(item));
        }
        if state.len >= self.capacity {
            return Err(PushError::Full(item));
        }
        match state.lanes.iter_mut().find(|(name, _)| name == tenant) {
            Some((_, lane)) => lane.push_back(item),
            None => {
                let mut lane = VecDeque::new();
                lane.push_back(item);
                state.lanes.push((tenant.to_string(), lane));
            }
        }
        state.len += 1;
        drop(state);
        self.available.notify_one();
        Ok(())
    }

    /// Dequeues one item round-robin across tenants, blocking while the
    /// queue is empty and open. Returns `None` once the queue closes
    /// (close means "start no new work"; leftovers are recovered with
    /// [`FairQueue::drain_remaining`]).
    pub fn pop(&self) -> Option<T> {
        self.pop_group(1, |_, _| false).map(|mut group| group.remove(0))
    }

    /// Dequeues a batch of up to `max` mutually compatible items,
    /// blocking like [`FairQueue::pop`]. The first item comes from the
    /// round-robin lane (fairness decides who *leads* a batch); the rest
    /// are lane-front items accepted by `compatible(&seed, &candidate)`,
    /// collected round-robin so one tenant cannot fill the whole batch
    /// while others wait. Only lane fronts are taken — batching never
    /// reorders a tenant's own submissions.
    pub fn pop_group<F>(&self, max: usize, compatible: F) -> Option<Vec<T>>
    where
        F: Fn(&T, &T) -> bool,
    {
        let max = max.max(1);
        let mut state = self.state.lock().expect("queue lock");
        loop {
            if state.closed {
                return None;
            }
            if let Some(lead) = state.next_busy_lane() {
                let seed = state.lanes[lead].1.pop_front().expect("busy lane has a front");
                state.len -= 1;
                state.cursor = (lead + 1) % state.lanes.len();
                let mut group = vec![seed];
                // Cycle lanes starting at the new cursor; stop after a
                // full lap adds nothing (every remaining front is
                // incompatible or the lanes are dry).
                let lanes = state.lanes.len();
                let mut idle_laps = 0;
                let mut at = state.cursor;
                while group.len() < max && idle_laps < lanes {
                    let front_ok = state.lanes[at]
                        .1
                        .front()
                        .is_some_and(|candidate| compatible(&group[0], candidate));
                    if front_ok {
                        let item = state.lanes[at].1.pop_front().expect("front just checked");
                        state.len -= 1;
                        group.push(item);
                        idle_laps = 0;
                    } else {
                        idle_laps += 1;
                    }
                    at = (at + 1) % lanes;
                }
                return Some(group);
            }
            state = self.available.wait(state).expect("queue lock");
        }
    }

    /// Closes the queue: producers get [`PushError::Closed`], blocked
    /// and future pops return `None`. Idempotent.
    pub fn close(&self) {
        self.state.lock().expect("queue lock").closed = true;
        self.available.notify_all();
    }

    /// Removes and returns every item still queued, round-robin across
    /// lanes (ordinarily called after [`FairQueue::close`], to persist
    /// work that never started).
    pub fn drain_remaining(&self) -> Vec<T> {
        let mut state = self.state.lock().expect("queue lock");
        let mut items = Vec::with_capacity(state.len);
        while let Some(lane) = state.next_busy_lane() {
            let item = state.lanes[lane].1.pop_front().expect("busy lane has a front");
            state.len -= 1;
            state.cursor = (lane + 1) % state.lanes.len();
            items.push(item);
        }
        items
    }
}

impl<T> std::fmt::Debug for FairQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.state.lock().expect("queue lock");
        f.debug_struct("FairQueue")
            .field("capacity", &self.capacity)
            .field("len", &state.len)
            .field("lanes", &state.lanes.len())
            .field("closed", &state.closed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn queue_is_fifo_and_bounded() {
        let queue = BoundedQueue::new(2);
        assert_eq!(queue.capacity(), 2);
        queue.try_push(1).unwrap();
        queue.try_push(2).unwrap();
        assert_eq!(queue.try_push(3), Err(PushError::Full(3)));
        assert_eq!(queue.len(), 2);
        assert_eq!(queue.pop(), Some(1));
        queue.try_push(3).unwrap();
        assert_eq!(queue.pop(), Some(2));
        assert_eq!(queue.pop(), Some(3));
        assert!(queue.is_empty());
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let queue = BoundedQueue::new(0);
        assert_eq!(queue.capacity(), 1);
        queue.try_push(7).unwrap();
        assert!(matches!(queue.try_push(8), Err(PushError::Full(8))));
    }

    #[test]
    fn close_refuses_producers_and_releases_consumers() {
        let queue: Arc<BoundedQueue<u32>> = Arc::new(BoundedQueue::new(4));
        let waiter = {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || queue.pop())
        };
        // Give the consumer a moment to block on the empty queue.
        std::thread::sleep(std::time::Duration::from_millis(20));
        queue.try_push(1).unwrap();
        queue.try_push(2).unwrap();
        queue.close();
        assert_eq!(queue.try_push(3), Err(PushError::Closed(3)));
        assert_eq!(PushError::Closed(3).into_inner(), 3);
        // The blocked consumer saw either the pushed item or the close.
        let seen = waiter.join().unwrap();
        assert!(seen == Some(1) || seen.is_none(), "got {seen:?}");
        // Close wins over remaining items; they drain explicitly.
        assert_eq!(queue.pop(), None);
        let mut rest = queue.drain_remaining();
        if seen == Some(1) {
            assert_eq!(rest, vec![2]);
        } else {
            rest.sort_unstable();
            assert_eq!(rest, vec![1, 2]);
        }
        assert!(queue.is_empty());
    }

    #[test]
    fn concurrent_producers_and_consumers_account_for_every_item() {
        const PRODUCERS: usize = 4;
        const PER_PRODUCER: usize = 200;
        let queue: Arc<BoundedQueue<usize>> = Arc::new(BoundedQueue::new(8));
        let consumed = Arc::new(AtomicUsize::new(0));
        let sum = Arc::new(AtomicUsize::new(0));
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let queue = Arc::clone(&queue);
                let consumed = Arc::clone(&consumed);
                let sum = Arc::clone(&sum);
                std::thread::spawn(move || {
                    while let Some(item) = queue.pop() {
                        consumed.fetch_add(1, Ordering::Relaxed);
                        sum.fetch_add(item, Ordering::Relaxed);
                    }
                })
            })
            .collect();
        let producers: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let queue = Arc::clone(&queue);
                std::thread::spawn(move || {
                    for k in 0..PER_PRODUCER {
                        let mut item = p * PER_PRODUCER + k;
                        // Spin on Full: the bound is backpressure, not loss.
                        loop {
                            match queue.try_push(item) {
                                Ok(()) => break,
                                Err(PushError::Full(back)) => {
                                    item = back;
                                    std::thread::yield_now();
                                }
                                Err(PushError::Closed(_)) => panic!("closed mid-run"),
                            }
                        }
                    }
                })
            })
            .collect();
        for producer in producers {
            producer.join().unwrap();
        }
        // All items pushed; let consumers finish the backlog, then close.
        while !queue.is_empty() {
            std::thread::yield_now();
        }
        queue.close();
        for consumer in consumers {
            consumer.join().unwrap();
        }
        let total = PRODUCERS * PER_PRODUCER;
        assert_eq!(consumed.load(Ordering::Relaxed), total);
        assert_eq!(sum.load(Ordering::Relaxed), (0..total).sum::<usize>());
    }

    #[test]
    fn fair_queue_round_robins_across_tenants() {
        let queue = FairQueue::new(16);
        // Tenant "a" floods ahead of "b" and "c".
        for k in 0..6 {
            queue.try_push("a", format!("a{k}")).unwrap();
        }
        queue.try_push("b", "b0".to_string()).unwrap();
        queue.try_push("c", "c0".to_string()).unwrap();
        assert_eq!(queue.len(), 8);
        assert_eq!(queue.lane_len("a"), 6);
        assert_eq!(queue.lane_len("nobody"), 0);
        // Round-robin interleaves the minority tenants immediately
        // instead of making them wait behind the flood.
        let first_three: Vec<String> = (0..3).map(|_| queue.pop().unwrap()).collect();
        assert_eq!(first_three, vec!["a0", "b0", "c0"]);
        // With only "a" left the lane drains FIFO.
        let rest: Vec<String> = (0..5).map(|_| queue.pop().unwrap()).collect();
        assert_eq!(rest, vec!["a1", "a2", "a3", "a4", "a5"]);
        assert!(queue.is_empty());
    }

    #[test]
    fn fair_queue_is_bounded_globally_and_closes() {
        let queue = FairQueue::new(2);
        assert_eq!(queue.capacity(), 2);
        queue.try_push("a", 1).unwrap();
        queue.try_push("b", 2).unwrap();
        // The bound is global: a fresh tenant does not get fresh room.
        assert_eq!(queue.try_push("c", 3), Err(PushError::Full(3)));
        queue.close();
        assert!(queue.is_closed());
        assert_eq!(queue.try_push("a", 4), Err(PushError::Closed(4)));
        // Close wins over remaining items; they drain explicitly.
        assert_eq!(queue.pop(), None);
        assert_eq!(queue.drain_remaining(), vec![1, 2]);
        assert!(queue.is_empty());
        assert_eq!(FairQueue::<u32>::new(0).capacity(), 1);
    }

    #[test]
    fn fair_queue_groups_take_compatible_lane_fronts() {
        // Items are (tenant-ish id, compat class); compatibility is
        // class equality.
        let queue = FairQueue::new(16);
        queue.try_push("a", ("a0", 1)).unwrap();
        queue.try_push("a", ("a1", 1)).unwrap();
        queue.try_push("a", ("a2", 2)).unwrap();
        queue.try_push("b", ("b0", 1)).unwrap();
        queue.try_push("b", ("b1", 1)).unwrap();
        queue.try_push("c", ("c0", 2)).unwrap();

        let same_class = |seed: &(&str, i32), other: &(&str, i32)| seed.1 == other.1;
        // Seed a0 (class 1): collects round-robin from b then a again,
        // but never digs past c's incompatible front.
        let group = queue.pop_group(8, same_class).unwrap();
        let ids: Vec<&str> = group.iter().map(|(id, _)| *id).collect();
        assert_eq!(ids, vec!["a0", "b0", "a1", "b1"]);
        // Remaining fronts are class 2 and batch together.
        let group = queue.pop_group(8, same_class).unwrap();
        let ids: Vec<&str> = group.iter().map(|(id, _)| *id).collect();
        assert_eq!(ids, vec!["c0", "a2"]);
        assert!(queue.is_empty());

        // max caps the group even with compatible items waiting.
        queue.try_push("a", ("x0", 9)).unwrap();
        queue.try_push("a", ("x1", 9)).unwrap();
        queue.try_push("a", ("x2", 9)).unwrap();
        let group = queue.pop_group(2, same_class).unwrap();
        assert_eq!(group.len(), 2);
        assert_eq!(queue.len(), 1);
    }

    #[test]
    fn fair_queue_pop_blocks_until_push_and_wakes_on_close() {
        let queue: Arc<FairQueue<u32>> = Arc::new(FairQueue::new(4));
        let waiter = {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || queue.pop())
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        queue.try_push("a", 7).unwrap();
        assert_eq!(waiter.join().unwrap(), Some(7));

        let blocked = {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || queue.pop())
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        queue.close();
        assert_eq!(blocked.join().unwrap(), None);
    }
}
