//! Small statistics helpers shared by the detectors and the benches.

/// Arithmetic mean of a slice. Returns `0.0` for an empty slice.
///
/// # Examples
///
/// ```
/// assert_eq!(bea_tensor::stats::mean(&[1.0, 2.0, 3.0]), 2.0);
/// ```
pub fn mean(values: &[f32]) -> f32 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f32>() / values.len() as f32
}

/// Population variance. Returns `0.0` for an empty slice.
pub fn variance(values: &[f32]) -> f32 {
    if values.is_empty() {
        return 0.0;
    }
    let m = mean(values);
    values.iter().map(|v| (v - m) * (v - m)).sum::<f32>() / values.len() as f32
}

/// Population standard deviation.
pub fn std_dev(values: &[f32]) -> f32 {
    variance(values).sqrt()
}

/// Index of the maximum element, or `None` for an empty slice.
/// Ties resolve to the first occurrence.
///
/// # Examples
///
/// ```
/// assert_eq!(bea_tensor::stats::argmax(&[1.0, 5.0, 3.0]), Some(1));
/// assert_eq!(bea_tensor::stats::argmax(&[]), None);
/// ```
pub fn argmax(values: &[f32]) -> Option<usize> {
    let mut best: Option<(usize, f32)> = None;
    for (i, &v) in values.iter().enumerate() {
        match best {
            Some((_, b)) if v <= b => {}
            _ => best = Some((i, v)),
        }
    }
    best.map(|(i, _)| i)
}

/// Index of the minimum element, or `None` for an empty slice.
pub fn argmin(values: &[f32]) -> Option<usize> {
    let mut best: Option<(usize, f32)> = None;
    for (i, &v) in values.iter().enumerate() {
        match best {
            Some((_, b)) if v >= b => {}
            _ => best = Some((i, v)),
        }
    }
    best.map(|(i, _)| i)
}

/// Median of a slice (average of the two central elements for even lengths).
/// Returns `0.0` for an empty slice.
pub fn median(values: &[f32]) -> f32 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

/// Linearly rescales `values` so the minimum maps to 0 and the maximum to 1.
/// A constant slice maps to all zeros.
pub fn normalize_unit(values: &mut [f32]) {
    let (mut lo, mut hi) = (f32::INFINITY, f32::NEG_INFINITY);
    for &v in values.iter() {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    let range = hi - lo;
    if !range.is_finite() || range <= 0.0 {
        values.fill(0.0);
        return;
    }
    for v in values {
        *v = (*v - lo) / range;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_known() {
        let v = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&v), 5.0);
        assert_eq!(variance(&v), 4.0);
        assert_eq!(std_dev(&v), 2.0);
    }

    #[test]
    fn argmax_ties_pick_first() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0]), Some(1));
        assert_eq!(argmin(&[3.0, 1.0, 1.0]), Some(1));
    }

    #[test]
    fn median_even_odd() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&[]), 0.0);
    }

    #[test]
    fn normalize_unit_maps_to_unit_interval() {
        let mut v = [10.0, 20.0, 15.0];
        normalize_unit(&mut v);
        assert_eq!(v, [0.0, 1.0, 0.5]);
    }

    #[test]
    fn normalize_constant_is_zero() {
        let mut v = [7.0, 7.0];
        normalize_unit(&mut v);
        assert_eq!(v, [0.0, 0.0]);
    }

    #[test]
    fn empty_inputs_are_safe() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(argmax(&[]), None);
        assert_eq!(argmin(&[]), None);
    }
}
