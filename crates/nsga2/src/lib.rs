//! A generic NSGA-II multi-objective genetic algorithm.
//!
//! Implements the Non-dominated Sorting Genetic Algorithm II of Deb,
//! Pratap, Agarwal and Meyarivan (2002) — the optimiser the paper uses to
//! search for butterfly perturbations:
//!
//! * [`objective`] — objective vectors with per-objective optimisation
//!   [`Direction`]s and Pareto dominance,
//! * [`sorting`] — fast non-dominated sorting into Pareto ranks,
//! * [`crowding`] — the crowding-distance density estimate,
//! * [`selection`] — the crowded binary tournament,
//! * [`operators`] — crossover / mutation / initialiser traits,
//! * [`algorithm`] — the [`Nsga2`] run driver with per-generation
//!   observers,
//! * [`pareto`] — Pareto-front utilities (front extraction,
//!   best-per-objective, knee point),
//! * [`hypervolume`] — exact 2-D/3-D hypervolume indicators for
//!   convergence measurements.
//!
//! The crate is problem-agnostic: anything implementing [`Problem`] (a
//! genome type plus an evaluation function) can be optimised. Randomness
//! comes from the deterministic [`bea_tensor::WeightInit`] stream, so every run is
//! exactly repeatable from its seed.
//!
//! # Examples
//!
//! Minimising the two-objective Schaffer problem:
//!
//! ```
//! use bea_nsga2::prelude::*;
//!
//! struct Schaffer;
//!
//! impl Problem for Schaffer {
//!     type Genome = f64;
//!
//!     fn directions(&self) -> Vec<Direction> {
//!         vec![Direction::Minimize, Direction::Minimize]
//!     }
//!
//!     fn evaluate(&self, x: &f64) -> Vec<f64> {
//!         vec![x * x, (x - 2.0) * (x - 2.0)]
//!     }
//! }
//!
//! let config = Nsga2Config { population_size: 20, generations: 10, ..Nsga2Config::default() };
//! let result = Nsga2::new(Schaffer, config).run(
//!     &|rng: &mut WeightInit| rng.uniform(-5.0, 5.0) as f64,
//!     &|a: &f64, b: &f64, _rng: &mut WeightInit| ((a + b) / 2.0, (b + a) / 2.0),
//!     &|x: &mut f64, rng: &mut WeightInit| *x += rng.normal(0.0, 0.3) as f64,
//! );
//! assert!(!result.pareto_front().is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algorithm;
pub mod crowding;
pub mod hypervolume;
pub mod individual;
pub mod objective;
pub mod operators;
pub mod pareto;
pub mod selection;
pub mod sorting;

pub use algorithm::{GenerationStats, Nsga2, Nsga2Config, Nsga2Result, Problem};
pub use individual::Individual;
pub use objective::{dominates, Direction};
pub use operators::{Crossover, Initializer, Mutation};

/// Convenience re-exports for implementing and running problems.
pub mod prelude {
    pub use crate::algorithm::{GenerationStats, Nsga2, Nsga2Config, Nsga2Result, Problem};
    pub use crate::individual::Individual;
    pub use crate::objective::{dominates, Direction};
    pub use crate::operators::{Crossover, Initializer, Mutation};
    pub use bea_tensor::WeightInit;
}
