//! Structural regression tests for the paper's architecture comparison.
//!
//! The *statistical* headline (DETR mean obj_degrad far below YOLO's) is
//! demonstrated by the `fig2_pareto` / `arch_extension` harnesses at an
//! adequate search budget (see EXPERIMENTS.md) — at unit-test budgets the
//! signal drowns in GA noise. What IS stable at any budget is the
//! *structural* difference: whether a right-half perturbation can reach
//! left-half predictions at all.

use butterfly_effect_attack::detect::two_stage::{TwoStageConfig, TwoStageDetector};
use butterfly_effect_attack::image::NoiseKind;
use butterfly_effect_attack::tensor::WeightInit;
use butterfly_effect_attack::{
    Architecture, Detector, FilterMask, ModelZoo, RegionConstraint, SyntheticKitti,
};

/// Builds a strong right-half noise mask.
fn right_half_noise(width: usize, height: usize, seed: u64) -> FilterMask {
    let mut mask = NoiseKind::Gaussian { std_dev: 70.0 }.generate(
        width,
        height,
        &mut WeightInit::from_seed(seed),
    );
    RegionConstraint::RightHalf.apply(&mut mask);
    mask
}

#[test]
fn strictly_local_architecture_never_changes_left_predictions() {
    let img = SyntheticKitti::evaluation_set().image(0);
    let rcnn = TwoStageDetector::new(TwoStageConfig::with_seed(1));
    let clean = rcnn.detect(&img);
    let half = img.width() as f32 / 2.0;
    // Margin: max template reach so "left" detections cannot see the
    // perturbed half at all.
    let left = |p: &butterfly_effect_attack::Prediction| {
        let mut v: Vec<_> = p.iter().filter(|d| d.bbox.x1() < half - 26.0).copied().collect();
        v.sort_by(|a, b| a.bbox.cx.partial_cmp(&b.bbox.cx).unwrap());
        v
    };
    for seed in 0..5 {
        let mask = right_half_noise(img.width(), img.height(), seed);
        let perturbed = rcnn.detect(&mask.apply(&img));
        assert_eq!(
            left(&clean),
            left(&perturbed),
            "a strictly local detector's left-half predictions must be bit-identical"
        );
    }
}

#[test]
fn transformer_token_scores_feel_right_half_noise_on_the_left() {
    // The butterfly channel exists in DETR's forward pass: right-half
    // noise changes the *post-encoder* evidence everywhere, which is what
    // the GA exploits at larger budgets.
    let img = SyntheticKitti::evaluation_set().image(0);
    let zoo = ModelZoo::with_defaults();
    let detr = zoo.model(Architecture::Detr, 1);
    let clean_map = detr.heatmap(&img);
    let mask = right_half_noise(img.width(), img.height(), 3);
    let pert_map = detr.heatmap(&mask.apply(&img));
    // Left-half token columns of the heatmap must move.
    let (gw, gh) = (clean_map.width(), clean_map.height());
    let mut moved = 0.0f32;
    for c in 0..clean_map.channels() {
        for y in 0..gh {
            for x in 0..gw / 2 {
                moved += (clean_map.at(c, y, x) - pert_map.at(c, y, x)).abs();
            }
        }
    }
    assert!(
        moved > 0.05,
        "DETR left-half token scores should feel right-half noise (moved {moved})"
    );
}

#[test]
fn yolo_left_half_coupling_is_weak_but_nonzero() {
    // YOLO's only remote path is the global context gain: left responses
    // move, but orders of magnitude less than DETR's token scores.
    let img = SyntheticKitti::evaluation_set().image(0);
    let zoo = ModelZoo::with_defaults();
    let yolo = zoo.model(Architecture::Yolo, 1);
    let clean_map = yolo.heatmap(&img);
    let mask = right_half_noise(img.width(), img.height(), 3);
    let pert_map = yolo.heatmap(&mask.apply(&img));
    let (w, h) = (clean_map.width(), clean_map.height());
    let mut moved = 0.0f32;
    let mut clean_mass = 0.0f32;
    // Columns far enough left that no template support touches the
    // perturbed half.
    let safe = w / 2 - 13;
    for c in 0..clean_map.channels() {
        for y in 0..h {
            for x in 0..safe {
                moved += (clean_map.at(c, y, x) - pert_map.at(c, y, x)).abs();
                clean_mass += clean_map.at(c, y, x).abs();
            }
        }
    }
    assert!(moved > 0.0, "the SPPF-like global gain must leak *something*");
    assert!(
        moved < 0.05 * clean_mass,
        "YOLO's remote coupling must stay weak (moved {moved}, mass {clean_mass})"
    );
}
