//! The shared backbone: per-class normalised cross-correlation response
//! fields.
//!
//! Both detector architectures start from the same evidence: for every
//! class, a map of normalised cross-correlation (NCC) scores between the
//! zero-mean class template and the image patch at each position. NCC is
//! invariant to local brightness offset and gain, which is what makes the
//! matched filters tolerate the scene generator's style jitter — and it is
//! *local*: an NCC value only depends on pixels under the template support.
//! Any cross-image coupling therefore has to come from the architecture on
//! top (global context gain for YOLO, self-attention for DETR), exactly the
//! comparison the paper sets up.

use crate::templates::{ClassTemplate, TemplateBank, BACKBONE_SCALE};
use bea_image::Image;
use bea_scene::ObjectClass;
use bea_tensor::{DirtyRect, FeatureMap, PoolVec};

/// Per-class response maps at backbone resolution.
///
/// # Examples
///
/// ```
/// use bea_detect::response::ResponseField;
/// use bea_detect::templates::TemplateBank;
/// use bea_image::Image;
///
/// let bank = TemplateBank::canonical();
/// let field = ResponseField::compute(&Image::filled(64, 32, [96.0; 3]), &bank);
/// // A constant image correlates with nothing.
/// assert!(field.map().max() < 0.3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ResponseField {
    /// One channel per class, backbone resolution.
    map: FeatureMap,
}

impl ResponseField {
    /// Computes response maps for every class in the bank.
    pub fn compute(img: &Image, bank: &TemplateBank) -> Self {
        let half = img.downscale(BACKBONE_SCALE);
        let (h, w) = (half.height(), half.width());
        let sat = Sat::build(half.as_feature_map());
        let mut map = FeatureMap::zeros(ObjectClass::COUNT, h, w);
        for template in bank.templates() {
            let plane = ncc_plane(half.as_feature_map(), &sat, template);
            map.channel_mut(template.class().index()).copy_from_slice(plane.channel(0));
        }
        Self { map }
    }

    /// Recomputes only the response cells whose template support touches
    /// `dirty` (a full-resolution pixel rectangle), patching `self` in
    /// place. Cells outside the affected window keep their cached values,
    /// which NCC locality guarantees are bit-identical to a full
    /// recomputation on `img` (see the `response_is_local` test).
    ///
    /// Returns the backbone-resolution window of rewritten cells. When the
    /// cached map's shape disagrees with `img` the field is recomputed in
    /// full and the whole plane is returned.
    pub fn recompute_window(
        &mut self,
        img: &Image,
        bank: &TemplateBank,
        dirty: &DirtyRect,
    ) -> DirtyRect {
        let half = img.downscale(BACKBONE_SCALE);
        let (h, w) = (half.height(), half.width());
        if self.map.height() != h || self.map.width() != w {
            *self = Self::compute(img, bank);
            return DirtyRect::full(w, h);
        }
        let d = dirty.downscaled(BACKBONE_SCALE).clamp(w, h);
        if d.is_empty() {
            return DirtyRect::empty();
        }
        // The summed-area table is rebuilt in full: it is O(W·H) while the
        // NCC sweep it feeds is O(W·H·th·tw), so sharing it between the
        // full and incremental paths is cheap and keeps both bit-identical.
        let sat = Sat::build(half.as_feature_map());
        let mut affected = DirtyRect::empty();
        for template in bank.templates() {
            let (th, tw) = (template.height(), template.width());
            if th > h || tw > w {
                continue;
            }
            // Support origins whose `th × tw` footprint intersects the
            // dirty cells: o ∈ [d0 − (k − 1), d1), clamped to the valid
            // origin range [0, dim − k].
            let oy0 = d.y0.saturating_sub(th - 1);
            let oy1 = d.y1.min(h - th + 1);
            let ox0 = d.x0.saturating_sub(tw - 1);
            let ox1 = d.x1.min(w - tw + 1);
            if oy0 >= oy1 || ox0 >= ox1 {
                continue;
            }
            let plane = self.map.channel_mut(template.class().index());
            ncc_into(half.as_feature_map(), &sat, template, plane, oy0..oy1, ox0..ox1);
            // Each origin writes at its centre, so the rewritten window is
            // the origin window translated by the centre offset.
            affected = affected.union(&DirtyRect::new(
                ox0 + tw / 2,
                oy0 + th / 2,
                ox1 + tw / 2,
                oy1 + th / 2,
            ));
        }
        affected.clamp(w, h)
    }

    /// The stacked response maps (one channel per class index).
    pub fn map(&self) -> &FeatureMap {
        &self.map
    }

    /// The response plane of one class.
    pub fn class_plane(&self, class: ObjectClass) -> &[f32] {
        self.map.channel(class.index())
    }

    /// Backbone-resolution height.
    pub fn height(&self) -> usize {
        self.map.height()
    }

    /// Backbone-resolution width.
    pub fn width(&self) -> usize {
        self.map.width()
    }

    /// Converts a backbone-resolution coordinate to full-resolution pixels.
    pub fn to_full_res(coord: f32) -> f32 {
        coord * BACKBONE_SCALE as f32 + (BACKBONE_SCALE as f32 - 1.0) / 2.0
    }

    /// Converts a full-resolution pixel coordinate to backbone resolution.
    pub fn to_backbone(coord: f32) -> f32 {
        (coord - (BACKBONE_SCALE as f32 - 1.0) / 2.0) / BACKBONE_SCALE as f32
    }
}

/// Summed-area tables of the per-pixel channel sum and square sum, used to
/// normalise patches in O(1) per position.
struct Sat {
    width: usize,
    // Pooled: a fresh Sat is built per forward pass (and per incremental
    // window), so its tables recycle through the scratch arena.
    sum: PoolVec<f64>,
    sum_sq: PoolVec<f64>,
}

impl Sat {
    fn build(map: &FeatureMap) -> Self {
        let (h, w) = (map.height(), map.width());
        // One extra row/column of zeros simplifies rectangle queries.
        let stride = w + 1;
        let mut sum = PoolVec::filled((h + 1) * stride, 0.0f64);
        let mut sum_sq = PoolVec::filled((h + 1) * stride, 0.0f64);
        for y in 0..h {
            for x in 0..w {
                let mut s = 0.0f64;
                let mut q = 0.0f64;
                for c in 0..map.channels() {
                    let v = map.at(c, y, x) as f64;
                    s += v;
                    q += v * v;
                }
                let idx = (y + 1) * stride + (x + 1);
                sum[idx] = s + sum[idx - 1] + sum[idx - stride] - sum[idx - stride - 1];
                sum_sq[idx] = q + sum_sq[idx - 1] + sum_sq[idx - stride] - sum_sq[idx - stride - 1];
            }
        }
        Self { width: w, sum, sum_sq }
    }

    /// Rectangle sums over `[y0, y0+th) × [x0, x0+tw)`: `(sum, sum_sq)`.
    fn rect(&self, y0: usize, x0: usize, th: usize, tw: usize) -> (f64, f64) {
        let stride = self.width + 1;
        let a = y0 * stride + x0;
        let b = y0 * stride + (x0 + tw);
        let c = (y0 + th) * stride + x0;
        let d = (y0 + th) * stride + (x0 + tw);
        (
            self.sum[d] - self.sum[b] - self.sum[c] + self.sum[a],
            self.sum_sq[d] - self.sum_sq[b] - self.sum_sq[c] + self.sum_sq[a],
        )
    }
}

/// Computes the NCC plane of one template over the image; the score is
/// written at the template centre, zero near the borders.
fn ncc_plane(img: &FeatureMap, sat: &Sat, template: &ClassTemplate) -> FeatureMap {
    let (h, w) = (img.height(), img.width());
    let (th, tw) = (template.height(), template.width());
    let mut out = FeatureMap::zeros(1, h, w);
    if th > h || tw > w {
        return out;
    }
    ncc_into(img, sat, template, out.channel_mut(0), 0..(h - th + 1), 0..(w - tw + 1));
    out
}

/// Computes NCC scores for the support origins `oy × ox`, writing each
/// score at its template centre in `plane` (row stride `img.width()`).
/// Flat patches are written as `0.0`, so re-running a window overwrites
/// any stale value.
///
/// This is the single per-origin kernel shared by [`ncc_plane`] and
/// [`ResponseField::recompute_window`]: both paths accumulate in the same
/// order, which makes the incremental patch bit-identical to the full
/// sweep.
fn ncc_into(
    img: &FeatureMap,
    sat: &Sat,
    template: &ClassTemplate,
    plane: &mut [f32],
    oy: std::ops::Range<usize>,
    ox: std::ops::Range<usize>,
) {
    let w = img.width();
    let (th, tw) = (template.height(), template.width());
    let t = template.map();
    let n = (3 * th * tw) as f64;
    // Patches whose per-entry standard deviation is below this floor are
    // treated as flat (sky, road): without a floor, NCC would amplify
    // numerical dust on constant patches to ±1.
    const MIN_PATCH_STD: f64 = 4.0;
    let var_floor = n * MIN_PATCH_STD * MIN_PATCH_STD;
    for y0 in oy {
        for x0 in ox.clone() {
            let centre = (y0 + th / 2) * w + (x0 + tw / 2);
            let (s, q) = sat.rect(y0, x0, th, tw);
            let patch_var = q - s * s / n;
            if patch_var < var_floor {
                plane[centre] = 0.0;
                continue;
            }
            // Cross-correlation with the template, compensating the patch
            // mean: num = Σ t·(p − p̄) = Σ t·p − p̄·Σ t.
            let mut dot = 0.0f64;
            for c in 0..3 {
                for ty in 0..th {
                    for tx in 0..tw {
                        dot += (t.at(c, ty, tx) * img.at(c, y0 + ty, x0 + tx)) as f64;
                    }
                }
            }
            let num = dot - (s / n) * template.weight_sum() as f64;
            let ncc = num / (patch_var.sqrt() * template.norm() as f64);
            plane[centre] = ncc.clamp(-1.0, 1.0) as f32;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bea_scene::render::{render_object, Style};
    use bea_scene::BBox;

    fn scene_with(class: ObjectClass, cx: f32, cy: f32) -> Image {
        let mut img = Image::filled(128, 64, [96.0; 3]);
        let (w, h) = class.nominal_size();
        render_object(
            &mut img,
            class,
            &BBox::new(cx, cy, w as f32, h as f32),
            &Style::canonical(class),
        );
        img
    }

    #[test]
    fn response_peaks_at_object_centre() {
        let img = scene_with(ObjectClass::Car, 60.0, 40.0);
        let field = ResponseField::compute(&img, &TemplateBank::canonical());
        let plane = field.class_plane(ObjectClass::Car);
        let (bw, bh) = (field.width(), field.height());
        let mut best = (0usize, 0usize, f32::NEG_INFINITY);
        for y in 0..bh {
            for x in 0..bw {
                let v = plane[y * bw + x];
                if v > best.2 {
                    best = (x, y, v);
                }
            }
        }
        assert!(best.2 > 0.8, "peak NCC {} too weak", best.2);
        let full_x = ResponseField::to_full_res(best.0 as f32);
        let full_y = ResponseField::to_full_res(best.1 as f32);
        assert!((full_x - 60.0).abs() <= 3.0, "peak x {full_x} far from 60");
        assert!((full_y - 40.0).abs() <= 3.0, "peak y {full_y} far from 40");
    }

    #[test]
    fn correct_class_scores_highest() {
        for class in [ObjectClass::Car, ObjectClass::Pedestrian, ObjectClass::Cyclist] {
            let img = scene_with(class, 64.0, 40.0);
            let field = ResponseField::compute(&img, &TemplateBank::canonical());
            let peak_of = |c: ObjectClass| {
                field.class_plane(c).iter().copied().fold(f32::NEG_INFINITY, f32::max)
            };
            let own = peak_of(class);
            for other in ObjectClass::ALL {
                if other != class {
                    assert!(
                        own > peak_of(other) - 0.05,
                        "{class}: own peak {own} not above {other} peak {}",
                        peak_of(other)
                    );
                }
            }
        }
    }

    #[test]
    fn response_is_local() {
        // Perturbing the right half must not change left-half responses at
        // all (NCC locality) — the foundation of the YOLO robustness result.
        let base = scene_with(ObjectClass::Car, 30.0, 40.0);
        let mut perturbed = base.clone();
        for y in 0..64 {
            for x in 90..128 {
                perturbed.put_pixel(x, y, [255.0, 0.0, 255.0]);
            }
        }
        let bank = TemplateBank::canonical();
        let fa = ResponseField::compute(&base, &bank);
        let fb = ResponseField::compute(&perturbed, &bank);
        let bw = fa.width();
        // Columns safely left of the perturbation minus max template width.
        for class in ObjectClass::ALL {
            let pa = fa.class_plane(class);
            let pb = fb.class_plane(class);
            for y in 0..fa.height() {
                for x in 0..(bw / 2 - 13) {
                    assert_eq!(
                        pa[y * bw + x],
                        pb[y * bw + x],
                        "{class} response at ({x},{y}) changed remotely"
                    );
                }
            }
        }
    }

    #[test]
    fn brightness_jitter_barely_moves_peak() {
        let mut bright = Style::canonical(ObjectClass::Car);
        bright.brightness = 1.15;
        let mut img = Image::filled(128, 64, [96.0; 3]);
        render_object(&mut img, ObjectClass::Car, &BBox::new(60.0, 40.0, 26.0, 12.0), &bright);
        let field = ResponseField::compute(&img, &TemplateBank::canonical());
        let peak =
            field.class_plane(ObjectClass::Car).iter().copied().fold(f32::NEG_INFINITY, f32::max);
        assert!(peak > 0.75, "NCC should tolerate brightness jitter, got {peak}");
    }

    #[test]
    fn constant_image_has_no_response() {
        let field =
            ResponseField::compute(&Image::filled(96, 48, [50.0; 3]), &TemplateBank::canonical());
        assert!(field.map().max() < 0.3);
    }

    #[test]
    fn recompute_window_matches_full_compute_bitwise() {
        let base = scene_with(ObjectClass::Car, 40.0, 30.0);
        let bank = TemplateBank::canonical();
        let clean_field = ResponseField::compute(&base, &bank);
        // Several dirty rectangles, from a single pixel to a half plane.
        let rects = [
            DirtyRect::new(70, 20, 71, 21),
            DirtyRect::new(90, 5, 120, 40),
            DirtyRect::new(64, 0, 128, 64),
            DirtyRect::new(0, 0, 20, 10),
        ];
        for (i, rect) in rects.iter().enumerate() {
            let mut perturbed = base.clone();
            for y in rect.y0..rect.y1 {
                for x in rect.x0..rect.x1 {
                    let p = perturbed.pixel(x, y);
                    perturbed.put_pixel(x, y, [255.0 - p[0], p[1] + 40.0, p[2]]);
                }
            }
            let mut patched = clean_field.clone();
            let window = patched.recompute_window(&perturbed, &bank, rect);
            assert!(!window.is_empty(), "rect {i} should rewrite something");
            let full = ResponseField::compute(&perturbed, &bank);
            assert_eq!(patched, full, "rect {i}: incremental patch must be bit-identical");
        }
    }

    #[test]
    fn recompute_with_empty_dirt_is_a_noop() {
        let img = scene_with(ObjectClass::Cyclist, 50.0, 30.0);
        let bank = TemplateBank::canonical();
        let clean = ResponseField::compute(&img, &bank);
        let mut patched = clean.clone();
        let window = patched.recompute_window(&img, &bank, &DirtyRect::empty());
        assert!(window.is_empty());
        assert_eq!(patched, clean);
    }

    #[test]
    fn recompute_with_mismatched_shape_falls_back_to_full() {
        let small = scene_with(ObjectClass::Car, 40.0, 30.0);
        let bank = TemplateBank::canonical();
        let mut field = ResponseField::compute(&Image::filled(64, 32, [96.0; 3]), &bank);
        let window = field.recompute_window(&small, &bank, &DirtyRect::new(0, 0, 4, 4));
        assert_eq!(window, DirtyRect::full(64, 32));
        assert_eq!(field, ResponseField::compute(&small, &bank));
    }

    #[test]
    fn coordinate_roundtrip() {
        for v in [0.0f32, 3.0, 17.5] {
            let full = ResponseField::to_full_res(v);
            let back = ResponseField::to_backbone(full);
            assert!((back - v).abs() < 1e-5);
        }
    }
}
