//! Exact hypervolume indicators for 2-D and 3-D fronts.
//!
//! The hypervolume (size of the objective-space region dominated by a front
//! up to a reference point) is the standard scalar measure of front
//! quality; the `table2_config` harness uses it to trace the convergence of
//! the attack's three-objective search.

use crate::objective::Direction;

/// Exact hypervolume of a set of objective vectors.
///
/// All vectors are first mapped to minimisation via `directions`; the
/// reference point `reference` (given in the *original* scale) must be
/// dominated by (worse than) every point for that point to contribute.
/// Points not dominating the reference are ignored. Supports 1, 2 and 3
/// objectives.
///
/// # Panics
///
/// Panics if dimensions disagree or the dimensionality is unsupported.
///
/// # Examples
///
/// ```
/// use bea_nsga2::hypervolume::hypervolume;
/// use bea_nsga2::Direction;
///
/// let dirs = [Direction::Minimize, Direction::Minimize];
/// let front = vec![vec![1.0, 2.0], vec![2.0, 1.0]];
/// let hv = hypervolume(&front, &[3.0, 3.0], &dirs);
/// // Union of two 2x1 / 1x2 rectangles with a 1x1 overlap = 3.
/// assert!((hv - 3.0).abs() < 1e-12);
/// ```
pub fn hypervolume(points: &[Vec<f64>], reference: &[f64], directions: &[Direction]) -> f64 {
    assert_eq!(reference.len(), directions.len(), "reference must cover every objective");
    let dim = directions.len();
    // Map everything to minimisation.
    let reference: Vec<f64> =
        directions.iter().zip(reference).map(|(d, &r)| d.to_minimization(r)).collect();
    let mapped: Vec<Vec<f64>> = points
        .iter()
        .map(|p| {
            assert_eq!(p.len(), dim, "point dimensionality mismatch");
            directions.iter().zip(p).map(|(d, &v)| d.to_minimization(v)).collect()
        })
        .filter(|p: &Vec<f64>| p.iter().zip(&reference).all(|(v, r)| v < r))
        .collect();
    if mapped.is_empty() {
        return 0.0;
    }
    match dim {
        1 => reference[0] - mapped.iter().map(|p| p[0]).fold(f64::INFINITY, f64::min),
        2 => hv2(&mapped, &reference),
        3 => hv3(&mapped, &reference),
        _ => panic!("hypervolume supports 1-3 objectives, got {dim}"),
    }
}

/// 2-D hypervolume by sweeping the staircase of the non-dominated points.
fn hv2(points: &[Vec<f64>], reference: &[f64]) -> f64 {
    let mut sorted: Vec<(f64, f64)> = points.iter().map(|p| (p[0], p[1])).collect();
    sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
    let mut volume = 0.0;
    let mut best_y = reference[1];
    for (x, y) in sorted {
        if y < best_y {
            volume += (reference[0] - x) * (best_y - y);
            best_y = y;
        }
    }
    volume
}

/// 3-D hypervolume by slicing along the third axis: between consecutive
/// z-levels, the dominated area is the 2-D hypervolume of the points with
/// z at or below the slab.
fn hv3(points: &[Vec<f64>], reference: &[f64]) -> f64 {
    let mut zs: Vec<f64> = points.iter().map(|p| p[2]).collect();
    zs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    zs.dedup();
    zs.push(reference[2]);
    let mut volume = 0.0;
    for w in zs.windows(2) {
        let (z0, z1) = (w[0], w[1]);
        if z1 <= z0 {
            continue;
        }
        let slab: Vec<Vec<f64>> =
            points.iter().filter(|p| p[2] <= z0).map(|p| vec![p[0], p[1]]).collect();
        if !slab.is_empty() {
            volume += hv2(&slab, &reference[..2]) * (z1 - z0);
        }
    }
    volume
}

#[cfg(test)]
mod tests {
    use super::*;

    const MIN2: [Direction; 2] = [Direction::Minimize, Direction::Minimize];
    const MIN3: [Direction; 3] = [Direction::Minimize, Direction::Minimize, Direction::Minimize];

    #[test]
    fn single_point_2d() {
        let hv = hypervolume(&[vec![1.0, 1.0]], &[3.0, 4.0], &MIN2);
        assert!((hv - 6.0).abs() < 1e-12);
    }

    #[test]
    fn dominated_points_add_nothing() {
        let alone = hypervolume(&[vec![1.0, 1.0]], &[3.0, 3.0], &MIN2);
        let with_dominated = hypervolume(&[vec![1.0, 1.0], vec![2.0, 2.0]], &[3.0, 3.0], &MIN2);
        assert!((alone - with_dominated).abs() < 1e-12);
    }

    #[test]
    fn points_beyond_reference_are_ignored() {
        let hv = hypervolume(&[vec![5.0, 5.0]], &[3.0, 3.0], &MIN2);
        assert_eq!(hv, 0.0);
        assert_eq!(hypervolume(&[], &[3.0, 3.0], &MIN2), 0.0);
    }

    #[test]
    fn staircase_union() {
        let front = vec![vec![1.0, 3.0], vec![2.0, 2.0], vec![3.0, 1.0]];
        let hv = hypervolume(&front, &[4.0, 4.0], &MIN2);
        // Union area: columns x∈[1,2)->height 1, [2,3)->2, [3,4)->3 = 3+2+1=6.
        assert!((hv - 6.0).abs() < 1e-12);
    }

    #[test]
    fn one_dimensional() {
        let hv = hypervolume(&[vec![2.0], vec![5.0]], &[10.0], &[Direction::Minimize]);
        assert!((hv - 8.0).abs() < 1e-12);
    }

    #[test]
    fn three_dimensional_box() {
        let hv = hypervolume(&[vec![0.0, 0.0, 0.0]], &[2.0, 3.0, 4.0], &MIN3);
        assert!((hv - 24.0).abs() < 1e-12);
    }

    #[test]
    fn three_dimensional_union() {
        // Two unit-corner boxes: (0,0,1) and (1,1,0) with reference (2,2,2).
        let hv = hypervolume(&[vec![0.0, 0.0, 1.0], vec![1.0, 1.0, 0.0]], &[2.0, 2.0, 2.0], &MIN3);
        // Box A: [0,2]x[0,2]x[1,2] = 4; box B: [1,2]x[1,2]x[0,2] = 2;
        // overlap: [1,2]x[1,2]x[1,2] = 1 -> union 5.
        assert!((hv - 5.0).abs() < 1e-12, "got {hv}");
    }

    #[test]
    fn maximization_directions_are_mapped() {
        let dirs = [Direction::Maximize, Direction::Minimize];
        // Point (5, 1) with reference (2, 3): mapped (-5, 1) vs (-2, 3)
        // -> box 3 x 2 = 6.
        let hv = hypervolume(&[vec![5.0, 1.0]], &[2.0, 3.0], &dirs);
        assert!((hv - 6.0).abs() < 1e-12);
    }

    #[test]
    fn hypervolume_is_monotone_in_front_quality() {
        let weak = hypervolume(&[vec![2.0, 2.0]], &[4.0, 4.0], &MIN2);
        let strong = hypervolume(&[vec![1.0, 1.0]], &[4.0, 4.0], &MIN2);
        assert!(strong > weak);
        let more_points = hypervolume(&[vec![2.0, 2.0], vec![1.0, 3.0]], &[4.0, 4.0], &MIN2);
        assert!(more_points > weak);
    }

    #[test]
    #[should_panic(expected = "1-3 objectives")]
    fn four_dimensions_unsupported() {
        let dirs = [Direction::Minimize; 4];
        let _ = hypervolume(&[vec![0.0; 4]], &[1.0; 4], &dirs);
    }
}
