//! Pre-packed weight panels for the transpose (NT) GEMM.
//!
//! The blocked `a · bᵀ` kernel ([`crate::gemm`]) wants each `NR`-column
//! panel of `b` transposed to k-major so the microkernel streams it
//! contiguously. When `b` is a layer's weight matrix that layout never
//! changes between calls, yet the per-call kernel re-derives it for every
//! column tile of every forward. [`PackedWeights`] hoists that transpose
//! to layer construction: it stores the **identical** panel layout the
//! per-call kernel would build (`panel[k * NR + nj] = b[(j0 + nj) * kk + k]`
//! for each full `NR`-wide tile at column `j0`), so the prepacked GEMM
//! reads the same values in the same ascending-k order and stays
//! bit-identical to both the per-call blocked kernel and the reference
//! loop nest.
//!
//! Ragged tail columns (`n % NR != 0`) are deliberately *not* packed —
//! the per-call kernel computes them straight from `b`'s rows, and the
//! prepacked path does the same, reading the original weight matrix.
//!
//! Scope: only the NT product with a *constant* right-hand side benefits.
//! `Linear` (`y = x·Wᵀ`) and therefore every `MultiHeadAttention`
//! projection pre-pack. Attention's `q·kᵀ` has a data-dependent right-hand
//! side, so it keeps the per-call pack (drawn from the scratch arena);
//! `Conv2d` lowers to the NN kernel, which streams `b` row-major and never
//! packs at all.

use crate::error::{Result, TensorError};
use crate::gemm;
use crate::matrix::Matrix;

/// A weight matrix's NT-GEMM panels, transposed k-major once at
/// construction and reused by every forward pass.
///
/// Packed from an `out × in` weight matrix (the right-hand side `b` of
/// `a · bᵀ`): one `in × NR` k-major panel per full `NR`-wide tile of
/// output columns. See the module docs for the exact layout contract.
#[derive(Debug, Clone)]
pub struct PackedWeights {
    /// `b.rows()` — output features of the owning layer.
    rows: usize,
    /// `b.cols()` — the shared inner (k) dimension.
    inner: usize,
    /// Concatenated `inner × NR` panels for the `rows / NR` full tiles.
    panels: Vec<f32>,
}

impl PackedWeights {
    /// Columns per packed panel (the microkernel's `NR`).
    pub const TILE_COLS: usize = gemm::NR;

    /// Packs `weight` (shape `out × in`) into k-major `NR`-wide panels.
    pub fn pack(weight: &Matrix) -> Self {
        let rows = weight.rows();
        let inner = weight.cols();
        let nr = Self::TILE_COLS;
        let full = rows - rows % nr;
        let b = weight.as_slice();
        let mut panels = vec![0.0f32; full * inner];
        for (tile, j0) in (0..full).step_by(nr).enumerate() {
            let panel = &mut panels[tile * inner * nr..(tile + 1) * inner * nr];
            for k in 0..inner {
                for nj in 0..nr {
                    panel[k * nr + nj] = b[(j0 + nj) * inner + k];
                }
            }
        }
        Self { rows, inner, panels }
    }

    /// Output-feature count of the packed weight (`b.rows()`).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Inner (k) dimension of the packed weight (`b.cols()`).
    pub fn inner_dim(&self) -> usize {
        self.inner
    }

    /// Number of full `NR`-wide tiles that were packed; the remaining
    /// `rows % NR` ragged columns are read from the original matrix.
    pub fn full_tiles(&self) -> usize {
        self.rows / Self::TILE_COLS
    }

    /// The k-major panel for full tile `tile` (length `inner × NR`).
    ///
    /// # Panics
    ///
    /// Panics if `tile >= full_tiles()`.
    pub fn panel(&self, tile: usize) -> &[f32] {
        let span = self.inner * Self::TILE_COLS;
        &self.panels[tile * span..(tile + 1) * span]
    }

    /// All full-tile panels concatenated (the layout the banded NT
    /// microkernel consumes directly).
    pub(crate) fn all_panels(&self) -> &[f32] {
        &self.panels
    }

    /// Whether this pack was built from a matrix of `weight`'s shape.
    pub fn matches_shape(&self, weight: &Matrix) -> bool {
        self.rows == weight.rows() && self.inner == weight.cols()
    }
}

/// Prepacked `a · weightᵀ`: the blocked NT product reusing `packed`'s
/// construction-time panels instead of re-packing per call. Bit-identical
/// to [`crate::gemm::matmul_nt_blocked`] (and, for finite inputs, to
/// `a.matmul(&weight.transpose())`).
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] unless `a.cols() ==
/// weight.cols()` and `packed` was built from a matrix of `weight`'s
/// shape.
pub fn matmul_nt_packed(a: &Matrix, weight: &Matrix, packed: &PackedWeights) -> Result<Matrix> {
    if a.cols() != weight.cols() || !packed.matches_shape(weight) {
        return Err(TensorError::ShapeMismatch {
            op: "matmul_nt_packed",
            lhs: vec![a.rows(), a.cols()],
            rhs: vec![packed.rows(), packed.inner_dim()],
        });
    }
    let mut out = Matrix::zeros(a.rows(), weight.rows());
    gemm::gemm_nt_prepacked(
        a.rows(),
        a.cols(),
        weight.rows(),
        a.as_slice(),
        packed,
        weight.as_slice(),
        out.as_mut_slice(),
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy(rows: usize, cols: usize, phase: f32) -> Matrix {
        let data = (0..rows * cols).map(|i| ((i as f32) * 0.53 + phase).sin() * 2.5).collect();
        Matrix::from_vec(rows, cols, data).unwrap()
    }

    #[test]
    fn panel_layout_matches_the_per_call_pack() {
        // The per-call kernel fills pack[k*NR + nj] = b[(j0+nj)*kk + k];
        // the construction-time panels must hold the same values.
        let nr = PackedWeights::TILE_COLS;
        let weight = noisy(3 * nr + 5, 7, 0.9); // 3 full tiles + ragged tail
        let packed = PackedWeights::pack(&weight);
        assert_eq!(packed.full_tiles(), 3);
        for tile in 0..packed.full_tiles() {
            let j0 = tile * nr;
            let panel = packed.panel(tile);
            for k in 0..weight.cols() {
                for nj in 0..nr {
                    assert_eq!(panel[k * nr + nj], weight.at(j0 + nj, k), "tile {tile} k {k}");
                }
            }
        }
    }

    #[test]
    fn prepacked_matches_per_call_blocked_across_shapes() {
        // Shapes straddling tile boundaries, including NR-ragged and
        // fully-ragged (n < NR) column counts.
        for (m, kk, n) in
            [(1, 1, 1), (5, 6, 9), (12, 24, 12), (3, 2, 17), (4, 8, 8), (7, 3, 23), (2, 5, 7)]
        {
            let a = noisy(m, kk, 0.7);
            let weight = noisy(n, kk, 1.3);
            let packed = PackedWeights::pack(&weight);
            assert_eq!(
                matmul_nt_packed(&a, &weight, &packed).unwrap(),
                gemm::matmul_nt_blocked(&a, &weight).unwrap(),
                "shape ({m},{kk},{n})"
            );
        }
    }

    #[test]
    fn shape_mismatches_are_rejected() {
        let a = noisy(2, 4, 0.0);
        let weight = noisy(9, 4, 0.1);
        let packed = PackedWeights::pack(&weight);
        // a's inner dim disagrees with the weight.
        assert!(matmul_nt_packed(&noisy(2, 3, 0.2), &weight, &packed).is_err());
        // pack built from a different weight shape.
        let stale = PackedWeights::pack(&noisy(8, 4, 0.3));
        assert!(matmul_nt_packed(&a, &weight, &stale).is_err());
        assert!(matmul_nt_packed(&a, &weight, &packed).is_ok());
    }
}
