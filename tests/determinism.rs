//! Repeatability across the whole stack: the paper fixes seeds "for
//! repeatability"; this reproduction makes every layer a pure function of
//! its seed.

use butterfly_effect_attack::image::NoiseKind;
use butterfly_effect_attack::scene::{FrameSequence, SceneGenerator};
use butterfly_effect_attack::tensor::WeightInit;
use butterfly_effect_attack::{Architecture, Detector, ModelZoo, SyntheticKitti};

#[test]
fn scenes_are_pure_functions_of_seed_and_index() {
    let a = SceneGenerator::new(160, 56, 42);
    let b = SceneGenerator::new(160, 56, 42);
    for index in [0usize, 3, 11] {
        assert_eq!(a.scene(index).render(), b.scene(index).render());
        assert_eq!(a.scene(index).ground_truths(), b.scene(index).ground_truths());
    }
    assert_ne!(
        a.scene(0).render(),
        SceneGenerator::new(160, 56, 43).scene(0).render(),
        "different generator seeds must give different scenes"
    );
}

#[test]
fn datasets_are_stable_across_instances() {
    let a = SyntheticKitti::evaluation_set();
    let b = SyntheticKitti::evaluation_set();
    assert_eq!(a.image(10), b.image(10));
    assert_eq!(a.scene(5).ground_truths(), b.scene(5).ground_truths());
}

#[test]
fn models_are_pure_functions_of_seed() {
    let img = SyntheticKitti::smoke_set().image(0);
    let zoo = ModelZoo::with_defaults();
    for arch in Architecture::ALL {
        let a = zoo.model(arch, 7).detect(&img);
        let b = zoo.model(arch, 7).detect(&img);
        assert_eq!(a, b, "{arch} detection must be repeatable");
    }
}

#[test]
fn noise_and_rng_streams_are_repeatable() {
    let a = NoiseKind::SaltPepper { density: 0.05, amplitude: 120 }.generate(
        48,
        24,
        &mut WeightInit::from_seed(9),
    );
    let b = NoiseKind::SaltPepper { density: 0.05, amplitude: 120 }.generate(
        48,
        24,
        &mut WeightInit::from_seed(9),
    );
    assert_eq!(a, b);
}

#[test]
fn sequences_are_repeatable() {
    let generator = SceneGenerator::new(128, 48, 3);
    let a = FrameSequence::generate(&generator, 1, 4);
    let b = FrameSequence::generate(&generator, 1, 4);
    for t in 0..4 {
        assert_eq!(a.frame(t), b.frame(t));
    }
}
