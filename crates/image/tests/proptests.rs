//! Property-based tests of images, masks, regions and I/O.

use bea_image::{io, FilterMask, Image, NoiseKind, Region, RegionConstraint};
use bea_tensor::WeightInit;
use proptest::prelude::*;

fn arb_image(width: usize, height: usize) -> impl Strategy<Value = Image> {
    proptest::collection::vec(0u8..=255, width * height * 3).prop_map(move |bytes| {
        let mut img = Image::black(width, height);
        for y in 0..height {
            for x in 0..width {
                let i = (y * width + x) * 3;
                img.put_pixel(x, y, [bytes[i] as f32, bytes[i + 1] as f32, bytes[i + 2] as f32]);
            }
        }
        img
    })
}

fn arb_mask(width: usize, height: usize) -> impl Strategy<Value = FilterMask> {
    proptest::collection::vec(-255i16..=255, 3 * width * height)
        .prop_map(move |v| FilterMask::from_values(width, height, v).expect("length matches"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn ppm_roundtrip_preserves_integer_images(img in arb_image(6, 4)) {
        let mut buf = Vec::new();
        io::write_ppm(&img, &mut buf).expect("in-memory write");
        let back = io::read_ppm(&buf[..]).expect("parse back");
        prop_assert_eq!(back, img);
    }

    #[test]
    fn mask_apply_is_clamped_and_reversible_in_range(
        img in arb_image(5, 5),
        mask in arb_mask(5, 5),
    ) {
        let out = mask.apply(&img);
        for &v in out.as_feature_map().as_slice() {
            prop_assert!((0.0..=255.0).contains(&v));
        }
        // Where no clamping occurred, subtracting the mask recovers the
        // original exactly.
        for y in 0..5 {
            for x in 0..5 {
                for c in 0..3 {
                    let orig = img.at(c, y, x);
                    let delta = mask.at(c, y, x) as f32;
                    let sum = orig + delta;
                    if (0.0..=255.0).contains(&sum) {
                        prop_assert_eq!(out.at(c, y, x), sum);
                    }
                }
            }
        }
    }

    #[test]
    fn region_constraint_apply_is_idempotent(mask in arb_mask(10, 6)) {
        let mut once = mask.clone();
        RegionConstraint::RightHalf.apply(&mut once);
        let mut twice = once.clone();
        RegionConstraint::RightHalf.apply(&mut twice);
        prop_assert_eq!(&once, &twice);
        prop_assert!(RegionConstraint::RightHalf.is_satisfied(&once));
    }

    #[test]
    fn halves_partition_every_pixel(x in 0usize..50, y in 0usize..20) {
        let left = RegionConstraint::LeftHalf.allows(x, y, 50, 20);
        let right = RegionConstraint::RightHalf.allows(x, y, 50, 20);
        prop_assert!(left != right, "every pixel is in exactly one half");
        prop_assert!(RegionConstraint::Full.allows(x, y, 50, 20));
    }

    #[test]
    fn region_contains_matches_bounds(x0 in 0usize..10, y0 in 0usize..10, w in 0usize..10, h in 0usize..10) {
        let r = Region::new(x0, y0, x0 + w, y0 + h);
        prop_assert_eq!(r.area(), w * h);
        for x in 0..20 {
            for y in 0..20 {
                let inside = x >= x0 && x < x0 + w && y >= y0 && y < y0 + h;
                prop_assert_eq!(r.contains(x, y), inside);
            }
        }
    }

    #[test]
    fn noise_masks_stay_in_gene_range(seed in 0u64..200, kind_idx in 0usize..4) {
        let kind = NoiseKind::default_palette()[kind_idx * 2];
        let mask = kind.generate(16, 12, &mut WeightInit::from_seed(seed));
        for &v in mask.as_slice() {
            prop_assert!((-255..=255).contains(&v));
        }
    }

    #[test]
    fn shifted_mask_norm_never_grows(mask in arb_mask(8, 6), dx in -4i32..4, dy in -4i32..4) {
        use bea_tensor::norm::NormKind;
        let shifted = mask.shifted(dx, dy);
        prop_assert!(shifted.norm(NormKind::L2) <= mask.norm(NormKind::L2) + 1e-9);
        prop_assert!(shifted.perturbed_pixel_count() <= mask.perturbed_pixel_count());
    }

    #[test]
    fn psnr_of_noisier_image_is_lower(img in arb_image(6, 6), seed in 0u64..100) {
        use bea_image::metrics::psnr;
        let small = NoiseKind::Uniform { amplitude: 5 }
            .generate(6, 6, &mut WeightInit::from_seed(seed))
            .apply(&img);
        let large = NoiseKind::Uniform { amplitude: 120 }
            .generate(6, 6, &mut WeightInit::from_seed(seed))
            .apply(&img);
        let p_small = psnr(&img, &small).unwrap();
        let p_large = psnr(&img, &large).unwrap();
        prop_assert!(p_small >= p_large - 1e-9, "psnr {p_small} vs {p_large}");
    }
}
