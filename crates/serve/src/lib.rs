//! `bea-serve`: a dependency-free attack-as-a-service layer.
//!
//! The crate turns the butterfly-effect attack stack into a long-running
//! service using nothing outside `std` (plus the workspace's raw-epoll
//! `bea-reactor` crate): a hand-rolled incremental HTTP/1.1 layer over
//! [`std::net::TcpListener`] ([`http`]), an event-driven connection
//! front-end multiplexing thousands of sockets on one thread
//! (`reactor`, Linux; a thread-per-connection fallback elsewhere),
//! per-tenant token-bucket admission and in-system quotas ([`tenant`]),
//! a tenant-fair bounded job queue with explicit backpressure
//! (`bea-core`'s `FairQueue`), a worker pool that drains jobs through
//! the same deterministic campaign path batch runs use — stacking
//! compatible jobs into shared forward passes via `bea-core`'s
//! `BatchGate` ([`server`]) — Prometheus-text metrics ([`metrics`]) and
//! a minimal blocking client for load generation and tests
//! ([`client`]).
//!
//! # Endpoints
//!
//! | Endpoint | Behaviour |
//! |---|---|
//! | `POST /v1/attacks` | Submit a JSON job: `202` + id, or `429` + `Retry-After` when the queue is full |
//! | `GET /v1/attacks/{id}` | Job status (`queued` / `running` / `done` / `failed`) |
//! | `GET /v1/attacks/{id}/csv` | The persisted cell CSV once done (`409` before) |
//! | `GET /healthz` | Liveness plus queue depth and in-flight count |
//! | `GET /metrics` | Prometheus text: queue gauges, job counters, cache counters, latency histograms |
//! | `POST /v1/shutdown` | Ask the embedding process to drain and stop |
//!
//! # Determinism contract
//!
//! A served job is one campaign cell: its NSGA-II seed derives from
//! `(base_seed, model_seed, image_index)` exactly as a batch campaign
//! derives it, and its result persists through the same store writer —
//! so the CSV served for a job is byte-identical to a direct
//! `Campaign` run of the same cell.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod http;
pub mod metrics;
pub mod progress;
#[cfg(unix)]
pub(crate) mod reactor;
pub mod router;
pub mod server;
pub mod tenant;

pub use client::{Client, ClientTimeouts, HttpConnection, HttpResponse};
pub use metrics::{percentile, Metrics};
pub use progress::ProgressFeed;
pub use router::{Router, ShardSet};
pub use server::{Server, ServerConfig, ShutdownReport};
pub use tenant::{AdmitError, TenantGovernor, TenantPolicy};
