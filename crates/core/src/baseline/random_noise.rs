//! The random-noise baseline.
//!
//! Related-work anchor: the paper contrasts optimisation-based attacks
//! with "adding random noises such as Gaussian or salt-and-pepper noises".
//! This baseline samples random masks at a fixed L2 budget and keeps the
//! best; any search method must beat it at equal evaluation budget.

use crate::objectives::degradation::obj_degrad;
use crate::objectives::intensity::obj_intensity;
use bea_detect::Detector;
use bea_image::{FilterMask, Image, NoiseKind, RegionConstraint};
use bea_tensor::norm::NormKind;
use bea_tensor::WeightInit;

/// Result of the random-noise baseline.
#[derive(Debug, Clone)]
pub struct RandomNoiseResult {
    /// The best mask found.
    pub best_mask: FilterMask,
    /// Its `obj_degrad` (lower = stronger).
    pub best_degrad: f64,
    /// Its L2 intensity.
    pub best_intensity: f64,
    /// Number of detector evaluations spent.
    pub evaluations: usize,
}

/// Samples `trials` random Gaussian masks rescaled to (at most) the given
/// L2 `budget`, evaluates each against the detector, and returns the
/// strongest.
///
/// # Panics
///
/// Panics if `trials` is zero.
pub fn random_noise_baseline<D: Detector + ?Sized>(
    detector: &D,
    img: &Image,
    budget: f64,
    trials: usize,
    constraint: RegionConstraint,
    seed: u64,
) -> RandomNoiseResult {
    assert!(trials > 0, "the baseline needs at least one trial");
    let clean = detector.detect(img);
    let mut rng = WeightInit::from_seed(seed);
    let mut best: Option<RandomNoiseResult> = None;
    let mut evaluations = 0usize;
    for _ in 0..trials {
        let mut mask =
            NoiseKind::Gaussian { std_dev: 20.0 }.generate(img.width(), img.height(), &mut rng);
        constraint.apply(&mut mask);
        rescale_to_budget(&mut mask, budget);
        evaluations += 1;
        let degrad = obj_degrad(&clean, &detector.detect(&mask.apply(img)));
        let intensity = obj_intensity(&mask, NormKind::L2);
        let better = best.as_ref().is_none_or(|b| degrad < b.best_degrad);
        if better {
            best = Some(RandomNoiseResult {
                best_mask: mask,
                best_degrad: degrad,
                best_intensity: intensity,
                evaluations,
            });
        }
    }
    let mut result = best.expect("trials > 0 guarantees a result");
    result.evaluations = evaluations;
    result
}

/// Scales the mask's values so its L2 norm does not exceed `budget`.
fn rescale_to_budget(mask: &mut FilterMask, budget: f64) {
    let norm = mask.norm(NormKind::L2);
    if norm <= budget || norm == 0.0 {
        return;
    }
    let factor = budget / norm;
    for v in mask.as_mut_slice() {
        *v = ((*v as f64) * factor).round() as i16;
    }
    mask.clamp_inplace();
}

#[cfg(test)]
mod tests {
    use super::*;
    use bea_detect::{Detection, Prediction};
    use bea_scene::{BBox, ObjectClass};

    struct Toy;

    impl Detector for Toy {
        fn detect(&self, img: &Image) -> Prediction {
            let bright = img.pixel(img.width() - 1, 0)[0] > 60.0;
            if bright {
                Prediction::new()
            } else {
                Prediction::from_detections(vec![Detection::new(
                    ObjectClass::Car,
                    BBox::new(4.0, 4.0, 4.0, 4.0),
                    0.9,
                )])
            }
        }

        fn name(&self) -> &str {
            "toy"
        }
    }

    #[test]
    fn respects_budget() {
        let img = Image::black(16, 8);
        let result = random_noise_baseline(&Toy, &img, 300.0, 10, RegionConstraint::Full, 1);
        assert!(result.best_intensity <= 300.0 * 1.05, "got {}", result.best_intensity);
        assert_eq!(result.evaluations, 10);
    }

    #[test]
    fn is_deterministic_per_seed() {
        let img = Image::black(16, 8);
        let a = random_noise_baseline(&Toy, &img, 500.0, 5, RegionConstraint::Full, 3);
        let b = random_noise_baseline(&Toy, &img, 500.0, 5, RegionConstraint::Full, 3);
        assert_eq!(a.best_mask, b.best_mask);
        assert_eq!(a.best_degrad, b.best_degrad);
    }

    #[test]
    fn constraint_is_enforced() {
        let img = Image::black(16, 8);
        let result = random_noise_baseline(&Toy, &img, 800.0, 6, RegionConstraint::RightHalf, 2);
        assert!(RegionConstraint::RightHalf.is_satisfied(&result.best_mask));
    }

    #[test]
    fn rescale_shrinks_only_when_needed() {
        let mut big = FilterMask::from_values(2, 2, vec![200; 12]).unwrap();
        rescale_to_budget(&mut big, 100.0);
        assert!(big.norm(NormKind::L2) <= 101.0);
        let mut small = FilterMask::zeros(2, 2);
        small.set(0, 0, 0, 10);
        let before = small.clone();
        rescale_to_budget(&mut small, 100.0);
        assert_eq!(small, before, "already within budget: untouched");
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn zero_trials_panics() {
        let img = Image::black(8, 8);
        let _ = random_noise_baseline(&Toy, &img, 100.0, 0, RegionConstraint::Full, 1);
    }
}
