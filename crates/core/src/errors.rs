//! The qualitative error-transition taxonomy (paper Section V-B).
//!
//! The butterfly effect attack degrades predictions in five observed ways:
//!
//! 1. the bounding box changes its size (or drifts),
//! 2. TP → FN — a previously detected object disappears (Figure 1),
//! 3. TN → FP — a ghost object appears (Figure 5),
//! 4. FN → TP — a previously missed object becomes detected,
//! 5. FP → TN — a previous ghost disappears.
//!
//! [`TransitionReport::analyze`] classifies the difference between the
//! clean and the perturbed prediction relative to ground truth.

use bea_detect::{Detection, Prediction};
use bea_scene::{BBox, ObjectClass};
use std::fmt;

/// One observed prediction transition caused by the perturbation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ErrorTransition {
    /// A matched ground-truth object is no longer detected.
    TpToFn {
        /// The ground-truth box that lost its detection.
        ground_truth: BBox,
        /// Its class.
        class: ObjectClass,
    },
    /// A ghost detection appeared where neither ground truth nor the clean
    /// prediction had anything.
    TnToFp {
        /// The ghost detection's box.
        ghost: BBox,
        /// The ghost detection's class.
        class: ObjectClass,
    },
    /// A previously missed ground-truth object became detected.
    FnToTp {
        /// The ground-truth box that gained a detection.
        ground_truth: BBox,
        /// Its class.
        class: ObjectClass,
    },
    /// A clean-prediction ghost disappeared.
    FpToTn {
        /// The vanished ghost's box (from the clean prediction).
        ghost: BBox,
        /// The vanished ghost's class.
        class: ObjectClass,
    },
    /// An object detected in both predictions changed its box
    /// substantially (size and/or position).
    BoxDeformed {
        /// The class of the object.
        class: ObjectClass,
        /// IoU between the clean and the perturbed box.
        overlap: f32,
        /// Perturbed-to-clean area ratio (`< 1` = shrink, Figure 4).
        area_ratio: f32,
    },
}

impl fmt::Display for ErrorTransition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ErrorTransition::TpToFn { class, .. } => write!(f, "TP->FN ({class})"),
            ErrorTransition::TnToFp { class, .. } => write!(f, "TN->FP ({class})"),
            ErrorTransition::FnToTp { class, .. } => write!(f, "FN->TP ({class})"),
            ErrorTransition::FpToTn { class, .. } => write!(f, "FP->TN ({class})"),
            ErrorTransition::BoxDeformed { class, overlap, area_ratio } => {
                write!(f, "box deformed ({class}, IoU {overlap:.2}, area x{area_ratio:.2})")
            }
        }
    }
}

/// Aggregated transition counts plus the individual events.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TransitionReport {
    /// All classified transitions.
    pub transitions: Vec<ErrorTransition>,
    /// Count of TP→FN events.
    pub tp_to_fn: usize,
    /// Count of TN→FP events.
    pub tn_to_fp: usize,
    /// Count of FN→TP events.
    pub fn_to_tp: usize,
    /// Count of FP→TN events.
    pub fp_to_tn: usize,
    /// Count of box deformations.
    pub box_deformed: usize,
}

impl TransitionReport {
    /// IoU above which a detection counts as matching a ground-truth
    /// object.
    pub const MATCH_IOU: f32 = 0.5;
    /// IoU below which two matched boxes of one object count as deformed.
    /// Drift with a clean-vs-perturbed IoU in `[DEFORM_IOU, 1)` is a
    /// deliberate dead-band: it lowers `obj_degrad` below 1 without
    /// registering a taxonomy event (sub-pixel jitter is not an error).
    pub const DEFORM_IOU: f32 = 0.85;
    /// Relative area change above which a box counts as deformed.
    pub const DEFORM_AREA: f32 = 0.2;

    /// Classifies the transitions between the clean and the perturbed
    /// prediction of one image, relative to ground truth.
    pub fn analyze(
        ground_truth: &[(ObjectClass, BBox)],
        clean: &Prediction,
        perturbed: &Prediction,
    ) -> Self {
        let clean_matches = match_to_ground_truth(ground_truth, clean);
        let pert_matches = match_to_ground_truth(ground_truth, perturbed);
        let mut report = TransitionReport::default();

        // Ground-truth-centric transitions.
        for (gi, &(class, bbox)) in ground_truth.iter().enumerate() {
            match (clean_matches.by_gt[gi], pert_matches.by_gt[gi]) {
                (Some(ci), Some(pi)) => {
                    let before = clean.as_slice()[ci];
                    let after = perturbed.as_slice()[pi];
                    let overlap = before.bbox.iou(&after.bbox);
                    let area_ratio = if before.bbox.area() > 0.0 {
                        after.bbox.area() / before.bbox.area()
                    } else {
                        1.0
                    };
                    if overlap < Self::DEFORM_IOU || (area_ratio - 1.0).abs() > Self::DEFORM_AREA {
                        report.push(ErrorTransition::BoxDeformed { class, overlap, area_ratio });
                    }
                }
                (Some(_), None) => {
                    report.push(ErrorTransition::TpToFn { ground_truth: bbox, class })
                }
                (None, Some(_)) => {
                    report.push(ErrorTransition::FnToTp { ground_truth: bbox, class })
                }
                (None, None) => {}
            }
        }

        // Ghost-centric transitions: clean ghosts that vanished...
        for (ci, det) in clean.iter().enumerate() {
            if clean_matches.matched_detections.contains(&ci) {
                continue; // not a ghost
            }
            let survives =
                perturbed.of_class(det.class).any(|p| p.bbox.iou(&det.bbox) >= Self::MATCH_IOU);
            if !survives {
                report.push(ErrorTransition::FpToTn { ghost: det.bbox, class: det.class });
            }
        }
        // ...and perturbed ghosts that appeared.
        for (pi, det) in perturbed.iter().enumerate() {
            if pert_matches.matched_detections.contains(&pi) {
                continue; // matches ground truth: not a ghost
            }
            let existed =
                clean.of_class(det.class).any(|c| c.bbox.iou(&det.bbox) >= Self::MATCH_IOU);
            if !existed {
                report.push(ErrorTransition::TnToFp { ghost: det.bbox, class: det.class });
            }
        }
        report
    }

    fn push(&mut self, transition: ErrorTransition) {
        match transition {
            ErrorTransition::TpToFn { .. } => self.tp_to_fn += 1,
            ErrorTransition::TnToFp { .. } => self.tn_to_fp += 1,
            ErrorTransition::FnToTp { .. } => self.fn_to_tp += 1,
            ErrorTransition::FpToTn { .. } => self.fp_to_tn += 1,
            ErrorTransition::BoxDeformed { .. } => self.box_deformed += 1,
        }
        self.transitions.push(transition);
    }

    /// Total number of classified transitions.
    pub fn total(&self) -> usize {
        self.transitions.len()
    }

    /// `true` when the perturbation caused no classified change.
    pub fn is_clean(&self) -> bool {
        self.transitions.is_empty()
    }

    /// Accumulates another report's counts and events into this one.
    pub fn merge(&mut self, other: &TransitionReport) {
        self.tp_to_fn += other.tp_to_fn;
        self.tn_to_fp += other.tn_to_fp;
        self.fn_to_tp += other.fn_to_tp;
        self.fp_to_tn += other.fp_to_tn;
        self.box_deformed += other.box_deformed;
        self.transitions.extend(other.transitions.iter().copied());
    }
}

/// Greedy same-class IoU ≥ 0.5 matching of detections to ground truth.
struct GtMatch {
    /// `by_gt[g]` = index of the detection matched to ground-truth `g`.
    by_gt: Vec<Option<usize>>,
    /// Detection indices that matched some ground truth.
    matched_detections: Vec<usize>,
}

fn match_to_ground_truth(ground_truth: &[(ObjectClass, BBox)], prediction: &Prediction) -> GtMatch {
    let dets: &[Detection] = prediction.as_slice();
    let mut pairs: Vec<(usize, usize, f32)> = Vec::new();
    for (di, det) in dets.iter().enumerate() {
        for (gi, (class, bbox)) in ground_truth.iter().enumerate() {
            if det.class == *class {
                let iou = det.bbox.iou(bbox);
                if iou >= TransitionReport::MATCH_IOU {
                    pairs.push((di, gi, iou));
                }
            }
        }
    }
    pairs.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap_or(std::cmp::Ordering::Equal));
    let mut by_gt = vec![None; ground_truth.len()];
    let mut det_used = vec![false; dets.len()];
    let mut matched_detections = Vec::new();
    for (di, gi, _) in pairs {
        if det_used[di] || by_gt[gi].is_some() {
            continue;
        }
        det_used[di] = true;
        by_gt[gi] = Some(di);
        matched_detections.push(di);
    }
    GtMatch { by_gt, matched_detections }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bea_detect::Detection;

    fn gt() -> Vec<(ObjectClass, BBox)> {
        vec![
            (ObjectClass::Car, BBox::new(20.0, 20.0, 10.0, 10.0)),
            (ObjectClass::Pedestrian, BBox::new(60.0, 20.0, 8.0, 16.0)),
        ]
    }

    fn det(class: ObjectClass, cx: f32, cy: f32, len: f32, wid: f32) -> Detection {
        Detection::new(class, BBox::new(cx, cy, len, wid), 0.9)
    }

    fn full_clean() -> Prediction {
        Prediction::from_detections(vec![
            det(ObjectClass::Car, 20.0, 20.0, 10.0, 10.0),
            det(ObjectClass::Pedestrian, 60.0, 20.0, 8.0, 16.0),
        ])
    }

    #[test]
    fn unchanged_prediction_is_clean() {
        let report = TransitionReport::analyze(&gt(), &full_clean(), &full_clean());
        assert!(report.is_clean(), "got {:?}", report.transitions);
    }

    #[test]
    fn vanished_object_is_tp_to_fn() {
        let perturbed =
            Prediction::from_detections(vec![det(ObjectClass::Pedestrian, 60.0, 20.0, 8.0, 16.0)]);
        let report = TransitionReport::analyze(&gt(), &full_clean(), &perturbed);
        assert_eq!(report.tp_to_fn, 1);
        assert_eq!(report.total(), 1);
    }

    #[test]
    fn ghost_is_tn_to_fp() {
        let mut perturbed = full_clean();
        perturbed.push(det(ObjectClass::Pedestrian, 120.0, 20.0, 8.0, 16.0));
        let report = TransitionReport::analyze(&gt(), &full_clean(), &perturbed);
        assert_eq!(report.tn_to_fp, 1, "figure 5: non-existing person appears");
        assert_eq!(report.total(), 1);
    }

    #[test]
    fn recovered_object_is_fn_to_tp() {
        // Clean prediction missed the pedestrian; perturbed finds it.
        let clean =
            Prediction::from_detections(vec![det(ObjectClass::Car, 20.0, 20.0, 10.0, 10.0)]);
        let report = TransitionReport::analyze(&gt(), &clean, &full_clean());
        assert_eq!(report.fn_to_tp, 1);
    }

    #[test]
    fn vanished_ghost_is_fp_to_tn() {
        let mut clean = full_clean();
        clean.push(det(ObjectClass::Van, 120.0, 30.0, 12.0, 10.0));
        let report = TransitionReport::analyze(&gt(), &clean, &full_clean());
        assert_eq!(report.fp_to_tn, 1);
    }

    #[test]
    fn shrunk_box_is_deformation() {
        let perturbed = Prediction::from_detections(vec![
            det(ObjectClass::Car, 20.0, 20.0, 8.0, 8.0), // shrunk (figure 4)
            det(ObjectClass::Pedestrian, 60.0, 20.0, 8.0, 16.0),
        ]);
        let report = TransitionReport::analyze(&gt(), &full_clean(), &perturbed);
        assert_eq!(report.box_deformed, 1);
        match report.transitions[0] {
            ErrorTransition::BoxDeformed { area_ratio, .. } => {
                assert!(area_ratio < 1.0, "shrink means ratio < 1");
            }
            ref other => panic!("expected deformation, got {other:?}"),
        }
    }

    #[test]
    fn small_jitter_is_not_deformation() {
        let perturbed = Prediction::from_detections(vec![
            det(ObjectClass::Car, 20.2, 20.0, 10.0, 10.0),
            det(ObjectClass::Pedestrian, 60.0, 20.1, 8.0, 16.0),
        ]);
        let report = TransitionReport::analyze(&gt(), &full_clean(), &perturbed);
        assert!(report.is_clean(), "sub-pixel drift should not count: {:?}", report.transitions);
    }

    #[test]
    fn class_flip_counts_as_loss_and_ghost() {
        // The car is now predicted as a van: the car became FN and a new
        // (wrong-class) detection appeared that matches no ground truth.
        let perturbed = Prediction::from_detections(vec![
            det(ObjectClass::Van, 20.0, 20.0, 10.0, 10.0),
            det(ObjectClass::Pedestrian, 60.0, 20.0, 8.0, 16.0),
        ]);
        let report = TransitionReport::analyze(&gt(), &full_clean(), &perturbed);
        assert_eq!(report.tp_to_fn, 1);
        assert_eq!(report.tn_to_fp, 1);
    }

    #[test]
    fn merge_accumulates_counts() {
        let mut a = TransitionReport::default();
        a.push(ErrorTransition::TpToFn {
            ground_truth: BBox::new(0.0, 0.0, 1.0, 1.0),
            class: ObjectClass::Car,
        });
        let mut b = TransitionReport::default();
        b.push(ErrorTransition::TnToFp {
            ghost: BBox::new(0.0, 0.0, 1.0, 1.0),
            class: ObjectClass::Van,
        });
        a.merge(&b);
        assert_eq!(a.tp_to_fn, 1);
        assert_eq!(a.tn_to_fp, 1);
        assert_eq!(a.total(), 2);
    }

    #[test]
    fn display_is_compact() {
        let t = ErrorTransition::TpToFn {
            ground_truth: BBox::new(0.0, 0.0, 1.0, 1.0),
            class: ObjectClass::Cyclist,
        };
        assert_eq!(t.to_string(), "TP->FN (Cyclist)");
    }
}
