//! End-to-end shard-router tests driving the real `serve_cli` binary.
//!
//! Two contracts: sharding must not change results — the per-cell CSVs
//! a `--shards 4` cluster serves are byte-identical to a `--shards 1`
//! server's — and a `kill -9` of one shard must not lose accepted jobs:
//! the supervisor respawns the shard, the replayed job log re-runs its
//! pending work, and every submission still reaches `done`.

use bea_serve::{client, Client};
use std::collections::BTreeMap;
use std::io::BufRead;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn scratch(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("bea_shard_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    root
}

struct ServeProc {
    child: Child,
    addr: String,
}

impl Drop for ServeProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Spawns `serve_cli` with the given extra flags and waits for its
/// "listening on http://ADDR" announcement.
fn spawn_serve(out: &std::path::Path, extra: &[&str]) -> ServeProc {
    let mut child = Command::new(env!("CARGO_BIN_EXE_serve_cli"))
        .arg("--addr")
        .arg("127.0.0.1:0")
        .arg("--smoke")
        .arg("--reactor")
        .arg("--workers")
        .arg("1")
        .arg("--queue")
        .arg("32")
        .arg("--drain-secs")
        .arg("60")
        .arg("--out")
        .arg(out)
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("serve_cli spawns");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut reader = std::io::BufReader::new(stdout);
    let addr = loop {
        let mut line = String::new();
        let n = reader.read_line(&mut line).expect("read serve_cli stdout");
        assert!(n > 0, "serve_cli exited before announcing its address");
        // The supervisor relays shard announcements prefixed "[shard k]";
        // only the un-prefixed line is the front door's own address.
        if let Some(rest) = line.strip_prefix("bea-serve listening on http://") {
            break rest.split_whitespace().next().expect("address").to_string();
        }
    };
    // Keep draining stdout so the child never blocks on a full pipe.
    std::thread::spawn(move || {
        let mut sink = String::new();
        while reader.read_line(&mut sink).map(|n| n > 0).unwrap_or(false) {
            sink.clear();
        }
    });
    ServeProc { child, addr }
}

/// Asks the process to drain and waits for it to exit.
fn shutdown(proc: &mut ServeProc) {
    let posted = client::request(&proc.addr, "POST", "/v1/shutdown", None);
    assert_eq!(posted.expect("shutdown POST").status, 200);
    let deadline = Instant::now() + Duration::from_secs(90);
    loop {
        match proc.child.try_wait().expect("try_wait") {
            Some(_) => break,
            None if Instant::now() > deadline => {
                let _ = proc.child.kill();
                panic!("serve_cli did not drain within the deadline");
            }
            None => std::thread::sleep(Duration::from_millis(100)),
        }
    }
}

/// The job set both tests submit: eight distinct cells.
fn job_bodies() -> Vec<String> {
    let mut bodies = Vec::new();
    for model_seed in 1..=2u64 {
        for image_index in 0..4usize {
            bodies.push(format!(
                "{{\"arch\":\"yolo\",\"model_seed\":{model_seed},\
                 \"image_index\":{image_index},\"pop\":4,\"gens\":1,\"seed\":5}}"
            ));
        }
    }
    bodies
}

fn submitted_id(response: &bea_serve::HttpResponse) -> String {
    assert_eq!(response.status, 202, "{:?}", response.body_text());
    bea_core::telemetry::parse_json(response.body_text().unwrap())
        .ok()
        .and_then(|v| v.get("id").and_then(|id| id.as_str().map(String::from)))
        .expect("202 body carries an id")
}

/// Polls a job to `done`, tolerating transient 503s while a shard is
/// down and being respawned.
fn wait_done(client: &Client, id: &str) {
    let deadline = Instant::now() + Duration::from_secs(180);
    loop {
        match client.status(id) {
            Ok(response) if response.status == 200 => {
                let body = response.body_text().unwrap_or("");
                if body.contains("\"status\":\"done\"") {
                    return;
                }
                assert!(!body.contains("\"status\":\"failed\""), "job {id} failed: {body}");
            }
            Ok(response) => assert!(
                response.status == 503 || response.status == 404,
                "job {id}: unexpected status {}",
                response.status
            ),
            Err(_) => {}
        }
        assert!(Instant::now() < deadline, "job {id} never finished");
        std::thread::sleep(Duration::from_millis(100));
    }
}

/// Fetches a done job's CSV, tolerating transient 503s.
fn fetch_csv(client: &Client, id: &str) -> Vec<u8> {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        match client.csv(id) {
            Ok(response) if response.status == 200 => return response.body,
            Ok(response) => assert_eq!(response.status, 503, "csv for {id}"),
            Err(_) => {}
        }
        assert!(Instant::now() < deadline, "csv for {id} never arrived");
        std::thread::sleep(Duration::from_millis(100));
    }
}

/// Runs the job set against one `serve_cli` configuration and returns
/// each job body's served CSV bytes.
fn run_cluster(tag: &str, extra: &[&str]) -> BTreeMap<String, Vec<u8>> {
    let out = scratch(tag);
    let mut proc = spawn_serve(&out, extra);
    let client = Client::new(proc.addr.clone());
    let ids: Vec<(String, String)> = job_bodies()
        .into_iter()
        .map(|body| {
            let id = submitted_id(&client.submit(&body).expect("submit"));
            (body, id)
        })
        .collect();
    for (_, id) in &ids {
        wait_done(&client, id);
    }
    let csvs = ids.iter().map(|(body, id)| (body.clone(), fetch_csv(&client, id))).collect();
    shutdown(&mut proc);
    let _ = std::fs::remove_dir_all(&out);
    csvs
}

#[test]
fn sharded_cluster_serves_byte_identical_csvs() {
    let solo = run_cluster("solo", &[]);
    let sharded = run_cluster("four", &["--shards", "4"]);
    assert_eq!(solo.len(), sharded.len());
    for (body, bytes) in &solo {
        let via_shards = sharded.get(body).expect("every job served under sharding");
        assert!(!bytes.is_empty(), "empty CSV for {body}");
        assert_eq!(
            via_shards, bytes,
            "cell CSV diverged between --shards 1 and --shards 4 for {body}"
        );
    }
}

#[test]
fn killing_one_shard_loses_no_accepted_jobs() {
    let out = scratch("crash");
    let mut proc = spawn_serve(&out, &["--shards", "4"]);
    let client = Client::new(proc.addr.clone());

    let healthz = client.healthz().expect("healthz");
    assert_eq!(healthz.status, 200);
    let health = bea_core::telemetry::parse_json(healthz.body_text().unwrap()).expect("json");
    assert_eq!(health.get("shards").and_then(|v| v.as_u64()), Some(4));

    let ids: Vec<String> = job_bodies()
        .into_iter()
        .map(|body| submitted_id(&client.submit(&body).expect("submit")))
        .collect();

    // Kill the shard that owns the first accepted job, while its work
    // is still queued or running.
    let victim_id: u64 = ids[0]
        .strip_prefix("job-")
        .expect("job ids carry the job- prefix")
        .parse()
        .expect("numeric id suffix");
    let victim_shard = bea_serve::router::shard_for_id(victim_id, 4);
    let bea_core::telemetry::JsonValue::Array(shard_status) =
        health.get("shard_status").expect("shard_status")
    else {
        panic!("shard_status is not an array");
    };
    let pid = shard_status
        .iter()
        .find(|entry| entry.get("shard").and_then(|v| v.as_u64()) == Some(victim_shard as u64))
        .and_then(|entry| entry.get("pid").and_then(|v| v.as_u64()))
        .expect("healthz exposes shard pids");
    let killed = Command::new("kill").args(["-9", &pid.to_string()]).status().expect("kill runs");
    assert!(killed.success(), "kill -9 {pid} failed");

    // Every accepted job — including the killed shard's — still
    // finishes: the supervisor respawns the shard and its replayed job
    // log re-runs the pending work.
    for id in &ids {
        wait_done(&client, id);
    }
    for id in &ids {
        assert!(!fetch_csv(&client, id).is_empty(), "job {id} served no CSV");
    }

    // The merged metrics still answer and count all eight accepted
    // jobs. (Counters reset on the respawned shard are allowed to
    // undercount its share, so only the floor is asserted.)
    let metrics = client.metrics().expect("metrics");
    assert_eq!(metrics.status, 200);
    let text = metrics.body_text().unwrap();
    assert!(text.contains("bea_serve_jobs_accepted_total"), "{text}");

    shutdown(&mut proc);
    let _ = std::fs::remove_dir_all(&out);
}
