//! PPM/PGM image I/O for the qualitative figures.
//!
//! The experiment harnesses save before/after images (Figures 1, 3, 4, 5 of
//! the paper) as binary PPM (`P6`) so they can be inspected with any image
//! viewer; feature heatmaps are saved as binary PGM (`P5`).

use crate::error::{ImageError, Result};
use crate::image::Image;
use bea_tensor::FeatureMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Writes an image as binary PPM (`P6`, maxval 255).
///
/// # Errors
///
/// Propagates I/O failures from the writer.
pub fn write_ppm<W: Write>(img: &Image, mut writer: W) -> Result<()> {
    write!(writer, "P6\n{} {}\n255\n", img.width(), img.height())?;
    let mut buf = Vec::with_capacity(img.pixel_count() * 3);
    for y in 0..img.height() {
        for x in 0..img.width() {
            let [r, g, b] = img.pixel(x, y);
            buf.push(r.round().clamp(0.0, 255.0) as u8);
            buf.push(g.round().clamp(0.0, 255.0) as u8);
            buf.push(b.round().clamp(0.0, 255.0) as u8);
        }
    }
    writer.write_all(&buf)?;
    Ok(())
}

/// Writes an image as binary PPM to a file path.
///
/// # Errors
///
/// Propagates I/O failures (e.g. missing parent directory).
pub fn save_ppm<P: AsRef<Path>>(img: &Image, path: P) -> Result<()> {
    let file = std::fs::File::create(path)?;
    write_ppm(img, std::io::BufWriter::new(file))
}

/// Reads a binary PPM (`P6`) image.
///
/// # Errors
///
/// Returns [`ImageError::Format`] for malformed headers or truncated pixel
/// data, and propagates I/O failures.
pub fn read_ppm<R: Read>(reader: R) -> Result<Image> {
    let mut reader = BufReader::new(reader);
    let magic = read_token(&mut reader)?;
    if magic != "P6" {
        return Err(ImageError::Format { what: format!("expected P6 magic, found {magic:?}") });
    }
    let width: usize = parse_token(&mut reader, "width")?;
    let height: usize = parse_token(&mut reader, "height")?;
    let maxval: usize = parse_token(&mut reader, "maxval")?;
    if maxval != 255 {
        return Err(ImageError::Format { what: format!("unsupported maxval {maxval}") });
    }
    let mut buf = vec![0u8; width * height * 3];
    reader.read_exact(&mut buf).map_err(|_| ImageError::Format {
        what: format!("truncated pixel data for {width}x{height} image"),
    })?;
    let mut img = Image::black(width, height);
    for y in 0..height {
        for x in 0..width {
            let i = (y * width + x) * 3;
            img.put_pixel(x, y, [buf[i] as f32, buf[i + 1] as f32, buf[i + 2] as f32]);
        }
    }
    Ok(img)
}

/// Reads a binary PPM image from a file path.
///
/// # Errors
///
/// See [`read_ppm`].
pub fn load_ppm<P: AsRef<Path>>(path: P) -> Result<Image> {
    read_ppm(std::fs::File::open(path)?)
}

/// Writes a single-channel map as binary PGM (`P5`), linearly rescaling
/// values so the map minimum maps to 0 and the maximum to 255.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_pgm<W: Write>(map: &FeatureMap, channel: usize, mut writer: W) -> Result<()> {
    let plane = map.channel(channel);
    let lo = plane.iter().copied().fold(f32::INFINITY, f32::min);
    let hi = plane.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let range = if hi > lo { hi - lo } else { 1.0 };
    write!(writer, "P5\n{} {}\n255\n", map.width(), map.height())?;
    let bytes: Vec<u8> = plane.iter().map(|&v| (255.0 * (v - lo) / range).round() as u8).collect();
    writer.write_all(&bytes)?;
    Ok(())
}

/// Writes a heatmap channel as binary PGM to a file path.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn save_pgm<P: AsRef<Path>>(map: &FeatureMap, channel: usize, path: P) -> Result<()> {
    let file = std::fs::File::create(path)?;
    write_pgm(map, channel, std::io::BufWriter::new(file))
}

/// Magic header of the binary filter-mask format.
const MASK_MAGIC: &[u8] = b"BEAMASK1\n";

/// Writes a filter mask in the binary `BEAMASK1` format:
/// magic, ASCII `width height\n`, then `3*width*height` little-endian
/// `i16` genes in channel-major order.
///
/// # Errors
///
/// Propagates I/O failures from the writer.
pub fn write_mask<W: Write>(mask: &crate::FilterMask, mut writer: W) -> Result<()> {
    writer.write_all(MASK_MAGIC)?;
    writeln!(writer, "{} {}", mask.width(), mask.height())?;
    let mut buf = Vec::with_capacity(mask.gene_count() * 2);
    for &v in mask.as_slice() {
        buf.extend_from_slice(&v.to_le_bytes());
    }
    writer.write_all(&buf)?;
    Ok(())
}

/// Saves a filter mask to a file (see [`write_mask`] for the format).
///
/// # Errors
///
/// Propagates I/O failures.
pub fn save_mask<P: AsRef<Path>>(mask: &crate::FilterMask, path: P) -> Result<()> {
    let file = std::fs::File::create(path)?;
    write_mask(mask, std::io::BufWriter::new(file))
}

/// Reads a filter mask in the binary `BEAMASK1` format.
///
/// # Errors
///
/// Returns [`ImageError::Format`] for a bad magic, malformed header or
/// truncated gene data, and propagates I/O failures.
pub fn read_mask<R: Read>(mut reader: R) -> Result<crate::FilterMask> {
    let mut magic = [0u8; 9];
    reader
        .read_exact(&mut magic)
        .map_err(|_| ImageError::Format { what: "truncated mask magic".into() })?;
    if magic != MASK_MAGIC {
        return Err(ImageError::Format { what: "not a BEAMASK1 stream".into() });
    }
    let mut reader = BufReader::new(reader);
    let width: usize = parse_token(&mut reader, "mask width")?;
    let height: usize = parse_token(&mut reader, "mask height")?;
    let genes = 3 * width * height;
    let mut buf = vec![0u8; genes * 2];
    reader.read_exact(&mut buf).map_err(|_| ImageError::Format {
        what: format!("truncated gene data for {width}x{height} mask"),
    })?;
    let values: Vec<i16> = buf.chunks_exact(2).map(|b| i16::from_le_bytes([b[0], b[1]])).collect();
    crate::FilterMask::from_values(width, height, values)
}

/// Loads a filter mask from a file.
///
/// # Errors
///
/// See [`read_mask`].
pub fn load_mask<P: AsRef<Path>>(path: P) -> Result<crate::FilterMask> {
    read_mask(std::fs::File::open(path)?)
}

/// Reads one whitespace-delimited token, skipping `#` comments.
fn read_token<R: BufRead>(reader: &mut R) -> Result<String> {
    let mut token = String::new();
    let mut in_comment = false;
    loop {
        let mut byte = [0u8; 1];
        match reader.read_exact(&mut byte) {
            Ok(()) => {}
            Err(_) if !token.is_empty() => return Ok(token),
            Err(_) => return Err(ImageError::Format { what: "unexpected end of header".into() }),
        }
        let ch = byte[0] as char;
        if in_comment {
            if ch == '\n' {
                in_comment = false;
            }
            continue;
        }
        if ch == '#' {
            in_comment = true;
            continue;
        }
        if ch.is_whitespace() {
            if token.is_empty() {
                continue;
            }
            return Ok(token);
        }
        token.push(ch);
    }
}

fn parse_token<R: BufRead, T: std::str::FromStr>(reader: &mut R, field: &str) -> Result<T> {
    let token = read_token(reader)?;
    token.parse().map_err(|_| ImageError::Format { what: format!("invalid {field}: {token:?}") })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ppm_roundtrip() {
        let mut img = Image::black(3, 2);
        img.put_pixel(0, 0, [255.0, 0.0, 0.0]);
        img.put_pixel(2, 1, [0.0, 128.0, 64.0]);
        let mut buf = Vec::new();
        write_ppm(&img, &mut buf).unwrap();
        let back = read_ppm(&buf[..]).unwrap();
        assert_eq!(back, img);
    }

    #[test]
    fn ppm_header_is_wellformed() {
        let img = Image::black(5, 7);
        let mut buf = Vec::new();
        write_ppm(&img, &mut buf).unwrap();
        let header = String::from_utf8_lossy(&buf[..12]);
        assert!(header.starts_with("P6\n5 7\n255\n"));
        assert_eq!(buf.len(), 11 + 5 * 7 * 3);
    }

    #[test]
    fn read_rejects_bad_magic() {
        let data = b"P3\n1 1\n255\n   ".to_vec();
        assert!(matches!(read_ppm(&data[..]), Err(ImageError::Format { .. })));
    }

    #[test]
    fn read_rejects_truncated_pixels() {
        let data = b"P6\n2 2\n255\nxx".to_vec();
        assert!(matches!(read_ppm(&data[..]), Err(ImageError::Format { .. })));
    }

    #[test]
    fn read_skips_comments() {
        let mut data = b"P6\n# a comment line\n1 1\n255\n".to_vec();
        data.extend_from_slice(&[10, 20, 30]);
        let img = read_ppm(&data[..]).unwrap();
        assert_eq!(img.pixel(0, 0), [10.0, 20.0, 30.0]);
    }

    #[test]
    fn pgm_rescales_to_full_range() {
        let mut map = FeatureMap::zeros(1, 1, 3);
        map.set(0, 0, 0, -1.0);
        map.set(0, 0, 1, 0.0);
        map.set(0, 0, 2, 1.0);
        let mut buf = Vec::new();
        write_pgm(&map, 0, &mut buf).unwrap();
        let pixels = &buf[buf.len() - 3..];
        assert_eq!(pixels[0], 0);
        assert_eq!(pixels[2], 255);
        assert!((pixels[1] as i32 - 128).abs() <= 1);
    }

    #[test]
    fn mask_roundtrip() {
        use crate::FilterMask;
        let mut mask = FilterMask::zeros(5, 3);
        mask.set(0, 1, 2, -255);
        mask.set(2, 2, 4, 127);
        let mut buf = Vec::new();
        write_mask(&mask, &mut buf).unwrap();
        let back = read_mask(&buf[..]).unwrap();
        assert_eq!(back, mask);
    }

    #[test]
    fn mask_reader_rejects_garbage() {
        assert!(matches!(read_mask(&b"not a mask"[..]), Err(ImageError::Format { .. })));
        let mut buf = Vec::new();
        write_mask(&crate::FilterMask::zeros(4, 4), &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(matches!(read_mask(&buf[..]), Err(ImageError::Format { .. })));
    }

    #[test]
    fn save_and_load_file() {
        let dir = std::env::temp_dir().join("bea_image_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.ppm");
        let img = Image::filled(4, 4, [9.0, 99.0, 199.0]);
        save_ppm(&img, &path).unwrap();
        let back = load_ppm(&path).unwrap();
        assert_eq!(back, img);
        let _ = std::fs::remove_file(&path);
    }
}
