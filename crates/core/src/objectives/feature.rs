//! The grey-box feature-distance objective (paper Section II).
//!
//! "Due to our encoding into the multi-objective optimization problem, we
//! also can include feature-level distance as an additional optimization
//! objective, thereby extending the approach to be a grey-box method." The
//! objective is the L2 gap between the detector's feature heatmaps on the
//! clean and the perturbed image; an effective perturbation *increases* it
//! (direction: maximise).

use bea_detect::heatmap::feature_distance;
use bea_detect::Detector;
use bea_image::Image;
use bea_tensor::FeatureMap;

/// Precomputed clean heatmap for the grey-box objective.
#[derive(Debug, Clone)]
pub struct FeatureObjective {
    clean: FeatureMap,
}

impl FeatureObjective {
    /// Captures the detector's heatmap on the clean image.
    pub fn new<D: Detector + ?Sized>(detector: &D, clean_img: &Image) -> Self {
        Self { clean: detector.heatmap(clean_img) }
    }

    /// `true` when the detector exposed no internals (an empty heatmap) —
    /// the attack then stays purely black-box.
    pub fn is_blind(&self) -> bool {
        self.clean.as_slice().is_empty()
    }

    /// The feature-level distance of a perturbed image's heatmap from the
    /// cached clean heatmap.
    pub fn objective<D: Detector + ?Sized>(&self, detector: &D, perturbed: &Image) -> f64 {
        feature_distance(&self.clean, &detector.heatmap(perturbed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bea_detect::{YoloConfig, YoloDetector};
    use bea_image::FilterMask;
    use bea_scene::SyntheticKitti;

    #[test]
    fn unperturbed_image_has_zero_feature_distance() {
        let yolo = YoloDetector::new(YoloConfig::with_seed(1));
        let img = SyntheticKitti::smoke_set().image(0);
        let objective = FeatureObjective::new(&yolo, &img);
        assert!(!objective.is_blind());
        assert_eq!(objective.objective(&yolo, &img), 0.0);
    }

    #[test]
    fn perturbation_increases_feature_distance() {
        let yolo = YoloDetector::new(YoloConfig::with_seed(1));
        let img = SyntheticKitti::smoke_set().image(0);
        let objective = FeatureObjective::new(&yolo, &img);
        let mut mask = FilterMask::zeros(img.width(), img.height());
        for y in 10..20 {
            for x in 10..30 {
                mask.set(0, y, x, 90);
            }
        }
        let perturbed = mask.apply(&img);
        assert!(objective.objective(&yolo, &perturbed) > 0.0);
    }

    #[test]
    fn blind_detector_reports_blind() {
        struct Blind;
        impl bea_detect::Detector for Blind {
            fn detect(&self, _img: &Image) -> bea_detect::Prediction {
                bea_detect::Prediction::new()
            }
            fn name(&self) -> &str {
                "blind"
            }
        }
        let img = Image::black(8, 8);
        let objective = FeatureObjective::new(&Blind, &img);
        assert!(objective.is_blind());
        assert_eq!(objective.objective(&Blind, &img), 0.0);
    }
}
