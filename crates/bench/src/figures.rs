//! Qualitative-figure rendering: before/after images with box overlays.

use bea_detect::Prediction;
use bea_image::{draw, io, Image, Region};
use std::path::PathBuf;

/// Draws a prediction's boxes (class-coloured outlines) onto a copy of the
/// image.
pub fn overlay_prediction(img: &Image, prediction: &Prediction) -> Image {
    let mut out = img.clone();
    for det in prediction {
        let b = det.bbox;
        let region = Region::new(
            b.x0().max(0.0) as usize,
            b.y0().max(0.0) as usize,
            b.x1().max(0.0).ceil() as usize,
            b.y1().max(0.0).ceil() as usize,
        );
        draw::rect_outline(&mut out, region, det.class.overlay_color());
    }
    out
}

/// Saves a clean/perturbed case-study pair (with prediction overlays) as
/// `<stem>_clean.ppm` / `<stem>_perturbed.ppm` in the experiments
/// directory, returning the two paths.
///
/// # Panics
///
/// Panics on I/O failure (experiment binaries want loud failures).
pub fn save_case_study(
    stem: &str,
    clean_img: &Image,
    clean_pred: &Prediction,
    perturbed_img: &Image,
    perturbed_pred: &Prediction,
) -> (PathBuf, PathBuf) {
    let dir = crate::output_dir();
    let clean_path = dir.join(format!("{stem}_clean.ppm"));
    let pert_path = dir.join(format!("{stem}_perturbed.ppm"));
    io::save_ppm(&overlay_prediction(clean_img, clean_pred), &clean_path)
        .expect("write clean figure");
    io::save_ppm(&overlay_prediction(perturbed_img, perturbed_pred), &pert_path)
        .expect("write perturbed figure");
    (clean_path, pert_path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bea_detect::Detection;
    use bea_scene::{BBox, ObjectClass};

    #[test]
    fn overlay_paints_box_outline() {
        let img = Image::black(32, 16);
        let pred = Prediction::from_detections(vec![Detection::new(
            ObjectClass::Car,
            BBox::new(16.0, 8.0, 10.0, 6.0),
            0.9,
        )]);
        let out = overlay_prediction(&img, &pred);
        assert_ne!(out, img);
        // Top-left corner of the box is painted in the class colour.
        assert_eq!(out.pixel(11, 5), ObjectClass::Car.overlay_color());
    }

    #[test]
    fn empty_prediction_is_noop() {
        let img = Image::filled(8, 8, [40.0; 3]);
        assert_eq!(overlay_prediction(&img, &Prediction::new()), img);
    }
}
