//! Dense row-major 2-D tensors.

use crate::error::{Result, TensorError};
use crate::gemm::{self, KernelPolicy};
use crate::scratch::PoolVec;

/// A dense, row-major matrix of `f32` values.
///
/// `Matrix` is the workhorse for attention and fully-connected layers.
/// Rows × columns are fixed at construction; all arithmetic validates
/// shapes and returns [`TensorError::ShapeMismatch`] on disagreement.
///
/// # Examples
///
/// ```
/// use bea_tensor::Matrix;
///
/// # fn main() -> Result<(), bea_tensor::TensorError> {
/// let a = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]])?;
/// let b = Matrix::from_rows(&[&[2.0, 3.0], &[4.0, 5.0]])?;
/// let c = a.matmul(&b)?;
/// assert_eq!(c, b);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    // Pooled storage: construction draws from the thread-local scratch
    // arena and drop recycles, so repeated fixed-shape forwards are
    // allocation-free at steady state. `PoolVec`'s Debug/PartialEq
    // delegate to the inner Vec, keeping derive output unchanged.
    data: PoolVec<f32>,
}

impl Matrix {
    /// Creates a matrix of zeros with the given dimensions.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: PoolVec::filled(rows * cols, 0.0) }
    }

    /// Creates a matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        Self { rows, cols, data: PoolVec::filled(rows * cols, value) }
    }

    /// Creates the `n` × `n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Builds a matrix from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(TensorError::LengthMismatch { expected: rows * cols, actual: data.len() });
        }
        Ok(Self { rows, cols, data: PoolVec::from_vec(data) })
    }

    /// Builds a matrix from a slice of equally-sized rows.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if rows have differing
    /// lengths, and [`TensorError::EmptyShape`] if `rows` is empty.
    pub fn from_rows(rows: &[&[f32]]) -> Result<Self> {
        let first = rows.first().ok_or(TensorError::EmptyShape { op: "from_rows" })?;
        let cols = first.len();
        let mut data = PoolVec::with_pooled_capacity(rows.len() * cols);
        for row in rows {
            if row.len() != cols {
                return Err(TensorError::LengthMismatch { expected: cols, actual: row.len() });
            }
            data.extend_from_slice(row);
        }
        Ok(Self { rows: rows.len(), cols, data })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Immutable view of the underlying row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix and returns its row-major buffer, releasing
    /// the storage from the scratch-pool cycle.
    pub fn into_vec(self) -> Vec<f32> {
        self.data.into_vec()
    }

    /// Returns the element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    #[inline]
    pub fn at(&self, row: usize, col: usize) -> f32 {
        debug_assert!(row < self.rows && col < self.cols);
        self.data[row * self.cols + col]
    }

    /// Sets the element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: f32) {
        debug_assert!(row < self.rows && col < self.cols);
        self.data[row * self.cols + col] = value;
    }

    /// Checked element access.
    pub fn get(&self, row: usize, col: usize) -> Option<f32> {
        if row < self.rows && col < self.cols {
            Some(self.data[row * self.cols + col])
        } else {
            None
        }
    }

    /// Immutable view of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row index {r} out of bounds for {} rows", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row index {r} out of bounds for {} rows", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self · other`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] unless
    /// `self.cols() == other.rows()`.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.rows {
            return Err(TensorError::ShapeMismatch {
                op: "matmul",
                lhs: vec![self.rows, self.cols],
                rhs: vec![other.rows, other.cols],
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        // ikj loop order: the inner loop streams over contiguous memory in
        // both `other` and `out`, which matters for the attention layers.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let src = &other.data[k * other.cols..(k + 1) * other.cols];
                let dst = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (d, s) in dst.iter_mut().zip(src) {
                    *d += a * s;
                }
            }
        }
        Ok(out)
    }

    /// Matrix product `self · other` under an explicit [`KernelPolicy`].
    ///
    /// `Reference` runs the naive [`Self::matmul`] loop nest, `Blocked`
    /// the register-tiled GEMM from [`crate::gemm`]; both return
    /// `==`-identical results for finite inputs.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] unless
    /// `self.cols() == other.rows()`.
    pub fn matmul_policy(&self, other: &Matrix, policy: KernelPolicy) -> Result<Matrix> {
        match policy {
            KernelPolicy::Reference => self.matmul(other),
            KernelPolicy::Blocked => gemm::matmul_blocked(self, other),
        }
    }

    /// Transposed product `self · otherᵀ` — the shape the linear layers
    /// (`y = x·Wᵀ`) and attention scores (`q·kᵀ`) consume. Equivalent to
    /// `self.matmul(&other.transpose())` without materialising the
    /// transpose.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] unless
    /// `self.cols() == other.cols()`.
    pub fn matmul_nt(&self, other: &Matrix) -> Result<Matrix> {
        self.matmul_nt_policy(other, KernelPolicy::default())
    }

    /// [`Self::matmul_nt`] under an explicit [`KernelPolicy`].
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] unless
    /// `self.cols() == other.cols()`.
    pub fn matmul_nt_policy(&self, other: &Matrix, policy: KernelPolicy) -> Result<Matrix> {
        match policy {
            KernelPolicy::Reference => self.matmul(&other.transpose()),
            KernelPolicy::Blocked => gemm::matmul_nt_blocked(self, other),
        }
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        out
    }

    /// Element-wise sum.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn add(&self, other: &Matrix) -> Result<Matrix> {
        self.zip_with(other, "add", |a, b| a + b)
    }

    /// Element-wise difference.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn sub(&self, other: &Matrix) -> Result<Matrix> {
        self.zip_with(other, "sub", |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn hadamard(&self, other: &Matrix) -> Result<Matrix> {
        self.zip_with(other, "hadamard", |a, b| a * b)
    }

    /// Multiplies every element by `s`.
    pub fn scale(&self, s: f32) -> Matrix {
        self.map(|v| v * s)
    }

    /// Applies `f` to every element, returning a new matrix.
    pub fn map<F: Fn(f32) -> f32>(&self, f: F) -> Matrix {
        let mut data = PoolVec::with_pooled_capacity(self.data.len());
        data.extend(self.data.iter().map(|&v| f(v)));
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace<F: Fn(f32) -> f32>(&mut self, f: F) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    fn zip_with<F: Fn(f32, f32) -> f32>(
        &self,
        other: &Matrix,
        op: &'static str,
        f: F,
    ) -> Result<Matrix> {
        if self.shape() != other.shape() {
            return Err(TensorError::ShapeMismatch {
                op,
                lhs: vec![self.rows, self.cols],
                rhs: vec![other.rows, other.cols],
            });
        }
        let mut data = PoolVec::with_pooled_capacity(self.data.len());
        data.extend(self.data.iter().zip(other.data.iter()).map(|(&a, &b)| f(a, b)));
        Ok(Matrix { rows: self.rows, cols: self.cols, data })
    }

    /// Adds `vector` to every row of the matrix.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] unless
    /// `vector.len() == self.cols()`.
    pub fn add_row_vector(&self, vector: &[f32]) -> Result<Matrix> {
        if vector.len() != self.cols {
            return Err(TensorError::ShapeMismatch {
                op: "add_row_vector",
                lhs: vec![self.rows, self.cols],
                rhs: vec![vector.len()],
            });
        }
        let mut out = self.clone();
        for r in 0..self.rows {
            for (v, b) in out.row_mut(r).iter_mut().zip(vector) {
                *v += b;
            }
        }
        Ok(out)
    }

    /// Horizontally concatenates `self` and `other`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] unless the row counts match.
    pub fn hconcat(&self, other: &Matrix) -> Result<Matrix> {
        if self.rows != other.rows {
            return Err(TensorError::ShapeMismatch {
                op: "hconcat",
                lhs: vec![self.rows, self.cols],
                rhs: vec![other.rows, other.cols],
            });
        }
        let mut out = Matrix::zeros(self.rows, self.cols + other.cols);
        for r in 0..self.rows {
            out.row_mut(r)[..self.cols].copy_from_slice(self.row(r));
            out.row_mut(r)[self.cols..].copy_from_slice(other.row(r));
        }
        Ok(out)
    }

    /// Extracts the column range `[start, start + width)` as a new matrix.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the number of columns.
    pub fn columns(&self, start: usize, width: usize) -> Matrix {
        assert!(start + width <= self.cols, "column range out of bounds");
        let mut out = Matrix::zeros(self.rows, width);
        for r in 0..self.rows {
            out.row_mut(r).copy_from_slice(&self.row(r)[start..start + width]);
        }
        out
    }

    /// Copies the row range `[start, start + rows)` into a new matrix
    /// (the per-item view of a row-stacked batch).
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the number of rows.
    pub fn row_block(&self, start: usize, rows: usize) -> Matrix {
        assert!(start + rows <= self.rows, "row range out of bounds");
        let mut out = Matrix::zeros(rows, self.cols);
        out.data.copy_from_slice(&self.data[start * self.cols..(start + rows) * self.cols]);
        out
    }

    /// Overwrites the row range starting at `start` with `block`'s rows.
    ///
    /// # Panics
    ///
    /// Panics if the column counts differ or the range exceeds the number
    /// of rows.
    pub fn set_row_block(&mut self, start: usize, block: &Matrix) {
        assert_eq!(self.cols, block.cols, "row block column count mismatch");
        assert!(start + block.rows <= self.rows, "row range out of bounds");
        self.data[start * self.cols..(start + block.rows) * self.cols].copy_from_slice(&block.data);
    }

    /// Vertically stacks matrices with equal column counts.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::EmptyShape`] for an empty list and
    /// [`TensorError::ShapeMismatch`] when column counts disagree.
    pub fn vstack(items: &[&Matrix]) -> Result<Matrix> {
        let first = items.first().ok_or(TensorError::EmptyShape { op: "vstack" })?;
        let cols = first.cols;
        let total_rows = items.iter().map(|m| m.rows).sum();
        let mut out = Matrix::zeros(total_rows, cols);
        let mut at = 0;
        for item in items {
            if item.cols != cols {
                return Err(TensorError::ShapeMismatch {
                    op: "vstack",
                    lhs: vec![first.rows, cols],
                    rhs: vec![item.rows, item.cols],
                });
            }
            out.set_row_block(at, item);
            at += item.rows;
        }
        Ok(out)
    }

    /// Frobenius norm of the matrix.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Returns `true` when every pairwise element difference is below `tol`.
    pub fn approx_eq(&self, other: &Matrix, tol: f32) -> bool {
        self.shape() == other.shape()
            && self.data.iter().zip(&other.data).all(|(a, b)| (a - b).abs() <= tol)
    }
}

impl Default for Matrix {
    fn default() -> Self {
        Matrix::zeros(0, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        let id = Matrix::identity(3);
        assert_eq!(a.matmul(&id).unwrap(), a);
    }

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]).unwrap());
    }

    #[test]
    fn matmul_shape_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(a.matmul(&b), Err(TensorError::ShapeMismatch { .. })));
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().shape(), (3, 2));
        assert_eq!(a.transpose().at(0, 1), 4.0);
    }

    #[test]
    fn add_and_sub_are_inverse() {
        let a = Matrix::from_rows(&[&[1.0, -2.0], &[0.5, 9.0]]).unwrap();
        let b = Matrix::filled(2, 2, 3.0);
        assert_eq!(a.add(&b).unwrap().sub(&b).unwrap(), a);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
    }

    #[test]
    fn from_rows_rejects_ragged_input() {
        let err = Matrix::from_rows(&[&[1.0, 2.0], &[3.0][..]]);
        assert!(matches!(err, Err(TensorError::LengthMismatch { .. })));
    }

    #[test]
    fn add_row_vector_broadcasts() {
        let a = Matrix::zeros(2, 3);
        let out = a.add_row_vector(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(out.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(out.row(1), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn hconcat_and_columns_roundtrip() {
        let a = Matrix::filled(2, 2, 1.0);
        let b = Matrix::filled(2, 3, 2.0);
        let cat = a.hconcat(&b).unwrap();
        assert_eq!(cat.shape(), (2, 5));
        assert_eq!(cat.columns(0, 2), a);
        assert_eq!(cat.columns(2, 3), b);
    }

    #[test]
    fn row_block_and_vstack_round_trip() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[&[5.0, 6.0]]).unwrap();
        let stacked = Matrix::vstack(&[&a, &b]).unwrap();
        assert_eq!(stacked.shape(), (3, 2));
        assert_eq!(stacked.row_block(0, 2), a);
        assert_eq!(stacked.row_block(2, 1), b);
        let mut rebuilt = Matrix::zeros(3, 2);
        rebuilt.set_row_block(0, &a);
        rebuilt.set_row_block(2, &b);
        assert_eq!(rebuilt, stacked);
        assert!(Matrix::vstack(&[]).is_err());
        assert!(Matrix::vstack(&[&a, &Matrix::zeros(1, 3)]).is_err());
    }

    #[test]
    fn frobenius_norm_of_identity() {
        let id = Matrix::identity(4);
        assert!((id.frobenius_norm() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn scale_and_map() {
        let a = Matrix::filled(2, 2, 2.0);
        assert_eq!(a.scale(0.5), Matrix::filled(2, 2, 1.0));
        assert_eq!(a.map(|v| v * v), Matrix::filled(2, 2, 4.0));
    }

    #[test]
    fn get_returns_none_out_of_bounds() {
        let a = Matrix::zeros(2, 2);
        assert_eq!(a.get(2, 0), None);
        assert_eq!(a.get(0, 2), None);
        assert_eq!(a.get(1, 1), Some(0.0));
    }
}
