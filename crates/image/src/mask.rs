//! The filter mask: the attack's perturbation genome.

use crate::error::{ImageError, Result};
use crate::image::Image;
use bea_tensor::norm::NormKind;
use bea_tensor::PoolVec;

/// A signed per-pixel, per-channel perturbation δ.
///
/// Following the paper (Section IV-A), a filter mask is "a matrix of
/// modifications for the RGB values of each pixel" with "signed integer
/// values in the range [-255, 255]". Storage is channel-major
/// (`3 × height × width`) to match [`Image`].
///
/// A mask is the *individual* of the genetic algorithm: crossover and
/// mutation operate directly on its pixel array.
///
/// # Examples
///
/// ```
/// use bea_image::{FilterMask, Image};
///
/// let img = Image::filled(4, 4, [100.0, 100.0, 100.0]);
/// let mut mask = FilterMask::zeros(4, 4);
/// mask.set(2, 1, 3, -30);
/// let out = mask.apply(&img);
/// assert_eq!(out.at(2, 1, 3), 70.0);
/// assert_eq!(mask.perturbed_pixel_count(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FilterMask {
    width: usize,
    height: usize,
    /// Channel-major buffer of length `3 * width * height`.
    values: Vec<i16>,
}

/// Largest admissible perturbation magnitude per channel.
pub const MASK_LIMIT: i16 = 255;

impl FilterMask {
    /// Creates a zero (identity) mask.
    pub fn zeros(width: usize, height: usize) -> Self {
        Self { width, height, values: vec![0; 3 * width * height] }
    }

    /// Builds a mask from a flat channel-major buffer, clamping values into
    /// `[-255, 255]`.
    ///
    /// # Errors
    ///
    /// Returns [`ImageError::LengthMismatch`] if the buffer length is not
    /// `3 * width * height`.
    pub fn from_values(width: usize, height: usize, values: Vec<i16>) -> Result<Self> {
        let expected = 3 * width * height;
        if values.len() != expected {
            return Err(ImageError::LengthMismatch { expected, actual: values.len() });
        }
        let values = values.into_iter().map(|v| v.clamp(-MASK_LIMIT, MASK_LIMIT)).collect();
        Ok(Self { width, height, values })
    }

    /// Mask width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Mask height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Number of pixels (`width × height`).
    pub fn pixel_count(&self) -> usize {
        self.width * self.height
    }

    /// Number of genes (`3 × width × height`).
    pub fn gene_count(&self) -> usize {
        self.values.len()
    }

    /// Immutable view of the flat gene buffer.
    pub fn as_slice(&self) -> &[i16] {
        &self.values
    }

    /// Mutable view of the flat gene buffer.
    ///
    /// Callers must keep values inside `[-255, 255]`; use
    /// [`FilterMask::clamp_inplace`] afterwards when unsure.
    pub fn as_mut_slice(&mut self) -> &mut [i16] {
        &mut self.values
    }

    #[inline]
    fn offset(&self, channel: usize, y: usize, x: usize) -> usize {
        (channel * self.height + y) * self.width + x
    }

    /// Value at `(channel, y, x)`.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is out of bounds.
    #[inline]
    pub fn at(&self, channel: usize, y: usize, x: usize) -> i16 {
        debug_assert!(channel < 3 && y < self.height && x < self.width);
        self.values[self.offset(channel, y, x)]
    }

    /// Sets the value at `(channel, y, x)`, clamped into `[-255, 255]`.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is out of bounds.
    #[inline]
    pub fn set(&mut self, channel: usize, y: usize, x: usize, value: i16) {
        debug_assert!(channel < 3 && y < self.height && x < self.width);
        let idx = self.offset(channel, y, x);
        self.values[idx] = value.clamp(-MASK_LIMIT, MASK_LIMIT);
    }

    /// Clamps every gene into `[-255, 255]` (call after bulk mutation).
    pub fn clamp_inplace(&mut self) {
        for v in &mut self.values {
            *v = (*v).clamp(-MASK_LIMIT, MASK_LIMIT);
        }
    }

    /// Applies the mask to an image: `img + δ`, clamped into `[0, 255]`.
    ///
    /// # Panics
    ///
    /// Panics if the image has different dimensions; use
    /// [`FilterMask::try_apply`] for a checked variant.
    pub fn apply(&self, img: &Image) -> Image {
        self.try_apply(img).expect("mask and image dimensions must agree")
    }

    /// Checked variant of [`FilterMask::apply`].
    ///
    /// # Errors
    ///
    /// Returns [`ImageError::SizeMismatch`] when dimensions differ.
    pub fn try_apply(&self, img: &Image) -> Result<Image> {
        if img.width() != self.width || img.height() != self.height {
            return Err(ImageError::SizeMismatch {
                lhs: (img.width(), img.height()),
                rhs: (self.width, self.height),
            });
        }
        let mut out = img.clone();
        for c in 0..3 {
            for y in 0..self.height {
                for x in 0..self.width {
                    let delta = self.at(c, y, x);
                    if delta != 0 {
                        out.set(c, y, x, img.at(c, y, x) + delta as f32);
                    }
                }
            }
        }
        Ok(out)
    }

    /// `true` when every gene is zero (the identity perturbation added to
    /// the initial population "to keep the original image").
    pub fn is_zero(&self) -> bool {
        self.values.iter().all(|&v| v == 0)
    }

    /// Evaluates a norm over the flat gene values; [`NormKind::L2`] is the
    /// paper's `obj_intensity(δ) = ‖δ‖₂`.
    pub fn norm(&self, kind: NormKind) -> f64 {
        // Pooled staging buffer: norms are evaluated once per genome per
        // generation on the attack hot path.
        let mut floats: PoolVec<f32> = PoolVec::with_pooled_capacity(self.values.len());
        floats.extend(self.values.iter().map(|&v| v as f32));
        kind.eval(&floats)
    }

    /// Per-pixel maximum absolute perturbation over the three channels
    /// (the paper's `δ_abs^max`, Algorithm 2 line 20), row-major
    /// `height × width`. The buffer is pooled and derefs to a `Vec<i16>`.
    pub fn max_abs_per_pixel(&self) -> PoolVec<i16> {
        let mut out = PoolVec::filled(self.width * self.height, 0i16);
        for y in 0..self.height {
            for x in 0..self.width {
                let m =
                    self.at(0, y, x).abs().max(self.at(1, y, x).abs()).max(self.at(2, y, x).abs());
                out[y * self.width + x] = m;
            }
        }
        out
    }

    /// Number of pixels with a non-zero perturbation on any channel
    /// (Algorithm 2 line 23).
    pub fn perturbed_pixel_count(&self) -> usize {
        self.max_abs_per_pixel().iter().filter(|&&v| v != 0).count()
    }

    /// Returns a copy translated by `(dx, dy)` pixels with zero fill — the
    /// model of physical placement error for a perturbation "sticker"
    /// (paper Section VI, future work on physical availability).
    pub fn shifted(&self, dx: i32, dy: i32) -> FilterMask {
        let mut out = FilterMask::zeros(self.width, self.height);
        for (c, y, x, v) in self.iter_nonzero() {
            let nx = x as i32 + dx;
            let ny = y as i32 + dy;
            if nx >= 0 && ny >= 0 && (nx as usize) < self.width && (ny as usize) < self.height {
                out.set(c, ny as usize, nx as usize, v);
            }
        }
        out
    }

    /// Iterator over `(channel, y, x, value)` of non-zero genes.
    pub fn iter_nonzero(&self) -> impl Iterator<Item = (usize, usize, usize, i16)> + '_ {
        let (w, h) = (self.width, self.height);
        self.values.iter().enumerate().filter(|(_, &v)| v != 0).map(move |(i, &v)| {
            let c = i / (w * h);
            let rem = i % (w * h);
            (c, rem / w, rem % w, v)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_mask_is_identity() {
        let img = Image::filled(3, 2, [10.0, 20.0, 30.0]);
        let mask = FilterMask::zeros(3, 2);
        assert!(mask.is_zero());
        assert_eq!(mask.apply(&img), img);
        assert_eq!(mask.norm(NormKind::L2), 0.0);
    }

    #[test]
    fn apply_clamps_at_bounds() {
        let img = Image::filled(1, 1, [250.0, 5.0, 128.0]);
        let mut mask = FilterMask::zeros(1, 1);
        mask.set(0, 0, 0, 100);
        mask.set(1, 0, 0, -100);
        mask.set(2, 0, 0, 10);
        let out = mask.apply(&img);
        assert_eq!(out.pixel(0, 0), [255.0, 0.0, 138.0]);
    }

    #[test]
    fn set_clamps_values() {
        let mut mask = FilterMask::zeros(1, 1);
        mask.set(0, 0, 0, 300);
        assert_eq!(mask.at(0, 0, 0), 255);
        mask.set(0, 0, 0, -300);
        assert_eq!(mask.at(0, 0, 0), -255);
    }

    #[test]
    fn from_values_validates_length_and_clamps() {
        assert!(FilterMask::from_values(2, 2, vec![0; 11]).is_err());
        let mask = FilterMask::from_values(1, 1, vec![999, -999, 7]).unwrap();
        assert_eq!(mask.as_slice(), &[255, -255, 7]);
    }

    #[test]
    fn max_abs_per_pixel_takes_channel_max() {
        let mut mask = FilterMask::zeros(2, 1);
        mask.set(0, 0, 0, 10);
        mask.set(1, 0, 0, -40);
        mask.set(2, 0, 0, 25);
        mask.set(2, 0, 1, -3);
        assert_eq!(mask.max_abs_per_pixel(), vec![40, 3]);
        assert_eq!(mask.perturbed_pixel_count(), 2);
    }

    #[test]
    fn l2_norm_matches_manual() {
        let mut mask = FilterMask::zeros(2, 1);
        mask.set(0, 0, 0, 3);
        mask.set(1, 0, 1, 4);
        assert!((mask.norm(NormKind::L2) - 5.0).abs() < 1e-9);
        assert_eq!(mask.norm(NormKind::L1), 7.0);
        assert_eq!(mask.norm(NormKind::LInf), 4.0);
    }

    #[test]
    fn try_apply_checks_dimensions() {
        let img = Image::black(4, 4);
        let mask = FilterMask::zeros(2, 2);
        assert!(mask.try_apply(&img).is_err());
    }

    #[test]
    fn iter_nonzero_reports_coordinates() {
        let mut mask = FilterMask::zeros(4, 3);
        mask.set(1, 2, 3, -9);
        let items: Vec<_> = mask.iter_nonzero().collect();
        assert_eq!(items, vec![(1, 2, 3, -9)]);
    }

    #[test]
    fn shifted_translates_and_clips() {
        let mut mask = FilterMask::zeros(6, 4);
        mask.set(0, 1, 2, 50);
        mask.set(1, 3, 5, -30);
        let moved = mask.shifted(1, 0);
        assert_eq!(moved.at(0, 1, 3), 50);
        assert_eq!(moved.at(1, 3, 5), 0, "gene shifted off the edge is dropped");
        assert_eq!(mask.shifted(0, 0), mask);
        // Round trip within bounds.
        assert_eq!(mask.shifted(1, 1).shifted(-1, -1).at(0, 1, 2), 50);
    }

    #[test]
    fn gene_count_is_three_per_pixel() {
        let mask = FilterMask::zeros(5, 4);
        assert_eq!(mask.gene_count(), 60);
        assert_eq!(mask.pixel_count(), 20);
    }
}
