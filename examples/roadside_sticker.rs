//! Roadside-sticker scenario: the paper's motivating threat model.
//!
//! "An attack on the moving vehicle in the front may be achieved by adding
//! physical perturbation stickers on static objects on the side of the
//! road." This example constrains the perturbation to a small roadside
//! rectangle (a "sticker"), attacks the DETR model, and reports what
//! happens to the objects far away from the sticker. Before/after images
//! are written as PPM files.
//!
//! Run: `cargo run --release --example roadside_sticker`

use butterfly_effect_attack::attack::report;
use butterfly_effect_attack::image::{draw, io, Region};
use butterfly_effect_attack::{
    Architecture, AttackConfig, ButterflyAttack, Detector, ModelZoo, RegionConstraint,
    SyntheticKitti, TransitionReport,
};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let dataset = SyntheticKitti::evaluation_set();
    let scene = dataset.scene(0);
    let img = scene.render();

    // The "sticker": a 24x16 px rectangle on the right roadside, away from
    // every object of interest.
    let sticker =
        Region::new(img.width() - 28, img.height() / 2, img.width() - 4, img.height() / 2 + 16);
    println!(
        "sticker area: {}x{} px at ({}, {}) — {:.1}% of the image",
        sticker.x1 - sticker.x0,
        sticker.y1 - sticker.y0,
        sticker.x0,
        sticker.y0,
        100.0 * sticker.area() as f64 / (img.width() * img.height()) as f64
    );

    let zoo = ModelZoo::with_defaults();
    let detr = zoo.model(Architecture::Detr, 1);
    let clean = detr.detect(&img);

    let config = AttackConfig {
        constraint: RegionConstraint::Rect(sticker),
        // A sticker is small: allow the mutation to touch more of it.
        window_fraction: 0.05,
        ..AttackConfig::scaled(24, 20)
    };
    let outcome = ButterflyAttack::new(config).attack(detr.as_ref(), &img);
    let champion = outcome.best_degradation().expect("front is never empty");
    let perturbed_img = champion.genome().apply(&img);
    let perturbed = detr.detect(&perturbed_img);

    println!(
        "\nattack: obj_degrad {:.3}, intensity {:.1}, {} evaluations",
        champion.objectives()[1],
        champion.objectives()[0],
        outcome.evaluations()
    );

    let report_out = TransitionReport::analyze(&scene.ground_truths(), &clean, &perturbed);
    println!("transitions caused by the sticker:");
    if report_out.is_clean() {
        println!("  none — this detector resisted the sticker at this budget");
    }
    for t in &report_out.transitions {
        println!("  {t}");
    }

    // Summary table of the objectives across the front.
    let rows: Vec<Vec<String>> = report::pareto_points(&outcome)
        .iter()
        .map(|p| {
            vec![
                format!("{:.1}", p.intensity),
                format!("{:.3}", p.degrad),
                format!("{:.4}", p.dist),
            ]
        })
        .collect();
    report::print_table(&["intensity", "degrad", "dist"], &rows);

    // Save before/after with the sticker region highlighted.
    let mut before = img.clone();
    draw::rect_outline(&mut before, sticker, [255.0, 255.0, 255.0]);
    let mut after = perturbed_img.clone();
    draw::rect_outline(&mut after, sticker, [255.0, 255.0, 255.0]);
    io::save_ppm(&before, "roadside_sticker_before.ppm")?;
    io::save_ppm(&after, "roadside_sticker_after.ppm")?;
    println!("\nwrote roadside_sticker_before.ppm / roadside_sticker_after.ppm");
    Ok(())
}
