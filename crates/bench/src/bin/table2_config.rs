//! **E2 — Table II**: NSGA-II configuration and convergence trace.
//!
//! Prints the genetic-algorithm parametrisation in the paper's Table II
//! layout, then runs one attack while tracing the non-dominated front's
//! 3-D hypervolume per generation — the convergence evidence that the
//! crowded-comparison selection works on the three attack objectives. The
//! trace comes straight from the attack driver's generation observer
//! (`ButterflyAttack::attack_with_observer` with the default
//! `track_hypervolume`), i.e. the same statistics campaign telemetry
//! records.
//!
//! Run: `cargo run --release -p bea-bench --bin table2_config [--full]`

use bea_bench::{fmt, Harness};
use bea_core::attack::ButterflyAttack;
use bea_core::report::print_table;
use bea_detect::Architecture;

fn main() {
    let harness = Harness::from_args();
    let config = harness.attack_config();

    println!("\nTable II — configuration for NSGA-II");
    print_table(
        &["Parameter", "Paper", "This run"],
        &[
            vec!["Number of iterations".into(), "100".into(), config.nsga2.generations.to_string()],
            vec!["Population size".into(), "101".into(), config.nsga2.population_size.to_string()],
            vec![
                "Crossover probability".into(),
                "p_c = 0.5".into(),
                format!("p_c = {}", config.nsga2.crossover_prob),
            ],
            vec![
                "Mutation probability".into(),
                "p_m = 0.45".into(),
                format!("p_m = {}", config.nsga2.mutation_prob),
            ],
            vec![
                "Mutation window size".into(),
                "w = 1%".into(),
                format!("w = {}%", config.window_fraction * 100.0),
            ],
        ],
    );

    // Convergence trace on one representative attack (DETR, image 10).
    // The driver tracks the front's exact hypervolume per generation
    // against its fixed worst-corner reference point whenever
    // `track_hypervolume` is on (the default), and the observer hands the
    // trace out generation by generation.
    let model = harness.model(Architecture::Detr, 1);
    let img = harness.dataset().image(10);
    println!("\nConvergence trace: attacking {} on image no. 10", model.name());

    let mut trace: Vec<(usize, usize, f64, Vec<f64>)> = Vec::new();
    let outcome =
        ButterflyAttack::new(config.clone()).attack_with_observer(model.as_ref(), &img, |stats| {
            trace.push((
                stats.generation,
                stats.front_size,
                stats.hypervolume.expect("three-objective attacks track hypervolume"),
                stats.best.clone(),
            ));
        });

    let mut rows = Vec::new();
    let step = (trace.len() / 12).max(1);
    for (gen, front, hv, best) in trace.iter().step_by(step) {
        rows.push(vec![
            gen.to_string(),
            front.to_string(),
            fmt(*hv, 1),
            fmt(best[0], 1),
            fmt(best[1], 3),
            fmt(best[2], 4),
        ]);
    }
    print_table(
        &["gen", "front size", "hypervolume", "best intensity", "best degrad", "best dist"],
        &rows,
    );

    let first_hv = trace.first().map(|t| t.2).unwrap_or(0.0);
    let last_hv = trace.last().map(|t| t.2).unwrap_or(0.0);
    println!(
        "\nhypervolume grew {}x over {} generations ({} evaluations)",
        fmt(if first_hv > 0.0 { last_hv / first_hv } else { f64::NAN }, 2),
        config.nsga2.generations,
        outcome.evaluations(),
    );
    println!("final front size: {}", outcome.pareto_points().len());
    // The observer's trace and the outcome's history are the same data.
    assert_eq!(trace.len(), outcome.history().len());
}
