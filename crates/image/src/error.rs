//! Error types for image operations.

use std::fmt;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, ImageError>;

/// Errors raised by image construction, mask application and I/O.
#[derive(Debug)]
#[non_exhaustive]
pub enum ImageError {
    /// Two operands (image and mask, or two images) have different sizes.
    SizeMismatch {
        /// `(width, height)` of the left operand.
        lhs: (usize, usize),
        /// `(width, height)` of the right operand.
        rhs: (usize, usize),
    },
    /// A buffer length does not match the requested dimensions.
    LengthMismatch {
        /// Expected element count.
        expected: usize,
        /// Provided element count.
        actual: usize,
    },
    /// A PPM/PGM stream could not be parsed.
    Format {
        /// Description of the malformed content.
        what: String,
    },
    /// An underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for ImageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImageError::SizeMismatch { lhs, rhs } => {
                write!(f, "image size mismatch: {}x{} vs {}x{}", lhs.0, lhs.1, rhs.0, rhs.1)
            }
            ImageError::LengthMismatch { expected, actual } => {
                write!(f, "buffer length {actual} does not match expected {expected}")
            }
            ImageError::Format { what } => write!(f, "malformed image data: {what}"),
            ImageError::Io(e) => write!(f, "i/o failure: {e}"),
        }
    }
}

impl std::error::Error for ImageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ImageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ImageError {
    fn from(e: std::io::Error) -> Self {
        ImageError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_sizes() {
        let err = ImageError::SizeMismatch { lhs: (4, 2), rhs: (8, 2) };
        assert!(err.to_string().contains("4x2"));
        assert!(err.to_string().contains("8x2"));
    }

    #[test]
    fn io_error_has_source() {
        use std::error::Error;
        let err = ImageError::from(std::io::Error::other("boom"));
        assert!(err.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ImageError>();
    }
}
