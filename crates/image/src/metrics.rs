//! Image-distance metrics used for reporting perturbation visibility.

use crate::error::{ImageError, Result};
use crate::image::Image;

/// Mean squared error between two images over all channels.
///
/// # Errors
///
/// Returns [`ImageError::SizeMismatch`] for images of different sizes.
pub fn mse(a: &Image, b: &Image) -> Result<f64> {
    check_sizes(a, b)?;
    let pa = a.as_feature_map().as_slice();
    let pb = b.as_feature_map().as_slice();
    if pa.is_empty() {
        return Ok(0.0);
    }
    let sum: f64 = pa
        .iter()
        .zip(pb)
        .map(|(&x, &y)| {
            let d = (x - y) as f64;
            d * d
        })
        .sum();
    Ok(sum / pa.len() as f64)
}

/// Peak signal-to-noise ratio in decibels (peak = 255).
///
/// Identical images yield `f64::INFINITY`.
///
/// # Errors
///
/// Returns [`ImageError::SizeMismatch`] for images of different sizes.
pub fn psnr(a: &Image, b: &Image) -> Result<f64> {
    let mse = mse(a, b)?;
    if mse == 0.0 {
        return Ok(f64::INFINITY);
    }
    Ok(10.0 * (255.0f64 * 255.0 / mse).log10())
}

/// L2 distance between two images over all channel values.
///
/// # Errors
///
/// Returns [`ImageError::SizeMismatch`] for images of different sizes.
pub fn l2_distance(a: &Image, b: &Image) -> Result<f64> {
    check_sizes(a, b)?;
    let sum: f64 = a
        .as_feature_map()
        .as_slice()
        .iter()
        .zip(b.as_feature_map().as_slice())
        .map(|(&x, &y)| {
            let d = (x - y) as f64;
            d * d
        })
        .sum();
    Ok(sum.sqrt())
}

/// L∞ distance (largest per-channel deviation).
///
/// # Errors
///
/// Returns [`ImageError::SizeMismatch`] for images of different sizes.
pub fn linf_distance(a: &Image, b: &Image) -> Result<f64> {
    check_sizes(a, b)?;
    Ok(a.as_feature_map()
        .as_slice()
        .iter()
        .zip(b.as_feature_map().as_slice())
        .map(|(&x, &y)| (x - y).abs() as f64)
        .fold(0.0, f64::max))
}

/// Fraction of pixels whose RGB triple differs between the two images.
///
/// # Errors
///
/// Returns [`ImageError::SizeMismatch`] for images of different sizes.
pub fn changed_pixel_fraction(a: &Image, b: &Image) -> Result<f64> {
    check_sizes(a, b)?;
    if a.pixel_count() == 0 {
        return Ok(0.0);
    }
    let mut changed = 0usize;
    for y in 0..a.height() {
        for x in 0..a.width() {
            if a.pixel(x, y) != b.pixel(x, y) {
                changed += 1;
            }
        }
    }
    Ok(changed as f64 / a.pixel_count() as f64)
}

fn check_sizes(a: &Image, b: &Image) -> Result<()> {
    if a.width() != b.width() || a.height() != b.height() {
        return Err(ImageError::SizeMismatch {
            lhs: (a.width(), a.height()),
            rhs: (b.width(), b.height()),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_images_have_zero_mse() {
        let img = Image::filled(4, 4, [1.0, 2.0, 3.0]);
        assert_eq!(mse(&img, &img).unwrap(), 0.0);
        assert_eq!(psnr(&img, &img).unwrap(), f64::INFINITY);
        assert_eq!(l2_distance(&img, &img).unwrap(), 0.0);
        assert_eq!(changed_pixel_fraction(&img, &img).unwrap(), 0.0);
    }

    #[test]
    fn mse_of_constant_offset() {
        let a = Image::filled(2, 2, [0.0; 3]);
        let b = Image::filled(2, 2, [10.0; 3]);
        assert_eq!(mse(&a, &b).unwrap(), 100.0);
        assert_eq!(linf_distance(&a, &b).unwrap(), 10.0);
    }

    #[test]
    fn psnr_decreases_with_noise() {
        let base = Image::filled(8, 8, [128.0; 3]);
        let small = Image::filled(8, 8, [129.0; 3]);
        let big = Image::filled(8, 8, [168.0; 3]);
        assert!(psnr(&base, &small).unwrap() > psnr(&base, &big).unwrap());
    }

    #[test]
    fn changed_fraction_counts_pixels() {
        let a = Image::black(4, 1);
        let mut b = a.clone();
        b.put_pixel(0, 0, [1.0, 0.0, 0.0]);
        b.put_pixel(3, 0, [0.0, 0.0, 1.0]);
        assert_eq!(changed_pixel_fraction(&a, &b).unwrap(), 0.5);
    }

    #[test]
    fn size_mismatch_is_rejected() {
        let a = Image::black(2, 2);
        let b = Image::black(3, 2);
        assert!(mse(&a, &b).is_err());
        assert!(psnr(&a, &b).is_err());
        assert!(l2_distance(&a, &b).is_err());
        assert!(linf_distance(&a, &b).is_err());
        assert!(changed_pixel_fraction(&a, &b).is_err());
    }

    #[test]
    fn l2_distance_matches_pythagoras() {
        let a = Image::black(1, 1);
        let mut b = a.clone();
        b.put_pixel(0, 0, [3.0, 4.0, 0.0]);
        assert!((l2_distance(&a, &b).unwrap() - 5.0).abs() < 1e-9);
    }
}
