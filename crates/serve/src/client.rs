//! A minimal blocking HTTP client over `std::net::TcpStream`.
//!
//! Shared by the load generator, the integration tests and the CI smoke
//! job so none of them need an external HTTP tool. It speaks the same
//! one-request-per-connection subset the server does.

use crate::http::{status_reason, Request};
use std::io::{self, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Cap on response bodies the client will buffer.
const MAX_RESPONSE_BODY: usize = 16 * 1024 * 1024;

/// One parsed HTTP response.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// The status code.
    pub status: u16,
    /// Header `(name, value)` pairs, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The response body.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// The first value of a header (name matched case-insensitively).
    pub fn header(&self, name: &str) -> Option<&str> {
        let want = name.to_ascii_lowercase();
        self.headers.iter().find(|(n, _)| *n == want).map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 text.
    ///
    /// # Errors
    ///
    /// Reports non-UTF-8 bodies.
    pub fn body_text(&self) -> Result<&str, String> {
        std::str::from_utf8(&self.body).map_err(|e| format!("body is not UTF-8: {e}"))
    }
}

/// Performs one request against `addr` and reads the full response.
///
/// # Errors
///
/// Propagates connection and transport failures, and reports malformed
/// responses as [`io::ErrorKind::InvalidData`].
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> io::Result<HttpResponse> {
    let invalid = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(120)))?;
    stream.set_write_timeout(Some(Duration::from_secs(30)))?;
    let body = body.unwrap_or("");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()?;

    // The response grammar mirrors the request grammar closely enough to
    // reuse the request parser: swap the status line for a request line.
    let mut reader = BufReader::new(stream);
    let status_line = read_status_line(&mut reader)?;
    let mut parts = status_line.splitn(3, ' ');
    let (version, code) = match (parts.next(), parts.next()) {
        (Some(v), Some(c)) if v.starts_with("HTTP/") => (v, c),
        _ => return Err(invalid(format!("malformed status line {status_line:?}"))),
    };
    let _ = version;
    let status: u16 =
        code.parse().map_err(|e| invalid(format!("bad status code {code:?}: {e}")))?;
    // Re-feed the remainder as a bodiless request so header and body
    // handling stay in one place.
    let mut synthetic = Vec::from(&b"GET / HTTP/1.1\r\n"[..]);
    let mut rest = Vec::new();
    io::Read::read_to_end(&mut reader, &mut rest)?;
    synthetic.extend_from_slice(&rest);
    let parsed = Request::read_from(&mut BufReader::new(&synthetic[..]), MAX_RESPONSE_BODY)?;
    Ok(HttpResponse { status, headers: parsed.headers, body: parsed.body })
}

/// Reads the CRLF-terminated status line.
fn read_status_line<R: io::BufRead>(reader: &mut R) -> io::Result<String> {
    let mut line = String::new();
    reader.read_line(&mut line)?;
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    if line.is_empty() {
        return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "empty response"));
    }
    Ok(line)
}

/// A convenience wrapper bound to one server address.
#[derive(Debug, Clone)]
pub struct Client {
    addr: String,
}

impl Client {
    /// A client for `addr` (`host:port`).
    pub fn new(addr: impl Into<String>) -> Self {
        Self { addr: addr.into() }
    }

    /// The server address this client targets.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Submits an attack job body to `POST /v1/attacks`.
    ///
    /// # Errors
    ///
    /// Propagates transport failures.
    pub fn submit(&self, job_json: &str) -> io::Result<HttpResponse> {
        request(&self.addr, "POST", "/v1/attacks", Some(job_json))
    }

    /// Fetches `GET /v1/attacks/{id}`.
    ///
    /// # Errors
    ///
    /// Propagates transport failures.
    pub fn status(&self, id: &str) -> io::Result<HttpResponse> {
        request(&self.addr, "GET", &format!("/v1/attacks/{id}"), None)
    }

    /// Fetches the stored result CSV via `GET /v1/attacks/{id}/csv`.
    ///
    /// # Errors
    ///
    /// Propagates transport failures.
    pub fn csv(&self, id: &str) -> io::Result<HttpResponse> {
        request(&self.addr, "GET", &format!("/v1/attacks/{id}/csv"), None)
    }

    /// Fetches `GET /healthz`.
    ///
    /// # Errors
    ///
    /// Propagates transport failures.
    pub fn healthz(&self) -> io::Result<HttpResponse> {
        request(&self.addr, "GET", "/healthz", None)
    }

    /// Fetches `GET /metrics`.
    ///
    /// # Errors
    ///
    /// Propagates transport failures.
    pub fn metrics(&self) -> io::Result<HttpResponse> {
        request(&self.addr, "GET", "/metrics", None)
    }

    /// Polls `GET /v1/attacks/{id}` until the job leaves `queued` /
    /// `running`, waiting `interval` between polls up to `deadline`.
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::TimedOut`] when the deadline expires, plus any
    /// transport failure.
    pub fn wait(
        &self,
        id: &str,
        interval: Duration,
        deadline: Duration,
    ) -> io::Result<HttpResponse> {
        let start = std::time::Instant::now();
        loop {
            let response = self.status(id)?;
            let text = response.body_text().unwrap_or("");
            if response.status != 200
                || !(text.contains("\"queued\"") || text.contains("\"running\""))
            {
                return Ok(response);
            }
            if start.elapsed() > deadline {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!("job {id} still pending after {deadline:?}"),
                ));
            }
            std::thread::sleep(interval);
        }
    }
}

/// A descriptive string for a reason phrase lookup, used by loadgen's
/// summary output.
pub fn describe_status(code: u16) -> String {
    format!("{code} {}", status_reason(code))
}
