//! Result summarisation and export for the experiment harnesses.

use crate::attack::AttackOutcome;
// Rows serialise via the hand-rolled CSV writer below; the build
// environment has no registry access for serde.
use std::io::Write;

/// One Pareto-front point of an attack run, in the paper's Figure 2 axes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParetoPoint {
    /// `obj_intensity` (raw L2).
    pub intensity: f64,
    /// `obj_intensity` normalised into `[0, 1]`.
    pub intensity_normalized: f64,
    /// `obj_degrad` (Algorithm 1; lower = stronger attack).
    pub degrad: f64,
    /// `obj_dist` (Algorithm 2, normalised; higher = more unrelated).
    pub dist: f64,
}

/// One labelled experiment row: a Pareto point attributed to an
/// architecture / model / image triple.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackRow {
    /// Architecture name (`"YOLO"` / `"DETR"`).
    pub architecture: String,
    /// Model seed.
    pub model_seed: u64,
    /// Image index in the dataset.
    pub image_index: usize,
    /// Which champion this row is (`"best-intensity"` etc. or `"front"`).
    pub role: String,
    /// The objectives.
    pub point: ParetoPoint,
}

/// Extracts all front points of an outcome as [`ParetoPoint`]s.
pub fn pareto_points(outcome: &AttackOutcome) -> Vec<ParetoPoint> {
    let raw = outcome.pareto_points();
    let normalized = outcome.pareto_points_normalized();
    raw.iter()
        .zip(&normalized)
        .map(|(r, n)| ParetoPoint {
            intensity: r[0],
            intensity_normalized: n[0],
            degrad: r[1],
            dist: r[2],
        })
        .collect()
}

/// Extracts the three per-objective champions (the paper's Figure 2
/// read-out) as labelled rows.
pub fn champion_rows(
    outcome: &AttackOutcome,
    architecture: &str,
    model_seed: u64,
    image_index: usize,
) -> Vec<AttackRow> {
    let champions = [
        ("best-intensity", outcome.best_intensity()),
        ("best-degrad", outcome.best_degradation()),
        ("best-dist", outcome.best_distance()),
    ];
    champions
        .into_iter()
        .filter_map(|(role, individual)| {
            let individual = individual?;
            let objs = individual.objectives();
            Some(AttackRow {
                architecture: architecture.to_string(),
                model_seed,
                image_index,
                role: role.to_string(),
                point: ParetoPoint {
                    intensity: objs[0],
                    intensity_normalized: crate::objectives::intensity::obj_intensity_normalized(
                        individual.genome(),
                    ),
                    degrad: objs[1],
                    dist: objs[2],
                },
            })
        })
        .collect()
}

/// Extracts every final-front point as a `"front"`-role row. Persisting
/// these next to the champions keeps success criteria computable from the
/// stored rows alone (see [`rows_succeeded`]).
pub fn front_rows(
    outcome: &AttackOutcome,
    architecture: &str,
    model_seed: u64,
    image_index: usize,
) -> Vec<AttackRow> {
    pareto_points(outcome)
        .into_iter()
        .map(|point| AttackRow {
            architecture: architecture.to_string(),
            model_seed,
            image_index,
            role: "front".to_string(),
            point,
        })
        .collect()
}

/// [`attack_succeeded`] over persisted rows: `true` when any `"front"` row
/// meets the criteria (champions are also front members, so they count
/// too — the predicate matches the live-outcome one on rows produced by
/// [`front_rows`] + [`champion_rows`]).
pub fn rows_succeeded(rows: &[AttackRow], criteria: SuccessCriteria) -> bool {
    rows.iter().any(|r| {
        r.point.degrad <= criteria.max_degrad && r.point.intensity <= criteria.max_intensity
    })
}

/// The column header emitted and expected by [`write_csv`] / [`read_csv`].
pub const CSV_HEADER: &str =
    "architecture,model_seed,image_index,role,intensity,intensity_normalized,degrad,dist";

/// Quotes a field per RFC 4180 when it contains a comma, quote or line
/// break; embedded quotes are doubled. Plain fields pass through.
pub(crate) fn csv_field(value: &str) -> std::borrow::Cow<'_, str> {
    if value.contains(['"', ',', '\n', '\r']) {
        std::borrow::Cow::Owned(format!("\"{}\"", value.replace('"', "\"\"")))
    } else {
        std::borrow::Cow::Borrowed(value)
    }
}

/// Writes rows as CSV (with header). String fields are quoted/escaped per
/// RFC 4180, so caller-supplied group labels containing commas, quotes or
/// newlines round-trip through [`read_csv`] instead of corrupting the
/// file.
///
/// # Errors
///
/// Propagates I/O failures from the writer.
pub fn write_csv<W: Write>(rows: &[AttackRow], mut writer: W) -> std::io::Result<()> {
    writeln!(writer, "{CSV_HEADER}")?;
    for row in rows {
        writeln!(
            writer,
            "{},{},{},{},{:.4},{:.6},{:.6},{:.6}",
            csv_field(&row.architecture),
            row.model_seed,
            row.image_index,
            csv_field(&row.role),
            row.point.intensity,
            row.point.intensity_normalized,
            row.point.degrad,
            row.point.dist
        )?;
    }
    Ok(())
}

/// Splits one CSV document into records of fields, honouring RFC 4180
/// quoting (quoted fields may contain commas, doubled quotes and line
/// breaks). Returns an error for an unterminated quoted field.
pub(crate) fn parse_csv(text: &str) -> Result<Vec<Vec<String>>, String> {
    let mut records = Vec::new();
    let mut record: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut quoted = false;
    let mut chars = text.chars().peekable();
    let mut any = false;
    while let Some(c) = chars.next() {
        any = true;
        if quoted {
            match c {
                '"' if chars.peek() == Some(&'"') => {
                    chars.next();
                    field.push('"');
                }
                '"' => quoted = false,
                other => field.push(other),
            }
            continue;
        }
        match c {
            '"' => quoted = true,
            ',' => record.push(std::mem::take(&mut field)),
            '\r' => {} // tolerate CRLF line endings
            '\n' => {
                record.push(std::mem::take(&mut field));
                records.push(std::mem::take(&mut record));
            }
            other => field.push(other),
        }
    }
    if quoted {
        return Err("unterminated quoted field".into());
    }
    // A final record without a trailing newline still counts.
    if any && (!field.is_empty() || !record.is_empty()) {
        record.push(field);
        records.push(record);
    }
    Ok(records)
}

/// Reads rows back from CSV produced by [`write_csv`] (used to reload
/// completed campaign cells on resume).
///
/// # Errors
///
/// Returns [`std::io::ErrorKind::InvalidData`] when the header or any
/// record does not match the [`write_csv`] schema, and propagates I/O
/// failures from the reader.
pub fn read_csv<R: std::io::Read>(mut reader: R) -> std::io::Result<Vec<AttackRow>> {
    let mut text = String::new();
    reader.read_to_string(&mut text)?;
    let invalid = |msg: String| std::io::Error::new(std::io::ErrorKind::InvalidData, msg);
    let mut records = parse_csv(&text).map_err(invalid)?.into_iter();
    match records.next() {
        Some(header) if header.join(",") == CSV_HEADER => {}
        other => return Err(invalid(format!("bad CSV header: {other:?}"))),
    }
    let mut rows = Vec::new();
    for (line, record) in records.enumerate() {
        if record.len() != 8 {
            return Err(invalid(format!("record {line}: expected 8 fields, got {}", record.len())));
        }
        let num = |i: usize| -> std::io::Result<f64> {
            record[i].parse().map_err(|e| invalid(format!("record {line} field {i}: {e}")))
        };
        rows.push(AttackRow {
            architecture: record[0].clone(),
            model_seed: record[1]
                .parse()
                .map_err(|e| invalid(format!("record {line} model_seed: {e}")))?,
            image_index: record[2]
                .parse()
                .map_err(|e| invalid(format!("record {line} image_index: {e}")))?,
            role: record[3].clone(),
            point: ParetoPoint {
                intensity: num(4)?,
                intensity_normalized: num(5)?,
                degrad: num(6)?,
                dist: num(7)?,
            },
        });
    }
    Ok(rows)
}

/// Attack-success criteria: a run "succeeds" when some front member
/// reaches `obj_degrad ≤ max_degrad` while spending at most
/// `max_intensity` (raw L2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SuccessCriteria {
    /// Largest admissible `obj_degrad` (e.g. 0.6, the paper's "reasonable
    /// performance drop").
    pub max_degrad: f64,
    /// Largest admissible `obj_intensity` (raw L2 norm of the mask).
    pub max_intensity: f64,
}

impl Default for SuccessCriteria {
    fn default() -> Self {
        // The paper calls obj_degrad ≈ 0.6 a reasonable drop; the intensity
        // cap corresponds to a perturbation a casual observer misses on a
        // 192x64 image (≈ 3% of the maximal mask norm).
        Self { max_degrad: 0.6, max_intensity: 5000.0 }
    }
}

/// `true` when any front member of the outcome satisfies the criteria.
pub fn attack_succeeded(outcome: &AttackOutcome, criteria: SuccessCriteria) -> bool {
    outcome
        .pareto_points()
        .iter()
        .any(|p| p[1] <= criteria.max_degrad && p[0] <= criteria.max_intensity)
}

/// Fraction of outcomes satisfying the criteria (the attack-success rate
/// over a model × image grid).
pub fn success_rate(outcomes: &[AttackOutcome], criteria: SuccessCriteria) -> f64 {
    if outcomes.is_empty() {
        return 0.0;
    }
    let hits = outcomes.iter().filter(|o| attack_succeeded(o, criteria)).count();
    hits as f64 / outcomes.len() as f64
}

/// Prints a fixed-width text table (used by every harness for its
/// stdout summary).
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let padded: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<width$}", c, width = widths.get(i).copied().unwrap_or(0)))
            .collect();
        println!("| {} |", padded.join(" | "));
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    println!("|{}|", widths.iter().map(|w| "-".repeat(w + 2)).collect::<Vec<_>>().join("|"));
    for row in rows {
        line(row.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_row() -> AttackRow {
        AttackRow {
            architecture: "DETR".into(),
            model_seed: 3,
            image_index: 10,
            role: "best-degrad".into(),
            point: ParetoPoint {
                intensity: 123.4,
                intensity_normalized: 0.05,
                degrad: 0.6,
                dist: 0.5,
            },
        }
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut buf = Vec::new();
        write_csv(&[sample_row()], &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let mut lines = text.lines();
        assert!(lines.next().unwrap().starts_with("architecture,"));
        let row = lines.next().unwrap();
        assert!(row.starts_with("DETR,3,10,best-degrad,"));
        assert!(row.contains("0.600000"));
    }

    #[test]
    fn empty_rows_produce_header_only() {
        let mut buf = Vec::new();
        write_csv(&[], &mut buf).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap().lines().count(), 1);
    }

    #[test]
    fn hostile_labels_round_trip_through_csv() {
        let hostile = AttackRow {
            architecture: "DETR, \"v2\"\nensemble".into(),
            model_seed: 7,
            image_index: 3,
            role: "best,\"degrad\"".into(),
            point: ParetoPoint {
                intensity: 10.5,
                intensity_normalized: 0.25,
                degrad: 0.125,
                dist: 0.75,
            },
        };
        let plain = sample_row();
        let mut buf = Vec::new();
        write_csv(&[hostile.clone(), plain.clone()], &mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(
            text.contains("\"DETR, \"\"v2\"\"\nensemble\""),
            "label must be quoted with doubled quotes: {text}"
        );
        let rows = read_csv(&buf[..]).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].architecture, hostile.architecture);
        assert_eq!(rows[0].role, hostile.role);
        assert_eq!(rows[0].model_seed, 7);
        assert_eq!(rows[0].image_index, 3);
        assert_eq!(rows[0].point, hostile.point);
        assert_eq!(rows[1], plain);
    }

    #[test]
    fn csv_written_from_parsed_rows_is_byte_stable() {
        // Values emitted at fixed precision re-parse and re-format to the
        // identical bytes — resume can rewrite champion CSVs losslessly.
        let mut first = Vec::new();
        write_csv(&[sample_row()], &mut first).unwrap();
        let reloaded = read_csv(&first[..]).unwrap();
        let mut second = Vec::new();
        write_csv(&reloaded, &mut second).unwrap();
        assert_eq!(first, second);
    }

    #[test]
    fn read_csv_rejects_malformed_input() {
        assert!(read_csv(&b"not,a,header\n"[..]).is_err());
        let mut short = format!("{CSV_HEADER}\n").into_bytes();
        short.extend_from_slice(b"DETR,1,2,role\n");
        assert!(read_csv(&short[..]).is_err(), "field-count mismatch must fail");
        let mut unterminated = format!("{CSV_HEADER}\n").into_bytes();
        unterminated.extend_from_slice(b"\"DETR,1,2,role,1,1,1,1\n");
        assert!(read_csv(&unterminated[..]).is_err(), "unterminated quote must fail");
        let mut garbage = format!("{CSV_HEADER}\n").into_bytes();
        garbage.extend_from_slice(b"DETR,notanumber,2,role,1,1,1,1\n");
        assert!(read_csv(&garbage[..]).is_err(), "non-numeric seed must fail");
    }

    #[test]
    fn rows_clone_compare_equal() {
        let row = sample_row();
        let clone = row.clone();
        assert_eq!(row, clone);
    }

    #[test]
    fn success_criteria_defaults_are_sane() {
        let c = SuccessCriteria::default();
        assert!(c.max_degrad > 0.0 && c.max_degrad < 1.0);
        assert!(c.max_intensity > 0.0);
    }

    #[test]
    fn empty_outcome_list_has_zero_success_rate() {
        assert_eq!(success_rate(&[], SuccessCriteria::default()), 0.0);
    }
}
