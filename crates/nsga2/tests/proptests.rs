//! Property-based tests of the NSGA-II machinery.

use bea_nsga2::crowding::crowding_distances;
use bea_nsga2::hypervolume::hypervolume;
use bea_nsga2::sorting::{fast_non_dominated_sort, ranks};
use bea_nsga2::{dominates, Direction};
use proptest::prelude::*;

fn arb_objectives(n: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    proptest::collection::vec(proptest::collection::vec(0.0f64..1.0, 2), 1..n)
}

const MIN2: [Direction; 2] = [Direction::Minimize, Direction::Minimize];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dominance_is_irreflexive_and_antisymmetric(objs in arb_objectives(12)) {
        for a in &objs {
            prop_assert!(!dominates(a, a, &MIN2));
        }
        for a in &objs {
            for b in &objs {
                prop_assert!(!(dominates(a, b, &MIN2) && dominates(b, a, &MIN2)));
            }
        }
    }

    #[test]
    fn dominance_is_transitive(a in proptest::collection::vec(0.0f64..1.0, 2),
                               eps1 in 0.001f64..0.3, eps2 in 0.001f64..0.3) {
        // Construct a > b > c explicitly; transitivity must close the chain.
        let b = vec![a[0] + eps1, a[1] + eps1];
        let c = vec![b[0] + eps2, b[1] + eps2];
        prop_assert!(dominates(&a, &b, &MIN2));
        prop_assert!(dominates(&b, &c, &MIN2));
        prop_assert!(dominates(&a, &c, &MIN2));
    }

    #[test]
    fn rank_zero_iff_nondominated(objs in arb_objectives(16)) {
        let r = ranks(&objs, &MIN2);
        for (i, obj) in objs.iter().enumerate() {
            let dominated = objs.iter().any(|other| dominates(other, obj, &MIN2));
            prop_assert_eq!(r[i] == 0, !dominated);
        }
    }

    #[test]
    fn fronts_are_ordered_by_rank(objs in arb_objectives(16)) {
        let fronts = fast_non_dominated_sort(&objs, &MIN2);
        let r = ranks(&objs, &MIN2);
        for (k, front) in fronts.iter().enumerate() {
            for &i in front {
                prop_assert_eq!(r[i], k);
            }
        }
    }

    #[test]
    fn crowding_boundaries_are_infinite(objs in arb_objectives(12)) {
        let front: Vec<usize> = (0..objs.len()).collect();
        let d = crowding_distances(&front, &objs);
        prop_assert_eq!(d.len(), objs.len());
        // The extremes of objective 0 always carry infinity.
        let min_idx = (0..objs.len())
            .min_by(|&a, &b| objs[a][0].partial_cmp(&objs[b][0]).unwrap())
            .unwrap();
        let max_idx = (0..objs.len())
            .max_by(|&a, &b| objs[a][0].partial_cmp(&objs[b][0]).unwrap())
            .unwrap();
        prop_assert!(d[min_idx].is_infinite());
        prop_assert!(d[max_idx].is_infinite());
        prop_assert!(d.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn hypervolume_is_monotone_under_point_addition(
        objs in arb_objectives(10),
        extra in proptest::collection::vec(0.0f64..1.0, 2),
    ) {
        let reference = [1.5, 1.5];
        let base = hypervolume(&objs, &reference, &MIN2);
        let mut bigger = objs.clone();
        bigger.push(extra);
        let grown = hypervolume(&bigger, &reference, &MIN2);
        prop_assert!(grown >= base - 1e-12, "adding a point cannot shrink HV");
    }

    #[test]
    fn hypervolume_is_translation_consistent(objs in arb_objectives(8), shift in 0.0f64..2.0) {
        let reference = [2.0, 2.0];
        let base = hypervolume(&objs, &reference, &MIN2);
        let moved: Vec<Vec<f64>> =
            objs.iter().map(|p| vec![p[0] + shift, p[1] + shift]).collect();
        let moved_hv =
            hypervolume(&moved, &[2.0 + shift, 2.0 + shift], &MIN2);
        prop_assert!((base - moved_hv).abs() < 1e-9);
    }

    #[test]
    fn hypervolume_never_exceeds_reference_box(objs in arb_objectives(12)) {
        let reference = [1.0, 1.0];
        let hv = hypervolume(&objs, &reference, &MIN2);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&hv));
    }
}
