//! Parallel attack campaigns: the paper's (architecture × model seed ×
//! image) grid sharded across worker threads, with per-generation
//! telemetry and resumable on-disk state.
//!
//! A **campaign** is the batch form of [`crate::sweep::AttackSweep`]: the
//! caller enumerates grid cells as [`CellSpec`]s and provides closures
//! that materialise each cell's detector and image; [`Campaign::run`]
//! executes the cells across `jobs` workers. Three properties are load
//! bearing:
//!
//! 1. **Determinism.** Every cell's NSGA-II seed is derived from
//!    `(base_seed, model_seed, image_index)` via [`derive_cell_seed`] —
//!    never from scheduling order — and results are committed into
//!    spec-order slots, so `--jobs 1` and `--jobs N` produce identical
//!    champion rows and identical telemetry (modulo wall-times).
//! 2. **Observability.** Each computed cell buffers one JSONL record per
//!    generation ([`crate::telemetry::generation_record`]); a campaign
//!    with a [`CampaignStore`] writes them, a manifest, per-cell CSVs and
//!    the combined champion CSV after the workers join.
//! 3. **Resumability.** Cells whose CSV already exists in the store are
//!    reloaded instead of recomputed, so an interrupted campaign restarts
//!    where it stopped.

use crate::attack::{AttackConfig, AttackOutcome, ButterflyAttack};
use crate::grid::{fnv1a, resolve_jobs, run_sharded};
use crate::report::{champion_rows, front_rows, read_csv, write_csv, AttackRow};
use crate::telemetry::{self, JsonObject};
use bea_detect::Detector;
use bea_image::{FilterMask, Image};
use std::io;
use std::path::{Path, PathBuf};

/// One grid cell: which group (architecture), model seed and image to
/// attack.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CellSpec {
    /// Group label the cell belongs to (e.g. the architecture name).
    pub group: String,
    /// Seed of the model under attack.
    pub model_seed: u64,
    /// Index of the image under attack.
    pub image_index: usize,
}

impl CellSpec {
    /// Builds one cell spec.
    pub fn new(group: impl Into<String>, model_seed: u64, image_index: usize) -> Self {
        Self { group: group.into(), model_seed, image_index }
    }

    /// The full model × image grid of one group, in row-major
    /// (model-major) order — the paper's per-architecture evaluation
    /// block.
    pub fn grid(group: &str, model_seeds: &[u64], image_indices: &[usize]) -> Vec<Self> {
        model_seeds
            .iter()
            .flat_map(|&seed| image_indices.iter().map(move |&img| Self::new(group, seed, img)))
            .collect()
    }
}

/// SplitMix64 finalizer: the standard 64-bit avalanche mix.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Derives a cell's NSGA-II seed from the campaign base seed and the
/// cell coordinates by chaining SplitMix64 mixes. The derivation depends
/// only on the cell's identity — never on worker scheduling — which is
/// what makes parallel and sequential campaigns bit-identical.
pub fn derive_cell_seed(base_seed: u64, model_seed: u64, image_index: usize) -> u64 {
    let a = splitmix(base_seed);
    let b = splitmix(a ^ model_seed);
    splitmix(b ^ image_index as u64)
}

/// A stable fingerprint of a campaign's identity: the base seed, the GA
/// budget and the exact cell grid (order-sensitive). Two campaigns with
/// the same fingerprint produce the same cells; resuming into a store
/// whose manifest carries a different fingerprint would silently mix
/// incompatible cells, so [`Campaign::run_with_store`] refuses it.
pub fn grid_fingerprint(
    base_seed: u64,
    population: usize,
    generations: usize,
    specs: &[CellSpec],
) -> u64 {
    let mut canonical = format!("v1\x1f{base_seed}\x1f{population}\x1f{generations}");
    for spec in specs {
        canonical.push('\x1e');
        canonical.push_str(&spec.group);
        canonical.push('\x1f');
        canonical.push_str(&spec.model_seed.to_string());
        canonical.push('\x1f');
        canonical.push_str(&spec.image_index.to_string());
    }
    fnv1a(canonical.as_bytes())
}

/// Campaign-level configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignConfig {
    /// The per-cell attack configuration. The NSGA-II seed inside it is
    /// ignored — each cell derives its own via [`derive_cell_seed`].
    pub attack: AttackConfig,
    /// Base seed every cell seed is derived from.
    pub base_seed: u64,
    /// Worker threads sharding the cells: `0` uses every available core,
    /// `1` runs sequentially. With more than one worker, each cell's
    /// inner evaluation runs single-threaded to avoid oversubscription.
    pub jobs: usize,
    /// Buffer per-generation telemetry records (and write them when a
    /// store is attached).
    pub telemetry: bool,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        Self { attack: AttackConfig::default(), base_seed: 1, jobs: 0, telemetry: true }
    }
}

/// One finished campaign cell.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// The cell's coordinates.
    pub spec: CellSpec,
    /// The NSGA-II seed the cell ran (or originally ran) under.
    pub seed: u64,
    /// `true` when the cell was reloaded from a store instead of
    /// computed.
    pub resumed: bool,
    /// Champion rows followed by `"front"` rows — exactly what the store
    /// persists per cell.
    pub rows: Vec<AttackRow>,
    /// One JSONL record per generation (empty for resumed cells and when
    /// telemetry is disabled).
    pub telemetry: Vec<String>,
    /// The live outcome; `None` for resumed cells, which only have rows.
    pub outcome: Option<AttackOutcome>,
}

impl CellResult {
    /// The cell's champion rows (everything but the `"front"` rows).
    pub fn champion_rows(&self) -> Vec<AttackRow> {
        self.rows.iter().filter(|r| r.role != "front").cloned().collect()
    }
}

/// The outcome of a whole campaign, cells in spec order.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// Per-cell results, in the order the specs were given.
    pub cells: Vec<CellResult>,
    /// The resolved worker count the campaign ran with.
    pub jobs: usize,
    base_seed: u64,
    population: usize,
    generations: usize,
    fingerprint: u64,
}

impl CampaignResult {
    /// All champion rows in spec order — the campaign's combined CSV.
    pub fn champion_rows(&self) -> Vec<AttackRow> {
        self.cells.iter().flat_map(|c| c.champion_rows()).collect()
    }

    /// Number of cells computed by this run (the rest were resumed).
    pub fn computed_cells(&self) -> usize {
        self.cells.iter().filter(|c| !c.resumed).count()
    }

    /// The campaign manifest as a single JSON line: run parameters plus
    /// one entry per cell (coordinates, derived seed, resumed flag).
    pub fn manifest_line(&self) -> String {
        let cells: Vec<String> = self
            .cells
            .iter()
            .map(|c| {
                JsonObject::new()
                    .string("group", &c.spec.group)
                    .integer("model_seed", c.spec.model_seed)
                    .integer("image_index", c.spec.image_index as u64)
                    .integer("seed", c.seed)
                    .boolean("resumed", c.resumed)
                    .finish()
            })
            .collect();
        JsonObject::new()
            .string("type", "manifest")
            .integer("version", 1)
            .string("fingerprint", &format!("{:016x}", self.fingerprint))
            .integer("base_seed", self.base_seed)
            .integer("jobs", self.jobs as u64)
            .integer("population", self.population as u64)
            .integer("generations", self.generations as u64)
            .raw("cells", &format!("[{}]", cells.join(",")))
            .finish()
    }

    /// The full telemetry stream: the manifest line followed by every
    /// computed cell's generation records, in spec order.
    pub fn telemetry_lines(&self) -> Vec<String> {
        let mut lines = vec![self.manifest_line()];
        for cell in &self.cells {
            lines.extend(cell.telemetry.iter().cloned());
        }
        lines
    }
}

/// On-disk layout of a resumable campaign:
/// `cells/<slug>.csv` per finished cell, plus `champions.csv`,
/// `manifest.json` and `telemetry.jsonl` written after every run.
#[derive(Debug, Clone)]
pub struct CampaignStore {
    root: PathBuf,
}

impl CampaignStore {
    /// Opens (creating if needed) a campaign directory.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<Self> {
        let root = root.into();
        std::fs::create_dir_all(root.join("cells"))?;
        std::fs::create_dir_all(root.join("masks"))?;
        Ok(Self { root })
    }

    /// The campaign directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Path of one cell's CSV. The file name sanitises the group label
    /// and appends an FNV-1a hash of the raw label, so hostile labels
    /// (separators, quotes, path characters) stay collision-free; the
    /// label itself round-trips through the CSV content, not the name.
    pub fn cell_path(&self, spec: &CellSpec) -> PathBuf {
        self.root.join("cells").join(format!("{}.csv", cell_slug(spec)))
    }

    /// Path of one cell's persisted champion mask (the `best-degrad`
    /// genome), written alongside the cell CSV so derived evaluations —
    /// the transfer matrix — can re-apply the exact champion without
    /// re-running the attack.
    pub fn mask_path(&self, spec: &CellSpec) -> PathBuf {
        self.root.join("masks").join(format!("{}.mask", cell_slug(spec)))
    }

    /// Persists one cell's champion mask (tmp-file + rename, like
    /// [`CampaignStore::save_cell`]).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn save_mask(&self, spec: &CellSpec, mask: &FilterMask) -> io::Result<()> {
        static SAVE_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let seq = SAVE_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let path = self.mask_path(spec);
        let tmp = path.with_extension(format!("mask.tmp.{}.{seq}", std::process::id()));
        std::fs::write(&tmp, encode_mask(mask))?;
        std::fs::rename(&tmp, &path)
    }

    /// Loads a previously persisted champion mask, or `None` when the
    /// cell has no stored mask (a store written before mask persistence,
    /// or a cell whose attack produced no champion).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; a mask file that exists but does not
    /// parse is [`io::ErrorKind::InvalidData`].
    pub fn load_mask(&self, spec: &CellSpec) -> io::Result<Option<FilterMask>> {
        match std::fs::read_to_string(self.mask_path(spec)) {
            Ok(text) => decode_mask(&text)
                .map(Some)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Path of the combined champion CSV.
    pub fn champions_path(&self) -> PathBuf {
        self.root.join("champions.csv")
    }

    /// Path of the JSONL telemetry stream.
    pub fn telemetry_path(&self) -> PathBuf {
        self.root.join("telemetry.jsonl")
    }

    /// Path of the campaign manifest.
    pub fn manifest_path(&self) -> PathBuf {
        self.root.join("manifest.json")
    }

    /// The fingerprint recorded in the store's manifest, or `None` when
    /// no manifest exists yet (a fresh store) or the manifest predates
    /// fingerprinting (a legacy store, which resumes without the check).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; a manifest that exists but is not valid
    /// JSON is [`io::ErrorKind::InvalidData`].
    pub fn manifest_fingerprint(&self) -> io::Result<Option<u64>> {
        manifest_fingerprint_at(&self.manifest_path())
    }

    /// Loads a previously persisted cell, or `None` when the cell has not
    /// finished before.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures and [`read_csv`] schema violations.
    pub fn load_cell(&self, spec: &CellSpec) -> io::Result<Option<Vec<AttackRow>>> {
        match std::fs::read(self.cell_path(spec)) {
            Ok(bytes) => read_csv(&bytes[..]).map(Some),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Persists one cell's rows. The write goes through a temporary file
    /// and a rename, so an interrupted campaign never leaves a truncated
    /// cell behind to be "resumed".
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn save_cell(&self, spec: &CellSpec, rows: &[AttackRow]) -> io::Result<()> {
        // The tmp name must be unique per save, not per cell: the serving
        // layer can run two jobs targeting the same cell concurrently
        // (identical submissions from different tenants), and a shared
        // tmp path lets one save rename the other's file away mid-write.
        // Determinism makes the collision harmless once the names are
        // distinct — both writers produce identical bytes.
        static SAVE_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let seq = SAVE_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let path = self.cell_path(spec);
        let tmp = path.with_extension(format!("csv.tmp.{}.{seq}", std::process::id()));
        let mut buf = Vec::new();
        write_csv(rows, &mut buf)?;
        std::fs::write(&tmp, &buf)?;
        std::fs::rename(&tmp, &path)
    }

    fn write_outputs(&self, result: &CampaignResult, telemetry: bool) -> io::Result<()> {
        for cell in &result.cells {
            if !cell.resumed {
                self.save_cell(&cell.spec, &cell.rows)?;
                if let Some(best) = cell.outcome.as_ref().and_then(|o| o.best_degradation()) {
                    self.save_mask(&cell.spec, best.genome())?;
                }
            }
        }
        let mut buf = Vec::new();
        write_csv(&result.champion_rows(), &mut buf)?;
        std::fs::write(self.champions_path(), &buf)?;
        std::fs::write(self.manifest_path(), format!("{}\n", result.manifest_line()))?;
        if telemetry {
            let mut text = String::new();
            for line in result.telemetry_lines() {
                text.push_str(&line);
                text.push('\n');
            }
            std::fs::write(self.telemetry_path(), text)?;
        }
        Ok(())
    }
}

/// Reads the `"fingerprint"` hex field out of a store manifest: `None`
/// when the file does not exist (a fresh store) or predates
/// fingerprinting (a legacy store, which resumes without the check).
/// Shared by campaign and transfer stores.
///
/// # Errors
///
/// Propagates I/O failures; a manifest that exists but is not valid JSON
/// (or carries a malformed fingerprint) is [`io::ErrorKind::InvalidData`].
pub(crate) fn manifest_fingerprint_at(path: &Path) -> io::Result<Option<u64>> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    let invalid = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
    let manifest = telemetry::parse_json(text.trim())
        .map_err(|e| invalid(format!("corrupt manifest {}: {e}", path.display())))?;
    match manifest.get("fingerprint") {
        None => Ok(None),
        Some(field) => {
            let hex = field
                .as_str()
                .ok_or_else(|| invalid("manifest fingerprint must be a hex string".to_string()))?;
            u64::from_str_radix(hex, 16)
                .map(Some)
                .map_err(|e| invalid(format!("manifest fingerprint {hex:?}: {e}")))
        }
    }
}

/// A filesystem-safe, collision-free file stem for one cell: the group
/// label sanitised plus an FNV-1a hash of the raw label, so hostile
/// labels (separators, quotes, path characters) stay distinct; the label
/// itself round-trips through the persisted content, not the name.
pub(crate) fn cell_slug(spec: &CellSpec) -> String {
    let hash = fnv1a(spec.group.as_bytes()) as u32;
    format!("{}-s{}-i{}-{hash:08x}", sanitize_label(&spec.group), spec.model_seed, spec.image_index)
}

/// Keeps only `[A-Za-z0-9._-]` (others become `-`), truncated to 40
/// characters, never empty.
pub(crate) fn sanitize_label(label: &str) -> String {
    let mut safe: String = label
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.') { c } else { '-' })
        .collect();
    safe.truncate(40);
    if safe.is_empty() {
        safe.push('x');
    }
    safe
}

/// Serialises a mask as one header line (`bea-mask v1 <width> <height>`)
/// plus one line of space-separated channel-major gene values. Text, so
/// stored champions stay inspectable and diffable.
fn encode_mask(mask: &FilterMask) -> String {
    let mut text = format!("bea-mask v1 {} {}\n", mask.width(), mask.height());
    for (i, v) in mask.as_slice().iter().enumerate() {
        if i > 0 {
            text.push(' ');
        }
        text.push_str(&v.to_string());
    }
    text.push('\n');
    text
}

/// Inverse of [`encode_mask`].
fn decode_mask(text: &str) -> Result<FilterMask, String> {
    let mut lines = text.lines();
    let header = lines.next().ok_or("empty mask file")?;
    let mut parts = header.split(' ');
    if (parts.next(), parts.next()) != (Some("bea-mask"), Some("v1")) {
        return Err(format!("bad mask header {header:?}"));
    }
    let dim = |what: &str, field: Option<&str>| -> Result<usize, String> {
        field
            .ok_or(format!("mask header missing {what}"))?
            .parse()
            .map_err(|e| format!("mask {what}: {e}"))
    };
    let width = dim("width", parts.next())?;
    let height = dim("height", parts.next())?;
    let values: Vec<i16> = lines
        .next()
        .unwrap_or("")
        .split_whitespace()
        .map(|v| v.parse().map_err(|e| format!("mask gene {v:?}: {e}")))
        .collect::<Result<_, _>>()?;
    FilterMask::from_values(width, height, values).map_err(|e| e.to_string())
}

/// The parallel campaign runner. See the [module docs](self) for the
/// guarantees.
///
/// # Examples
///
/// ```no_run
/// use bea_core::attack::AttackConfig;
/// use bea_core::campaign::{Campaign, CampaignConfig, CellSpec};
/// use bea_detect::{Architecture, ModelZoo};
/// use bea_scene::SyntheticKitti;
///
/// let zoo = ModelZoo::with_defaults();
/// let data = SyntheticKitti::evaluation_set();
/// let specs = CellSpec::grid("DETR", &[1, 2], &[0, 1]);
/// let campaign = Campaign::new(CampaignConfig {
///     attack: AttackConfig::scaled(24, 20),
///     jobs: 4,
///     ..CampaignConfig::default()
/// });
/// let result = campaign.run(
///     &specs,
///     |spec| zoo.model(Architecture::Detr, spec.model_seed),
///     |spec| data.image(spec.image_index),
/// );
/// println!("{} champion rows", result.champion_rows().len());
/// ```
#[derive(Debug, Clone)]
pub struct Campaign {
    config: CampaignConfig,
}

/// A live per-generation telemetry hook: called with the cell and its
/// rendered generation record the moment each generation completes. See
/// [`Campaign::run_observed`].
pub type GenerationObserver<'a> = &'a (dyn Fn(&CellSpec, &str) + Sync);

impl Campaign {
    /// Wraps a campaign configuration.
    pub fn new(config: CampaignConfig) -> Self {
        Self { config }
    }

    /// The configuration.
    pub fn config(&self) -> &CampaignConfig {
        &self.config
    }

    /// Runs every cell in memory (no persistence, no resume).
    pub fn run<D, I>(&self, specs: &[CellSpec], detector_for: D, image_for: I) -> CampaignResult
    where
        D: Fn(&CellSpec) -> Box<dyn Detector> + Sync,
        I: Fn(&CellSpec) -> Image + Sync,
    {
        self.run_impl(specs, &detector_for, &image_for, None, None)
            .expect("in-memory campaigns perform no I/O")
    }

    /// [`Campaign::run`] with a live per-generation observer: `observe`
    /// receives every generation's telemetry line (the same record
    /// [`crate::telemetry::generation_record`] persists) the moment the
    /// generation completes, regardless of whether telemetry buffering
    /// is enabled. The serving layer feeds progress streams from this
    /// hook; results are identical to [`Campaign::run`] — observation
    /// never touches the GA state.
    pub fn run_observed<D, I>(
        &self,
        specs: &[CellSpec],
        detector_for: D,
        image_for: I,
        observe: GenerationObserver<'_>,
    ) -> CampaignResult
    where
        D: Fn(&CellSpec) -> Box<dyn Detector> + Sync,
        I: Fn(&CellSpec) -> Image + Sync,
    {
        self.run_impl(specs, &detector_for, &image_for, None, Some(observe))
            .expect("in-memory campaigns perform no I/O")
    }

    /// Runs the campaign against a store: cells already persisted are
    /// reloaded instead of recomputed, newly computed cells are saved,
    /// and the combined champion CSV, manifest and telemetry stream are
    /// (re)written.
    ///
    /// # Errors
    ///
    /// Propagates store I/O failures and schema violations in persisted
    /// cells.
    pub fn run_with_store<D, I>(
        &self,
        specs: &[CellSpec],
        detector_for: D,
        image_for: I,
        store: &CampaignStore,
    ) -> io::Result<CampaignResult>
    where
        D: Fn(&CellSpec) -> Box<dyn Detector> + Sync,
        I: Fn(&CellSpec) -> Image + Sync,
    {
        self.run_impl(specs, &detector_for, &image_for, Some(store), None)
    }

    fn run_impl<D, I>(
        &self,
        specs: &[CellSpec],
        detector_for: &D,
        image_for: &I,
        store: Option<&CampaignStore>,
        observe: Option<GenerationObserver<'_>>,
    ) -> io::Result<CampaignResult>
    where
        D: Fn(&CellSpec) -> Box<dyn Detector> + Sync,
        I: Fn(&CellSpec) -> Image + Sync,
    {
        let fingerprint = grid_fingerprint(
            self.config.base_seed,
            self.config.attack.nsga2.population_size,
            self.config.attack.nsga2.generations,
            specs,
        );
        // Refuse to resume into a store built for a different grid: the
        // reloaded cells would silently mix two incompatible campaigns.
        if let Some(store) = store {
            if let Some(persisted) = store.manifest_fingerprint()? {
                if persisted != fingerprint {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!(
                            "refusing to resume into {}: its manifest fingerprint \
                             {persisted:016x} does not match the requested grid's \
                             {fingerprint:016x} (same cells, seed, population and \
                             generations required); use a fresh out directory",
                            store.root().display()
                        ),
                    ));
                }
            }
        }

        let jobs = resolve_jobs(self.config.jobs);
        // With cells sharded across workers, nested evaluation threads
        // would oversubscribe the host; sequential campaigns keep the
        // configured inner parallelism. Neither choice affects results.
        let mut attack_config = self.config.attack.clone();
        if jobs > 1 {
            attack_config.nsga2.eval_threads = 1;
        }

        let mut slots: Vec<Option<CellResult>> = Vec::new();
        slots.resize_with(specs.len(), || None);
        let mut pending: Vec<usize> = Vec::new();
        for (idx, spec) in specs.iter().enumerate() {
            let reloaded = match store {
                Some(store) => store.load_cell(spec)?,
                None => None,
            };
            match reloaded {
                Some(rows) => {
                    slots[idx] = Some(CellResult {
                        spec: spec.clone(),
                        seed: derive_cell_seed(
                            self.config.base_seed,
                            spec.model_seed,
                            spec.image_index,
                        ),
                        resumed: true,
                        rows,
                        telemetry: Vec::new(),
                        outcome: None,
                    });
                }
                None => pending.push(idx),
            }
        }

        let computed = run_sharded(jobs, pending.len(), |k| {
            self.run_cell(&specs[pending[k]], &attack_config, detector_for, image_for, observe)
        });
        for (k, cell) in computed.into_iter().enumerate() {
            slots[pending[k]] = Some(cell);
        }

        let result = CampaignResult {
            cells: slots.into_iter().map(|s| s.expect("every cell filled")).collect(),
            jobs,
            base_seed: self.config.base_seed,
            population: self.config.attack.nsga2.population_size,
            generations: self.config.attack.nsga2.generations,
            fingerprint,
        };
        if let Some(store) = store {
            store.write_outputs(&result, self.config.telemetry)?;
        }
        Ok(result)
    }

    fn run_cell<D, I>(
        &self,
        spec: &CellSpec,
        attack_config: &AttackConfig,
        detector_for: &D,
        image_for: &I,
        observe: Option<GenerationObserver<'_>>,
    ) -> CellResult
    where
        D: Fn(&CellSpec) -> Box<dyn Detector> + Sync,
        I: Fn(&CellSpec) -> Image + Sync,
    {
        let seed = derive_cell_seed(self.config.base_seed, spec.model_seed, spec.image_index);
        let mut config = attack_config.clone();
        config.nsga2.seed = seed;
        let attack = ButterflyAttack::new(config);
        let detector = detector_for(spec);
        let image = image_for(spec);
        let before = detector.cache_stats();
        let mut lines = Vec::new();
        let with_telemetry = self.config.telemetry;
        let outcome = attack.attack_with_observer(detector.as_ref(), &image, |stats| {
            if with_telemetry || observe.is_some() {
                let cache = detector.cache_stats().map(|now| match &before {
                    Some(b) => now.since(b),
                    None => now,
                });
                let line = telemetry::generation_record(
                    &spec.group,
                    spec.model_seed,
                    spec.image_index,
                    seed,
                    stats,
                    cache.as_ref(),
                );
                if let Some(observe) = observe {
                    observe(spec, &line);
                }
                if with_telemetry {
                    lines.push(line);
                }
            }
        });
        let mut rows = champion_rows(&outcome, &spec.group, spec.model_seed, spec.image_index);
        rows.extend(front_rows(&outcome, &spec.group, spec.model_seed, spec.image_index));
        CellResult {
            spec: spec.clone(),
            seed,
            resumed: false,
            rows,
            telemetry: lines,
            outcome: Some(outcome),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_fixtures::Toy;

    fn tiny_campaign(jobs: usize) -> Campaign {
        Campaign::new(CampaignConfig {
            attack: AttackConfig::scaled(10, 4),
            base_seed: 7,
            jobs,
            telemetry: true,
        })
    }

    fn tiny_specs() -> Vec<CellSpec> {
        let mut specs = CellSpec::grid("YOLO", &[1, 2], &[0, 1]);
        specs.extend(CellSpec::grid("DETR", &[1], &[0, 1]));
        specs
    }

    fn run(jobs: usize) -> CampaignResult {
        tiny_campaign(jobs).run(
            &tiny_specs(),
            |_spec| Box::new(Toy) as Box<dyn Detector>,
            |_spec| Image::black(24, 12),
        )
    }

    #[test]
    fn cell_seeds_are_deterministic_and_distinct() {
        let grid = CellSpec::grid("A", &[1, 2, 3], &[0, 1, 2, 3]);
        let seeds: Vec<u64> =
            grid.iter().map(|s| derive_cell_seed(42, s.model_seed, s.image_index)).collect();
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), seeds.len(), "cell seeds must not collide: {seeds:?}");
        assert_eq!(
            seeds,
            grid.iter()
                .map(|s| derive_cell_seed(42, s.model_seed, s.image_index))
                .collect::<Vec<_>>()
        );
        assert_ne!(
            derive_cell_seed(1, 2, 3),
            derive_cell_seed(2, 2, 3),
            "the base seed must matter"
        );
    }

    #[test]
    fn parallel_and_sequential_campaigns_match() {
        let sequential = run(1);
        let parallel = run(3);
        assert_eq!(sequential.jobs, 1);
        assert_eq!(parallel.jobs, 3);
        assert_eq!(sequential.champion_rows(), parallel.champion_rows());
        let a = sequential.telemetry_lines();
        let b = parallel.telemetry_lines();
        assert_eq!(a.len(), b.len());
        // The manifest records the actual worker count — the only field
        // allowed to differ between the two runs.
        assert_eq!(
            a[0].replace("\"jobs\":1", "\"jobs\":N"),
            b[0].replace("\"jobs\":3", "\"jobs\":N"),
        );
        for line in a.iter().chain(&b) {
            telemetry::validate_json(line).expect("telemetry must be valid JSON");
        }
        for (x, y) in a.iter().zip(&b).skip(1) {
            assert_eq!(
                telemetry::deterministic_prefix(x),
                telemetry::deterministic_prefix(y),
                "telemetry must match modulo wall-times"
            );
        }
    }

    #[test]
    fn telemetry_has_dense_generations_per_cell() {
        let result = run(2);
        let generations = tiny_campaign(2).config().attack.nsga2.generations;
        for cell in &result.cells {
            assert_eq!(cell.telemetry.len(), generations + 1);
            for (expect, line) in cell.telemetry.iter().enumerate() {
                assert!(
                    line.contains(&format!("\"generation\":{expect},")),
                    "generation indices must be dense: {line}"
                );
            }
        }
        // Champions (3 per cell) come before front rows in each cell.
        for cell in &result.cells {
            assert_eq!(cell.champion_rows().len(), 3);
            assert!(cell.rows.len() > 3, "front rows ride along");
        }
    }

    #[test]
    fn campaigns_resume_from_persisted_cells() {
        let root = std::env::temp_dir().join(format!(
            "bea_campaign_resume_{}_{:x}",
            std::process::id(),
            fnv1a(b"resume")
        ));
        let _ = std::fs::remove_dir_all(&root);
        let store = CampaignStore::open(&root).unwrap();
        let specs = tiny_specs();
        let detector = |_: &CellSpec| Box::new(Toy) as Box<dyn Detector>;
        let image = |_: &CellSpec| Image::black(24, 12);

        let first = tiny_campaign(2).run_with_store(&specs, detector, image, &store).unwrap();
        assert_eq!(first.computed_cells(), specs.len());
        assert!(store.champions_path().exists());
        assert!(store.telemetry_path().exists());
        assert!(store.manifest_path().exists());

        // Resumed rows reload at CSV precision, so equality is defined on
        // the serialized bytes (which the byte-stability of write_csv ∘
        // read_csv makes exact), not on the in-memory floats.
        let csv_bytes = |result: &CampaignResult| {
            let mut buf = Vec::new();
            write_csv(&result.champion_rows(), &mut buf).unwrap();
            buf
        };
        let second = tiny_campaign(2).run_with_store(&specs, detector, image, &store).unwrap();
        assert_eq!(second.computed_cells(), 0, "every cell resumes");
        assert!(second.cells.iter().all(|c| c.resumed));
        assert_eq!(csv_bytes(&first), csv_bytes(&second));
        let manifest = std::fs::read_to_string(store.manifest_path()).unwrap();
        telemetry::validate_json(manifest.trim()).expect("manifest must be valid JSON");
        assert!(manifest.contains("\"resumed\":true"));

        // Dropping one cell file recomputes exactly that cell.
        std::fs::remove_file(store.cell_path(&specs[2])).unwrap();
        let third = tiny_campaign(1).run_with_store(&specs, detector, image, &store).unwrap();
        assert_eq!(third.computed_cells(), 1);
        assert_eq!(csv_bytes(&first), csv_bytes(&third));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn mismatched_resume_is_refused() {
        let root = std::env::temp_dir().join(format!(
            "bea_campaign_fingerprint_{}_{:x}",
            std::process::id(),
            fnv1a(b"fingerprint")
        ));
        let _ = std::fs::remove_dir_all(&root);
        let store = CampaignStore::open(&root).unwrap();
        let specs = tiny_specs();
        let detector = |_: &CellSpec| Box::new(Toy) as Box<dyn Detector>;
        let image = |_: &CellSpec| Image::black(24, 12);
        tiny_campaign(1).run_with_store(&specs, detector, image, &store).unwrap();
        let persisted = store.manifest_fingerprint().unwrap().expect("manifest records it");
        let expected = grid_fingerprint(7, 10, 4, &specs);
        assert_eq!(persisted, expected);

        // A different grid into the same store must refuse, naming both
        // fingerprints — before touching any cell.
        let other_specs = CellSpec::grid("YOLO", &[1], &[0]);
        let err = tiny_campaign(1)
            .run_with_store(&other_specs, detector, image, &store)
            .expect_err("mismatched grid must not resume");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("fingerprint"), "unhelpful error: {err}");

        // A different GA budget is also a different campaign.
        let bigger = Campaign::new(CampaignConfig {
            attack: AttackConfig::scaled(10, 5),
            base_seed: 7,
            jobs: 1,
            telemetry: true,
        });
        assert!(bigger.run_with_store(&specs, detector, image, &store).is_err());

        // The matching grid still resumes every cell.
        let again = tiny_campaign(2).run_with_store(&specs, detector, image, &store).unwrap();
        assert_eq!(again.computed_cells(), 0);

        // Legacy stores (manifest without a fingerprint) resume without
        // the check rather than stranding old campaigns.
        let manifest = std::fs::read_to_string(store.manifest_path()).unwrap();
        let legacy = manifest.replacen(&format!("\"fingerprint\":\"{expected:016x}\","), "", 1);
        assert_ne!(legacy, manifest, "test must actually strip the field");
        std::fs::write(store.manifest_path(), legacy).unwrap();
        assert_eq!(store.manifest_fingerprint().unwrap(), None);
        let legacy_run = tiny_campaign(1).run_with_store(&specs, detector, image, &store).unwrap();
        assert_eq!(legacy_run.computed_cells(), 0);

        // A corrupt manifest is an error, not a silent fresh start.
        std::fs::write(store.manifest_path(), "not json").unwrap();
        assert!(store.manifest_fingerprint().is_err());
        assert!(tiny_campaign(1).run_with_store(&specs, detector, image, &store).is_err());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn hostile_group_labels_get_distinct_cell_files() {
        let root = std::env::temp_dir().join(format!(
            "bea_campaign_slug_{}_{:x}",
            std::process::id(),
            fnv1a(b"slug")
        ));
        let _ = std::fs::remove_dir_all(&root);
        let store = CampaignStore::open(&root).unwrap();
        let a = CellSpec::new("YOLO, \"v2\"\n../escape", 1, 0);
        let b = CellSpec::new("YOLO, \"v3\"\n../escape", 1, 0);
        let pa = store.cell_path(&a);
        let pb = store.cell_path(&b);
        assert_ne!(pa, pb, "sanitised names must stay collision-free");
        for p in [&pa, &pb] {
            assert!(
                p.parent().unwrap().ends_with("cells"),
                "path separators must be sanitised out: {p:?}"
            );
        }
        // The hostile label round-trips through the cell CSV itself.
        let rows = vec![AttackRow {
            architecture: a.group.clone(),
            model_seed: 1,
            image_index: 0,
            role: "best-degrad".into(),
            point: crate::report::ParetoPoint {
                intensity: 1.0,
                intensity_normalized: 0.5,
                degrad: 0.25,
                dist: 0.75,
            },
        }];
        store.save_cell(&a, &rows).unwrap();
        let back = store.load_cell(&a).unwrap().expect("cell persisted");
        assert_eq!(back, rows);
        assert!(store.load_cell(&b).unwrap().is_none());
        let _ = std::fs::remove_dir_all(&root);
    }
}
