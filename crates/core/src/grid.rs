//! Deterministic sharded execution — the worker-pool core shared by
//! [`crate::campaign::Campaign`] and [`crate::transfer::TransferGrid`].
//!
//! Both grid runners follow the same discipline: enumerate work units in
//! a caller-defined order, pull unit indices from a shared cursor across
//! `jobs` scoped worker threads, and commit each result into the slot of
//! its *index* — never into arrival order. Scheduling therefore cannot
//! influence any output, which is what lets the determinism suites pin
//! byte-identical artifacts across `--jobs` values.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Resolves a `--jobs` setting: `0` means every available core.
pub fn resolve_jobs(jobs: usize) -> usize {
    if jobs == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        jobs
    }
}

/// Runs `count` independent work units across at most `workers` scoped
/// threads and returns the results in unit order.
///
/// Units are claimed through a shared atomic cursor, so the set of units
/// each thread executes depends on timing — but every result lands in
/// `out[index]`, making the returned vector independent of scheduling.
/// `run` must therefore be a pure function of the unit index.
///
/// # Panics
///
/// Panics if a worker panics (the panic is propagated, not swallowed).
pub fn run_sharded<T, F>(workers: usize, count: usize, run: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if count == 0 {
        return Vec::new();
    }
    let workers = workers.clamp(1, count);
    let mut slots: Vec<Option<T>> = Vec::new();
    slots.resize_with(count, || None);
    let cursor = AtomicUsize::new(0);
    let results: Mutex<&mut Vec<Option<T>>> = Mutex::new(&mut slots);
    crossbeam::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| loop {
                let k = cursor.fetch_add(1, Ordering::Relaxed);
                if k >= count {
                    break;
                }
                let value = run(k);
                results.lock().expect("no worker panicked holding the lock")[k] = Some(value);
            });
        }
    })
    .expect("sharded workers must not panic");
    slots.into_iter().map(|slot| slot.expect("every unit filled")).collect()
}

/// FNV-1a 64-bit hash: grid fingerprints and file-name disambiguation.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_unit_order() {
        for workers in [1, 3, 8] {
            let out = run_sharded(workers, 17, |i| i * i);
            assert_eq!(out, (0..17).map(|i| i * i).collect::<Vec<_>>(), "workers={workers}");
        }
    }

    #[test]
    fn empty_grid_spawns_nothing() {
        let out: Vec<usize> = run_sharded(4, 0, |_| unreachable!("no units to run"));
        assert!(out.is_empty());
    }

    #[test]
    fn worker_count_clamps_to_unit_count() {
        // More workers than units must not deadlock or drop results.
        let out = run_sharded(64, 2, |i| i + 1);
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn zero_jobs_resolves_to_at_least_one() {
        assert!(resolve_jobs(0) >= 1);
        assert_eq!(resolve_jobs(5), 5);
    }

    #[test]
    fn fnv1a_is_stable() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
    }
}
