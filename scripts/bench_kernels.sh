#!/usr/bin/env bash
# Kernel micro-benchmark: reference vs blocked GEMM/im2col on the
# detectors' hot shapes. Writes BENCH_kernels.json at the repo root and
# fails (via --check) when the blocked convolution regresses below the
# reference one on the medium shape.
#
# Usage: scripts/bench_kernels.sh [--quick]
set -euo pipefail
cd "$(dirname "$0")/.."

cargo bench -p bea-bench --bench kernels -- \
    --check --out "$(pwd)/BENCH_kernels.json" "$@"
