//! Dirty-region bookkeeping for incremental inference.
//!
//! The butterfly effect attack evaluates thousands of masks against the
//! *same* clean image, and each mask touches only a small window of
//! pixels. Convolutions, pooling, and elementwise layers are local: an
//! output cell depends only on its receptive field. [`DirtyRect`] tracks
//! the half-open bounding box of changed pixels and maps it through a
//! layer's geometry, so a cached clean activation can be patched by
//! recomputing only the affected window instead of the full plane.
//!
//! The expansion rules are conservative (never shrink below the true
//! affected set) and clamp to the layer's output bounds, so composing
//! them across a stack of layers yields a valid dirty window at every
//! depth. Global layers (attention, softmax over the full plane) have no
//! finite expansion — callers detect that case and fall back to a full
//! forward pass (see `bea-detect`'s `CachedDetector`).

/// A half-open rectangle `[x0, x1) × [y0, y1)` of changed cells.
///
/// # Examples
///
/// ```
/// use bea_tensor::DirtyRect;
///
/// let dirty = DirtyRect::new(4, 2, 10, 8);
/// assert_eq!(dirty.width(), 6);
/// assert_eq!(dirty.height(), 6);
/// // A 3x3 stride-1 convolution widens the affected window by the
/// // kernel's overlap on every side (clamped to the output plane).
/// let out = dirty.conv_output_window(3, 3, 1, 0, 14, 14);
/// assert_eq!((out.x0, out.y0, out.x1, out.y1), (2, 0, 10, 8));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DirtyRect {
    /// Leftmost dirty column (inclusive).
    pub x0: usize,
    /// Topmost dirty row (inclusive).
    pub y0: usize,
    /// One past the rightmost dirty column (exclusive).
    pub x1: usize,
    /// One past the bottommost dirty row (exclusive).
    pub y1: usize,
}

impl DirtyRect {
    /// Builds a rectangle from half-open bounds.
    pub fn new(x0: usize, y0: usize, x1: usize, y1: usize) -> Self {
        Self { x0, y0, x1, y1 }
    }

    /// The empty rectangle (nothing dirty).
    pub fn empty() -> Self {
        Self { x0: 0, y0: 0, x1: 0, y1: 0 }
    }

    /// The full plane `[0, w) × [0, h)` (everything dirty).
    pub fn full(width: usize, height: usize) -> Self {
        Self { x0: 0, y0: 0, x1: width, y1: height }
    }

    /// A single-cell rectangle.
    pub fn from_point(x: usize, y: usize) -> Self {
        Self { x0: x, y0: y, x1: x + 1, y1: y + 1 }
    }

    /// `true` when the rectangle contains no cells.
    pub fn is_empty(&self) -> bool {
        self.x0 >= self.x1 || self.y0 >= self.y1
    }

    /// Number of dirty columns.
    pub fn width(&self) -> usize {
        self.x1.saturating_sub(self.x0)
    }

    /// Number of dirty rows.
    pub fn height(&self) -> usize {
        self.y1.saturating_sub(self.y0)
    }

    /// Number of dirty cells.
    pub fn area(&self) -> usize {
        self.width() * self.height()
    }

    /// `true` when the cell `(x, y)` lies inside the rectangle.
    pub fn contains(&self, x: usize, y: usize) -> bool {
        x >= self.x0 && x < self.x1 && y >= self.y0 && y < self.y1
    }

    /// `true` when `self` covers all of `other`.
    pub fn covers(&self, other: &DirtyRect) -> bool {
        other.is_empty()
            || (self.x0 <= other.x0
                && self.y0 <= other.y0
                && self.x1 >= other.x1
                && self.y1 >= other.y1)
    }

    /// The smallest rectangle containing both operands.
    pub fn union(&self, other: &DirtyRect) -> DirtyRect {
        if self.is_empty() {
            return *other;
        }
        if other.is_empty() {
            return *self;
        }
        DirtyRect {
            x0: self.x0.min(other.x0),
            y0: self.y0.min(other.y0),
            x1: self.x1.max(other.x1),
            y1: self.y1.max(other.y1),
        }
    }

    /// The overlap of both operands (empty when disjoint).
    pub fn intersect(&self, other: &DirtyRect) -> DirtyRect {
        let rect = DirtyRect {
            x0: self.x0.max(other.x0),
            y0: self.y0.max(other.y0),
            x1: self.x1.min(other.x1),
            y1: self.y1.min(other.y1),
        };
        if rect.is_empty() {
            DirtyRect::empty()
        } else {
            rect
        }
    }

    /// Grows the rectangle by `margin` cells on every side, clamping at
    /// zero on the low side (callers clamp the high side via [`Self::clamp`]).
    pub fn expand(&self, margin: usize) -> DirtyRect {
        if self.is_empty() {
            return DirtyRect::empty();
        }
        DirtyRect {
            x0: self.x0.saturating_sub(margin),
            y0: self.y0.saturating_sub(margin),
            x1: self.x1 + margin,
            y1: self.y1 + margin,
        }
    }

    /// Clamps the rectangle to the plane `[0, w) × [0, h)`.
    pub fn clamp(&self, width: usize, height: usize) -> DirtyRect {
        let rect = DirtyRect {
            x0: self.x0.min(width),
            y0: self.y0.min(height),
            x1: self.x1.min(width),
            y1: self.y1.min(height),
        };
        if rect.is_empty() {
            DirtyRect::empty()
        } else {
            rect
        }
    }

    /// Maps the rectangle through an integer downscale by `factor`
    /// (block-averaging style: input cell `(x, y)` feeds output cell
    /// `(x / factor, y / factor)`).
    pub fn downscaled(&self, factor: usize) -> DirtyRect {
        if self.is_empty() || factor == 0 {
            return DirtyRect::empty();
        }
        DirtyRect {
            x0: self.x0 / factor,
            y0: self.y0 / factor,
            x1: self.x1.div_ceil(factor),
            y1: self.y1.div_ceil(factor),
        }
    }

    /// Output cells of a convolution-like layer whose receptive field
    /// intersects this (input-space) rectangle.
    ///
    /// Output cell `o` along one axis covers padded-input coordinates
    /// `[o·stride − padding, o·stride − padding + kernel)`; the window is
    /// the set of `o` for which that interval meets the dirty span,
    /// clamped to `[0, out)`. Works for pooling too (`padding = 0`,
    /// `kernel = window`).
    pub fn conv_output_window(
        &self,
        kernel_h: usize,
        kernel_w: usize,
        stride: usize,
        padding: usize,
        out_h: usize,
        out_w: usize,
    ) -> DirtyRect {
        if self.is_empty() || stride == 0 {
            return DirtyRect::empty();
        }
        let axis = |d0: usize, d1: usize, kernel: usize, out: usize| -> (usize, usize) {
            // o·s − p + k > d0  ⇒  o > (d0 + p − k) / s  ⇒
            // o_min = ceil((d0 + p + 1 − k) / s) (0 when the numerator
            // is negative).
            let lo = (d0 + padding + 1).saturating_sub(kernel);
            let o_min = lo.div_ceil(stride);
            // o·s − p < d1  ⇒  o ≤ (d1 − 1 + p) / s.
            let o_max = (d1 - 1 + padding) / stride;
            (o_min.min(out), (o_max + 1).min(out))
        };
        let (oy0, oy1) = axis(self.y0, self.y1, kernel_h, out_h);
        let (ox0, ox1) = axis(self.x0, self.x1, kernel_w, out_w);
        let rect = DirtyRect { x0: ox0, y0: oy0, x1: ox1, y1: oy1 };
        if rect.is_empty() {
            DirtyRect::empty()
        } else {
            rect
        }
    }

    /// Input cells a convolution-like layer reads to produce this
    /// (output-space) rectangle: the union of the receptive fields,
    /// clamped to the unpadded input plane.
    pub fn conv_input_support(
        &self,
        kernel_h: usize,
        kernel_w: usize,
        stride: usize,
        padding: usize,
        in_h: usize,
        in_w: usize,
    ) -> DirtyRect {
        if self.is_empty() {
            return DirtyRect::empty();
        }
        let x0 = (self.x0 * stride).saturating_sub(padding);
        let y0 = (self.y0 * stride).saturating_sub(padding);
        let x1 = ((self.x1 - 1) * stride + kernel_w).saturating_sub(padding);
        let y1 = ((self.y1 - 1) * stride + kernel_h).saturating_sub(padding);
        DirtyRect { x0, y0, x1, y1 }.clamp(in_w, in_h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_union_is_identity() {
        let rect = DirtyRect::new(2, 3, 5, 7);
        assert_eq!(rect.union(&DirtyRect::empty()), rect);
        assert_eq!(DirtyRect::empty().union(&rect), rect);
    }

    #[test]
    fn union_bounds_both() {
        let a = DirtyRect::new(0, 0, 2, 2);
        let b = DirtyRect::new(5, 5, 7, 9);
        let u = a.union(&b);
        assert!(u.covers(&a) && u.covers(&b));
        assert_eq!(u, DirtyRect::new(0, 0, 7, 9));
    }

    #[test]
    fn disjoint_intersection_is_empty() {
        let a = DirtyRect::new(0, 0, 2, 2);
        let b = DirtyRect::new(5, 5, 7, 9);
        assert!(a.intersect(&b).is_empty());
        assert_eq!(a.intersect(&a), a);
    }

    #[test]
    fn clamp_limits_to_plane() {
        let rect = DirtyRect::new(3, 1, 40, 50).clamp(10, 8);
        assert_eq!(rect, DirtyRect::new(3, 1, 10, 8));
        assert!(DirtyRect::new(12, 0, 20, 4).clamp(10, 8).is_empty());
    }

    #[test]
    fn downscale_rounds_outward() {
        let rect = DirtyRect::new(3, 5, 7, 9).downscaled(2);
        assert_eq!(rect, DirtyRect::new(1, 2, 4, 5));
        assert!(DirtyRect::empty().downscaled(2).is_empty());
    }

    #[test]
    fn identity_conv_window_is_identity() {
        let rect = DirtyRect::new(3, 2, 6, 5);
        assert_eq!(rect.conv_output_window(1, 1, 1, 0, 10, 10), rect);
    }

    #[test]
    fn conv_window_expands_by_kernel_overlap() {
        // 3x3 stride-1 no-padding conv on a 10x10 input → 8x8 output.
        // Input cell (4, 4) feeds outputs (2..5, 2..5).
        let rect = DirtyRect::from_point(4, 4).conv_output_window(3, 3, 1, 0, 8, 8);
        assert_eq!(rect, DirtyRect::new(2, 2, 5, 5));
    }

    #[test]
    fn conv_window_respects_stride() {
        // 2x2 stride-2 pooling: input cell (5, 5) feeds only output (2, 2).
        let rect = DirtyRect::from_point(5, 5).conv_output_window(2, 2, 2, 0, 4, 4);
        assert_eq!(rect, DirtyRect::new(2, 2, 3, 3));
    }

    #[test]
    fn conv_window_clamps_at_borders() {
        let rect = DirtyRect::from_point(0, 0).conv_output_window(3, 3, 1, 0, 8, 8);
        assert_eq!(rect, DirtyRect::new(0, 0, 1, 1));
        let rect = DirtyRect::from_point(9, 9).conv_output_window(3, 3, 1, 0, 8, 8);
        assert_eq!(rect, DirtyRect::new(7, 7, 8, 8));
    }

    #[test]
    fn conv_window_accounts_for_padding() {
        // 3x3 stride-1 pad-1 conv keeps the plane size; cell (0, 0)
        // feeds outputs (0..2, 0..2).
        let rect = DirtyRect::from_point(0, 0).conv_output_window(3, 3, 1, 1, 10, 10);
        assert_eq!(rect, DirtyRect::new(0, 0, 2, 2));
    }

    #[test]
    fn input_support_round_trips_through_output_window() {
        let dirty = DirtyRect::new(4, 4, 6, 6);
        let out = dirty.conv_output_window(3, 3, 1, 0, 8, 8);
        let support = out.conv_input_support(3, 3, 1, 0, 10, 10);
        assert!(support.covers(&dirty), "support {support:?} must cover {dirty:?}");
    }
}
