//! Drawing primitives for bounding-box overlays on qualitative figures.

use crate::image::Image;
use crate::region::Region;

/// Draws a 1-pixel rectangle outline over `region`, clipped to the image.
///
/// # Examples
///
/// ```
/// use bea_image::{Image, Region, draw};
///
/// let mut img = Image::black(16, 16);
/// draw::rect_outline(&mut img, Region::new(2, 2, 10, 8), [255.0, 0.0, 0.0]);
/// assert_eq!(img.pixel(2, 2), [255.0, 0.0, 0.0]);
/// assert_eq!(img.pixel(5, 5), [0.0, 0.0, 0.0]);
/// ```
pub fn rect_outline(img: &mut Image, region: Region, rgb: [f32; 3]) {
    if region.is_empty() {
        return;
    }
    let (w, h) = (img.width(), img.height());
    let x1 = region.x1.min(w);
    let y1 = region.y1.min(h);
    if region.x0 >= w || region.y0 >= h {
        return;
    }
    for x in region.x0..x1 {
        img.put_pixel(x, region.y0, rgb);
        if y1 > 0 && y1 - 1 > region.y0 {
            img.put_pixel(x, y1 - 1, rgb);
        }
    }
    for y in region.y0..y1 {
        img.put_pixel(region.x0, y, rgb);
        if x1 > 0 && x1 - 1 > region.x0 {
            img.put_pixel(x1 - 1, y, rgb);
        }
    }
}

/// Fills a rectangle with a solid colour, clipped to the image.
pub fn rect_fill(img: &mut Image, region: Region, rgb: [f32; 3]) {
    let x1 = region.x1.min(img.width());
    let y1 = region.y1.min(img.height());
    for y in region.y0..y1 {
        for x in region.x0..x1 {
            img.put_pixel(x, y, rgb);
        }
    }
}

/// Fills a rectangle blended with the existing content
/// (`alpha = 0` keeps the image, `alpha = 1` paints solid).
pub fn rect_blend(img: &mut Image, region: Region, rgb: [f32; 3], alpha: f32) {
    let alpha = alpha.clamp(0.0, 1.0);
    let x1 = region.x1.min(img.width());
    let y1 = region.y1.min(img.height());
    for y in region.y0..y1 {
        for x in region.x0..x1 {
            let old = img.pixel(x, y);
            let new = [
                old[0] * (1.0 - alpha) + rgb[0] * alpha,
                old[1] * (1.0 - alpha) + rgb[1] * alpha,
                old[2] * (1.0 - alpha) + rgb[2] * alpha,
            ];
            img.put_pixel(x, y, new);
        }
    }
}

/// Draws a horizontal line at row `y` spanning `[x0, x1)`, clipped.
pub fn hline(img: &mut Image, y: usize, x0: usize, x1: usize, rgb: [f32; 3]) {
    if y >= img.height() {
        return;
    }
    for x in x0..x1.min(img.width()) {
        img.put_pixel(x, y, rgb);
    }
}

/// Draws a vertical line at column `x` spanning `[y0, y1)`, clipped.
pub fn vline(img: &mut Image, x: usize, y0: usize, y1: usize, rgb: [f32; 3]) {
    if x >= img.width() {
        return;
    }
    for y in y0..y1.min(img.height()) {
        img.put_pixel(x, y, rgb);
    }
}

/// Draws a filled disc centred at `(cx, cy)` with the given radius, clipped.
pub fn disc(img: &mut Image, cx: i64, cy: i64, radius: i64, rgb: [f32; 3]) {
    if radius < 0 {
        return;
    }
    let r2 = radius * radius;
    for dy in -radius..=radius {
        for dx in -radius..=radius {
            if dx * dx + dy * dy <= r2 {
                let x = cx + dx;
                let y = cy + dy;
                if x >= 0 && y >= 0 && (x as usize) < img.width() && (y as usize) < img.height() {
                    img.put_pixel(x as usize, y as usize, rgb);
                }
            }
        }
    }
}

/// Draws a circle outline (1-pixel ring) centred at `(cx, cy)`.
pub fn circle_outline(img: &mut Image, cx: i64, cy: i64, radius: i64, rgb: [f32; 3]) {
    if radius <= 0 {
        return;
    }
    let outer = radius * radius;
    let inner = (radius - 1) * (radius - 1);
    for dy in -radius..=radius {
        for dx in -radius..=radius {
            let d2 = dx * dx + dy * dy;
            if d2 <= outer && d2 > inner {
                let x = cx + dx;
                let y = cy + dy;
                if x >= 0 && y >= 0 && (x as usize) < img.width() && (y as usize) < img.height() {
                    img.put_pixel(x as usize, y as usize, rgb);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outline_leaves_interior() {
        let mut img = Image::black(10, 10);
        rect_outline(&mut img, Region::new(1, 1, 9, 9), [255.0; 3]);
        assert_eq!(img.pixel(1, 1), [255.0; 3]);
        assert_eq!(img.pixel(8, 8), [255.0; 3]);
        assert_eq!(img.pixel(5, 5), [0.0; 3]);
    }

    #[test]
    fn fill_covers_interior() {
        let mut img = Image::black(6, 6);
        rect_fill(&mut img, Region::new(2, 2, 4, 4), [10.0, 20.0, 30.0]);
        assert_eq!(img.pixel(3, 3), [10.0, 20.0, 30.0]);
        assert_eq!(img.pixel(1, 1), [0.0; 3]);
    }

    #[test]
    fn drawing_clips_to_bounds() {
        let mut img = Image::black(4, 4);
        rect_fill(&mut img, Region::new(2, 2, 100, 100), [50.0; 3]);
        rect_outline(&mut img, Region::new(0, 0, 100, 100), [60.0; 3]);
        hline(&mut img, 99, 0, 100, [70.0; 3]);
        vline(&mut img, 99, 0, 100, [70.0; 3]);
        // Fill interior survives; the clipped outline repainted the border.
        assert_eq!(img.pixel(2, 2), [50.0; 3]);
        assert_eq!(img.pixel(3, 3), [60.0; 3]);
    }

    #[test]
    fn blend_mixes_colours() {
        let mut img = Image::filled(2, 2, [100.0; 3]);
        rect_blend(&mut img, Region::new(0, 0, 2, 2), [200.0; 3], 0.5);
        assert_eq!(img.pixel(0, 0), [150.0; 3]);
    }

    #[test]
    fn disc_is_symmetric_and_clipped() {
        let mut img = Image::black(11, 11);
        disc(&mut img, 5, 5, 3, [255.0; 3]);
        assert_eq!(img.pixel(5, 5), [255.0; 3]);
        assert_eq!(img.pixel(5, 2), [255.0; 3]);
        assert_eq!(img.pixel(5, 8), [255.0; 3]);
        assert_eq!(img.pixel(0, 0), [0.0; 3]);
        // Clipped draw near the border must not panic.
        disc(&mut img, 0, 0, 4, [1.0; 3]);
        disc(&mut img, -10, -10, 3, [1.0; 3]);
    }

    #[test]
    fn circle_outline_is_hollow() {
        let mut img = Image::black(11, 11);
        circle_outline(&mut img, 5, 5, 4, [255.0; 3]);
        assert_eq!(img.pixel(5, 5), [0.0; 3]);
        assert_eq!(img.pixel(5, 1), [255.0; 3]);
    }

    #[test]
    fn empty_region_draws_nothing() {
        let mut img = Image::black(4, 4);
        rect_outline(&mut img, Region::new(3, 3, 1, 1), [255.0; 3]);
        assert_eq!(img, Image::black(4, 4));
    }
}
