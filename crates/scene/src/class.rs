//! The KITTI object class vocabulary.

use std::fmt;

/// Object classes following the KITTI annotation vocabulary.
///
/// The paper's abstract detector maps each prediction to a class
/// `cl ∈ {1, …, C} ∪ {⊥}`; the "no object" class ⊥ is represented in this
/// codebase by `Option<ObjectClass>::None` at prediction boundaries, so the
/// enum itself only holds valid classes.
///
/// # Examples
///
/// ```
/// use bea_scene::ObjectClass;
///
/// assert_eq!(ObjectClass::Car.name(), "Car");
/// assert_eq!(ObjectClass::ALL.len(), 6);
/// assert_eq!(ObjectClass::from_index(0), Some(ObjectClass::Car));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ObjectClass {
    /// A passenger car.
    Car,
    /// A van (taller than a car).
    Van,
    /// A truck (long and tall).
    Truck,
    /// A pedestrian (person on foot).
    Pedestrian,
    /// A cyclist (person on a bicycle).
    Cyclist,
    /// A tram (very long road-rail vehicle).
    Tram,
}

impl ObjectClass {
    /// All classes in index order.
    pub const ALL: [ObjectClass; 6] = [
        ObjectClass::Car,
        ObjectClass::Van,
        ObjectClass::Truck,
        ObjectClass::Pedestrian,
        ObjectClass::Cyclist,
        ObjectClass::Tram,
    ];

    /// Number of classes (`C` in the paper).
    pub const COUNT: usize = Self::ALL.len();

    /// Stable index of the class in `0..COUNT`.
    pub fn index(self) -> usize {
        Self::ALL.iter().position(|&c| c == self).expect("ALL contains every variant")
    }

    /// Inverse of [`ObjectClass::index`].
    pub fn from_index(index: usize) -> Option<ObjectClass> {
        Self::ALL.get(index).copied()
    }

    /// KITTI annotation name.
    pub fn name(self) -> &'static str {
        match self {
            ObjectClass::Car => "Car",
            ObjectClass::Van => "Van",
            ObjectClass::Truck => "Truck",
            ObjectClass::Pedestrian => "Pedestrian",
            ObjectClass::Cyclist => "Cyclist",
            ObjectClass::Tram => "Tram",
        }
    }

    /// A display colour used when drawing box overlays on figures.
    pub fn overlay_color(self) -> [f32; 3] {
        match self {
            ObjectClass::Car => [255.0, 64.0, 64.0],
            ObjectClass::Van => [255.0, 160.0, 32.0],
            ObjectClass::Truck => [255.0, 255.0, 64.0],
            ObjectClass::Pedestrian => [64.0, 255.0, 64.0],
            ObjectClass::Cyclist => [64.0, 160.0, 255.0],
            ObjectClass::Tram => [224.0, 64.0, 255.0],
        }
    }

    /// Nominal rendered size `(width_px, height_px)` of the class at unit
    /// scale. Classes are deliberately given distinctive aspect ratios so
    /// shape alone separates them.
    pub fn nominal_size(self) -> (usize, usize) {
        match self {
            ObjectClass::Car => (26, 12),
            ObjectClass::Van => (22, 16),
            ObjectClass::Truck => (34, 18),
            ObjectClass::Pedestrian => (8, 20),
            ObjectClass::Cyclist => (16, 16),
            ObjectClass::Tram => (46, 16),
        }
    }
}

impl fmt::Display for ObjectClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        for class in ObjectClass::ALL {
            assert_eq!(ObjectClass::from_index(class.index()), Some(class));
        }
        assert_eq!(ObjectClass::from_index(ObjectClass::COUNT), None);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = ObjectClass::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ObjectClass::COUNT);
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(ObjectClass::Cyclist.to_string(), "Cyclist");
    }

    #[test]
    fn nominal_sizes_have_distinctive_aspect() {
        let (pw, ph) = ObjectClass::Pedestrian.nominal_size();
        assert!(ph > 2 * pw, "pedestrians are tall and thin");
        let (cw, ch) = ObjectClass::Car.nominal_size();
        assert!(cw > ch, "cars are wide");
        let (bw, bh) = ObjectClass::Cyclist.nominal_size();
        assert_eq!(bw, bh, "cyclists are square-ish");
    }

    #[test]
    fn overlay_colors_are_distinct() {
        let mut colors: Vec<_> =
            ObjectClass::ALL.iter().map(|c| c.overlay_color().map(|v| v as i32)).collect();
        colors.sort_unstable();
        colors.dedup();
        assert_eq!(colors.len(), ObjectClass::COUNT);
    }
}
