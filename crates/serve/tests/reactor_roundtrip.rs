//! Integration tests for the event-driven front-end, cross-job
//! batching, tenant admission control and job-log compaction.
//!
//! The determinism anchor from `server_roundtrip` carries over
//! unchanged: whatever the transport (reactor vs. thread-per-connection)
//! and whatever the execution shape (solo vs. gate group), the CSV a job
//! serves must be byte-identical to a direct `Campaign` run of the same
//! cell.

use bea_core::campaign::{Campaign, CampaignConfig, CampaignStore};
use bea_core::AttackJob;
use bea_detect::{Architecture, ModelZoo};
use bea_scene::SyntheticKitti;
use bea_serve::{Client, Server, ServerConfig, TenantPolicy};
use std::path::PathBuf;
use std::time::Duration;

fn scratch(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("bea_reactor_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    root
}

/// A reactor-mode configuration with cross-job batching enabled.
fn reactor_config(store_dir: PathBuf, workers: usize, batch_max: usize) -> ServerConfig {
    ServerConfig {
        workers,
        queue_capacity: 32,
        dataset: SyntheticKitti::smoke_set(),
        drain_deadline: Duration::from_secs(120),
        reactor: true,
        batch_max,
        ..ServerConfig::new(store_dir)
    }
}

fn job_id(body: &str) -> String {
    let value = bea_core::telemetry::parse_json(body).expect("valid 202 body");
    value.get("id").and_then(|v| v.as_str()).expect("202 body carries an id").to_string()
}

const POLL: Duration = Duration::from_millis(50);
const DEADLINE: Duration = Duration::from_secs(120);

#[test]
fn reactor_batched_jobs_serve_byte_identical_csv() {
    let store_dir = scratch("batched");
    // One worker and a generous batch bound: the first job occupies the
    // worker while the rest queue up, so the next pop takes a multi-job
    // gate group through the stacked forward pass.
    let server = Server::start(reactor_config(store_dir.clone(), 1, 8)).expect("server starts");
    let client = Client::new(server.addr().to_string());

    // Four compatible jobs: same model, same kernels, distinct images —
    // each is its own campaign cell.
    let body = |image: usize| {
        format!(
            "{{\"arch\":\"yolo\",\"model_seed\":1,\"image_index\":{image},\
             \"pop\":8,\"gens\":2,\"seed\":5,\"tenant\":\"team-a\"}}"
        )
    };
    let mut ids = Vec::new();
    for image in 0..4 {
        let accepted = client.submit(&body(image)).expect("submit");
        assert_eq!(accepted.status, 202, "{:?}", accepted.body_text());
        ids.push(job_id(accepted.body_text().unwrap()));
    }
    for id in &ids {
        let finished = client.wait(id, POLL, DEADLINE).expect("job finishes");
        assert!(
            finished.body_text().unwrap().contains("\"status\":\"done\""),
            "job {id} did not finish: {:?}",
            finished.body_text()
        );
    }

    // Byte-identity against a direct campaign over the same four cells
    // (the jobs share attack config and base seed, so one grid covers
    // them all).
    let direct_dir = scratch("batched_direct");
    let direct_store = CampaignStore::open(&direct_dir).expect("store opens");
    let zoo = ModelZoo::with_defaults();
    let dataset = SyntheticKitti::smoke_set();
    let lead = AttackJob::from_json(&body(0)).expect("job parses");
    let specs: Vec<_> =
        (0..4).map(|image| AttackJob::from_json(&body(image)).unwrap().cell_spec()).collect();
    let campaign = Campaign::new(CampaignConfig {
        attack: lead.attack_config(),
        base_seed: lead.base_seed,
        jobs: 1,
        telemetry: false,
    });
    campaign
        .run_with_store(
            &specs,
            |cell| zoo.model(Architecture::Yolo, cell.model_seed),
            |cell| dataset.image(cell.image_index),
            &direct_store,
        )
        .expect("direct run");
    for (image, (id, spec)) in ids.iter().zip(&specs).enumerate() {
        let served = client.csv(id).expect("csv");
        assert_eq!(served.status, 200);
        let direct_bytes = std::fs::read(direct_store.cell_path(spec)).expect("direct cell");
        assert_eq!(
            served.body, direct_bytes,
            "cell for image {image} diverged between gated serving and a direct run"
        );
    }

    let report = server.shutdown();
    assert!(!report.deadline_expired);
    let _ = std::fs::remove_dir_all(&store_dir);
    let _ = std::fs::remove_dir_all(&direct_dir);
}

#[test]
fn tenants_are_rate_limited_and_quota_bounded_independently() {
    let store_dir = scratch("tenants");
    let mut config = reactor_config(store_dir.clone(), 1, 1);
    // One token, refilled at one token per 2s, and at most one job in
    // the system per tenant.
    config.tenant_policy = TenantPolicy { rate: 0.5, burst: 1.0, quota: 1 };
    let server = Server::start(config).expect("server starts");
    let client = Client::new(server.addr().to_string());

    let body = |tenant: &str| {
        format!(
            "{{\"arch\":\"yolo\",\"pop\":8,\"gens\":2,\"seed\":7,\"tenant\":\"{tenant}\",\
             \"image\":{{\"width\":64,\"height\":32,\"fill\":[40,0,0]}}}}"
        )
    };
    let accepted = client.submit(&body("team-a")).expect("submit");
    assert_eq!(accepted.status, 202, "{:?}", accepted.body_text());
    let id = job_id(accepted.body_text().unwrap());

    // Same tenant, first job still in the system: the quota (checked
    // before the bucket) refuses with a poll hint of one second.
    let refused = client.submit(&body("team-a")).expect("submit");
    assert_eq!(refused.status, 429, "{:?}", refused.body_text());
    assert_eq!(refused.header("retry-after"), Some("1"));
    assert!(refused.body_text().unwrap().contains("quota"), "{:?}", refused.body_text());

    // A different tenant has its own bucket and quota slot. Distinct
    // fill keeps its cell distinct from team-a's.
    let other = client
        .submit(&body("team-b").replace("[40,0,0]", "[0,40,0]"))
        .expect("submit other tenant");
    assert_eq!(other.status, 202, "{:?}", other.body_text());
    let other_id = job_id(other.body_text().unwrap());

    // Invalid tenant names are rejected before touching the queue.
    assert_eq!(client.submit(&body("Team A")).unwrap().status, 400);
    assert_eq!(client.submit(&body(&"t".repeat(33))).unwrap().status, 400);

    // Once team-a's job finishes its quota slot frees; the bucket
    // refills at 0.5 tokens/s, so within a few seconds a resubmission
    // is admitted again.
    client.wait(&id, POLL, DEADLINE).expect("team-a job finishes");
    client.wait(&other_id, POLL, DEADLINE).expect("team-b job finishes");
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    let readmitted = loop {
        let response = client.submit(&body("team-a")).expect("resubmit");
        if response.status == 202 {
            break response;
        }
        // Quota is free (both jobs finished), so any refusal here is the
        // token bucket with its computed retry hint.
        assert_eq!(response.status, 429);
        assert!(response.body_text().unwrap().contains("rate limit"), "{:?}", response.body_text());
        let retry: u64 = response.header("retry-after").expect("Retry-After").parse().unwrap();
        assert!(retry >= 1, "{retry}");
        assert!(std::time::Instant::now() < deadline, "bucket never refilled");
        std::thread::sleep(Duration::from_millis(250));
    };
    let readmitted_id = job_id(readmitted.body_text().unwrap());
    client.wait(&readmitted_id, POLL, DEADLINE).expect("readmitted job finishes");

    let report = server.shutdown();
    assert!(!report.deadline_expired);
    let _ = std::fs::remove_dir_all(&store_dir);
}

#[test]
fn job_log_compacts_on_restart_without_changing_replay() {
    let store_dir = scratch("compaction");
    let tiny = |model_seed: usize| {
        format!(
            "{{\"arch\":\"detr\",\"model_seed\":{model_seed},\"pop\":4,\"gens\":1,\"seed\":3,\
             \"image\":{{\"width\":32,\"height\":16,\"fill\":[0,200,0]}}}}"
        )
    };
    let log_lines = || {
        std::fs::read_to_string(store_dir.join("jobs.jsonl"))
            .map(|log| log.lines().filter(|l| !l.trim().is_empty()).count())
            .unwrap_or(0)
    };

    // Phase 1: run three jobs to completion; the append-only log holds
    // one record per accepted job.
    let mut config = reactor_config(store_dir.clone(), 1, 1);
    config.done_retention = 64;
    let server = Server::start(config).expect("server starts");
    let client = Client::new(server.addr().to_string());
    let mut ids = Vec::new();
    for model_seed in [1, 2, 3] {
        let accepted = client.submit(&tiny(model_seed)).expect("submit");
        assert_eq!(accepted.status, 202, "{:?}", accepted.body_text());
        ids.push(job_id(accepted.body_text().unwrap()));
    }
    for id in &ids {
        let finished = client.wait(id, POLL, DEADLINE).expect("job finishes");
        assert!(finished.body_text().unwrap().contains("\"status\":\"done\""));
    }
    server.shutdown();
    assert_eq!(log_lines(), 3, "one record per accepted job before compaction");

    // Phase 2: restart with retention 1. Startup compaction drops all
    // but the newest done record; the retained job still reports done.
    let mut config = reactor_config(store_dir.clone(), 1, 1);
    config.done_retention = 1;
    let server = Server::start(config).expect("server restarts");
    let client = Client::new(server.addr().to_string());
    assert_eq!(log_lines(), 1, "compaction keeps only the newest done record");
    let kept = ids.last().unwrap();
    let status = client.status(kept).expect("status");
    assert_eq!(status.status, 200);
    assert!(status.body_text().unwrap().contains("\"status\":\"done\""), "retained job is done");
    assert_eq!(client.csv(kept).unwrap().status, 200);
    // Submit one more job and stop immediately: it lands in the log and
    // may still be pending when the drain starts.
    let accepted = client.submit(&tiny(4)).expect("submit");
    assert_eq!(accepted.status, 202);
    let late_id = job_id(accepted.body_text().unwrap());
    assert!(!ids.contains(&late_id), "compaction must not reset id allocation");
    server.shutdown();

    // Phase 3: restart again. Replay of non-done records is unchanged
    // by compaction: the late job finishes (now or already) and serves
    // its CSV.
    let mut config = reactor_config(store_dir.clone(), 1, 1);
    config.done_retention = 1;
    let server = Server::start(config).expect("server restarts again");
    let client = Client::new(server.addr().to_string());
    let finished = client.wait(&late_id, POLL, DEADLINE).expect("late job finishes");
    assert!(
        finished.body_text().unwrap().contains("\"status\":\"done\""),
        "job lost across compacting restarts: {:?}",
        finished.body_text()
    );
    assert_eq!(client.csv(&late_id).unwrap().status, 200);
    assert!(log_lines() <= 2, "the log stays bounded across restarts");

    server.shutdown();
    let _ = std::fs::remove_dir_all(&store_dir);
}
