//! From-scratch object detectors for the butterfly-effect-attack workspace.
//!
//! The paper compares two architectural patterns under its attack:
//!
//! * **single-stage convolutional** detectors (YOLOv5) whose decisions are
//!   made from *local* receptive fields, and
//! * **transformer** detectors (DETR) whose self-attention encoder lets any
//!   image region influence any prediction.
//!
//! No pretrained weights are available in this reproduction, so both
//! detectors are built from scratch over a shared matched-filter backbone
//! ([`response`]): class templates are synthesised by rendering canonical
//! instances of each [`bea_scene::ObjectClass`], and the backbone computes
//! cosine-similarity response maps for every class.
//!
//! * [`YoloDetector`] decodes those responses **locally** on a grid — the
//!   only global path is image-level normalisation, so far-away
//!   perturbations barely reach a detection (the paper's observed YOLO
//!   robustness).
//! * [`DetrDetector`] embeds patch features into tokens and runs a
//!   multi-head self-attention encoder before decoding with anchored object
//!   queries — *every* token mixes with every other one, which is precisely
//!   the butterfly channel the paper conjectures for DETR.
//!
//! The paper trains 25 models of each architecture (seeds 1..25) and builds
//! 16-model ensembles (Table I); [`ModelZoo`] and [`Ensemble`] reproduce
//! that setup with seeded weight jitter.
//!
//! # Examples
//!
//! ```
//! use bea_detect::{Detector, ModelZoo, Architecture};
//! use bea_scene::SyntheticKitti;
//!
//! let zoo = ModelZoo::with_defaults();
//! let yolo = zoo.model(Architecture::Yolo, 1);
//! let img = SyntheticKitti::evaluation_set().image(0);
//! let prediction = yolo.detect(&img);
//! assert!(prediction.len() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod detector;
pub mod detr;
pub mod ensemble;
pub mod grad;
pub mod heatmap;
pub mod metrics;
pub mod nms;
pub mod peaks;
pub mod response;
pub mod templates;
pub mod transformer;
pub mod two_stage;
pub mod types;
pub mod yolo;
pub mod zoo;

pub use bea_tensor::KernelPolicy;
pub use cache::{CacheStats, CachedDetector, IncrementalDetect};
pub use detector::Detector;
pub use detr::{DetrConfig, DetrDetector};
pub use ensemble::Ensemble;
pub use grad::{GradientObjective, InputGradient};
pub use two_stage::{TwoStageConfig, TwoStageDetector};
pub use types::{Detection, Prediction};
pub use yolo::{YoloConfig, YoloDetector};
pub use zoo::{Architecture, ModelZoo};
