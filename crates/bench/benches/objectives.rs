//! Micro-benchmarks of the three attack objectives.
//!
//! These cover the per-candidate cost of the attack loop *excluding* the
//! detector forward pass: Algorithm 1 (prediction overlap), Algorithm 2
//! (distance-field construction and mask weighting) and the L2 intensity.

use bea_core::objectives::{obj_degrad, obj_intensity, DistanceField};
use bea_detect::{Detection, Prediction};
use bea_image::{FilterMask, NoiseKind};
use bea_scene::{BBox, ObjectClass};
use bea_tensor::norm::NormKind;
use bea_tensor::WeightInit;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

const W: usize = 192;
const H: usize = 64;

fn sample_prediction(n: usize) -> Prediction {
    (0..n)
        .map(|i| {
            Detection::new(
                ObjectClass::ALL[i % ObjectClass::COUNT],
                BBox::new(20.0 + 40.0 * i as f32, 30.0 + 3.0 * i as f32, 24.0, 14.0),
                0.9,
            )
        })
        .collect()
}

fn sample_mask() -> FilterMask {
    NoiseKind::Gaussian { std_dev: 15.0 }.generate(W, H, &mut WeightInit::from_seed(7))
}

fn bench_objectives(c: &mut Criterion) {
    let clean = sample_prediction(4);
    let perturbed = sample_prediction(3);
    c.bench_function("obj_degrad/4v3_boxes", |b| {
        b.iter(|| obj_degrad(black_box(&clean), black_box(&perturbed)))
    });

    let mask = sample_mask();
    c.bench_function("obj_intensity/l2_192x64", |b| {
        b.iter(|| obj_intensity(black_box(&mask), NormKind::L2))
    });

    c.bench_function("distance_field/build_192x64_4boxes", |b| {
        b.iter(|| DistanceField::new(W, H, black_box(&clean), 2.0))
    });

    let field = DistanceField::new(W, H, &clean, 2.0);
    c.bench_function("obj_dist/weighting_dense_mask", |b| {
        b.iter(|| field.objective(black_box(&mask)))
    });

    let mut sparse = FilterMask::zeros(W, H);
    for i in 0..100 {
        sparse.set(0, (i * 7) % H, (i * 13) % W, 100);
    }
    c.bench_function("obj_dist/weighting_sparse_mask", |b| {
        b.iter(|| field.objective(black_box(&sparse)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_objectives
}
criterion_main!(benches);
