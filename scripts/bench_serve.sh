#!/usr/bin/env bash
# Serving-layer load benchmark: boots serve_cli in reactor mode on the
# smoke dataset, drives an open-loop fan-out of concurrent connections
# through loadgen, waits every accepted job to completion (zero
# accepted-job loss is part of the gate), and upserts the run record
# into BENCH_serve.json at the repo root.
#
# Usage: scripts/bench_serve.sh [--quick]
#   --quick   128 connections / 512 submissions with relaxed gates
#             (CI-sized); the default is 512 connections / 4096
#             submissions.
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR=127.0.0.1:7893
OUT=target/experiments/serve-bench
CONNS=512
TOTAL=4096
QUICK_FLAG=()
# Gates are deliberately loose: they catch collapse (a wedged reactor,
# an accept storm, a multi-second p99 regression), not jitter.
MIN_RPS=20
MAX_P99_MS=20000
if [[ "${1:-}" == "--quick" ]]; then
    CONNS=128
    TOTAL=512
    QUICK_FLAG=(--quick)
    shift
fi

cargo build --release -p bea-bench --bin serve_cli --bin loadgen

rm -rf "$OUT"
./target/release/serve_cli --addr "$ADDR" --reactor --smoke \
    --workers 4 --queue "$CONNS" --batch 8 \
    --tenant-rate 0 --tenant-quota 0 \
    --out "$OUT" &
SERVER_PID=$!
trap 'kill "$SERVER_PID" 2>/dev/null || true' EXIT

for _ in $(seq 1 50); do
    curl -sf "http://$ADDR/healthz" >/dev/null && break
    sleep 0.2
done

./target/release/loadgen --addr "$ADDR" \
    --conns "$CONNS" --total "$TOTAL" --tenants 8 \
    --bench-out "$(pwd)/BENCH_serve.json" "${QUICK_FLAG[@]}" \
    --min-throughput "$MIN_RPS" --max-p99-ms "$MAX_P99_MS" \
    --wait "$@"

curl -sf -X POST "http://$ADDR/v1/shutdown" >/dev/null
wait "$SERVER_PID"
trap - EXIT
