//! **E12 — Section VI (future work)**: towards physically available
//! attacks.
//!
//! A physical perturbation ("stickers on static objects on the side of the
//! road") cannot be placed with pixel accuracy nor under controlled
//! lighting. This harness compares a *standard* attack mask against an
//! *Expectation-over-Transformations* mask (optimised while averaging the
//! objectives over placement shifts and illumination changes) by measuring
//! both under held-out placement jitter.
//!
//! Run: `cargo run --release -p bea-bench --bin physical_robustness [--full]`

use bea_bench::{fmt, Harness};
use bea_core::attack::ButterflyAttack;
use bea_core::objectives::obj_degrad;
use bea_core::report::print_table;
use bea_core::ButterflyProblem;
use bea_detect::{Architecture, Detector};
use bea_image::FilterMask;
use bea_image::Image;

/// Held-out evaluation: mean obj_degrad over a grid of placements the
/// optimiser did not necessarily see.
fn robustness_score(detector: &dyn Detector, img: &Image, mask: &FilterMask) -> (f64, f64) {
    let clean = detector.detect(img);
    let mut nominal = 0.0;
    let mut jittered = Vec::new();
    for dy in -2i32..=2 {
        for dx in -2i32..=2 {
            let placed = mask.shifted(dx * 2, dy);
            for &b in &[0.9f32, 1.0, 1.1] {
                let perturbed = placed.apply(img).brightness_scaled(b);
                let d = obj_degrad(&clean, &detector.detect(&perturbed));
                if dx == 0 && dy == 0 && (b - 1.0).abs() < 1e-6 {
                    nominal = d;
                }
                jittered.push(d);
            }
        }
    }
    let mean = jittered.iter().sum::<f64>() / jittered.len() as f64;
    (nominal, mean)
}

fn main() {
    let harness = Harness::from_args();
    let config = harness.attack_config();
    let model = harness.model(Architecture::Detr, 1);
    let img = harness.dataset().image(0);

    // Standard attack.
    let standard = ButterflyAttack::new(config.clone()).attack(model.as_ref(), &img);
    let standard_mask = standard.best_degradation().expect("front never empty");

    // EoT attack: the problem averages objectives over placement jitter.
    let problem = ButterflyProblem::single(model.as_ref(), &img, config.epsilon, config.constraint)
        .with_placement_robustness(&[(-3, 0), (3, 0), (0, -1), (0, 1)], &[0.9, 1.1]);
    let eot = ButterflyAttack::new(config).attack_problem(problem);
    let eot_mask = eot.best_degradation().expect("front never empty");

    let (std_nominal, std_jittered) =
        robustness_score(model.as_ref(), &img, standard_mask.genome());
    let (eot_nominal, eot_jittered) = robustness_score(model.as_ref(), &img, eot_mask.genome());

    println!("\nPhysical robustness — standard vs Expectation-over-Transformations");
    print_table(
        &["mask", "obj_degrad (exact placement)", "obj_degrad (mean over 75 jitters)"],
        &[
            vec!["standard".into(), fmt(std_nominal, 3), fmt(std_jittered, 3)],
            vec!["EoT (this work's extension)".into(), fmt(eot_nominal, 3), fmt(eot_jittered, 3)],
        ],
    );
    println!(
        "\nexpected shape: the standard mask loses effect under jitter (its jittered \
         mean climbs towards 1.0) while the EoT mask degrades nearly as much under \
         jitter as at its exact placement — the property a physical sticker needs. \
         Note the EoT attack pays ~7x the evaluations per candidate."
    );
}
