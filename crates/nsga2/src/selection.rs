//! The crowded binary tournament ("Pareto sorting" selection).

use bea_tensor::WeightInit;

/// The crowded-comparison operator: prefers the lower Pareto rank, and
/// among equals the larger crowding distance ("the one located in a
/// less-crowded region will be preferred").
///
/// Returns `true` when `(rank_a, crowd_a)` beats `(rank_b, crowd_b)`.
#[inline]
pub fn crowded_less(rank_a: usize, crowd_a: f64, rank_b: usize, crowd_b: f64) -> bool {
    rank_a < rank_b || (rank_a == rank_b && crowd_a > crowd_b)
}

/// Binary tournament with the crowded comparison: draws two random indices
/// and returns the winner (ties resolve to the first draw).
///
/// # Panics
///
/// Panics if `ranks` is empty or the slices disagree in length.
pub fn binary_tournament(ranks: &[usize], crowding: &[f64], rng: &mut WeightInit) -> usize {
    assert!(!ranks.is_empty(), "tournament needs a non-empty population");
    assert_eq!(ranks.len(), crowding.len(), "ranks and crowding must align");
    let a = rng.index(ranks.len());
    let b = rng.index(ranks.len());
    if crowded_less(ranks[b], crowding[b], ranks[a], crowding[a]) {
        b
    } else {
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lower_rank_wins() {
        assert!(crowded_less(0, 0.0, 1, f64::INFINITY));
        assert!(!crowded_less(1, f64::INFINITY, 0, 0.0));
    }

    #[test]
    fn equal_rank_prefers_less_crowded() {
        assert!(crowded_less(2, 5.0, 2, 1.0));
        assert!(!crowded_less(2, 1.0, 2, 5.0));
    }

    #[test]
    fn equal_rank_and_crowding_is_a_tie() {
        assert!(!crowded_less(1, 2.0, 1, 2.0));
    }

    #[test]
    fn tournament_prefers_the_best_statistically() {
        // Population: index 0 is rank 0, everyone else rank 5.
        let ranks = [0usize, 5, 5, 5, 5, 5, 5, 5];
        let crowding = [1.0f64; 8];
        let mut rng = WeightInit::from_seed(1);
        let wins_of_zero =
            (0..2000).filter(|_| binary_tournament(&ranks, &crowding, &mut rng) == 0).count();
        // P(select 0) = 1 - (7/8)^2 ≈ 0.234.
        assert!(
            (300..650).contains(&wins_of_zero),
            "rank-0 selected {wins_of_zero}/2000 times, expected ≈ 470"
        );
    }

    #[test]
    fn tournament_is_deterministic_per_seed() {
        let ranks = [1usize, 0, 2];
        let crowding = [0.5, 1.0, f64::INFINITY];
        let a: Vec<usize> = {
            let mut rng = WeightInit::from_seed(9);
            (0..20).map(|_| binary_tournament(&ranks, &crowding, &mut rng)).collect()
        };
        let b: Vec<usize> = {
            let mut rng = WeightInit::from_seed(9);
            (0..20).map(|_| binary_tournament(&ranks, &crowding, &mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_population_panics() {
        let mut rng = WeightInit::from_seed(1);
        let _ = binary_tournament(&[], &[], &mut rng);
    }
}
