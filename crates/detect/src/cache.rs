//! Dirty-region incremental inference cache.
//!
//! The attack's hot path evaluates thousands of masks against the *same*
//! clean image. Each evaluation is `detect(mask.apply(clean))`, and the
//! backbone NCC sweep dominates the cost — yet a mask only changes pixels
//! inside its bounding rectangle, and NCC is local. [`CachedDetector`]
//! memoizes one clean forward pass per image (keyed by content hash) and,
//! for every mask, patches only the dirty window of the cached backbone
//! activation before re-running the cheap decision layers.
//!
//! How far the incremental propagation reaches depends on the
//! architecture, via [`IncrementalDetect`]:
//!
//! * **YOLO / two-stage** — every layer after the backbone is local (or a
//!   scalar gain derived from the patched field), so the whole pass is
//!   incremental.
//! * **DETR** — the CNN stem is patched incrementally, but the encoder's
//!   self-attention connects every token to every other: the dirty region
//!   becomes the full token grid in one layer. The propagation therefore
//!   stops at the transformer, which re-runs in full on the patched field
//!   (counted in [`CacheStats::global_stage_full`]).
//!
//! Masks that touch the whole frame gain nothing from patching and fall
//! back to a plain full forward ([`CacheStats::fallbacks`]). All paths are
//! bit-identical to the uncached `detect(mask.apply(clean))` — the
//! equivalence test suite asserts `==` on predictions, not approximation.

use crate::detector::Detector;
use crate::types::Prediction;
use bea_image::{FilterMask, Image};
use bea_tensor::{DirtyRect, FeatureMap};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Counters describing how a [`CachedDetector`] spent its queries.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Clean-pass lookups answered from the cache.
    pub hits: u64,
    /// Clean-pass lookups that had to run a full clean forward.
    pub misses: u64,
    /// Masked evaluations served by the incremental dirty-window path.
    pub incremental: u64,
    /// Masked evaluations that fell back to a plain full forward
    /// (full-frame mask or mismatched mask dimensions).
    pub fallbacks: u64,
    /// Incremental evaluations whose global stage (DETR's transformer)
    /// still had to run in full on the patched backbone field.
    pub global_stage_full: u64,
    /// Backbone cells rewritten by the incremental path, summed over all
    /// evaluations (the cached counterpart recomputes the full plane).
    pub pixels_recomputed: u64,
    /// Memoized clean passes dropped from the cache — least-recently-used
    /// entries displaced by the capacity bound plus explicit
    /// [`CachedDetector::evict`] / [`CachedDetector::clear`] calls.
    pub evictions: u64,
}

impl CacheStats {
    /// Field-wise accumulation (used to aggregate ensembles and runs).
    pub fn merge(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.incremental += other.incremental;
        self.fallbacks += other.fallbacks;
        self.global_stage_full += other.global_stage_full;
        self.pixels_recomputed += other.pixels_recomputed;
        self.evictions += other.evictions;
    }

    /// The activity since an earlier snapshot of the same counters.
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            incremental: self.incremental.saturating_sub(earlier.incremental),
            fallbacks: self.fallbacks.saturating_sub(earlier.fallbacks),
            global_stage_full: self.global_stage_full.saturating_sub(earlier.global_stage_full),
            pixels_recomputed: self.pixels_recomputed.saturating_sub(earlier.pixels_recomputed),
            evictions: self.evictions.saturating_sub(earlier.evictions),
        }
    }

    /// Total clean-pass lookups (`hits + misses`).
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// The counters as stable `(name, value)` pairs, in declaration
    /// order — the snapshot shape metrics exporters (the serving layer's
    /// `/metrics` endpoint, telemetry consumers) iterate over without
    /// hard-coding the field list.
    pub fn counters(&self) -> [(&'static str, u64); 7] {
        [
            ("hits", self.hits),
            ("misses", self.misses),
            ("incremental", self.incremental),
            ("fallbacks", self.fallbacks),
            ("global_stage_full", self.global_stage_full),
            ("pixels_recomputed", self.pixels_recomputed),
            ("evictions", self.evictions),
        ]
    }
}

impl std::fmt::Display for CacheStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "hits {} / misses {}, incremental {}, fallbacks {}, \
             global-stage-full {}, cells recomputed {}, evictions {}",
            self.hits,
            self.misses,
            self.incremental,
            self.fallbacks,
            self.global_stage_full,
            self.pixels_recomputed,
            self.evictions
        )
    }
}

/// The outcome of one incremental evaluation.
#[derive(Debug, Clone)]
pub struct IncrementalPrediction {
    /// The detections, bit-identical to `detect(perturbed)`.
    pub prediction: Prediction,
    /// Backbone cells rewritten for this evaluation.
    pub cells_recomputed: u64,
    /// `true` when a global stage (self-attention, full-image mixing) had
    /// to run in full because the dirty region reaches every output there.
    pub global_stage_full: bool,
}

/// A detector whose forward pass can be split into a cacheable clean part
/// and a dirty-window patch.
///
/// Implementations must keep [`IncrementalDetect::detect_incremental`]
/// *bit-identical* to [`Detector::detect`] on the perturbed image; the
/// cache is an optimisation, never an approximation.
pub trait IncrementalDetect: Detector {
    /// The cached intermediate of a clean forward pass (the backbone
    /// response field for all detectors in this crate).
    type Clean: Send + Sync;

    /// One full clean forward pass, returning the cacheable intermediate
    /// and the clean prediction (which must equal `self.detect(img)`).
    fn clean_forward(&self, img: &Image) -> (Self::Clean, Prediction);

    /// Detects on `perturbed`, reusing `clean` everywhere outside the
    /// dirty window (full-resolution pixel coordinates).
    fn detect_incremental(
        &self,
        clean: &Self::Clean,
        perturbed: &Image,
        dirty: &DirtyRect,
    ) -> IncrementalPrediction;

    /// Runs a whole population of incremental evaluations against one
    /// cached clean pass, returning one result per job (in order).
    ///
    /// Each result must be bit-identical to
    /// [`IncrementalDetect::detect_incremental`] on that job alone. The
    /// default loops; detectors whose global stage re-runs in full per job
    /// (DETR's transformer) override this to batch that stage across the
    /// population — the weights then stream through the cache once per
    /// *generation* instead of once per genome.
    fn detect_incremental_batch(
        &self,
        clean: &Self::Clean,
        jobs: &[(&Image, &DirtyRect)],
    ) -> Vec<IncrementalPrediction> {
        jobs.iter()
            .map(|(perturbed, dirty)| self.detect_incremental(clean, perturbed, dirty))
            .collect()
    }
}

/// The full-resolution bounding rectangle of a mask's non-zero pixels.
pub fn mask_dirty_rect(mask: &FilterMask) -> DirtyRect {
    let mut rect = DirtyRect::empty();
    for (_, y, x, _) in mask.iter_nonzero() {
        rect = rect.union(&DirtyRect::from_point(x, y));
    }
    rect
}

/// One memoized clean pass: the detector-specific cached state plus the
/// clean prediction, shared out to callers without copying.
type CacheEntry<D> = Arc<(<D as IncrementalDetect>::Clean, Prediction)>;

/// FNV-1a content hash over an image's dimensions and raw pixel bits.
fn content_hash(img: &Image) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |v: u64| {
        for byte in v.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    eat(img.width() as u64);
    eat(img.height() as u64);
    for &v in img.as_feature_map().as_slice() {
        eat(u64::from(v.to_bits()));
    }
    hash
}

/// A memoizing wrapper that serves [`Detector::detect_masked`] through the
/// dirty-region incremental path.
///
/// The wrapper is transparent: `name`, `detect` and `heatmap` delegate to
/// the inner detector, and `detect_masked` returns predictions identical
/// to the inner detector's `detect(mask.apply(clean))`.
///
/// # Examples
///
/// ```
/// use bea_detect::{CachedDetector, Detector, YoloConfig, YoloDetector};
/// use bea_image::FilterMask;
/// use bea_scene::SyntheticKitti;
///
/// let img = SyntheticKitti::evaluation_set().image(0);
/// let plain = YoloDetector::new(YoloConfig::with_seed(1));
/// let cached = CachedDetector::new(YoloDetector::new(YoloConfig::with_seed(1)));
/// let mut mask = FilterMask::zeros(img.width(), img.height());
/// mask.set(0, 10, 100, 80);
/// assert_eq!(cached.detect_masked(&img, &mask), plain.detect_masked(&img, &mask));
/// assert_eq!(cached.cache_stats().unwrap().misses, 1);
/// ```
pub struct CachedDetector<D: IncrementalDetect> {
    inner: D,
    entries: Mutex<EntryMap<D>>,
    capacity: Option<usize>,
    hits: AtomicU64,
    misses: AtomicU64,
    incremental: AtomicU64,
    fallbacks: AtomicU64,
    global_stage_full: AtomicU64,
    pixels_recomputed: AtomicU64,
    evictions: AtomicU64,
}

/// The memoized clean passes plus the LRU clock; one mutex guards both.
struct EntryMap<D: IncrementalDetect> {
    slots: HashMap<u64, LruSlot<D>>,
    tick: u64,
}

struct LruSlot<D: IncrementalDetect> {
    entry: CacheEntry<D>,
    last_used: u64,
}

impl<D: IncrementalDetect> CachedDetector<D> {
    /// Wraps a detector with an empty, unbounded cache.
    pub fn new(inner: D) -> Self {
        Self::build(inner, None)
    }

    /// Wraps a detector with a cache bounded to at most `capacity`
    /// memoized clean images; the least-recently-used entry is evicted
    /// (counted in [`CacheStats::evictions`]) when a new image would
    /// overflow the bound. Campaigns sweeping many images use this to keep
    /// memory flat. Predictions are identical at any capacity — eviction
    /// only costs a recomputed clean pass on the next lookup.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero; use the inner detector directly
    /// instead of a cache that can hold nothing.
    pub fn with_capacity(inner: D, capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be at least 1");
        Self::build(inner, Some(capacity))
    }

    fn build(inner: D, capacity: Option<usize>) -> Self {
        Self {
            inner,
            entries: Mutex::new(EntryMap { slots: HashMap::new(), tick: 0 }),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            incremental: AtomicU64::new(0),
            fallbacks: AtomicU64::new(0),
            global_stage_full: AtomicU64::new(0),
            pixels_recomputed: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The wrapped detector.
    pub fn inner(&self) -> &D {
        &self.inner
    }

    /// Unwraps the detector, discarding the cache.
    pub fn into_inner(self) -> D {
        self.inner
    }

    /// Number of distinct clean images currently memoized.
    pub fn cached_images(&self) -> usize {
        self.entries.lock().expect("cache mutex poisoned").slots.len()
    }

    /// The configured capacity bound, `None` when unbounded.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Drops the memoized clean pass of one image, if present. A campaign
    /// calls this after finishing a cell so long-lived shared detectors
    /// do not accumulate every image of the grid.
    pub fn evict(&self, img: &Image) -> bool {
        let key = content_hash(img);
        let mut entries = self.entries.lock().expect("cache mutex poisoned");
        let dropped = entries.slots.remove(&key).is_some();
        if dropped {
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        dropped
    }

    /// Drops every memoized clean pass, counting each as an eviction.
    pub fn clear(&self) {
        let mut entries = self.entries.lock().expect("cache mutex poisoned");
        let dropped = entries.slots.len() as u64;
        entries.slots.clear();
        self.evictions.fetch_add(dropped, Ordering::Relaxed);
    }

    /// Snapshot of the accumulated counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            incremental: self.incremental.load(Ordering::Relaxed),
            fallbacks: self.fallbacks.load(Ordering::Relaxed),
            global_stage_full: self.global_stage_full.load(Ordering::Relaxed),
            pixels_recomputed: self.pixels_recomputed.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// The memoized clean pass for `img`, computing it on first sight.
    fn entry(&self, img: &Image) -> Arc<(D::Clean, Prediction)> {
        let key = content_hash(img);
        let mut entries = self.entries.lock().expect("cache mutex poisoned");
        entries.tick += 1;
        let tick = entries.tick;
        if let Some(slot) = entries.slots.get_mut(&key) {
            slot.last_used = tick;
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(&slot.entry);
        }
        if let Some(capacity) = self.capacity {
            while entries.slots.len() >= capacity {
                let oldest = entries
                    .slots
                    .iter()
                    .min_by_key(|(_, slot)| slot.last_used)
                    .map(|(&k, _)| k)
                    .expect("non-empty map has a minimum");
                entries.slots.remove(&oldest);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        // Computed under the lock: concurrent first sights of one image
        // would otherwise duplicate the most expensive pass in the system.
        let entry = Arc::new(self.inner.clean_forward(img));
        self.misses.fetch_add(1, Ordering::Relaxed);
        entries.slots.insert(key, LruSlot { entry: Arc::clone(&entry), last_used: tick });
        entry
    }
}

impl<D: IncrementalDetect> Detector for CachedDetector<D> {
    /// Plain detection delegates: arbitrary (already-perturbed) images
    /// must not grow the clean-image cache.
    fn detect(&self, img: &Image) -> Prediction {
        self.inner.detect(img)
    }

    /// Batched plain detection delegates for the same reason — and so the
    /// inner detector's batched forward pass stays reachable through the
    /// wrapper.
    fn detect_batch_into(&self, imgs: &[&Image], out: &mut Vec<Prediction>) {
        self.inner.detect_batch_into(imgs, out);
    }

    fn name(&self) -> &str {
        self.inner.name()
    }

    fn heatmap(&self, img: &Image) -> FeatureMap {
        self.inner.heatmap(img)
    }

    fn cache_stats(&self) -> Option<CacheStats> {
        Some(self.stats())
    }

    fn detect_masked(&self, clean: &Image, mask: &FilterMask) -> Prediction {
        if mask.width() != clean.width() || mask.height() != clean.height() {
            // Surface the dimension error exactly like the default path.
            self.fallbacks.fetch_add(1, Ordering::Relaxed);
            return self.inner.detect(&mask.apply(clean));
        }
        let dirty = mask_dirty_rect(mask);
        let entry = self.entry(clean);
        if dirty.is_empty() {
            // The identity mask: the clean prediction, no forward at all.
            return entry.1.clone();
        }
        if dirty.area() == clean.width() * clean.height() {
            // A full-frame mask dirties every backbone cell; patching
            // would recompute the whole plane anyway.
            self.fallbacks.fetch_add(1, Ordering::Relaxed);
            return self.inner.detect(&mask.apply(clean));
        }
        let perturbed = mask.apply(clean);
        let out = self.inner.detect_incremental(&entry.0, &perturbed, &dirty);
        self.incremental.fetch_add(1, Ordering::Relaxed);
        self.pixels_recomputed.fetch_add(out.cells_recomputed, Ordering::Relaxed);
        if out.global_stage_full {
            self.global_stage_full.fetch_add(1, Ordering::Relaxed);
        }
        out.prediction
    }

    /// One clean-pass lookup serves the whole population; the incremental
    /// masks are grouped into a single
    /// [`IncrementalDetect::detect_incremental_batch`] call so the inner
    /// detector can batch its global stage. Per-mask results and counters
    /// match the scalar [`Detector::detect_masked`] path.
    fn detect_masked_batch_into(
        &self,
        clean: &Image,
        masks: &[&FilterMask],
        out: &mut Vec<Prediction>,
    ) {
        out.clear();
        out.reserve(masks.len());
        let mut entry: Option<CacheEntry<D>> = None;
        // Classify each mask; incremental jobs are deferred so they can
        // share one batched global stage. `pending` remembers where each
        // deferred result belongs in `out`.
        let mut pending: Vec<(usize, Image, DirtyRect)> = Vec::new();
        for (slot, mask) in masks.iter().enumerate() {
            if mask.width() != clean.width() || mask.height() != clean.height() {
                self.fallbacks.fetch_add(1, Ordering::Relaxed);
                out.push(self.inner.detect(&mask.apply(clean)));
                continue;
            }
            let dirty = mask_dirty_rect(mask);
            if entry.is_none() {
                entry = Some(self.entry(clean));
            } else {
                // Same image, already held: no re-hash, but still one
                // lookup per mask so the counters match the scalar path.
                self.hits.fetch_add(1, Ordering::Relaxed);
            }
            let held = entry.as_ref().expect("entry just ensured");
            if dirty.is_empty() {
                out.push(held.1.clone());
                continue;
            }
            if dirty.area() == clean.width() * clean.height() {
                self.fallbacks.fetch_add(1, Ordering::Relaxed);
                out.push(self.inner.detect(&mask.apply(clean)));
                continue;
            }
            out.push(Prediction::new());
            pending.push((slot, mask.apply(clean), dirty));
        }
        if pending.is_empty() {
            return;
        }
        let held = entry.as_ref().expect("pending jobs imply a cached entry");
        let jobs: Vec<(&Image, &DirtyRect)> =
            pending.iter().map(|(_, perturbed, dirty)| (perturbed, dirty)).collect();
        let results = self.inner.detect_incremental_batch(&held.0, &jobs);
        debug_assert_eq!(results.len(), pending.len());
        for ((slot, _, _), result) in pending.iter().zip(results) {
            self.incremental.fetch_add(1, Ordering::Relaxed);
            self.pixels_recomputed.fetch_add(result.cells_recomputed, Ordering::Relaxed);
            if result.global_stage_full {
                self.global_stage_full.fetch_add(1, Ordering::Relaxed);
            }
            out[*slot] = result.prediction;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::yolo::{YoloConfig, YoloDetector};
    use bea_scene::SyntheticKitti;

    fn sample_mask(width: usize, height: usize) -> FilterMask {
        let mut mask = FilterMask::zeros(width, height);
        for y in 10..20 {
            for x in (width / 2 + 4)..(width / 2 + 20) {
                mask.set(0, y, x, 70);
                mask.set(2, y, x, -55);
            }
        }
        mask
    }

    #[test]
    fn dirty_rect_bounds_nonzero_genes() {
        let mask = sample_mask(128, 64);
        let rect = mask_dirty_rect(&mask);
        assert_eq!(rect, DirtyRect::new(68, 10, 84, 20));
        assert!(mask_dirty_rect(&FilterMask::zeros(8, 8)).is_empty());
    }

    #[test]
    fn content_hash_tracks_pixels_and_shape() {
        let a = Image::filled(16, 8, [10.0; 3]);
        let mut b = a.clone();
        assert_eq!(content_hash(&a), content_hash(&b));
        b.put_pixel(3, 2, [10.0, 11.0, 10.0]);
        assert_ne!(content_hash(&a), content_hash(&b));
        assert_ne!(content_hash(&Image::black(8, 16)), content_hash(&Image::black(16, 8)));
    }

    #[test]
    fn zero_mask_returns_clean_prediction_without_forward() {
        let img = SyntheticKitti::evaluation_set().image(0);
        let cached = CachedDetector::new(YoloDetector::new(YoloConfig::with_seed(1)));
        let zero = FilterMask::zeros(img.width(), img.height());
        let first = cached.detect_masked(&img, &zero);
        let second = cached.detect_masked(&img, &zero);
        assert_eq!(first, second);
        assert_eq!(first, cached.inner().detect(&img));
        let stats = cached.stats();
        assert_eq!((stats.misses, stats.hits), (1, 1));
        assert_eq!(stats.incremental, 0);
    }

    #[test]
    fn repeated_masks_hit_the_cache() {
        let img = SyntheticKitti::evaluation_set().image(1);
        let cached = CachedDetector::new(YoloDetector::new(YoloConfig::with_seed(2)));
        let mask = sample_mask(img.width(), img.height());
        for _ in 0..3 {
            cached.detect_masked(&img, &mask);
        }
        let stats = cached.stats();
        assert_eq!(stats.misses, 1, "one clean forward for one image");
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.incremental, 3);
        assert!(stats.pixels_recomputed > 0);
        assert_eq!(cached.cached_images(), 1);
    }

    #[test]
    fn full_frame_mask_falls_back() {
        let img = SyntheticKitti::evaluation_set().image(0);
        let cached = CachedDetector::new(YoloDetector::new(YoloConfig::with_seed(1)));
        let mut mask = FilterMask::zeros(img.width(), img.height());
        for y in 0..img.height() {
            for x in 0..img.width() {
                mask.set(1, y, x, 5);
            }
        }
        let pred = cached.detect_masked(&img, &mask);
        assert_eq!(pred, cached.inner().detect(&mask.apply(&img)));
        assert_eq!(cached.stats().fallbacks, 1);
        assert_eq!(cached.stats().incremental, 0);
    }

    #[test]
    fn batched_masked_path_matches_scalar_path_and_counters() {
        let img = SyntheticKitti::evaluation_set().image(0);
        let mut full = FilterMask::zeros(img.width(), img.height());
        for y in 0..img.height() {
            for x in 0..img.width() {
                full.set(1, y, x, 5);
            }
        }
        let mut other = sample_mask(img.width(), img.height());
        other.set(1, 30, 12, -40);
        let zero = FilterMask::zeros(img.width(), img.height());
        let local = sample_mask(img.width(), img.height());
        let masks: Vec<&FilterMask> = vec![&local, &zero, &full, &other];

        let scalar = CachedDetector::new(YoloDetector::new(YoloConfig::with_seed(2)));
        let expected: Vec<Prediction> =
            masks.iter().map(|m| scalar.detect_masked(&img, m)).collect();

        let batched = CachedDetector::new(YoloDetector::new(YoloConfig::with_seed(2)));
        let mut out = Vec::new();
        batched.detect_masked_batch_into(&img, &masks, &mut out);
        assert_eq!(out, expected, "batched masked path must be bit-identical");
        // Reuse keeps the allocation and the answers.
        batched.detect_masked_batch_into(&img, &masks, &mut out);
        assert_eq!(out, expected);

        let s = scalar.stats();
        let b = batched.stats();
        assert_eq!((b.misses, b.fallbacks), (s.misses, s.fallbacks * 2));
        assert_eq!(b.incremental, s.incremental * 2);
        assert_eq!(b.pixels_recomputed, s.pixels_recomputed * 2);
        // One lookup per in-bounds mask, exactly like the scalar path.
        assert_eq!(b.lookups(), s.lookups() * 2);
    }

    #[test]
    fn stats_merge_and_since() {
        let a = CacheStats {
            hits: 3,
            misses: 1,
            incremental: 2,
            fallbacks: 0,
            global_stage_full: 1,
            pixels_recomputed: 100,
            evictions: 2,
        };
        let mut b = a;
        b.merge(&a);
        assert_eq!(b.hits, 6);
        assert_eq!(b.pixels_recomputed, 200);
        assert_eq!(b.evictions, 4);
        assert_eq!(b.since(&a), a);
        assert_eq!(a.lookups(), 4);
        assert!(a.to_string().contains("hits 3"));
        assert!(a.to_string().contains("evictions 2"));
    }

    #[test]
    fn counters_snapshot_every_field_in_order() {
        let stats = CacheStats {
            hits: 1,
            misses: 2,
            incremental: 3,
            fallbacks: 4,
            global_stage_full: 5,
            pixels_recomputed: 6,
            evictions: 7,
        };
        let counters = stats.counters();
        assert_eq!(
            counters.map(|(name, _)| name),
            [
                "hits",
                "misses",
                "incremental",
                "fallbacks",
                "global_stage_full",
                "pixels_recomputed",
                "evictions",
            ]
        );
        assert_eq!(counters.map(|(_, value)| value), [1, 2, 3, 4, 5, 6, 7]);
        // The snapshot is exhaustive: merging a stats value built back
        // from its own counters doubles every field.
        let mut doubled = stats;
        doubled.merge(&stats);
        assert_eq!(
            doubled.counters().map(|(_, v)| v),
            counters.map(|(_, v)| v * 2),
            "counters() must cover every CacheStats field"
        );
    }

    #[test]
    fn capacity_one_cache_over_two_images_stays_bounded_and_bit_identical() {
        let images =
            [SyntheticKitti::evaluation_set().image(0), SyntheticKitti::evaluation_set().image(1)];
        let plain = YoloDetector::new(YoloConfig::with_seed(3));
        let cached = CachedDetector::with_capacity(YoloDetector::new(YoloConfig::with_seed(3)), 1);
        assert_eq!(cached.capacity(), Some(1));
        // Alternate between the two images: every switch displaces the
        // other image's entry, yet predictions never change.
        for round in 0..2 {
            for img in &images {
                let mask = sample_mask(img.width(), img.height());
                assert_eq!(
                    cached.detect_masked(img, &mask),
                    plain.detect(&mask.apply(img)),
                    "round {round}: cached path must stay bit-identical"
                );
                assert!(cached.cached_images() <= 1, "capacity bound violated");
            }
        }
        let stats = cached.stats();
        assert_eq!(stats.evictions, 3, "every switch after the first fill evicts");
        assert_eq!(stats.misses, 4, "alternation defeats a capacity-1 cache");
        assert_eq!(stats.hits, 0);
    }

    #[test]
    fn explicit_eviction_and_clear_are_counted() {
        let img = SyntheticKitti::evaluation_set().image(2);
        let cached = CachedDetector::new(YoloDetector::new(YoloConfig::with_seed(1)));
        let mask = sample_mask(img.width(), img.height());
        let _ = cached.detect_masked(&img, &mask);
        assert_eq!(cached.cached_images(), 1);
        assert!(cached.evict(&img));
        assert!(!cached.evict(&img), "double eviction is a no-op");
        assert_eq!(cached.cached_images(), 0);
        // Re-memoize, then clear.
        let _ = cached.detect_masked(&img, &mask);
        cached.clear();
        assert_eq!(cached.cached_images(), 0);
        let stats = cached.stats();
        assert_eq!(stats.evictions, 2);
        assert_eq!(stats.misses, 2, "eviction forces a fresh clean pass");
    }

    #[test]
    fn lru_keeps_the_recently_used_image() {
        let data = SyntheticKitti::evaluation_set();
        let images = [data.image(0), data.image(1), data.image(2)];
        let cached = CachedDetector::with_capacity(YoloDetector::new(YoloConfig::with_seed(2)), 2);
        let mask = |img: &Image| sample_mask(img.width(), img.height());
        let _ = cached.detect_masked(&images[0], &mask(&images[0])); // miss {0}
        let _ = cached.detect_masked(&images[1], &mask(&images[1])); // miss {0,1}
        let _ = cached.detect_masked(&images[0], &mask(&images[0])); // hit, 0 newest
        let _ = cached.detect_masked(&images[2], &mask(&images[2])); // miss, evicts 1
        let _ = cached.detect_masked(&images[0], &mask(&images[0])); // hit
        let stats = cached.stats();
        assert_eq!(stats.misses, 3);
        assert_eq!(stats.hits, 2, "image 0 must survive both insertions");
        assert_eq!(stats.evictions, 1);
        assert_eq!(cached.cached_images(), 2);
    }

    #[test]
    #[should_panic(expected = "capacity must be at least 1")]
    fn zero_capacity_is_rejected() {
        let _ = CachedDetector::with_capacity(YoloDetector::new(YoloConfig::with_seed(1)), 0);
    }
}
