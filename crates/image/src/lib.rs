//! Image, filter-mask and region substrate.
//!
//! The paper's attack operates on RGB images of size `L × W` and encodes a
//! perturbation δ as an explicit *filter mask*: "a matrix of modifications
//! for the RGB values of each pixel ... signed integer values in the range
//! [-255, 255]" (Section IV-A). This crate provides:
//!
//! * [`Image`] — RGB images with `f32` values in `[0, 255]`,
//! * [`FilterMask`] — the signed per-pixel perturbation genome,
//! * [`Region`] / [`RegionConstraint`] — spatial restrictions such as the
//!   paper's "only the right half of an image is perturbed",
//! * [`noise`] — the digital-image-processing noise generators used to build
//!   the initial population,
//! * [`io`] — PPM/PGM readers and writers for qualitative figures,
//! * [`draw`] — bounding-box overlays,
//! * [`metrics`] — PSNR and Lp distances between images.
//!
//! # Examples
//!
//! ```
//! use bea_image::{Image, FilterMask, RegionConstraint};
//!
//! let img = Image::filled(32, 16, [128.0, 128.0, 128.0]);
//! let mut mask = FilterMask::zeros(32, 16);
//! mask.set(0, 4, 20, 50); // +50 on the red channel, right half
//! RegionConstraint::RightHalf.apply(&mut mask);
//! let perturbed = mask.apply(&img);
//! assert_eq!(perturbed.at(0, 4, 20), 178.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod draw;
pub mod error;
pub mod image;
pub mod io;
pub mod mask;
pub mod metrics;
pub mod noise;
pub mod region;

pub use error::{ImageError, Result};
pub use image::Image;
pub use mask::FilterMask;
pub use noise::NoiseKind;
pub use region::{Region, RegionConstraint};
