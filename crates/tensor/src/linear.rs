//! Fully-connected layers and layer normalisation.

use crate::error::{Result, TensorError};
use crate::gemm::KernelPolicy;
use crate::init::WeightInit;
use crate::matrix::Matrix;
use crate::pack::{matmul_nt_packed, PackedWeights};
use std::ops::{Deref, DerefMut};

/// A fully-connected (affine) layer: `y = x · Wᵀ + b`.
///
/// Inputs are row vectors stacked in a [`Matrix`] (one token per row), which
/// is the layout used throughout the attention encoder.
///
/// # Examples
///
/// ```
/// use bea_tensor::{Linear, Matrix};
///
/// # fn main() -> Result<(), bea_tensor::TensorError> {
/// // 2 -> 2 identity layer.
/// let layer = Linear::from_weights(Matrix::identity(2), vec![0.0, 0.0])?;
/// let x = Matrix::from_rows(&[&[3.0, 4.0]])?;
/// assert_eq!(layer.forward(&x)?, x);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Linear {
    /// Weight matrix of shape `out_features × in_features`.
    weight: Matrix,
    bias: Vec<f32>,
    policy: KernelPolicy,
    /// NT-GEMM panels of `weight`, packed once at construction and kept
    /// in sync by [`Linear::weight_mut`]'s guard. Pure derived state.
    packed: PackedWeights,
}

// Manual impl: the kernel dispatch policy does not change what the layer
// computes, so it is excluded from equality — and so is `packed`, which
// is derived from the weights.
impl PartialEq for Linear {
    fn eq(&self, other: &Self) -> bool {
        self.weight == other.weight && self.bias == other.bias
    }
}

impl Linear {
    /// Builds a layer from an `out × in` weight matrix and a bias of length
    /// `out`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `bias.len()` differs from
    /// the weight row count.
    pub fn from_weights(weight: Matrix, bias: Vec<f32>) -> Result<Self> {
        if bias.len() != weight.rows() {
            return Err(TensorError::LengthMismatch {
                expected: weight.rows(),
                actual: bias.len(),
            });
        }
        let packed = PackedWeights::pack(&weight);
        Ok(Self { weight, bias, policy: KernelPolicy::default(), packed })
    }

    /// Builds a Xavier-initialised layer from a seed.
    pub fn seeded(out_features: usize, in_features: usize, init: &mut WeightInit) -> Self {
        let mut buf = vec![0.0; out_features * in_features];
        init.xavier_uniform(&mut buf, in_features, out_features);
        let weight = Matrix::from_vec(out_features, in_features, buf)
            .expect("buffer allocated with matching volume");
        let packed = PackedWeights::pack(&weight);
        Self { weight, bias: vec![0.0; out_features], policy: KernelPolicy::default(), packed }
    }

    /// Output dimensionality.
    pub fn out_features(&self) -> usize {
        self.weight.rows()
    }

    /// Input dimensionality.
    pub fn in_features(&self) -> usize {
        self.weight.cols()
    }

    /// Immutable access to the weight matrix.
    pub fn weight(&self) -> &Matrix {
        &self.weight
    }

    /// Mutable access to the weight matrix (for seeded jitter). The
    /// returned guard re-packs the NT-GEMM panels when dropped, keeping
    /// [`Linear::forward`]'s prepacked fast path in sync with any edits.
    pub fn weight_mut(&mut self) -> WeightGuard<'_> {
        WeightGuard { layer: self }
    }

    /// Mutable access to the bias vector.
    pub fn bias_mut(&mut self) -> &mut [f32] {
        &mut self.bias
    }

    /// The kernel dispatch policy currently in effect.
    pub fn kernel_policy(&self) -> KernelPolicy {
        self.policy
    }

    /// Selects the matmul kernel used by [`Self::forward`]: `Reference`
    /// multiplies against an explicit weight transpose with the naive
    /// kernel, `Blocked` runs the transpose-packed NT GEMM. Outputs are
    /// `==`-identical either way.
    pub fn set_kernel_policy(&mut self, policy: KernelPolicy) {
        self.policy = policy;
    }

    /// Applies the layer to a batch of row vectors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `x.cols()` differs from the
    /// layer input dimensionality.
    pub fn forward(&self, x: &Matrix) -> Result<Matrix> {
        if x.cols() != self.in_features() {
            return Err(TensorError::ShapeMismatch {
                op: "linear",
                lhs: vec![x.rows(), x.cols()],
                rhs: vec![self.out_features(), self.in_features()],
            });
        }
        match self.policy {
            KernelPolicy::Reference => {
                let out = x.matmul_nt_policy(&self.weight, self.policy)?;
                out.add_row_vector(&self.bias)
            }
            KernelPolicy::Blocked => {
                // Construction-time panels instead of the per-call pack,
                // then the bias added in place — one add per element in
                // the same position `add_row_vector` applies it, so the
                // result stays bit-identical to the reference path.
                let mut out = matmul_nt_packed(x, &self.weight, &self.packed)?;
                for r in 0..out.rows() {
                    for (v, b) in out.row_mut(r).iter_mut().zip(&self.bias) {
                        *v += b;
                    }
                }
                Ok(out)
            }
        }
    }
}

/// Write guard over a [`Linear`] layer's weight matrix.
///
/// Dereferences to [`Matrix`]; on drop it re-packs the layer's NT-GEMM
/// panels so the prepacked forward path never sees stale weights.
#[derive(Debug)]
pub struct WeightGuard<'a> {
    layer: &'a mut Linear,
}

impl Deref for WeightGuard<'_> {
    type Target = Matrix;

    fn deref(&self) -> &Matrix {
        &self.layer.weight
    }
}

impl DerefMut for WeightGuard<'_> {
    fn deref_mut(&mut self) -> &mut Matrix {
        &mut self.layer.weight
    }
}

impl Drop for WeightGuard<'_> {
    fn drop(&mut self) {
        self.layer.packed = PackedWeights::pack(&self.layer.weight);
    }
}

/// Layer normalisation over the feature axis of each row.
///
/// Normalises every row to zero mean / unit variance, then applies a learned
/// per-feature scale and shift. Used by the transformer encoder blocks.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerNorm {
    gamma: Vec<f32>,
    beta: Vec<f32>,
    epsilon: f32,
}

impl LayerNorm {
    /// Creates a layer norm with unit scale and zero shift.
    pub fn new(features: usize) -> Self {
        Self { gamma: vec![1.0; features], beta: vec![0.0; features], epsilon: 1e-5 }
    }

    /// Number of features normalised per row.
    pub fn features(&self) -> usize {
        self.gamma.len()
    }

    /// The per-feature scale parameters.
    pub fn gamma(&self) -> &[f32] {
        &self.gamma
    }

    /// The per-feature shift parameters.
    pub fn beta(&self) -> &[f32] {
        &self.beta
    }

    /// The variance-stabilising epsilon added before the square root.
    pub fn epsilon(&self) -> f32 {
        self.epsilon
    }

    /// Mutable access to the scale parameters.
    pub fn gamma_mut(&mut self) -> &mut [f32] {
        &mut self.gamma
    }

    /// Mutable access to the shift parameters.
    pub fn beta_mut(&mut self) -> &mut [f32] {
        &mut self.beta
    }

    /// Normalises each row of `x`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `x.cols()` differs from the
    /// configured feature count.
    pub fn forward(&self, x: &Matrix) -> Result<Matrix> {
        if x.cols() != self.gamma.len() {
            return Err(TensorError::ShapeMismatch {
                op: "layer_norm",
                lhs: vec![x.rows(), x.cols()],
                rhs: vec![self.gamma.len()],
            });
        }
        let mut out = x.clone();
        let cols = x.cols();
        for r in 0..x.rows() {
            let row = out.row_mut(r);
            let mean = row.iter().sum::<f32>() / cols as f32;
            let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / cols as f32;
            let denom = (var + self.epsilon).sqrt();
            for (j, v) in row.iter_mut().enumerate() {
                *v = self.gamma[j] * ((*v - mean) / denom) + self.beta[j];
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_layer() {
        let layer = Linear::from_weights(Matrix::identity(3), vec![0.0; 3]).unwrap();
        let x = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        assert_eq!(layer.forward(&x).unwrap(), x);
    }

    #[test]
    fn bias_is_added() {
        let layer = Linear::from_weights(Matrix::identity(2), vec![10.0, 20.0]).unwrap();
        let x = Matrix::from_rows(&[&[1.0, 2.0]]).unwrap();
        let y = layer.forward(&x).unwrap();
        assert_eq!(y.row(0), &[11.0, 22.0]);
    }

    #[test]
    fn projection_changes_dimensionality() {
        // 3 -> 2 projection summing pairs.
        let w = Matrix::from_rows(&[&[1.0, 1.0, 0.0], &[0.0, 1.0, 1.0]]).unwrap();
        let layer = Linear::from_weights(w, vec![0.0, 0.0]).unwrap();
        let x = Matrix::from_rows(&[&[1.0, 2.0, 3.0]]).unwrap();
        let y = layer.forward(&x).unwrap();
        assert_eq!(y.shape(), (1, 2));
        assert_eq!(y.row(0), &[3.0, 5.0]);
    }

    #[test]
    fn input_dim_mismatch_errors() {
        let layer = Linear::from_weights(Matrix::identity(2), vec![0.0; 2]).unwrap();
        let x = Matrix::zeros(1, 3);
        assert!(layer.forward(&x).is_err());
    }

    #[test]
    fn bias_length_validated() {
        assert!(Linear::from_weights(Matrix::identity(2), vec![0.0; 3]).is_err());
    }

    #[test]
    fn seeded_layer_deterministic() {
        let mut a = WeightInit::from_seed(13);
        let mut b = WeightInit::from_seed(13);
        assert_eq!(Linear::seeded(4, 8, &mut a), Linear::seeded(4, 8, &mut b));
    }

    #[test]
    fn forward_is_policy_invariant() {
        let mut init = WeightInit::from_seed(29);
        let layer = Linear::seeded(5, 7, &mut init);
        let x = Matrix::from_vec(9, 7, (0..63).map(|i| ((i as f32) * 0.41).sin() * 2.0).collect())
            .unwrap();
        let mut reference = layer.clone();
        reference.set_kernel_policy(KernelPolicy::Reference);
        let mut blocked = layer.clone();
        blocked.set_kernel_policy(KernelPolicy::Blocked);
        assert_eq!(reference.forward(&x).unwrap(), blocked.forward(&x).unwrap());
        assert_eq!(reference, blocked, "policy must be excluded from equality");
    }

    #[test]
    fn weight_mut_repacks_for_the_blocked_path() {
        let mut init = WeightInit::from_seed(31);
        let mut layer = Linear::seeded(9, 6, &mut init);
        layer.set_kernel_policy(KernelPolicy::Blocked);
        {
            let mut weight = layer.weight_mut();
            let flipped = -weight.at(0, 0);
            weight.set(0, 0, flipped);
        } // guard drop re-packs
        let fresh = Linear::from_weights(layer.weight().clone(), vec![0.0; 9]).unwrap();
        let x = Matrix::from_vec(3, 6, (0..18).map(|i| (i as f32) * 0.3 - 2.0).collect()).unwrap();
        assert_eq!(layer.forward(&x).unwrap(), fresh.forward(&x).unwrap());
        let mut reference = layer.clone();
        reference.set_kernel_policy(KernelPolicy::Reference);
        assert_eq!(layer.forward(&x).unwrap(), reference.forward(&x).unwrap());
    }

    #[test]
    fn layer_norm_zero_mean_unit_var() {
        let norm = LayerNorm::new(4);
        let x = Matrix::from_rows(&[&[1.0, 2.0, 3.0, 4.0]]).unwrap();
        let y = norm.forward(&x).unwrap();
        let mean: f32 = y.row(0).iter().sum::<f32>() / 4.0;
        let var: f32 = y.row(0).iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-5);
        assert!((var - 1.0).abs() < 1e-3);
    }

    #[test]
    fn layer_norm_applies_gamma_beta() {
        let mut norm = LayerNorm::new(2);
        norm.gamma_mut().fill(2.0);
        norm.beta_mut().fill(1.0);
        let x = Matrix::from_rows(&[&[-1.0, 1.0]]).unwrap();
        let y = norm.forward(&x).unwrap();
        // normalised row is (-1, 1) * (1/sqrt(1+eps)); scaled by 2 and shifted by 1.
        assert!((y.at(0, 0) - (-1.0)).abs() < 1e-2);
        assert!((y.at(0, 1) - 3.0).abs() < 1e-2);
    }

    #[test]
    fn layer_norm_shape_validated() {
        let norm = LayerNorm::new(3);
        assert!(norm.forward(&Matrix::zeros(2, 4)).is_err());
    }
}
