//! **E8 — Section IV-B**: attacking an ensemble with one shared mask.
//!
//! The paper reports "the attack method is equally applicable on
//! ensembles": the ensemble objectives (Eqs. 1–3) average the per-member
//! objectives. This harness attacks an ensemble of seeded models of each
//! architecture and compares the achieved degradation against the
//! single-model attack — quantifying how much (or little) the ensemble
//! defence of Strauss et al. buys.
//!
//! Run: `cargo run --release -p bea-bench --bin ensemble_attack [--full]`

use bea_bench::{fmt, Harness};
use bea_core::attack::ButterflyAttack;
use bea_core::report::print_table;
use bea_detect::{Architecture, Detector};

fn main() {
    let harness = Harness::from_args();
    let attack = ButterflyAttack::new(harness.attack_config());
    let img = harness.dataset().image(0);
    let k = harness.scale().ensemble_size();

    let mut rows = Vec::new();
    for arch in Architecture::ALL {
        // Single-model reference.
        let single = harness.model(arch, 1);
        let single_outcome = attack.attack(single.as_ref(), &img);
        let single_best = single_outcome.best_degradation().expect("front never empty");

        // Ensemble of K members, attacked with the shared mask.
        let members: Vec<Box<dyn Detector>> =
            (1..=k as u64).map(|s| harness.model(arch, s)).collect();
        let refs: Vec<&dyn Detector> = members.iter().map(|m| m.as_ref()).collect();
        let ensemble_outcome = attack.attack_ensemble(&refs, &img);
        let ensemble_best = ensemble_outcome.best_degradation().expect("front never empty");

        // The ensemble's best mask, verified member by member.
        let mask = ensemble_best.genome();
        let perturbed_img = mask.apply(&img);
        let mut member_degrads = Vec::new();
        for member in &refs {
            let clean = member.detect(&img);
            let perturbed = member.detect(&perturbed_img);
            member_degrads.push(bea_core::objectives::obj_degrad(&clean, &perturbed));
        }
        let worst = member_degrads.iter().cloned().fold(f64::MIN, f64::max);
        let best = member_degrads.iter().cloned().fold(f64::MAX, f64::min);

        rows.push(vec![
            arch.name().to_string(),
            fmt(single_best.objectives()[1], 3),
            fmt(ensemble_best.objectives()[1], 3),
            fmt(best, 3),
            fmt(worst, 3),
            fmt(ensemble_best.objectives()[0], 1),
        ]);
    }

    println!("\nEnsemble attack — Eqs. 1–3 (K = {k})");
    print_table(
        &[
            "arch",
            "single obj_degrad",
            "ensemble obj_degrad (avg)",
            "most-degraded member",
            "least-degraded member",
            "intensity",
        ],
        &rows,
    );
    println!(
        "\nexpected shape: the shared mask still degrades the ensemble average, though \
         less than the best single-model attack — redundancy helps but does not stop \
         the butterfly attack"
    );
}
