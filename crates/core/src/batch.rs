//! Cross-job batching: a rendezvous gate that merges the per-generation
//! image batches of several concurrently running attacks into one
//! stacked forward pass.
//!
//! The serving layer runs each accepted job as its own attack, and each
//! attack evaluates its population once per generation through
//! [`Detector::detect_batch_into`]. When several queued jobs target the
//! *same model* (same architecture, model seed and kernel policy), their
//! per-generation batches can ride one union call: the
//! [`Detector::detect_batch_into`] contract guarantees every entry
//! equals the scalar `detect` of its image, so stacking is a pure speed
//! knob — the per-job predictions, and therefore the persisted CSVs,
//! stay byte-identical to solo runs.
//!
//! [`BatchGate`] is the rendezvous point. Each member attack runs on its
//! own thread with a [`GateDetector`] handle; when a member needs a
//! batch evaluated it *posts* the batch and blocks. Once every still
//! active member has posted, the last arrival concatenates the posts,
//! runs the inner detector's batched pass once, scatters the prediction
//! slices back and wakes everyone. Members finish at different times
//! (jobs have independent generation budgets); dropping a
//! [`GateDetector`] marks its member as departed so the survivors
//! rendezvous among themselves — a panicking member departs the same
//! way, so one poisoned job cannot wedge its batch group.
//!
//! Scalar calls ([`Detector::detect`], [`Detector::detect_masked`], …)
//! pass straight through to the inner detector: only the population
//! batch is worth a rendezvous, and pass-through keeps the gate safe to
//! leave wrapped around every call site.

use bea_detect::{CacheStats, Detector, GradientObjective, InputGradient, Prediction};
use bea_image::{FilterMask, Image};
use bea_tensor::FeatureMap;
use std::sync::{Arc, Condvar, Mutex};

struct GateState {
    /// Members still attacking (posted or about to post).
    active: usize,
    /// Per-member posted batch, `None` when not currently waiting.
    posts: Vec<Option<Vec<Image>>>,
    /// Per-member results of the last executed union pass.
    results: Vec<Option<Vec<Prediction>>>,
    /// How many members have posted in the current round.
    arrived: usize,
    /// A member is currently running the union forward pass (with the
    /// lock released); nobody else may start one.
    executing: bool,
}

/// The rendezvous gate shared by one group of co-batched attacks. See
/// the [module docs](self).
pub struct BatchGate {
    inner: Box<dyn Detector>,
    state: Mutex<GateState>,
    ready: Condvar,
}

impl std::fmt::Debug for BatchGate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.state.lock().expect("gate lock");
        f.debug_struct("BatchGate")
            .field("detector", &self.inner.name())
            .field("members", &state.posts.len())
            .field("active", &state.active)
            .field("arrived", &state.arrived)
            .finish()
    }
}

impl BatchGate {
    /// A gate over `inner` for `members` co-batched attacks. Call
    /// [`BatchGate::member`] exactly once per member id before the
    /// attacks start.
    pub fn new(inner: Box<dyn Detector>, members: usize) -> Arc<Self> {
        assert!(members >= 1, "a gate needs at least one member");
        Arc::new(Self {
            inner,
            state: Mutex::new(GateState {
                active: members,
                posts: vec![None; members],
                results: (0..members).map(|_| None).collect(),
                arrived: 0,
                executing: false,
            }),
            ready: Condvar::new(),
        })
    }

    /// The detector handle of member `id` (in `0..members`). Dropping
    /// the handle marks the member as departed.
    pub fn member(self: &Arc<Self>, id: usize) -> GateDetector {
        let members = self.state.lock().expect("gate lock").posts.len();
        assert!(id < members, "member id {id} out of range 0..{members}");
        GateDetector { gate: Arc::clone(self), id }
    }

    /// Members that have not departed yet (for tests and diagnostics).
    pub fn active_members(&self) -> usize {
        self.state.lock().expect("gate lock").active
    }

    /// Posts member `id`'s batch and blocks until the union pass that
    /// includes it has run, returning the member's prediction slice.
    fn rendezvous(&self, id: usize, imgs: &[&Image]) -> Vec<Prediction> {
        let owned: Vec<Image> = imgs.iter().map(|img| (*img).clone()).collect();
        let batch_len = owned.len();
        let mut state = self.state.lock().expect("gate lock");
        assert!(
            state.posts[id].is_none(),
            "gate member {id} posted concurrently — run gated attacks with threads=1"
        );
        state.posts[id] = Some(owned);
        state.arrived += 1;
        self.ready.notify_all();
        loop {
            if let Some(result) = state.results[id].take() {
                debug_assert_eq!(result.len(), batch_len);
                return result;
            }
            // Everyone active has posted and nobody is mid-pass: this
            // thread becomes the executor. Departures (`leave`) can also
            // complete the quorum; the waiter that notices runs it.
            if !state.executing && state.arrived > 0 && state.arrived == state.active {
                state.executing = true;
                let round: Vec<(usize, Vec<Image>)> = state
                    .posts
                    .iter_mut()
                    .enumerate()
                    .filter_map(|(member, post)| post.take().map(|imgs| (member, imgs)))
                    .collect();
                state.arrived = 0;
                drop(state);

                let union: Vec<&Image> = round.iter().flat_map(|(_, imgs)| imgs.iter()).collect();
                let predictions = self.inner.detect_batch(&union);
                debug_assert_eq!(predictions.len(), union.len());

                state = self.state.lock().expect("gate lock");
                let mut offset = 0;
                for (member, imgs) in &round {
                    let end = offset + imgs.len();
                    state.results[*member] = Some(predictions[offset..end].to_vec());
                    offset = end;
                }
                state.executing = false;
                self.ready.notify_all();
                let result = state.results[id].take().expect("executor's own slice");
                return result;
            }
            state = self.ready.wait(state).expect("gate lock");
        }
    }

    /// Marks a member as departed; if the departure completes the
    /// current round's quorum, a waiting member is woken to execute it.
    fn leave(&self, id: usize) {
        let mut state = self.state.lock().expect("gate lock");
        debug_assert!(state.posts[id].is_none(), "member left while waiting in the gate");
        state.active -= 1;
        drop(state);
        self.ready.notify_all();
    }
}

/// One member's detector handle into a [`BatchGate`]. Implements
/// [`Detector`] by routing population batches through the gate and
/// everything else straight to the inner detector.
#[derive(Debug)]
pub struct GateDetector {
    gate: Arc<BatchGate>,
    id: usize,
}

impl Drop for GateDetector {
    fn drop(&mut self) {
        self.gate.leave(self.id);
    }
}

impl Detector for GateDetector {
    fn detect(&self, img: &Image) -> Prediction {
        self.gate.inner.detect(img)
    }

    fn name(&self) -> &str {
        self.gate.inner.name()
    }

    fn heatmap(&self, img: &Image) -> FeatureMap {
        self.gate.inner.heatmap(img)
    }

    fn detect_masked(&self, clean: &Image, mask: &FilterMask) -> Prediction {
        self.gate.inner.detect_masked(clean, mask)
    }

    fn detect_batch_into(&self, imgs: &[&Image], out: &mut Vec<Prediction>) {
        let predictions = self.gate.rendezvous(self.id, imgs);
        out.clear();
        out.extend(predictions);
    }

    fn detect_masked_batch_into(
        &self,
        clean: &Image,
        masks: &[&FilterMask],
        out: &mut Vec<Prediction>,
    ) {
        self.gate.inner.detect_masked_batch_into(clean, masks, out);
    }

    fn cache_stats(&self) -> Option<CacheStats> {
        self.gate.inner.cache_stats()
    }

    fn input_gradient(&self, img: &Image, objective: GradientObjective) -> Option<InputGradient> {
        self.gate.inner.input_gradient(img, objective)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// A detector whose prediction depends only on the image, with
    /// counters for how the calls were grouped. Cloning shares the
    /// counters, so tests keep a handle while the gate owns the box.
    #[derive(Clone)]
    struct Probe {
        calls: Arc<AtomicUsize>,
        images_seen: Arc<AtomicUsize>,
    }

    impl Probe {
        fn new() -> Self {
            Self {
                calls: Arc::new(AtomicUsize::new(0)),
                images_seen: Arc::new(AtomicUsize::new(0)),
            }
        }
    }

    impl Detector for Probe {
        fn detect(&self, img: &Image) -> Prediction {
            // Derive a detection from the image so per-member results
            // are distinguishable after the union pass scatters.
            let v = img.pixel(0, 0)[0];
            Prediction::from_detections(vec![bea_detect::Detection::new(
                bea_scene::ObjectClass::Car,
                bea_scene::BBox::new(v, v, v + 1.0, v + 1.0),
                1.0,
            )])
        }

        fn detect_batch_into(&self, imgs: &[&Image], out: &mut Vec<Prediction>) {
            self.calls.fetch_add(1, Ordering::SeqCst);
            self.images_seen.fetch_add(imgs.len(), Ordering::SeqCst);
            out.clear();
            out.extend(imgs.iter().map(|img| self.detect(img)));
        }

        fn name(&self) -> &str {
            "probe"
        }
    }

    fn img(v: f32) -> Image {
        Image::filled(2, 2, [v, 0.0, 0.0])
    }

    #[test]
    fn members_rendezvous_into_one_union_pass() {
        let probe = Probe::new();
        let gate = BatchGate::new(Box::new(probe.clone()), 3);
        let handles: Vec<_> = (0..3)
            .map(|member| {
                let detector = gate.member(member);
                std::thread::spawn(move || {
                    let a = img(member as f32);
                    let b = img(member as f32 + 10.0);
                    let batch = detector.detect_batch(&[&a, &b]);
                    assert_eq!(batch.len(), 2);
                    // Scattered slices line up with this member's own
                    // images, not anyone else's.
                    assert_eq!(batch[0], detector.detect(&a));
                    assert_eq!(batch[1], detector.detect(&b));
                })
            })
            .collect();
        for handle in handles {
            handle.join().expect("member thread");
        }
        assert_eq!(probe.calls.load(Ordering::SeqCst), 1, "one union pass for 3 members");
        assert_eq!(probe.images_seen.load(Ordering::SeqCst), 6);
    }

    #[test]
    fn departed_members_do_not_stall_the_survivors() {
        let gate = BatchGate::new(Box::new(Probe::new()), 3);
        let quick = gate.member(0);
        let survivors: Vec<_> = (1..3)
            .map(|member| {
                let detector = gate.member(member);
                std::thread::spawn(move || {
                    // Two rounds; the quick member is gone for both.
                    for round in 0..2 {
                        let a = img(member as f32 + round as f32);
                        let batch = detector.detect_batch(&[&a]);
                        assert_eq!(batch[0], detector.detect(&a));
                    }
                })
            })
            .collect();
        // Member 0 departs without ever posting.
        drop(quick);
        assert_eq!(gate.active_members(), 2);
        for handle in survivors {
            handle.join().expect("survivor thread");
        }
    }

    #[test]
    fn unequal_round_counts_resolve_via_departure() {
        let gate = BatchGate::new(Box::new(Probe::new()), 2);
        let long_lived = gate.member(0);
        let short_lived = gate.member(1);
        let long = std::thread::spawn(move || {
            for round in 0..3 {
                let a = img(round as f32);
                let batch = long_lived.detect_batch(&[&a]);
                assert_eq!(batch[0], long_lived.detect(&a));
            }
        });
        let short = std::thread::spawn(move || {
            let a = img(99.0);
            let batch = short_lived.detect_batch(&[&a]);
            assert_eq!(batch[0], short_lived.detect(&a));
            // Dropping departs; the long-lived member's remaining
            // rounds run solo instead of deadlocking.
        });
        short.join().expect("short thread");
        long.join().expect("long thread");
        assert_eq!(gate.active_members(), 0);
    }

    #[test]
    fn single_member_gate_is_a_plain_detector() {
        let gate = BatchGate::new(Box::new(Probe::new()), 1);
        let detector = gate.member(0);
        let a = img(1.0);
        let b = img(2.0);
        assert_eq!(
            detector.detect_batch(&[&a, &b]),
            vec![detector.detect(&a), detector.detect(&b)]
        );
        let mask = FilterMask::zeros(2, 2);
        assert_eq!(detector.detect_masked(&a, &mask), detector.detect(&a));
        assert_eq!(
            detector.detect_masked_batch(&a, &[&mask]),
            vec![detector.detect_masked(&a, &mask)]
        );
        assert_eq!(detector.name(), "probe");
        assert!(detector.cache_stats().is_none());
        assert!(detector.input_gradient(&a, GradientObjective::default()).is_none());
        assert_eq!(detector.heatmap(&a).shape(), (0, 0, 0));
    }
}
