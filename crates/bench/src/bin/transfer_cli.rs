//! Command-line front end for cross-architecture transfer matrices.
//!
//! ```text
//! cargo run --release -p bea-bench --bin transfer_cli -- \
//!     --campaign target/experiments/campaign \
//!     --jobs 4 --out target/experiments/transfer
//! ```
//!
//! Reads a finished [`campaign_cli`] output directory, loads each cell's
//! champion mask, and re-evaluates every champion against the model-zoo
//! target grid (per-architecture seeds × {plain, ensemble, two-stage}
//! decode paths) through [`bea_core::transfer::TransferGrid`]. The
//! matrix CSV, manifest and telemetry stream land under `--out`;
//! `--resume` keeps finished cells (refusing loudly when the source
//! campaign changed underneath the store). The matrix is identical for
//! every `--jobs`/`--threads` value.
//!
//! [`campaign_cli`]: ../campaign_cli/index.html

use bea_bench::args::{self, ArgParser};
use bea_bench::fmt;
use bea_core::attack::AttackConfig;
use bea_core::campaign::{CampaignConfig, CampaignStore, CellSpec};
use bea_core::report::print_table;
use bea_core::transfer::{
    ensemble_member_seeds, load_champions, read_source_manifest, TargetPath, TargetSpec,
    TransferCellSpec, TransferConfig, TransferGrid, TransferStore,
};
use bea_detect::zoo::{ENSEMBLE_SIZE, MODELS_PER_ARCHITECTURE};
use bea_detect::{Architecture, Detector, Ensemble, KernelPolicy, ModelZoo};
use bea_nsga2::Nsga2Config;
use bea_scene::SyntheticKitti;
use std::path::PathBuf;
use std::process::ExitCode;

struct Options {
    campaign: PathBuf,
    out: PathBuf,
    target_models: usize,
    jobs: usize,
    threads: usize,
    cache: bool,
    resume: bool,
    kernels: KernelPolicy,
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options {
        campaign: PathBuf::from("target/experiments/campaign"),
        out: PathBuf::from("target/experiments/transfer"),
        target_models: 0,
        jobs: 0,
        threads: 1,
        cache: false,
        resume: false,
        kernels: KernelPolicy::default(),
    };
    let mut args = ArgParser::from_env();
    while let Some(flag) = args.next_flag() {
        match flag.as_str() {
            "--campaign" => options.campaign = PathBuf::from(args.value(&flag)?),
            "--out" => options.out = PathBuf::from(args.value(&flag)?),
            "--target-models" => options.target_models = args.parse(&flag)?,
            "--jobs" => options.jobs = args.parse(&flag)?,
            "--threads" => options.threads = args.parse(&flag)?,
            "--cache" => options.cache = true,
            "--resume" => options.resume = true,
            "--kernels" => options.kernels = args.parse(&flag)?,
            "--help" | "-h" => {
                return Err("usage: transfer_cli [--campaign DIR] [--out DIR] \
                            [--target-models N] [--jobs N] [--threads N] \
                            [--cache] [--resume] [--kernels reference|blocked]\n\
                            --campaign names a finished campaign_cli output directory; it is \
                            read, never modified\n\
                            --target-models sets the per-architecture target seed count \
                            (default 0: match the source campaign's model seeds)\n\
                            --jobs 0 uses every core; any value yields identical results\n\
                            --threads sets kernel worker threads per cell (default 1; 0 = all \
                            cores); results are identical at any thread count\n\
                            --resume keeps finished matrix cells from a previous run in --out, \
                            refusing when the source campaign fingerprint changed\n\
                            --cache evaluates through caching detectors (bit-identical output)\n\
                            --kernels selects the compute kernels (results are identical \
                            under both)"
                    .into())
            }
            other => return Err(args::unknown_flag(other)),
        }
    }
    if options.target_models > MODELS_PER_ARCHITECTURE {
        return Err(format!("--target-models must be <= {MODELS_PER_ARCHITECTURE}"));
    }
    Ok(options)
}

fn architecture_named(group: &str) -> Option<Architecture> {
    Architecture::EXTENDED.into_iter().find(|a| a.name() == group)
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    bea_tensor::threads::set_threads(options.threads);
    let dataset = SyntheticKitti::evaluation_set();
    let zoo = ModelZoo::with_defaults().with_kernel_policy(options.kernels);

    // The source campaign is read-only input: its manifest fixes the grid,
    // the attack configuration and (transitively) every champion mask.
    let source_store = match CampaignStore::open(&options.campaign) {
        Ok(store) => store,
        Err(e) => {
            eprintln!("cannot open {}: {e}", options.campaign.display());
            return ExitCode::FAILURE;
        }
    };
    let manifest = match read_source_manifest(&source_store) {
        Ok(manifest) => manifest,
        Err(e) => {
            eprintln!("cannot read source campaign: {e}");
            return ExitCode::FAILURE;
        }
    };
    let source_config = CampaignConfig {
        attack: AttackConfig {
            nsga2: Nsga2Config {
                population_size: manifest.population,
                generations: manifest.generations,
                ..Nsga2Config::default()
            },
            use_cache: options.cache,
            kernel_policy: options.kernels,
            threads: options.threads,
            ..AttackConfig::default()
        },
        base_seed: manifest.base_seed,
        jobs: options.jobs,
        telemetry: false,
    };
    let source_model = |spec: &CellSpec| -> Box<dyn Detector> {
        let arch = architecture_named(&spec.group).unwrap_or(Architecture::Detr);
        if options.cache {
            zoo.cached_model(arch, spec.model_seed)
        } else {
            zoo.model(arch, spec.model_seed)
        }
    };
    let source_image = |spec: &CellSpec| dataset.image(spec.image_index);
    let champions = match load_champions(
        &source_store,
        &source_config,
        &manifest.specs,
        source_model,
        source_image,
    ) {
        Ok(champions) => champions,
        Err(e) => {
            eprintln!("cannot load source champions: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Target grid: per-architecture seeds × decode paths. By default the
    // seed column matches the source campaign's widest seed, so the
    // matrix has an identity diagonal to check against.
    let max_source_seed = manifest.specs.iter().map(|s| s.model_seed).max().unwrap_or(1);
    let target_seed_count =
        if options.target_models == 0 { max_source_seed as usize } else { options.target_models };
    let target_seeds: Vec<u64> = (1..=target_seed_count as u64).collect();
    let targets = TargetSpec::paper_grid(&target_seeds);
    let specs = TransferCellSpec::grid(&manifest.specs, &targets);

    if !options.resume {
        let _ = std::fs::remove_dir_all(&options.out);
    }
    let store = match TransferStore::open(&options.out) {
        Ok(store) => store,
        Err(e) => {
            eprintln!("cannot open {}: {e}", options.out.display());
            return ExitCode::FAILURE;
        }
    };

    println!(
        "transfer: {} cells ({} sources x {} targets), jobs {}{}{}",
        specs.len(),
        manifest.specs.len(),
        targets.len(),
        if options.jobs == 0 { "auto".to_string() } else { options.jobs.to_string() },
        if options.cache { ", cached" } else { "" },
        if options.resume { ", resume" } else { "" },
    );

    let grid = TransferGrid::new(TransferConfig {
        jobs: options.jobs,
        telemetry: true,
        source_fingerprint: manifest.fingerprint,
    });
    let target_model = |target: &TargetSpec| -> Box<dyn Detector> {
        let arch = architecture_named(&target.group).unwrap_or(Architecture::Detr);
        let plain = |seed: u64| -> Box<dyn Detector> {
            if options.cache {
                zoo.cached_model(arch, seed)
            } else {
                zoo.model(arch, seed)
            }
        };
        match target.path {
            TargetPath::Plain | TargetPath::TwoStage => plain(target.seed),
            TargetPath::Ensemble => {
                let seeds = ensemble_member_seeds(
                    target.seed,
                    ENSEMBLE_SIZE,
                    MODELS_PER_ARCHITECTURE as u64,
                );
                Box::new(Ensemble::new(seeds.into_iter().map(plain).collect()))
            }
        }
    };

    let started = std::time::Instant::now();
    let matrix = match grid.run_with_store(&specs, &champions, target_model, source_image, &store) {
        Ok(matrix) => matrix,
        Err(e) => {
            eprintln!("transfer grid failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let elapsed = started.elapsed().as_secs_f64();
    println!(
        "{} cells ({} computed, {} resumed) in {:.2}s with {} workers",
        matrix.cells.len(),
        matrix.computed_cells(),
        matrix.cells.len() - matrix.computed_cells(),
        elapsed,
        matrix.jobs,
    );

    // Off-diagonal summary per target column group — the paper's
    // transferability finding is the asymmetry of these means.
    let rows = matrix.rows();
    let mut table = Vec::new();
    for (group, mean) in matrix.mean_degradation_by_target(true) {
        let cells: Vec<_> =
            rows.iter().filter(|r| r.spec.target_group == group && !r.spec.is_diagonal()).collect();
        let n = cells.len().max(1) as f64;
        let per_l2 = cells.iter().map(|r| r.metrics.normalized.per_l2).sum::<f64>() / n;
        let vanished = cells.iter().map(|r| r.metrics.vanished as f64).sum::<f64>() / n;
        let appeared = cells.iter().map(|r| r.metrics.appeared as f64).sum::<f64>() / n;
        table.push(vec![
            group,
            cells.len().to_string(),
            fmt(mean, 3),
            fmt(per_l2, 3),
            fmt(vanished, 2),
            fmt(appeared, 2),
        ]);
    }
    print_table(&["target", "cells", "mean degrad", "per unit L2", "vanished", "appeared"], &table);

    let group_mean = |group: &str| {
        matrix
            .mean_degradation_by_target(true)
            .into_iter()
            .find(|(g, _)| g == group)
            .map(|(_, m)| m)
    };
    if let (Some(detr), Some(yolo)) =
        (group_mean(Architecture::Detr.name()), group_mean(Architecture::Yolo.name()))
    {
        println!(
            "asymmetry: mean transferred degradation DETR {} vs YOLO {} ({})",
            fmt(detr, 3),
            fmt(yolo, 3),
            if detr > yolo {
                "DETR targets degrade more, as in the paper"
            } else {
                "no DETR excess at this scale"
            },
        );
    }

    println!("wrote {}", store.matrix_path().display());
    println!("wrote {}", store.manifest_path().display());
    println!("wrote {}", store.telemetry_path().display());
    ExitCode::SUCCESS
}
