//! Micro-benchmarks of the NSGA-II machinery at the paper's population
//! size (101 individuals, 3 objectives).

use bea_nsga2::crowding::crowding_distances;
use bea_nsga2::hypervolume::hypervolume;
use bea_nsga2::prelude::*;
use bea_nsga2::sorting::fast_non_dominated_sort;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn random_objectives(n: usize, m: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = WeightInit::from_seed(seed);
    (0..n).map(|_| (0..m).map(|_| rng.uniform(0.0, 1.0) as f64).collect()).collect()
}

fn bench_nsga2(c: &mut Criterion) {
    let dirs = vec![Direction::Minimize, Direction::Minimize, Direction::Maximize];
    let objs = random_objectives(101, 3, 1);

    c.bench_function("nsga2/fast_non_dominated_sort_101x3", |b| {
        b.iter(|| fast_non_dominated_sort(black_box(&objs), black_box(&dirs)))
    });

    let front: Vec<usize> = (0..objs.len()).collect();
    c.bench_function("nsga2/crowding_distance_101x3", |b| {
        b.iter(|| crowding_distances(black_box(&front), black_box(&objs)))
    });

    c.bench_function("nsga2/hypervolume_3d_101pts", |b| {
        b.iter(|| hypervolume(black_box(&objs), &[1.5, 1.5, -0.5], &dirs))
    });

    // A full generation on a cheap analytic problem isolates driver
    // overhead from evaluation cost.
    struct Schaffer;
    impl Problem for Schaffer {
        type Genome = f64;
        fn directions(&self) -> Vec<Direction> {
            vec![Direction::Minimize, Direction::Minimize]
        }
        fn evaluate(&self, x: &f64) -> Vec<f64> {
            vec![x * x, (x - 2.0) * (x - 2.0)]
        }
    }
    c.bench_function("nsga2/schaffer_pop101_gen10", |b| {
        b.iter(|| {
            let config =
                Nsga2Config { population_size: 101, generations: 10, ..Nsga2Config::default() };
            Nsga2::new(Schaffer, config).run(
                &|rng: &mut WeightInit| rng.uniform(-5.0, 5.0) as f64,
                &|a: &f64, b: &f64, _rng: &mut WeightInit| ((a + b) / 2.0, (a - b) / 2.0),
                &|x: &mut f64, rng: &mut WeightInit| *x += rng.normal(0.0, 0.3) as f64,
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_nsga2
}
criterion_main!(benches);
